// The paper's running example (SIGMOD'96 §3.1/§4.2), end to end:
//
//  1. load the stockbroker workspace (schema, functions, users,
//     requirements, seed objects);
//  2. run algorithm A(R) on both paper requirements and print the
//     Figure-1-style derivations;
//  3. *realize* flaw 1 with the probing attack: a clerk who may only
//     invoke checkBudget/w_budget/r_name extracts John's exact salary;
//  4. realize flaw 2: an updater forges an arbitrary salary through the
//     audited updateSalary path.
//
//   $ ./stockbroker
#include <cstdio>

#include "attack/attacks.h"
#include "text/workspace.h"

namespace {

constexpr const char* kWorkspace = R"(
class Broker {
  name: string;
  salary: int;
  budget: int;
  profit: int;
}

# The administrator's test: is the budget illegally high (over 10x the
# salary)? Encapsulates reads of salary and budget.
function checkBudget(broker: Broker): bool =
  r_budget(broker) >= 10 * r_salary(broker);

function calcSalary(budget: int, profit: int): int =
  budget / 10 + profit / 2;

# The weekly salary update: encapsulates the write of salary.
function updateSalary(broker: Broker): null =
  w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)));

user clerk can checkBudget, w_budget, r_name;
user updater can updateSalary, w_budget, w_profit, r_name;

require (clerk, r_salary(x) : ti);
require (updater, w_salary(a, v : ta));

object Broker { name = "John", salary = 57, budget = 400, profit = 30 }
object Broker { name = "Mary", salary = 83, budget = 900, profit = 10 }
)";

}  // namespace

int main() {
  using namespace oodbsec;

  auto workspace = text::LoadWorkspace(kWorkspace);
  if (!workspace.ok()) {
    std::fprintf(stderr, "workspace error: %s\n",
                 workspace.status().ToString().c_str());
    return 1;
  }

  std::printf("== Static analysis: algorithm A(R) ==\n\n");
  auto reports = text::CheckAllRequirements(*workspace);
  if (!reports.ok()) {
    std::fprintf(stderr, "analysis error: %s\n",
                 reports.status().ToString().c_str());
    return 1;
  }
  for (const core::AnalysisReport& report : *reports) {
    std::printf("%s", report.ToString().c_str());
    if (!report.satisfied) {
      std::printf("derivation:\n%s\n", report.flaws[0].derivation.c_str());
    }
  }

  std::printf("== Realizing flaw 1: the probing attack ==\n\n");
  attack::BinarySearchConfig probe;
  probe.class_name = "Broker";
  probe.select_attr = "name";
  probe.select_value = types::Value::String("John");
  probe.write_fn = "w_budget";
  probe.compare_fn = "checkBudget";
  probe.factor = 10;
  probe.hi = 10 * 1000;
  auto transcript = attack::ExtractHiddenValue(
      *workspace->database, *workspace->users->Find("clerk"), probe);
  if (!transcript.ok()) {
    std::fprintf(stderr, "attack error: %s\n",
                 transcript.status().ToString().c_str());
    return 1;
  }
  std::printf("clerk extracted John's salary = %s in %d probing queries\n",
              transcript->inferred.ToString().c_str(), transcript->probes);
  std::printf("first probe: %s\n", transcript->queries.front().c_str());
  std::printf("last probe:  %s\n\n", transcript->queries.back().c_str());

  std::printf("== Realizing flaw 2: forging the salary write ==\n\n");
  attack::ForgeConfig forge;
  forge.class_name = "Broker";
  forge.select_attr = "name";
  forge.select_value = types::Value::String("Mary");
  forge.setup_writes = {{"w_profit", types::Value::Int(0)},
                        {"w_budget", types::Value::Int(12340)}};
  forge.trigger_fn = "updateSalary";
  auto forged = attack::ForgeWrittenValue(
      *workspace->database, *workspace->users->Find("updater"), forge);
  if (!forged.ok()) {
    std::fprintf(stderr, "attack error: %s\n",
                 forged.status().ToString().c_str());
    return 1;
  }
  types::Oid mary = workspace->database->Extent("Broker")[1];
  auto salary = workspace->database->ReadAttribute(mary, "salary");
  std::printf("updater drove Mary's salary to %s via: %s\n",
              salary.value().ToString().c_str(),
              forged->queries.front().c_str());
  return 0;
}
