// Integrity constraints leak (paper §1.1): "because the knowledge of a
// constraint always holds in a database, a user can compute more
// sensitive values".
//
// The paper's opening regulation — "the budget of each broker should
// not be higher than ten times his salary" — is declared as an
// integrity constraint. A clerk who may merely READ budgets (no salary
// function granted, nothing writable) still learns salary lower bounds,
// because every user knows the regulation holds. The analyzer folds
// constraint knowledge into every closure and flags it.
//
//   $ ./regulation_leak
#include <cstdio>

#include "text/workspace.h"

namespace {

constexpr const char* kWorkspace = R"(
class Broker { name: string; salary: int; budget: int; }

# The company regulation, enforced by the database.
constraint budgetRegulation(b: Broker): bool =
  r_budget(b) <= 10 * r_salary(b);

user clerk   can r_budget, r_name;
user auditor can r_name;

# Salaries must not leak, not even partially.
require (clerk, r_salary(x) : pi);
require (auditor, r_salary(x) : pi);

object Broker { name = "John", salary = 57, budget = 400 }
)";

}  // namespace

int main() {
  using namespace oodbsec;

  auto workspace = text::LoadWorkspace(kWorkspace);
  if (!workspace.ok()) {
    std::fprintf(stderr, "workspace error: %s\n",
                 workspace.status().ToString().c_str());
    return 1;
  }
  auto reports = text::CheckAllRequirements(*workspace);
  if (!reports.ok()) {
    std::fprintf(stderr, "analysis error: %s\n",
                 reports.status().ToString().c_str());
    return 1;
  }
  for (const core::AnalysisReport& report : *reports) {
    std::printf("%s", report.ToString().c_str());
    if (!report.satisfied) {
      std::printf("derivation:\n%s", report.flaws[0].derivation.c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "The clerk never invokes anything that touches salaries — the\n"
      "regulation itself, known to everyone, turns the budget read into\n"
      "a salary lower bound (budget <= 10 * salary). The auditor, who\n"
      "cannot read budgets, learns nothing.\n");
  return 0;
}
