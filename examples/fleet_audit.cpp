// Fleet audit — the batch analysis service on a role-shaped population.
//
// A brokerage with three roles (clerk, updater, auditor) and a dozen
// accounts per role wants its whole requirement sheet re-checked
// nightly. Per-account analysis would unfold and close 36 capability
// lists; the AnalysisService recognises that accounts of one role carry
// permuted-identical grants, builds exactly three closures (in
// parallel), and serves the other 33 checks from its signature cache —
// then double-checks itself against the sequential analyzer.
//
//   $ ./fleet_audit
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/analysis_session.h"
#include "core/analyzer.h"
#include "core/requirement.h"
#include "service/analysis_service.h"
#include "text/workspace.h"

namespace {

using namespace oodbsec;

// The stockbroker schema with the three paper roles; accounts are
// registered programmatically below.
constexpr const char* kSchema = R"(
class Broker { b_name: string; salary: int; budget: int; profit: int; }

function checkBudget(broker: Broker): bool =
  r_budget(broker) >= 10 * r_salary(broker);

function calcSalary(budget: int, profit: int): int =
  budget / 10 + profit / 2;

function updateSalary(broker: Broker): null =
  w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)));

user template can r_b_name;
)";

struct Role {
  const char* name;
  std::vector<const char*> grants;
  const char* requirement;  // per-account, %s = account name
};

}  // namespace

int main() {
  auto loaded = text::LoadWorkspace(kSchema);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  text::Workspace workspace = std::move(loaded).value();

  const std::vector<Role> roles = {
      {"clerk",
       {"checkBudget", "w_budget", "r_b_name"},
       "(%s, r_salary(x) : ti)"},
      {"updater",
       {"updateSalary", "w_budget", "w_profit", "r_b_name"},
       "(%s, w_salary(a, v : ta))"},
      {"auditor", {"checkBudget", "r_b_name"}, "(%s, r_salary(x) : pi)"},
  };
  constexpr int kAccountsPerRole = 12;

  std::vector<core::Requirement> sheet;
  for (const Role& role : roles) {
    for (int k = 0; k < kAccountsPerRole; ++k) {
      std::string account = common::StrCat(role.name, k);
      if (!workspace.users->AddUser(account).ok()) std::abort();
      for (const char* grant : role.grants) {
        if (!workspace.users->Grant(account, grant).ok()) std::abort();
      }
      char requirement[128];
      std::snprintf(requirement, sizeof requirement, role.requirement,
                    account.c_str());
      auto parsed = core::ParseRequirementString(requirement);
      if (!parsed.ok()) std::abort();
      sheet.push_back(std::move(parsed).value());
    }
  }

  core::SessionOptions options;
  options.threads = 4;
  core::AnalysisSession session(*workspace.schema, *workspace.users, options);
  service::AnalysisService svc(session);
  auto reports = svc.CheckBatch(sheet);
  if (!reports.ok()) {
    std::fprintf(stderr, "%s\n", reports.status().ToString().c_str());
    return 1;
  }

  // One line per role (every account of a role gets the same verdict);
  // flag any account that disagrees with its role's first account.
  for (size_t r = 0; r < roles.size(); ++r) {
    const core::AnalysisReport& first = (*reports)[r * kAccountsPerRole];
    std::printf("%-8s x%d  %s", roles[r].name, kAccountsPerRole,
                first.ToString().c_str());
  }

  service::ServiceStats stats = svc.Stats();
  std::printf(
      "\n%zu checks on %d threads: %zu closures built, %zu requirement "
      "hits (%.0f%% of checks served by a shared closure)\n",
      stats.checks, svc.thread_count(), stats.closures_built,
      stats.requirement_hits, 100.0 * stats.RequirementHitRate());

  // Self-check: the batch must agree with the sequential analyzer,
  // report for report.
  for (size_t i = 0; i < sheet.size(); ++i) {
    auto sequential =
        core::CheckRequirement(*workspace.schema, *workspace.users, sheet[i]);
    if (!sequential.ok() ||
        sequential->ToString() != (*reports)[i].ToString()) {
      std::fprintf(stderr, "MISMATCH at requirement %zu\n", i);
      return 1;
    }
  }
  if (stats.closures_built != roles.size()) {
    std::fprintf(stderr, "expected %zu closures, built %zu\n", roles.size(),
                 stats.closures_built);
    return 1;
  }
  std::printf("batch verdicts match the sequential analyzer, "
              "one closure per role\n");
  return 0;
}
