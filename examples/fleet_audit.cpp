// Fleet audit — the batch analysis service on a role-shaped population.
//
// A brokerage with three roles (clerk, updater, auditor) and a dozen
// accounts per role wants its whole requirement sheet re-checked
// nightly. Per-account analysis would unfold and close 36 capability
// lists; the AnalysisService recognises that accounts of one role carry
// permuted-identical grants, builds exactly three closures (in
// parallel), and serves the other 33 checks from its signature cache —
// then double-checks itself against the sequential analyzer.
//
// The same sheet then runs through the sharded multi-process path
// (service/shard.h): four forked workers, requirements routed by
// capability signature, reports merged byte-identical to the
// single-process batch. The first sharded run persists every closure
// it builds into a packed snapshot store (one segment file; workers
// append to private side segments the coordinator merges). Then the
// fleet is "killed": the store object is dropped and the pack reopened
// cold, and a second sharded run rebuilds nothing — every signature
// replays from the segment via mmap.
//
// With --transport=tcp the audit goes one step further: after the fork
// passes (which need the single-threaded image) a loopback TCP fleet is
// started — worker threads with no local state — and the coordinator
// streams the same sheet over sockets while serving its packed store
// over the wire. The workers warm entirely from the networked snapshot
// tier (three remote hits, zero builds) and the merged report is
// asserted byte-identical to fork, batch, and the sequential analyzer.
//
//   $ ./fleet_audit                    # fork transport only
//   $ ./fleet_audit --transport=tcp    # ... plus the TCP loopback fleet
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "core/analysis_session.h"
#include "core/analyzer.h"
#include "core/requirement.h"
#include "net/socket.h"
#include "service/analysis_service.h"
#include "service/shard.h"
#include "service/tcp_shard.h"
#include "snapshot/packed_store.h"
#include "snapshot/snapshot_store.h"
#include "text/workspace.h"

namespace {

using namespace oodbsec;

// The stockbroker schema with the three paper roles; accounts are
// registered programmatically below.
constexpr const char* kSchema = R"(
class Broker { b_name: string; salary: int; budget: int; profit: int; }

function checkBudget(broker: Broker): bool =
  r_budget(broker) >= 10 * r_salary(broker);

function calcSalary(budget: int, profit: int): int =
  budget / 10 + profit / 2;

function updateSalary(broker: Broker): null =
  w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)));

user template can r_b_name;
)";

struct Role {
  const char* name;
  std::vector<const char*> grants;
  const char* requirement;  // per-account, %s = account name
};

}  // namespace

int main(int argc, char** argv) {
  bool use_tcp = false;
  int closure_threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--transport=tcp") == 0) {
      use_tcp = true;
    } else if (std::strcmp(argv[i], "--transport=fork") == 0) {
      use_tcp = false;
    } else if (std::strncmp(argv[i], "--closure-threads=", 18) == 0) {
      closure_threads = std::atoi(argv[i] + 18);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--transport=fork|tcp]"
                   " [--closure-threads=N]\n",
                   argv[0]);
      return 2;
    }
  }

  auto loaded = text::LoadWorkspace(kSchema);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  text::Workspace workspace = std::move(loaded).value();

  const std::vector<Role> roles = {
      {"clerk",
       {"checkBudget", "w_budget", "r_b_name"},
       "(%s, r_salary(x) : ti)"},
      {"updater",
       {"updateSalary", "w_budget", "w_profit", "r_b_name"},
       "(%s, w_salary(a, v : ta))"},
      {"auditor", {"checkBudget", "r_b_name"}, "(%s, r_salary(x) : pi)"},
  };
  constexpr int kAccountsPerRole = 12;

  std::vector<core::Requirement> sheet;
  for (const Role& role : roles) {
    for (int k = 0; k < kAccountsPerRole; ++k) {
      std::string account = common::StrCat(role.name, k);
      if (!workspace.users->AddUser(account).ok()) std::abort();
      for (const char* grant : role.grants) {
        if (!workspace.users->Grant(account, grant).ok()) std::abort();
      }
      char requirement[128];
      std::snprintf(requirement, sizeof requirement, role.requirement,
                    account.c_str());
      auto parsed = core::ParseRequirementString(requirement);
      if (!parsed.ok()) std::abort();
      sheet.push_back(std::move(parsed).value());
    }
  }

  // Sharded pass first: fork() wants a single-threaded image, and no
  // thread pool exists yet. The workers persist what they build into a
  // fresh packed snapshot store for the restart demo below.
  char dir_template[] = "/tmp/oodbsec_fleet_snap.XXXXXX";
  const char* snapshot_dir = ::mkdtemp(dir_template);
  if (snapshot_dir == nullptr) std::abort();
  const std::string pack_path = common::StrCat(snapshot_dir, "/fleet.pack");
  auto store = snapshot::OpenPackedStore(pack_path);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }

  // --closure-threads=N parallelizes every fixpoint the fleet builds
  // (workers, batch service, TCP fleet alike); the reports stay byte
  // identical because the engine's derivation logs do (0 = auto).
  service::ShardOptions shard_options;
  shard_options.shard_count = 4;
  shard_options.closure.closure_threads = closure_threads;
  shard_options.snapshot_store = store.value();
  shard_options.save_snapshots = true;
  auto sharded = service::RunShardedBatch(*workspace.schema, *workspace.users,
                                          sheet, shard_options);
  if (!sharded.ok()) {
    std::fprintf(stderr, "%s\n", sharded.status().ToString().c_str());
    return 1;
  }

  // Single-process batch, scoped so its pool is gone before the next
  // fork. Keep the rendered reports for the byte-identity check.
  std::vector<std::string> batch_text;
  service::ServiceStats stats;
  int threads = 0;
  {
    core::SessionOptions options;
    options.threads = 4;
    options.closure.closure_threads = closure_threads;
    core::AnalysisSession session(*workspace.schema, *workspace.users,
                                  options);
    service::AnalysisService svc(session);
    auto reports = svc.CheckBatch(sheet);
    if (!reports.ok()) {
      std::fprintf(stderr, "%s\n", reports.status().ToString().c_str());
      return 1;
    }

    // One line per role (every account of a role gets the same verdict);
    // flag any account that disagrees with its role's first account.
    for (size_t r = 0; r < roles.size(); ++r) {
      const core::AnalysisReport& first = (*reports)[r * kAccountsPerRole];
      std::printf("%-8s x%d  %s", roles[r].name, kAccountsPerRole,
                  first.ToString().c_str());
    }

    stats = svc.Stats();
    threads = svc.thread_count();
    std::printf(
        "\n%zu checks on %d threads: %zu closures built, %zu requirement "
        "hits (%.0f%% of checks served by a shared closure), "
        "%zu snapshot hits\n",
        stats.checks, threads, stats.closures_built, stats.requirement_hits,
        100.0 * stats.RequirementHitRate(), stats.snapshot_hits);

    // Self-check: the batch must agree with the sequential analyzer,
    // report for report.
    for (size_t i = 0; i < sheet.size(); ++i) {
      auto sequential = core::CheckRequirement(*workspace.schema,
                                               *workspace.users, sheet[i]);
      if (!sequential.ok() ||
          sequential->ToString() != (*reports)[i].ToString()) {
        std::fprintf(stderr, "MISMATCH at requirement %zu\n", i);
        return 1;
      }
    }
    for (const core::AnalysisReport& report : *reports) {
      batch_text.push_back(report.ToString());
    }
  }
  if (stats.closures_built != roles.size()) {
    std::fprintf(stderr, "expected %zu closures, built %zu\n", roles.size(),
                 stats.closures_built);
    return 1;
  }
  std::printf("batch verdicts match the sequential analyzer, "
              "one closure per role\n");

  // Byte-identity: the merged sharded report must render exactly as the
  // single-process batch, requirement for requirement.
  for (size_t i = 0; i < sheet.size(); ++i) {
    if (sharded->reports[i].ToString() != batch_text[i]) {
      std::fprintf(stderr, "SHARD MISMATCH at requirement %zu\n", i);
      return 1;
    }
  }
  std::printf(
      "sharded audit (%d processes): reports byte-identical to the "
      "single-process batch, %zu closures built across shards\n",
      shard_options.shard_count, sharded->merged_stats.closures_built);

  // Fleet restart: drop the live store object (the "kill") and reopen
  // the pack cold, exactly as a rebooted coordinator would. Every
  // distinct signature replays from the segment — zero fixpoints — and
  // the merged report is still byte-identical.
  shard_options.snapshot_store.reset();
  store = snapshot::OpenPackedStore(pack_path);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  shard_options.snapshot_store = store.value();
  auto restarted = service::RunShardedBatch(*workspace.schema,
                                            *workspace.users, sheet,
                                            shard_options);
  if (!restarted.ok()) {
    std::fprintf(stderr, "%s\n", restarted.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < sheet.size(); ++i) {
    if (restarted->reports[i].ToString() != batch_text[i]) {
      std::fprintf(stderr, "RESTART MISMATCH at requirement %zu\n", i);
      return 1;
    }
  }
  if (restarted->merged_stats.closures_built != 0 ||
      restarted->merged_stats.snapshot_hits != roles.size()) {
    std::fprintf(stderr,
                 "restart expected %zu snapshot hits and 0 builds, got %zu "
                 "hits and %zu builds\n",
                 roles.size(), restarted->merged_stats.snapshot_hits,
                 restarted->merged_stats.closures_built);
    return 1;
  }
  std::printf(
      "restarted fleet: %zu snapshot hits, 0 closures built — every role "
      "warm from disk, reports unchanged\n",
      restarted->merged_stats.snapshot_hits);

  // --transport=tcp: the networked fleet. Every fork has happened by
  // now, so worker threads are safe to start. Two loopback workers with
  // no local state mount the coordinator's pack over the wire; the
  // stream must warm every role remotely and still render the exact
  // bytes the fork transport, the batch service, and the sequential
  // analyzer all agreed on.
  if (use_tcp) {
    std::vector<std::unique_ptr<net::Listener>> listeners;
    std::vector<std::thread> worker_threads;
    std::atomic<bool> stop{false};
    service::TcpTransportOptions tcp_options;
    for (int w = 0; w < 2; ++w) {
      auto bound = net::Listener::Bind(0);
      if (!bound.ok()) {
        std::fprintf(stderr, "%s\n", bound.status().ToString().c_str());
        return 1;
      }
      listeners.push_back(
          std::make_unique<net::Listener>(std::move(bound).value()));
      tcp_options.workers.push_back(
          common::StrCat("127.0.0.1:", listeners.back()->port()));
      net::Listener* listener = listeners.back().get();
      const schema::Schema* schema = workspace.schema.get();
      worker_threads.emplace_back([listener, schema, &stop,
                                   closure_threads] {
        service::TcpWorkerOptions worker_options;
        worker_options.closure.closure_threads = closure_threads;
        auto status =
            service::ServeShardWorker(*listener, *schema, worker_options,
                                      &stop);
        if (!status.ok()) {
          std::fprintf(stderr, "%s\n", status.ToString().c_str());
          std::abort();
        }
      });
    }

    tcp_options.closure.closure_threads = closure_threads;
    tcp_options.snapshot_store = store.value();
    service::TcpTransport transport(tcp_options);
    auto tcp_run = transport.Run(*workspace.schema, *workspace.users, sheet,
                                 nullptr);
    int failed = 0;
    if (!tcp_run.ok()) {
      std::fprintf(stderr, "%s\n", tcp_run.status().ToString().c_str());
      failed = 1;
    } else {
      for (size_t i = 0; i < sheet.size(); ++i) {
        if (tcp_run->reports[i].ToString() != batch_text[i]) {
          std::fprintf(stderr, "TCP MISMATCH at requirement %zu\n", i);
          failed = 1;
          break;
        }
      }
      if (failed == 0 &&
          (tcp_run->merged_stats.closures_built != 0 ||
           tcp_run->merged_stats.snapshot_hits != roles.size())) {
        std::fprintf(
            stderr,
            "tcp fleet expected %zu remote snapshot hits and 0 builds, "
            "got %zu hits and %zu builds\n",
            roles.size(), tcp_run->merged_stats.snapshot_hits,
            tcp_run->merged_stats.closures_built);
        failed = 1;
      }
    }
    stop.store(true);
    for (std::thread& t : worker_threads) t.join();
    if (failed != 0) return 1;
    std::printf(
        "tcp fleet (%zu loopback workers): %zu remote snapshot hits, 0 "
        "closures built — fork = tcp = batch = sequential, byte for byte\n",
        tcp_options.workers.size(), tcp_run->merged_stats.snapshot_hits);
  }

  std::error_code ec;
  std::filesystem::remove_all(snapshot_dir, ec);
  return 0;
}
