// Partial information disclosure (the paper's §1 motivation: "a user
// should be allowed to get just partial information on some data but
// should not know the exact value of it").
//
// A hospital exposes patients' ages only coarsely:
//   * ageBracket(p) = r_age(p) / 10   — decade only: SAFE by design
//     (partial inferability is intended, total must be impossible);
//   * isOlderThan(p, t) = r_age(p) >= t — looks equally coarse, but the
//     caller controls the threshold: a FLAW (binary search pins the
//     exact age).
//
// A(R) distinguishes the two designs, and the argument-probing attack
// realizes the flawed one.
//
//   $ ./hospital_records
#include <cstdio>

#include "attack/attacks.h"
#include "text/workspace.h"

namespace {

constexpr const char* kWorkspace = R"(
class Patient {
  patient_name: string;
  age: int;
  ward: int;
}

# Intended disclosure: the age bracket (decade) only.
function ageBracket(p: Patient): int = r_age(p) / 10;

# Looks harmless, but the threshold is caller-controlled.
function isOlderThan(p: Patient, t: int): bool = r_age(p) >= t;

user researcher can ageBracket, r_patient_name;
user intake can isOlderThan, r_patient_name;

# Neither user may learn an exact age.
require (researcher, r_age(x) : ti);
require (intake, r_age(x) : ti);
# The researcher IS allowed partial knowledge; this one is expected to
# be flagged, documenting the intended disclosure.
require (researcher, r_age(x) : pi);

object Patient { patient_name = "Ada",  age = 47, ward = 3 }
object Patient { patient_name = "Berk", age = 62, ward = 1 }
)";

}  // namespace

int main() {
  using namespace oodbsec;

  auto workspace = text::LoadWorkspace(kWorkspace);
  if (!workspace.ok()) {
    std::fprintf(stderr, "workspace error: %s\n",
                 workspace.status().ToString().c_str());
    return 1;
  }

  std::printf("== Static analysis ==\n\n");
  auto reports = text::CheckAllRequirements(*workspace);
  if (!reports.ok()) {
    std::fprintf(stderr, "analysis error: %s\n",
                 reports.status().ToString().c_str());
    return 1;
  }
  for (const core::AnalysisReport& report : *reports) {
    std::printf("%s\n", report.ToString().c_str());
  }
  std::printf(
      "ageBracket leaks only the decade (requirement 1 satisfied, 3 is\n"
      "the intended partial disclosure); isOlderThan leaks everything\n"
      "(requirement 2 violated).\n\n");

  std::printf("== Realizing the isOlderThan flaw ==\n\n");
  attack::ArgumentProbeConfig probe;
  probe.class_name = "Patient";
  probe.select_attr = "patient_name";
  probe.select_value = types::Value::String("Ada");
  probe.compare_fn = "isOlderThan";
  probe.lo = 0;
  probe.hi = 130;
  auto transcript = attack::ExtractByArgumentProbing(
      *workspace->database, *workspace->users->Find("intake"), probe);
  if (!transcript.ok()) {
    std::fprintf(stderr, "attack error: %s\n",
                 transcript.status().ToString().c_str());
    return 1;
  }
  std::printf("intake extracted Ada's exact age = %s in %d queries, e.g.\n"
              "  %s\n",
              transcript->inferred.ToString().c_str(), transcript->probes,
              transcript->queries[2].c_str());
  return 0;
}
