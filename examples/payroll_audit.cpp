// Controllability decomposed (paper §3.1): controllability =
// inferability + alterability, and the two are independent. A payroll
// system demonstrates the full 2x2 matrix:
//
//   hr_operator  may trigger raises but cannot *choose* the written
//                amount (alterability requirement satisfied);
//   hr_admin     additionally controls the grade input — full write
//                control (alterability flagged) yet still cannot *read*
//                anything (inferability requirement satisfied):
//                alterability without inferability;
//   auditor      only observes a compliance predicate plus the grade —
//                learns salary bounds (partial inferability flagged)
//                but can alter nothing:
//                inferability without alterability.
//
//   $ ./payroll_audit
#include <cstdio>

#include "text/workspace.h"

namespace {

constexpr const char* kWorkspace = R"(
class Employee {
  emp_name: string;
  salary: int;
  grade: int;
}

# A raise is computed, never chosen: salary += 100 * grade.
function applyRaise(e: Employee): null =
  w_salary(e, r_salary(e) + 100 * r_grade(e));

# Compliance: a salary must stay within its grade band.
function payrollOk(e: Employee): bool =
  r_salary(e) <= 100 * r_grade(e) + 500;

user hr_operator can applyRaise, r_emp_name;
user hr_admin    can applyRaise, w_grade, r_emp_name;
user auditor     can payrollOk, r_grade, r_emp_name;

# Nobody below payroll itself may choose a salary outright...
require (hr_operator, w_salary(a, v : ta));
require (hr_admin,    w_salary(a, v : ta));
# ...nor read one exactly, nor even narrow it down.
require (hr_admin, r_salary(x) : ti);
require (auditor,  r_salary(x) : pi);
require (auditor,  w_salary(a, v : pa));

object Employee { emp_name = "Kim", salary = 1200, grade = 7 }
)";

}  // namespace

int main() {
  using namespace oodbsec;

  auto workspace = text::LoadWorkspace(kWorkspace);
  if (!workspace.ok()) {
    std::fprintf(stderr, "workspace error: %s\n",
                 workspace.status().ToString().c_str());
    return 1;
  }
  auto reports = text::CheckAllRequirements(*workspace);
  if (!reports.ok()) {
    std::fprintf(stderr, "analysis error: %s\n",
                 reports.status().ToString().c_str());
    return 1;
  }
  for (const core::AnalysisReport& report : *reports) {
    std::printf("%s\n", report.ToString().c_str());
  }
  std::printf(
      "Summary of the 2x2 matrix:\n"
      "  hr_operator: no write control, no read        (both safe)\n"
      "  hr_admin:    write control WITHOUT read       (alterability only)\n"
      "  auditor:     read (bounds) WITHOUT any write  (inferability only)\n");
  return 0;
}
