// oodbsec_shell — the command-line front end: load a workspace file,
// analyze its security requirements, and run queries (optionally under
// the dynamic session guard).
//
//   $ ./oodbsec_shell workspace.odb            # interactive
//   $ echo 'analyze' | ./oodbsec_shell workspace.odb
//
// Commands:
//   help                       this text
//   schema                     list classes and functions
//   users                      list users and capability lists
//   requirements               list security requirements
//   analyze                    run A(R) on every requirement
//   grant <user> <function>    grant a capability (session overlay)
//   revoke <user> <function>   revoke one; DRed-shrinks the cached closure
//   recheck                    re-audit every requirement incrementally
//   batch [threads]            same, through the caching batch service
//   shard [shards] [threads]   same, forked across worker processes
//   shard tcp <host:port>...   same, streamed to TCP workers (started
//                              with `serve`), pipelined by signature
//   serve <port>               become a shard worker: serve batches on
//                              <port> until the process is killed
//   fixpoint [threads]         parallel closure fixpoint (0 = auto,
//                              1 = sequential; prints current if omitted)
//   snapshot dir <path>        arm the tier over a snapshot directory
//   snapshot pack <path>       arm it over a packed segment file
//   snapshot save              persist cached closures to the store
//   snapshot load              warm the cache from the store
//   snapshot stats             store utilisation (live vs stale bytes)
//   snapshot compact           sweep stale generations from the store
//   snapshot migrate <dir> <packfile>
//                              fold a snapshot directory into a pack
//   explain <n>                derivation for requirement n's first flaw
//   trace on|off               arm / disarm the session tracer
//   trace dump [file]          render spans + metrics (file: JSON lines)
//   query <user> <select ...>  run a query as <user>
//   guard <user> <select ...>  run it under the dynamic session guard
//   guard stats                serving-path tier counters
//   guard sessions             open sessions (committed/checked sets)
//   guard save                 persist guard closures to the store
//   guard load                 warm the guard cache from the store
//   quit
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/analysis_session.h"
#include "dynamic/session_guard.h"
#include "obs/sink.h"
#include "query/binder.h"
#include "query/query_parser.h"
#include "net/socket.h"
#include "service/analysis_service.h"
#include "service/shard.h"
#include "service/tcp_shard.h"
#include "snapshot/packed_store.h"
#include "snapshot/snapshot.h"
#include "snapshot/snapshot_store.h"
#include "text/workspace.h"

namespace {

using namespace oodbsec;

class Shell {
 public:
  explicit Shell(text::Workspace workspace)
      : workspace_(std::move(workspace)),
        session_(std::make_unique<core::AnalysisSession>(*workspace_.schema,
                                                         *workspace_.users)) {
    RebuildGuard();
  }

  // Returns false on "quit".
  bool Handle(const std::string& line) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command.empty()) return true;
    if (command == "quit" || command == "exit") return false;
    if (command == "help") {
      Help();
    } else if (command == "schema") {
      Schema();
    } else if (command == "users") {
      Users();
    } else if (command == "requirements") {
      Requirements();
    } else if (command == "dump") {
      std::printf("%s", text::FormatWorkspace(workspace_).c_str());
    } else if (command == "analyze") {
      Analyze();
    } else if (command == "grant" || command == "revoke") {
      std::string user;
      std::string function;
      in >> user >> function;
      GrantRevoke(command, user, function);
    } else if (command == "recheck") {
      Recheck();
    } else if (command == "batch") {
      int threads = 0;
      in >> threads;
      Batch(threads > 0 ? threads : 4);
    } else if (command == "shard") {
      std::string first;
      in >> first;
      if (first == "tcp") {
        std::vector<std::string> addresses;
        std::string address;
        while (in >> address) addresses.push_back(address);
        ShardTcp(addresses);
      } else {
        int shards = std::atoi(first.c_str());
        int threads = 0;
        in >> threads;
        Shard(shards > 0 ? shards : 4, threads > 0 ? threads : 1);
      }
    } else if (command == "fixpoint") {
      int threads = -1;
      in >> threads;
      Fixpoint(threads);
    } else if (command == "serve") {
      int port = 0;
      in >> port;
      Serve(port);
    } else if (command == "snapshot") {
      std::string subcommand;
      in >> subcommand;
      std::string path;
      std::string second;
      in >> path >> second;  // migrate takes two operands; rest take <= 1
      Snapshot(subcommand, path, second);
    } else if (command == "explain") {
      size_t index = 0;
      in >> index;
      Explain(index);
    } else if (command == "trace") {
      std::string subcommand;
      in >> subcommand;
      std::string file;
      in >> file;
      Trace(subcommand, file);
    } else if (command == "query" || command == "guard") {
      std::string user;
      in >> user;
      if (command == "guard" &&
          (user == "stats" || user == "sessions" || user == "save" ||
           user == "load")) {
        GuardAdmin(user);
      } else {
        std::string rest;
        std::getline(in, rest);
        RunQuery(user, rest, /*guarded=*/command == "guard");
      }
    } else {
      std::printf("unknown command '%s' (try 'help')\n", command.c_str());
    }
    return true;
  }

 private:
  void Help() {
    std::printf(
        "  schema | users | requirements   inspect the workspace\n"
        "  analyze                         run A(R) on every requirement\n"
        "  grant <user> <function>         grant a capability (session"
        " overlay)\n"
        "  revoke <user> <function>        revoke one; DRed-shrinks the"
        " cached closure\n"
        "  recheck                         re-audit every requirement\n"
        "                                  (incremental, cached)\n"
        "  batch [threads]                 same, through the batch service\n"
        "                                  (shared-closure cache, default 4"
        " threads)\n"
        "  shard [shards] [threads]        same, forked across worker\n"
        "                                  processes (default 4 shards)\n"
        "  shard tcp <host:port> ...       same, streamed to TCP workers\n"
        "                                  (started with 'serve')\n"
        "  serve <port>                    become a shard worker on <port>\n"
        "  fixpoint [threads]              parallel closure fixpoint (0 ="
        " auto,\n"
        "                                  1 = sequential; prints current"
        " when\n"
        "                                  omitted)\n"
        "  snapshot dir <path>             arm the tier over a snapshot"
        " directory\n"
        "  snapshot pack <path>            arm it over a packed segment"
        " file\n"
        "  snapshot save                   persist cached closures\n"
        "  snapshot load                   warm the cache from the store\n"
        "  snapshot stats                  store utilisation\n"
        "  snapshot compact                sweep stale generations\n"
        "  snapshot migrate <dir> <pack>   fold a directory into a pack\n"
        "  dump                            re-render the workspace file\n"
        "  explain <n>                     derivation for requirement n\n"
        "  trace on|off                    arm / disarm the session tracer\n"
        "  trace dump [file]               spans + metrics (file: JSON"
        " lines)\n"
        "  query <user> <select ...>       run a query as <user>\n"
        "  guard <user> <select ...>       ... under the session guard\n"
        "  guard stats                     serving-path tier counters\n"
        "  guard sessions                  open sessions (committed/"
        "checked)\n"
        "  guard save | load               persist / warm guard closures\n"
        "                                  (needs an armed snapshot store)\n"
        "  quit\n");
  }

  void Schema() {
    for (const auto& cls : workspace_.schema->classes()) {
      std::printf("class %s {", cls->name().c_str());
      for (const auto& attr : cls->attributes()) {
        std::printf(" %s: %s;", attr.name.c_str(),
                    attr.type->ToString().c_str());
      }
      std::printf(" }   (%zu object(s))\n",
                  workspace_.database->Extent(cls->name()).size());
    }
    for (const auto& fn : workspace_.schema->functions()) {
      std::printf("function %s\n", fn->SignatureToString().c_str());
    }
  }

  void Users() {
    for (const schema::User* user : workspace_.users->users()) {
      std::vector<std::string> caps(user->capabilities().begin(),
                                    user->capabilities().end());
      std::printf("user %s can %s\n", user->name().c_str(),
                  common::Join(caps, ", ").c_str());
    }
  }

  void Requirements() {
    for (size_t i = 0; i < workspace_.requirements.size(); ++i) {
      std::printf("[%zu] require %s\n", i,
                  workspace_.requirements[i].ToString().c_str());
    }
  }

  void Analyze() {
    std::vector<core::AnalysisReport> reports;
    reports.reserve(workspace_.requirements.size());
    for (const core::Requirement& requirement : workspace_.requirements) {
      auto report = session_->Check(requirement);
      if (!report.ok()) {
        std::printf("error: %s\n", report.status().ToString().c_str());
        return;
      }
      reports.push_back(std::move(report).value());
    }
    last_reports_ = std::move(reports);
    for (size_t i = 0; i < last_reports_.size(); ++i) {
      std::printf("[%zu] %s", i, last_reports_[i].ToString().c_str());
    }
    std::printf("(use 'explain <n>' for a derivation)\n");
  }

  // Session-overlay policy edits. A revoke eagerly DRed-retracts the
  // user's cached closure (core::Closure::Retract), so the `recheck`
  // that follows is an exact cache hit; the printed counters make the
  // fast path (vs the rebuild fallback) visible.
  void GrantRevoke(const std::string& verb, const std::string& user,
                   const std::string& function) {
    if (user.empty() || function.empty()) {
      std::printf("usage: %s <user> <function>\n", verb.c_str());
      return;
    }
    common::Status status =
        verb == "grant" ? session_->AddCapability(user, function)
                        : session_->RemoveCapability(user, function);
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
      return;
    }
    if (verb == "grant") {
      std::printf("granted %s to %s\n", function.c_str(), user.c_str());
    } else {
      obs::MetricsRegistry& metrics = session_->metrics();
      std::printf(
          "revoked %s from %s (%lld retraction(s) fast, %lld fell back to"
          " rebuild)\n",
          function.c_str(), user.c_str(),
          static_cast<long long>(
              metrics.counter("session.retractions_fast")->value()),
          static_cast<long long>(
              metrics.counter("session.retractions_fallback")->value()));
    }
    std::printf("(run 'recheck' to re-audit)\n");
  }

  // Re-audits every requirement against the overlay capability state,
  // serving closures from the session's incremental cache.
  void Recheck() {
    auto reports = session_->RecheckRequirements(workspace_.requirements);
    if (!reports.ok()) {
      std::printf("error: %s\n", reports.status().ToString().c_str());
      return;
    }
    last_reports_ = std::move(reports).value();
    for (size_t i = 0; i < last_reports_.size(); ++i) {
      std::printf("[%zu] %s", i, last_reports_[i].ToString().c_str());
    }
    const core::ClosureCache::Stats& stats =
        session_->recheck_cache().stats();
    std::printf(
        "(%llu exact hit(s), %llu warm, %llu retracted, %llu cold)\n",
        static_cast<unsigned long long>(stats.exact_hits),
        static_cast<unsigned long long>(stats.warm_builds),
        static_cast<unsigned long long>(stats.retract_builds),
        static_cast<unsigned long long>(stats.cold_builds));
  }

  // Like Analyze(), but through AnalysisService: users sharing a
  // capability signature share one closure, and the distinct closures
  // and the per-requirement checks run on a worker pool. The service
  // (and so its closure cache) persists across `batch` commands; it is
  // rebuilt only when the requested thread count changes.
  void Batch(int threads) {
    if (service_ == nullptr || service_->thread_count() != threads) {
      service_ =
          std::make_unique<service::AnalysisService>(*session_, threads);
    }
    auto reports = service_->CheckBatch(workspace_.requirements);
    if (!reports.ok()) {
      std::printf("error: %s\n", reports.status().ToString().c_str());
      return;
    }
    last_reports_ = std::move(reports).value();
    for (size_t i = 0; i < last_reports_.size(); ++i) {
      std::printf("[%zu] %s", i, last_reports_[i].ToString().c_str());
    }
    service::ServiceStats stats = service_->Stats();
    std::printf(
        "(%d thread(s): %zu check(s), %zu closure(s) built, "
        "%zu signature hit(s), %zu requirement hit(s), "
        "%zu snapshot hit(s))\n",
        service_->thread_count(), stats.checks, stats.closures_built,
        stats.signature_hits, stats.requirement_hits, stats.snapshot_hits);
  }

  // Like Batch(), but forked across worker processes (service/shard.h):
  // requirements are routed by capability signature, each worker runs a
  // private service over its subset, and the merged report is
  // byte-identical to single-process CheckBatch. Uses the armed
  // snapshot store (if any) as the workers' shared L2, and saves what
  // the workers built back into it.
  void Shard(int shards, int threads) {
    // fork() wants a single-threaded image: retire the in-process
    // service's pool first (workers build their own pools post-fork).
    service_.reset();
    service::ShardOptions options;
    options.shard_count = shards;
    options.threads = threads;
    options.closure = session_->closure_options();
    options.snapshot_store = store_;
    options.save_snapshots = store_ != nullptr;
    auto sharded = service::RunShardedBatch(
        *workspace_.schema, *workspace_.users, workspace_.requirements,
        options, &session_->obs());
    if (!sharded.ok()) {
      std::printf("error: %s\n", sharded.status().ToString().c_str());
      return;
    }
    last_reports_ = std::move(sharded.value().reports);
    for (size_t i = 0; i < last_reports_.size(); ++i) {
      std::printf("[%zu] %s", i, last_reports_[i].ToString().c_str());
    }
    const service::ServiceStats& stats = sharded.value().merged_stats;
    std::printf(
        "(%d shard(s) x %d thread(s): %zu check(s), %zu closure(s) built, "
        "%zu signature hit(s), %zu requirement hit(s), "
        "%zu snapshot hit(s))\n",
        shards, threads, stats.checks, stats.closures_built,
        stats.signature_hits, stats.requirement_hits, stats.snapshot_hits);
    for (int s = 0; s < shards; ++s) {
      std::printf("  shard %d: %zu requirement(s), %zu closure(s) built, "
                  "%zu snapshot hit(s)\n",
                  s, sharded.value().shard_requirements[s],
                  sharded.value().shard_stats[s].closures_built,
                  sharded.value().shard_stats[s].snapshot_hits);
    }
  }

  // Like Shard(), but streamed to already-running TCP workers
  // (service/tcp_shard.h): signature-coalesced batches pipeline over
  // persistent connections, and the armed snapshot store (if any) is
  // served to the workers over the same wire as a remote L2 tier. The
  // merged report stays byte-identical to `batch` and `shard`.
  void ShardTcp(const std::vector<std::string>& addresses) {
    if (addresses.empty()) {
      std::printf("usage: shard tcp <host:port> [<host:port> ...]\n");
      return;
    }
    service::TcpTransportOptions options;
    options.workers = addresses;
    options.closure = session_->closure_options();
    options.snapshot_store = store_;
    options.save_snapshots = store_ != nullptr;
    service::TcpTransport transport(options);
    auto sharded =
        transport.Run(*workspace_.schema, *workspace_.users,
                      workspace_.requirements, &session_->obs());
    if (!sharded.ok()) {
      std::printf("error: %s\n", sharded.status().ToString().c_str());
      return;
    }
    last_reports_ = std::move(sharded.value().reports);
    for (size_t i = 0; i < last_reports_.size(); ++i) {
      std::printf("[%zu] %s", i, last_reports_[i].ToString().c_str());
    }
    const service::ServiceStats& stats = sharded.value().merged_stats;
    std::printf(
        "(%zu tcp worker(s): %zu check(s), %zu closure(s) built, "
        "%zu signature hit(s), %zu snapshot hit(s))\n",
        addresses.size(), stats.checks, stats.closures_built,
        stats.signature_hits, stats.snapshot_hits);
    for (size_t s = 0; s < addresses.size(); ++s) {
      std::printf("  %s: %zu requirement(s), %zu closure(s) built, "
                  "%zu snapshot hit(s)\n",
                  addresses[s].c_str(),
                  sharded.value().shard_requirements[s],
                  sharded.value().shard_stats[s].closures_built,
                  sharded.value().shard_stats[s].snapshot_hits);
    }
  }

  // Turns this shell into a shard worker: serves batches from TCP
  // coordinators (the `shard tcp` command in another shell) until the
  // process is killed. The armed snapshot store (if any) becomes the
  // worker's local L2; otherwise the coordinator's store is mounted
  // over the wire when one is advertised.
  void Serve(int port) {
    if (port <= 0 || port > 65535) {
      std::printf("usage: serve <port>\n");
      return;
    }
    auto listener = net::Listener::Bind(static_cast<uint16_t>(port),
                                        /*loopback_only=*/false);
    if (!listener.ok()) {
      std::printf("error: %s\n", listener.status().ToString().c_str());
      return;
    }
    std::printf("worker: serving shard batches on port %u\n",
                listener.value().port());
    std::fflush(stdout);
    service::TcpWorkerOptions options;
    options.closure = session_->closure_options();
    options.snapshot_store = store_;
    auto status = service::ServeShardWorker(listener.value(),
                                            *workspace_.schema, options);
    std::printf("error: %s\n", status.ToString().c_str());
  }

  // (Re)builds the session guard against the current session's options
  // and the armed store (if any): the guard's signature cache shares
  // the snapshot tier, so `guard load` warms serving-path sessions from
  // closures a previous process saved.
  void RebuildGuard() {
    dynamic::GuardOptions options;
    options.closure = session_->closure_options();
    options.snapshot_store = store_;
    options.obs = &session_->obs();
    guard_ = std::make_unique<dynamic::SessionGuard>(
        *workspace_.schema, *workspace_.users, workspace_.requirements,
        options);
  }

  // Rebuilds the session with `threads` fixpoint workers per closure
  // build (0 = auto-detect cores, 1 = sequential). Derivation logs are
  // byte-identical at every setting, so the swap only changes build
  // speed; the caches restart because the session does.
  void Fixpoint(int threads) {
    if (threads < 0) {
      std::printf("fixpoint threads: %d\n",
                  session_->closure_options().closure_threads);
      return;
    }
    service_.reset();
    core::SessionOptions options = session_->options();
    options.closure.closure_threads = threads;
    session_ = std::make_unique<core::AnalysisSession>(
        *workspace_.schema, *workspace_.users, options);
    RebuildGuard();
    std::printf("closure fixpoint threads = %d%s\n", threads,
                threads == 0 ? " (auto)" : "");
  }

  // Rebuilds the session with `store` armed as the L2 tier. The store
  // is part of the cache configuration, so the session (and its caches)
  // restart; the recorded trace — and any open guard sessions — do not
  // survive the rebuild.
  void ArmStore(std::shared_ptr<snapshot::SnapshotStore> store) {
    store_ = std::move(store);
    service_.reset();
    core::SessionOptions options = session_->options();
    options.snapshot_store = store_;
    session_ = std::make_unique<core::AnalysisSession>(
        *workspace_.schema, *workspace_.users, options);
    RebuildGuard();
    std::printf("snapshot tier armed (%s)\n",
                store_->Stats().description.c_str());
  }

  void Snapshot(const std::string& subcommand, const std::string& path,
                const std::string& second) {
    if (subcommand == "dir") {
      if (path.empty()) {
        std::printf("usage: snapshot dir <path>\n");
        return;
      }
      ArmStore(snapshot::OpenDirectoryStore(path));
      return;
    }
    if (subcommand == "pack") {
      if (path.empty()) {
        std::printf("usage: snapshot pack <path>\n");
        return;
      }
      auto store = snapshot::OpenPackedStore(path);
      if (!store.ok()) {
        std::printf("error: %s\n", store.status().ToString().c_str());
        return;
      }
      ArmStore(std::move(store).value());
      return;
    }
    if (subcommand == "migrate") {
      if (path.empty() || second.empty()) {
        std::printf("usage: snapshot migrate <dir> <packfile>\n");
        return;
      }
      auto migrated = snapshot::MigrateDirectoryToPack(
          *workspace_.schema, session_->closure_options(), path, second,
          &session_->obs());
      if (!migrated.ok()) {
        std::printf("error: %s\n", migrated.status().ToString().c_str());
        return;
      }
      std::printf(
          "migrated %zu snapshot(s) from %s into %s (%zu invalid"
          " skipped; every entry digest-verified)\n",
          migrated.value().migrated, path.c_str(), second.c_str(),
          migrated.value().invalid);
      return;
    }
    if (subcommand != "save" && subcommand != "load" &&
        subcommand != "stats" && subcommand != "compact") {
      std::printf(
          "usage: snapshot dir <path> | pack <path> | save | load |"
          " stats | compact | migrate <dir> <packfile>\n");
      return;
    }
    if (store_ == nullptr) {
      std::printf(
          "no snapshot store ('snapshot dir <path>' or"
          " 'snapshot pack <path>' first)\n");
      return;
    }
    if (subcommand == "stats") {
      snapshot::StoreStats stats = store_->Stats();
      std::printf(
          "%s: %llu entr%s, %llu byte(s) (%llu live, %llu stale), "
          "%llu find(s) / %llu save(s) / %llu sweep(s), "
          "page cache %llu hit(s) / %llu miss(es) / %llu eviction(s)\n",
          stats.description.c_str(),
          static_cast<unsigned long long>(stats.entries),
          stats.entries == 1 ? "y" : "ies",
          static_cast<unsigned long long>(stats.file_bytes),
          static_cast<unsigned long long>(stats.live_bytes),
          static_cast<unsigned long long>(stats.stale_bytes),
          static_cast<unsigned long long>(stats.finds),
          static_cast<unsigned long long>(stats.saves),
          static_cast<unsigned long long>(stats.sweeps),
          static_cast<unsigned long long>(stats.page_cache_hits),
          static_cast<unsigned long long>(stats.page_cache_misses),
          static_cast<unsigned long long>(stats.page_cache_evictions));
      return;
    }
    if (subcommand == "compact") {
      auto swept = store_->Sweep(snapshot::SchemaFingerprint(
          *workspace_.schema, session_->closure_options()));
      if (!swept.ok()) {
        std::printf("error: %s\n", swept.status().ToString().c_str());
        return;
      }
      std::printf(
          "kept %llu record(s), swept %llu, reclaimed %llu byte(s)\n",
          static_cast<unsigned long long>(swept.value().records_kept),
          static_cast<unsigned long long>(swept.value().records_swept),
          static_cast<unsigned long long>(swept.value().bytes_reclaimed));
      return;
    }
    if (service_ == nullptr) {
      service_ = std::make_unique<service::AnalysisService>(*session_, 4);
    }
    if (subcommand == "save") {
      common::Status status = service_->SaveCacheSnapshot();
      if (!status.ok()) {
        std::printf("error: %s\n", status.ToString().c_str());
        return;
      }
      std::printf("saved %zu cached closure(s) to the store\n",
                  service_->cache_size());
    } else {
      size_t loaded = service_->LoadCacheSnapshot();
      std::printf("loaded %zu snapshot(s) from the store\n", loaded);
    }
  }

  // Guard administration: tier counters, open sessions, snapshot-tier
  // persistence. Query execution stays on RunQuery ('guard <user> ...').
  void GuardAdmin(const std::string& subcommand) {
    if (subcommand == "stats") {
      dynamic::GuardStats stats = guard_->Stats();
      std::printf(
          "%llu decision(s): %llu fast-path allow(s), %llu session"
          " hit(s), %llu exact hit(s), %llu delta recheck(s), %llu cold"
          " build(s), %llu denial(s)\n",
          static_cast<unsigned long long>(stats.decisions),
          static_cast<unsigned long long>(stats.fastpath_allows),
          static_cast<unsigned long long>(stats.session_hits),
          static_cast<unsigned long long>(stats.exact_hits),
          static_cast<unsigned long long>(stats.delta_rechecks),
          static_cast<unsigned long long>(stats.cold_builds),
          static_cast<unsigned long long>(stats.denials));
      std::printf(
          "signature cache: %llu exact hit(s), %llu warm, %llu cold,"
          " %llu snapshot hit(s)\n",
          static_cast<unsigned long long>(stats.cache.exact_hits),
          static_cast<unsigned long long>(stats.cache.warm_builds),
          static_cast<unsigned long long>(stats.cache.cold_builds),
          static_cast<unsigned long long>(stats.cache.snapshot_hits));
      return;
    }
    if (subcommand == "sessions") {
      std::vector<std::string> users = guard_->SessionUsers();
      if (users.empty()) {
        std::printf("no open sessions\n");
        return;
      }
      for (const std::string& user : users) {
        dynamic::SessionGuard::SessionProbe probe = guard_->Probe(user);
        std::vector<std::string> committed(probe.committed.begin(),
                                           probe.committed.end());
        std::printf("%s: %zu committed (%s), %zu checked by the live"
                    " closure\n",
                    user.c_str(), probe.committed.size(),
                    common::Join(committed, ", ").c_str(),
                    probe.checked.size());
      }
      return;
    }
    if (store_ == nullptr) {
      std::printf(
          "no snapshot store ('snapshot dir <path>' or"
          " 'snapshot pack <path>' first)\n");
      return;
    }
    if (subcommand == "save") {
      common::Status status = guard_->SaveCacheSnapshot();
      if (!status.ok()) {
        std::printf("error: %s\n", status.ToString().c_str());
        return;
      }
      std::printf("saved the guard's cached closures to the store\n");
    } else {
      size_t loaded = guard_->LoadCacheSnapshot();
      std::printf("loaded %zu snapshot(s) into the guard cache\n", loaded);
    }
  }

  void Trace(const std::string& subcommand, const std::string& file) {
    if (subcommand == "on") {
      session_->tracer().set_enabled(true);
      std::printf("tracing on (recording restarted)\n");
    } else if (subcommand == "off") {
      session_->tracer().set_enabled(false);
      std::printf("tracing off (%zu span(s) kept; 'trace dump' to view)\n",
                  session_->tracer().span_count());
    } else if (subcommand == "dump") {
      if (file.empty()) {
        obs::ConsoleTableSink sink(std::cout);
        obs::Emit(session_->obs(), sink);
        return;
      }
      std::ofstream out(file);
      if (!out) {
        std::printf("cannot open '%s'\n", file.c_str());
        return;
      }
      obs::JsonLinesSink sink(out);
      obs::Emit(session_->obs(), sink);
      std::printf("wrote %zu span(s) to %s\n",
                  session_->tracer().span_count(), file.c_str());
    } else {
      std::printf("usage: trace on|off|dump [file]\n");
    }
  }

  void Explain(size_t index) {
    if (last_reports_.empty()) Analyze();
    if (index >= last_reports_.size()) {
      std::printf("no requirement [%zu]\n", index);
      return;
    }
    const core::AnalysisReport& report = last_reports_[index];
    if (report.satisfied) {
      std::printf("requirement [%zu] is satisfied; nothing to explain\n",
                  index);
      return;
    }
    std::printf("%s\n%s", report.flaws[0].description.c_str(),
                report.flaws[0].derivation.c_str());
  }

  void RunQuery(const std::string& user_name, const std::string& source,
                bool guarded) {
    const schema::User* user = workspace_.users->Find(user_name);
    if (user == nullptr) {
      std::printf("unknown user '%s'\n", user_name.c_str());
      return;
    }
    auto parsed = query::ParseQueryString(source);
    if (!parsed.ok()) {
      std::printf("parse error: %s\n", parsed.status().ToString().c_str());
      return;
    }
    auto bound = query::BindQuery(*parsed.value(), *workspace_.schema);
    if (!bound.ok()) {
      std::printf("bind error: %s\n", bound.ToString().c_str());
      return;
    }
    common::Result<query::QueryResult> result = [&] {
      if (guarded) {
        return guard_->Run(*workspace_.database, *user, *parsed.value());
      }
      query::QueryEvaluator evaluator(*workspace_.database, user);
      return evaluator.Run(*parsed.value());
    }();
    if (!result.ok()) {
      std::printf("%s\n", result.status().ToString().c_str());
      return;
    }
    std::printf("%s(%zu row(s))\n", result->ToString().c_str(),
                result->rows.size());
  }

  text::Workspace workspace_;
  // unique_ptr: `snapshot dir` rebuilds the session with the tier armed.
  std::unique_ptr<core::AnalysisSession> session_;
  // Lazily built on the first `batch`, kept so the closure cache (and
  // the session's metrics, which it feeds) survive across commands.
  std::unique_ptr<service::AnalysisService> service_;
  // unique_ptr: ArmStore rebuilds the guard sharing the armed store.
  std::unique_ptr<dynamic::SessionGuard> guard_;
  std::vector<core::AnalysisReport> last_reports_;
  // Null until `snapshot dir`/`snapshot pack` arms the persistent tier.
  std::shared_ptr<snapshot::SnapshotStore> store_;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <workspace.odb> [command...]\n"
                 "With no command, reads commands from stdin.\n",
                 argv[0]);
    return 2;
  }
  auto workspace = text::LoadWorkspaceFile(argv[1]);
  if (!workspace.ok()) {
    std::fprintf(stderr, "%s\n", workspace.status().ToString().c_str());
    return 1;
  }
  Shell shell(std::move(workspace).value());

  if (argc > 2) {
    std::vector<std::string> pieces;
    for (int i = 2; i < argc; ++i) pieces.emplace_back(argv[i]);
    shell.Handle(common::Join(pieces, " "));
    return 0;
  }

  std::string line;
  bool tty_prompt = isatty(fileno(stdin)) != 0;
  while (true) {
    if (tty_prompt) std::printf("oodbsec> ");
    if (!std::getline(std::cin, line)) break;
    if (!shell.Handle(line)) break;
  }
  return 0;
}
