// Quickstart: declare a schema with an encapsulated access function,
// grant it to a user, state a security requirement, and run the static
// flaw detector A(R).
//
//   $ ./quickstart
#include <cstdio>

#include "core/analysis_session.h"
#include "core/requirement.h"
#include "schema/schema.h"
#include "schema/user.h"

int main() {
  using namespace oodbsec;

  // 1. Schema: one class, one encapsulated test function.
  schema::SchemaBuilder builder;
  builder.AddClass("Account", {{"owner", "string"},
                               {"balance", "int"},
                               {"limit", "int"}});
  builder.AddFunction("overLimit", {{"a", "Account"}}, "bool",
                      "r_balance(a) >= r_limit(a)");
  auto schema = std::move(builder).Build();
  if (!schema.ok()) {
    std::fprintf(stderr, "schema error: %s\n",
                 schema.status().ToString().c_str());
    return 1;
  }

  // 2. Users: the teller may test accounts against their limit and may
  // adjust limits — but must never learn an exact balance.
  schema::UserRegistry users(*schema.value());
  (void)users.AddUser("teller");
  (void)users.Grant("teller", "overLimit");
  (void)users.Grant("teller", "w_limit");

  // 3. The security requirement, in the paper's syntax: no total
  // inferability on the returned value of r_balance.
  auto requirement =
      core::ParseRequirementString("(teller, r_balance(x) : ti)");
  if (!requirement.ok()) {
    std::fprintf(stderr, "requirement error: %s\n",
                 requirement.status().ToString().c_str());
    return 1;
  }

  // 4. Run algorithm A(R) through an AnalysisSession — the one
  // construction point for options and observability: unfold the
  // teller's capability list, compute the F(F) closure, and look for a
  // violating invocation site.
  core::AnalysisSession session(*schema.value(), users);
  auto report = session.Check(requirement.value());
  if (!report.ok()) {
    std::fprintf(stderr, "analysis error: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("%s", report->ToString().c_str());
  if (!report->satisfied) {
    std::printf("\nDerivation (why the analyzer thinks so):\n%s",
                report->flaws[0].derivation.c_str());
    std::printf(
        "\nThe teller can drive the limit to arbitrary values and watch\n"
        "overLimit flip — a binary search recovers the exact balance.\n"
        "Fix: revoke w_limit, or require only partial secrecy (pi).\n");
  }
  return 0;
}
