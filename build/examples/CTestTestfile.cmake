# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stockbroker "/root/repo/build/examples/stockbroker")
set_tests_properties(example_stockbroker PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hospital_records "/root/repo/build/examples/hospital_records")
set_tests_properties(example_hospital_records PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_payroll_audit "/root/repo/build/examples/payroll_audit")
set_tests_properties(example_payroll_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_regulation_leak "/root/repo/build/examples/regulation_leak")
set_tests_properties(example_regulation_leak PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shell "/root/repo/build/examples/oodbsec_shell" "/root/repo/examples/workspaces/stockbroker.odb" "analyze")
set_tests_properties(example_shell PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
