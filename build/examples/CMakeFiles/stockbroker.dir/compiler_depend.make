# Empty compiler generated dependencies file for stockbroker.
# This may be replaced when dependencies are built.
