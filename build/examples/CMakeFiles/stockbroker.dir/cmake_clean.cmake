file(REMOVE_RECURSE
  "CMakeFiles/stockbroker.dir/stockbroker.cpp.o"
  "CMakeFiles/stockbroker.dir/stockbroker.cpp.o.d"
  "stockbroker"
  "stockbroker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stockbroker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
