file(REMOVE_RECURSE
  "CMakeFiles/oodbsec_shell.dir/oodbsec_shell.cpp.o"
  "CMakeFiles/oodbsec_shell.dir/oodbsec_shell.cpp.o.d"
  "oodbsec_shell"
  "oodbsec_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oodbsec_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
