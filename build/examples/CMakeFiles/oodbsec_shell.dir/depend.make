# Empty dependencies file for oodbsec_shell.
# This may be replaced when dependencies are built.
