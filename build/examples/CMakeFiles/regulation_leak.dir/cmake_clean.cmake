file(REMOVE_RECURSE
  "CMakeFiles/regulation_leak.dir/regulation_leak.cpp.o"
  "CMakeFiles/regulation_leak.dir/regulation_leak.cpp.o.d"
  "regulation_leak"
  "regulation_leak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regulation_leak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
