# Empty dependencies file for regulation_leak.
# This may be replaced when dependencies are built.
