file(REMOVE_RECURSE
  "liboodbsec.a"
)
