
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/attacks.cc" "src/CMakeFiles/oodbsec.dir/attack/attacks.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/attack/attacks.cc.o.d"
  "/root/repo/src/basicfun/metarules.cc" "src/CMakeFiles/oodbsec.dir/basicfun/metarules.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/basicfun/metarules.cc.o.d"
  "/root/repo/src/common/diagnostics.cc" "src/CMakeFiles/oodbsec.dir/common/diagnostics.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/common/diagnostics.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/oodbsec.dir/common/status.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/oodbsec.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/common/strings.cc.o.d"
  "/root/repo/src/core/analyzer.cc" "src/CMakeFiles/oodbsec.dir/core/analyzer.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/core/analyzer.cc.o.d"
  "/root/repo/src/core/basic_rules.cc" "src/CMakeFiles/oodbsec.dir/core/basic_rules.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/core/basic_rules.cc.o.d"
  "/root/repo/src/core/capability.cc" "src/CMakeFiles/oodbsec.dir/core/capability.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/core/capability.cc.o.d"
  "/root/repo/src/core/closure.cc" "src/CMakeFiles/oodbsec.dir/core/closure.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/core/closure.cc.o.d"
  "/root/repo/src/core/requirement.cc" "src/CMakeFiles/oodbsec.dir/core/requirement.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/core/requirement.cc.o.d"
  "/root/repo/src/dynamic/session_guard.cc" "src/CMakeFiles/oodbsec.dir/dynamic/session_guard.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/dynamic/session_guard.cc.o.d"
  "/root/repo/src/exec/basic_functions.cc" "src/CMakeFiles/oodbsec.dir/exec/basic_functions.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/exec/basic_functions.cc.o.d"
  "/root/repo/src/exec/evaluator.cc" "src/CMakeFiles/oodbsec.dir/exec/evaluator.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/exec/evaluator.cc.o.d"
  "/root/repo/src/lang/ast.cc" "src/CMakeFiles/oodbsec.dir/lang/ast.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/lang/ast.cc.o.d"
  "/root/repo/src/lang/lexer.cc" "src/CMakeFiles/oodbsec.dir/lang/lexer.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/lang/lexer.cc.o.d"
  "/root/repo/src/lang/parser.cc" "src/CMakeFiles/oodbsec.dir/lang/parser.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/lang/parser.cc.o.d"
  "/root/repo/src/lang/printer.cc" "src/CMakeFiles/oodbsec.dir/lang/printer.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/lang/printer.cc.o.d"
  "/root/repo/src/lang/type_checker.cc" "src/CMakeFiles/oodbsec.dir/lang/type_checker.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/lang/type_checker.cc.o.d"
  "/root/repo/src/query/binder.cc" "src/CMakeFiles/oodbsec.dir/query/binder.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/query/binder.cc.o.d"
  "/root/repo/src/query/capability.cc" "src/CMakeFiles/oodbsec.dir/query/capability.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/query/capability.cc.o.d"
  "/root/repo/src/query/query_evaluator.cc" "src/CMakeFiles/oodbsec.dir/query/query_evaluator.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/query/query_evaluator.cc.o.d"
  "/root/repo/src/query/query_parser.cc" "src/CMakeFiles/oodbsec.dir/query/query_parser.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/query/query_parser.cc.o.d"
  "/root/repo/src/schema/schema.cc" "src/CMakeFiles/oodbsec.dir/schema/schema.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/schema/schema.cc.o.d"
  "/root/repo/src/schema/user.cc" "src/CMakeFiles/oodbsec.dir/schema/user.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/schema/user.cc.o.d"
  "/root/repo/src/semantics/execution.cc" "src/CMakeFiles/oodbsec.dir/semantics/execution.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/semantics/execution.cc.o.d"
  "/root/repo/src/semantics/inference.cc" "src/CMakeFiles/oodbsec.dir/semantics/inference.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/semantics/inference.cc.o.d"
  "/root/repo/src/semantics/oracle.cc" "src/CMakeFiles/oodbsec.dir/semantics/oracle.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/semantics/oracle.cc.o.d"
  "/root/repo/src/store/database.cc" "src/CMakeFiles/oodbsec.dir/store/database.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/store/database.cc.o.d"
  "/root/repo/src/text/workspace.cc" "src/CMakeFiles/oodbsec.dir/text/workspace.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/text/workspace.cc.o.d"
  "/root/repo/src/types/domain.cc" "src/CMakeFiles/oodbsec.dir/types/domain.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/types/domain.cc.o.d"
  "/root/repo/src/types/type.cc" "src/CMakeFiles/oodbsec.dir/types/type.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/types/type.cc.o.d"
  "/root/repo/src/types/value.cc" "src/CMakeFiles/oodbsec.dir/types/value.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/types/value.cc.o.d"
  "/root/repo/src/unfold/unfolded.cc" "src/CMakeFiles/oodbsec.dir/unfold/unfolded.cc.o" "gcc" "src/CMakeFiles/oodbsec.dir/unfold/unfolded.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
