# Empty compiler generated dependencies file for oodbsec.
# This may be replaced when dependencies are built.
