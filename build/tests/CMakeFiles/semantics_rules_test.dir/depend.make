# Empty dependencies file for semantics_rules_test.
# This may be replaced when dependencies are built.
