file(REMOVE_RECURSE
  "CMakeFiles/store_exec_test.dir/store_exec_test.cc.o"
  "CMakeFiles/store_exec_test.dir/store_exec_test.cc.o.d"
  "store_exec_test"
  "store_exec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
