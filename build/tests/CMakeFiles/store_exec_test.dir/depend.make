# Empty dependencies file for store_exec_test.
# This may be replaced when dependencies are built.
