# Empty compiler generated dependencies file for closure_rules_test.
# This may be replaced when dependencies are built.
