file(REMOVE_RECURSE
  "CMakeFiles/closure_rules_test.dir/closure_rules_test.cc.o"
  "CMakeFiles/closure_rules_test.dir/closure_rules_test.cc.o.d"
  "closure_rules_test"
  "closure_rules_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closure_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
