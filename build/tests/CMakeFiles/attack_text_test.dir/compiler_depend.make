# Empty compiler generated dependencies file for attack_text_test.
# This may be replaced when dependencies are built.
