file(REMOVE_RECURSE
  "CMakeFiles/attack_text_test.dir/attack_text_test.cc.o"
  "CMakeFiles/attack_text_test.dir/attack_text_test.cc.o.d"
  "attack_text_test"
  "attack_text_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
