# Empty compiler generated dependencies file for basicfun_test.
# This may be replaced when dependencies are built.
