file(REMOVE_RECURSE
  "CMakeFiles/basicfun_test.dir/basicfun_test.cc.o"
  "CMakeFiles/basicfun_test.dir/basicfun_test.cc.o.d"
  "basicfun_test"
  "basicfun_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/basicfun_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
