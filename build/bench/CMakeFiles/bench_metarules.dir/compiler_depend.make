# Empty compiler generated dependencies file for bench_metarules.
# This may be replaced when dependencies are built.
