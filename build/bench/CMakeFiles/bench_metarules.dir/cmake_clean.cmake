file(REMOVE_RECURSE
  "CMakeFiles/bench_metarules.dir/bench_metarules.cc.o"
  "CMakeFiles/bench_metarules.dir/bench_metarules.cc.o.d"
  "bench_metarules"
  "bench_metarules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_metarules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
