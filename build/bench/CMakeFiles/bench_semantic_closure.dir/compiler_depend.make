# Empty compiler generated dependencies file for bench_semantic_closure.
# This may be replaced when dependencies are built.
