file(REMOVE_RECURSE
  "CMakeFiles/bench_semantic_closure.dir/bench_semantic_closure.cc.o"
  "CMakeFiles/bench_semantic_closure.dir/bench_semantic_closure.cc.o.d"
  "bench_semantic_closure"
  "bench_semantic_closure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_semantic_closure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
