file(REMOVE_RECURSE
  "CMakeFiles/bench_attack_realization.dir/bench_attack_realization.cc.o"
  "CMakeFiles/bench_attack_realization.dir/bench_attack_realization.cc.o.d"
  "bench_attack_realization"
  "bench_attack_realization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attack_realization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
