# Empty compiler generated dependencies file for bench_attack_realization.
# This may be replaced when dependencies are built.
