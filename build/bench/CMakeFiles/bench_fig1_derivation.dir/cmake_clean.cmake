file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_derivation.dir/bench_fig1_derivation.cc.o"
  "CMakeFiles/bench_fig1_derivation.dir/bench_fig1_derivation.cc.o.d"
  "bench_fig1_derivation"
  "bench_fig1_derivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_derivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
