# Empty dependencies file for bench_fig1_derivation.
# This may be replaced when dependencies are built.
