file(REMOVE_RECURSE
  "CMakeFiles/bench_pessimism.dir/bench_pessimism.cc.o"
  "CMakeFiles/bench_pessimism.dir/bench_pessimism.cc.o.d"
  "bench_pessimism"
  "bench_pessimism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pessimism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
