# Empty dependencies file for bench_soundness_oracle.
# This may be replaced when dependencies are built.
