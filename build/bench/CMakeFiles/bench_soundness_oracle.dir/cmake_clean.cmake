file(REMOVE_RECURSE
  "CMakeFiles/bench_soundness_oracle.dir/bench_soundness_oracle.cc.o"
  "CMakeFiles/bench_soundness_oracle.dir/bench_soundness_oracle.cc.o.d"
  "bench_soundness_oracle"
  "bench_soundness_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_soundness_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
