# Empty dependencies file for bench_closure_scaling.
# This may be replaced when dependencies are built.
