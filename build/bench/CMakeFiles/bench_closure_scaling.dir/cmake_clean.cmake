file(REMOVE_RECURSE
  "CMakeFiles/bench_closure_scaling.dir/bench_closure_scaling.cc.o"
  "CMakeFiles/bench_closure_scaling.dir/bench_closure_scaling.cc.o.d"
  "bench_closure_scaling"
  "bench_closure_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_closure_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
