file(REMOVE_RECURSE
  "CMakeFiles/bench_static_closure.dir/bench_static_closure.cc.o"
  "CMakeFiles/bench_static_closure.dir/bench_static_closure.cc.o.d"
  "bench_static_closure"
  "bench_static_closure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_static_closure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
