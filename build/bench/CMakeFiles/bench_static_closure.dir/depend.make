# Empty dependencies file for bench_static_closure.
# This may be replaced when dependencies are built.
