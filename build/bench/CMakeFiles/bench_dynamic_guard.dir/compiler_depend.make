# Empty compiler generated dependencies file for bench_dynamic_guard.
# This may be replaced when dependencies are built.
