file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamic_guard.dir/bench_dynamic_guard.cc.o"
  "CMakeFiles/bench_dynamic_guard.dir/bench_dynamic_guard.cc.o.d"
  "bench_dynamic_guard"
  "bench_dynamic_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
