# Empty dependencies file for oodbsec_bench_util.
# This may be replaced when dependencies are built.
