file(REMOVE_RECURSE
  "CMakeFiles/oodbsec_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/oodbsec_bench_util.dir/bench_util.cc.o.d"
  "liboodbsec_bench_util.a"
  "liboodbsec_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oodbsec_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
