file(REMOVE_RECURSE
  "liboodbsec_bench_util.a"
)
