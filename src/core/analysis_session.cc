#include "core/analysis_session.h"

#include <utility>

#include "common/strings.h"
#include "snapshot/snapshot_store.h"

namespace oodbsec::core {

AnalysisSession::AnalysisSession(const schema::Schema& schema,
                                 const schema::UserRegistry& users,
                                 SessionOptions options)
    : schema_(schema),
      users_(users),
      options_(options),
      obs_(std::make_unique<obs::Observability>()) {
  if (options_.threads < 1) options_.threads = 1;
  obs_->tracer.set_enabled(options_.tracing);
  // Resolve the deprecated directory shim once; layers that borrow this
  // session (the service's cache) read the resolved store back out of
  // options() and share it — one page cache, one set of counters.
  options_.snapshot_store = snapshot::ResolveStore(
      std::move(options_.snapshot_store), options_.snapshot_dir);
  recheck_cache_ = std::make_unique<ClosureCache>(
      schema_, options_.closure, options_.cache_capacity, obs_.get(),
      options_.snapshot_store);
}

common::Result<std::unique_ptr<UserAnalysis>> AnalysisSession::BuildUser(
    const schema::User& user) const {
  return UserAnalysis::Build(schema_, user, options_.closure, obs_.get());
}

common::Result<AnalysisReport> AnalysisSession::Check(
    const Requirement& requirement) {
  obs::ScopedSpan span(&obs_->tracer, "check-requirement");
  obs_->metrics.counter("session.checks")->Increment();
  const schema::User* user = FindUser(requirement.user);
  if (user == nullptr) {
    return common::NotFoundError(
        common::StrCat("unknown user '", requirement.user, "'"));
  }
  OODBSEC_ASSIGN_OR_RETURN(std::unique_ptr<UserAnalysis> analysis,
                           BuildUser(*user));
  return CheckAgainstClosure(analysis->set(), analysis->closure(),
                             requirement, obs_.get());
}

const schema::User* AnalysisSession::FindUser(std::string_view name) const {
  auto it = overlay_users_.find(name);
  if (it != overlay_users_.end()) return &it->second;
  return users_.Find(name);
}

common::Status AnalysisSession::AddCapability(std::string_view user,
                                              std::string function) {
  const schema::User* current = FindUser(user);
  if (current == nullptr) {
    return common::NotFoundError(
        common::StrCat("unknown user '", user, "'"));
  }
  if (!schema_.ResolveCallable(function).ok()) {
    return common::NotFoundError(common::StrCat(
        "'", function, "' names no access or special function"));
  }
  obs_->metrics.counter("session.grants")->Increment();
  auto [it, inserted] =
      overlay_users_.try_emplace(std::string(user), *current);
  it->second.Grant(std::move(function));
  return common::Status();
}

common::Status AnalysisSession::RemoveCapability(std::string_view user,
                                                 std::string_view function) {
  const schema::User* current = FindUser(user);
  if (current == nullptr) {
    return common::NotFoundError(
        common::StrCat("unknown user '", user, "'"));
  }
  if (!current->MayInvoke(function)) {
    return common::FailedPreconditionError(common::StrCat(
        "user '", user, "' does not hold '", function, "'"));
  }
  obs_->metrics.counter("session.revokes")->Increment();
  std::vector<std::string> old_roots = AnalysisRoots(schema_, *current);
  auto [it, inserted] =
      overlay_users_.try_emplace(std::string(user), *current);
  it->second.Revoke(function);
  // Retraction fast path: shrink the user's cached closure in place
  // (copy-on-write — the superset entry stays immutable) instead of
  // leaving the next recheck to warm-start from some smaller subset.
  // The fallback counter makes the miss rate observable: it trips when
  // the user's pre-revoke closure was never built or already evicted.
  std::vector<std::string> new_roots = AnalysisRoots(schema_, it->second);
  if (recheck_cache_->RetractEntry(old_roots, new_roots) != nullptr) {
    obs_->metrics.counter("session.retractions_fast")->Increment();
  } else {
    obs_->metrics.counter("session.retractions_fallback")->Increment();
  }
  return common::Status();
}

common::Result<std::vector<AnalysisReport>>
AnalysisSession::RecheckRequirements(
    const std::vector<Requirement>& requirements) {
  obs::ScopedSpan span(&obs_->tracer, "session.recheck");
  std::vector<AnalysisReport> reports;
  reports.reserve(requirements.size());
  for (const Requirement& requirement : requirements) {
    obs_->metrics.counter("session.rechecks")->Increment();
    const schema::User* user = FindUser(requirement.user);
    if (user == nullptr) {
      return common::NotFoundError(
          common::StrCat("unknown user '", requirement.user, "'"));
    }
    std::vector<std::string> roots = AnalysisRoots(schema_, *user);
    OODBSEC_ASSIGN_OR_RETURN(std::shared_ptr<const CachedAnalysis> entry,
                             recheck_cache_->GetOrBuild(roots));
    OODBSEC_ASSIGN_OR_RETURN(
        AnalysisReport report,
        CheckAgainstClosure(*entry->set, *entry->closure, requirement,
                            obs_.get(), span.id()));
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace oodbsec::core
