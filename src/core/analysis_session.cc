#include "core/analysis_session.h"

#include "common/strings.h"

namespace oodbsec::core {

AnalysisSession::AnalysisSession(const schema::Schema& schema,
                                 const schema::UserRegistry& users,
                                 SessionOptions options)
    : schema_(schema),
      users_(users),
      options_(options),
      obs_(std::make_unique<obs::Observability>()) {
  if (options_.threads < 1) options_.threads = 1;
  obs_->tracer.set_enabled(options_.tracing);
}

common::Result<std::unique_ptr<UserAnalysis>> AnalysisSession::BuildUser(
    const schema::User& user) const {
  return UserAnalysis::Build(schema_, user, options_.closure, obs_.get());
}

common::Result<AnalysisReport> AnalysisSession::Check(
    const Requirement& requirement) {
  obs::ScopedSpan span(&obs_->tracer, "check-requirement");
  obs_->metrics.counter("session.checks")->Increment();
  const schema::User* user = users_.Find(requirement.user);
  if (user == nullptr) {
    return common::NotFoundError(
        common::StrCat("unknown user '", requirement.user, "'"));
  }
  OODBSEC_ASSIGN_OR_RETURN(std::unique_ptr<UserAnalysis> analysis,
                           BuildUser(*user));
  return CheckAgainstClosure(analysis->set(), analysis->closure(),
                             requirement, obs_.get());
}

}  // namespace oodbsec::core
