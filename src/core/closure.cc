#include "core/closure.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"

namespace oodbsec::core {

using unfold::Node;
using unfold::NodeKind;

namespace {

// Maximum distinct (num, dir) origins kept per class. Every rule guard
// excludes at most one origin and the pi-join needs two, so four keeps
// the system complete while bounding the state (see closure.h).
constexpr size_t kOriginCap = 4;

}  // namespace

std::string Origin::ToString() const {
  return common::StrCat("(", num, ",", std::string(1, dir), ")");
}

Closure::Closure(const unfold::UnfoldedSet& set, ClosureOptions options)
    : set_(&set), options_(options) {
  int n = set.node_count();
  uf_parent_.resize(n + 1);
  uf_rank_.assign(n + 1, 0);
  eq_edges_.resize(n + 1);
  ta_.assign(n + 1, kNoFact);
  pa_.assign(n + 1, kNoFact);
  for (int i = 1; i <= n; ++i) {
    uf_parent_[i] = i;
    members_[i] = {i};
  }
  // Cross-reference tables.
  for (int i = 1; i <= n; ++i) {
    const Node* node = set.node(i);
    if (node->kind == NodeKind::kBasicCall) {
      touching_calls_[Find(node->id)].insert(node);
      for (const Node* child : node->children) {
        touching_calls_[Find(child->id)].insert(node);
      }
    }
    if (node->kind == NodeKind::kReadAttr) {
      obj_reads_[Find(node->object_child()->id)].push_back(node);
    }
    if (node->kind == NodeKind::kWriteAttr) {
      obj_writes_[Find(node->object_child()->id)].push_back(node);
    }
  }
  for (const unfold::Binder& binder : set.binders()) {
    if (binder.bound_expr != nullptr) {
      binder_of_bound_expr_[binder.bound_expr->id] = binder.id;
    }
  }

  Seed();
  Run();
}

// ---------------------------------------------------------------------
// Union-find with proof forest.

int Closure::Find(int id) const {
  int root = id;
  while (uf_parent_[root] != root) root = uf_parent_[root];
  while (uf_parent_[id] != root) {
    int next = uf_parent_[id];
    uf_parent_[id] = root;
    id = next;
  }
  return root;
}

void Closure::ExplainEquality(int id1, int id2,
                              std::vector<FactId>& out) const {
  if (id1 == id2) return;
  // BFS through the proof forest (paths are unique).
  std::vector<int> prev_node(eq_edges_.size(), 0);
  std::vector<FactId> prev_edge(eq_edges_.size(), kNoFact);
  std::vector<int> queue = {id1};
  prev_node[id1] = id1;
  for (size_t head = 0; head < queue.size(); ++head) {
    int current = queue[head];
    if (current == id2) break;
    for (const auto& [next, edge] : eq_edges_[current]) {
      if (prev_node[next] != 0) continue;
      prev_node[next] = current;
      prev_edge[next] = edge;
      queue.push_back(next);
    }
  }
  assert(prev_node[id2] != 0 && "equality explanation requested for "
                                "non-equal occurrences");
  for (int at = id2; at != id1; at = prev_node[at]) {
    out.push_back(prev_edge[at]);
  }
}

// ---------------------------------------------------------------------
// Fact derivation.

FactId Closure::Log(Fact fact, std::string rule,
                    std::vector<FactId> premises) {
  FactId id = static_cast<FactId>(steps_.size());
  steps_.push_back({fact, std::move(rule), std::move(premises)});
  worklist_.push_back(id);
  return id;
}

FactId Closure::AddTa(int id, std::string rule, std::vector<FactId> premises) {
  if (ta_[id] != kNoFact) return ta_[id];
  FactId fact = Log({Fact::Kind::kTa, id, 0, {}}, std::move(rule),
                    std::move(premises));
  ta_[id] = fact;
  return fact;
}

FactId Closure::AddPa(int id, std::string rule, std::vector<FactId> premises) {
  if (pa_[id] != kNoFact) return pa_[id];
  FactId fact = Log({Fact::Kind::kPa, id, 0, {}}, std::move(rule),
                    std::move(premises));
  pa_[id] = fact;
  return fact;
}

FactId Closure::AddTi(int id, Origin origin, std::string rule,
                      std::vector<FactId> premises) {
  auto& origins = ti_[Find(id)];
  auto it = origins.find(origin);
  if (it != origins.end()) return it->second;
  if (origins.size() >= kOriginCap) return kNoFact;
  FactId fact = Log({Fact::Kind::kTi, id, 0, origin}, std::move(rule),
                    std::move(premises));
  origins.emplace(origin, fact);
  return fact;
}

FactId Closure::AddPi(int id, Origin origin, std::string rule,
                      std::vector<FactId> premises) {
  auto& origins = pi_[Find(id)];
  auto it = origins.find(origin);
  if (it != origins.end()) return it->second;
  if (origins.size() >= kOriginCap) return kNoFact;
  FactId fact = Log({Fact::Kind::kPi, id, 0, origin}, std::move(rule),
                    std::move(premises));
  origins.emplace(origin, fact);
  return fact;
}

FactId Closure::AddPiStar(int id1, int id2, Origin origin, std::string rule,
                          std::vector<FactId> premises) {
  std::pair<int, int> key = {Find(id1), Find(id2)};
  auto& origins = pistar_[key];
  auto it = origins.find(origin);
  if (it != origins.end()) return it->second;
  if (origins.size() >= kOriginCap) return kNoFact;
  FactId fact = Log({Fact::Kind::kPiStar, id1, id2, origin}, std::move(rule),
                    std::move(premises));
  origins.emplace(origin, fact);
  pistar_touching_[key.first].insert(key);
  pistar_touching_[key.second].insert(key);
  return fact;
}

FactId Closure::AddEq(int id1, int id2, std::string rule,
                      std::vector<FactId> premises) {
  if (Find(id1) == Find(id2)) return kNoFact;  // already known
  return Log({Fact::Kind::kEq, id1, id2, {}}, std::move(rule),
             std::move(premises));
}

// ---------------------------------------------------------------------
// Seeding: the axioms of Table 2.

void Closure::Seed() {
  const unfold::UnfoldedSet& set = *set_;

  // Axioms for outer-most argument variables: ta[x] and ti[x, l, +].
  for (const unfold::Binder& binder : set.binders()) {
    if (!binder.is_root_arg) continue;
    for (const Node* occurrence : binder.occurrences) {
      AddTa(occurrence->id, "axiom: outer-most argument (alterable)", {});
      AddTi(occurrence->id, {occurrence->id, '+'},
            "axiom: outer-most argument (known)", {});
    }
  }

  // Axioms for constants and observed results.
  for (int i = 1; i <= set.node_count(); ++i) {
    const Node* node = set.node(i);
    if (node->kind == NodeKind::kConstant) {
      AddTi(node->id, {node->id, '+'}, "axiom: constant", {});
    }
  }
  for (const unfold::Root& root : set.roots()) {
    AddTi(root.body->id, {0, '-'}, "axiom: observed result", {});
  }

  // Equality axioms: occurrences of the same variable, let bindings, and
  // let bodies.
  for (const unfold::Binder& binder : set.binders()) {
    for (size_t i = 1; i < binder.occurrences.size(); ++i) {
      AddEq(binder.occurrences[0]->id, binder.occurrences[i]->id,
            "axiom for =: same variable", {});
    }
    if (binder.bound_expr != nullptr && !binder.occurrences.empty()) {
      AddEq(binder.occurrences[0]->id, binder.bound_expr->id,
            "axiom for =: let binding", {});
    }
  }
  for (int i = 1; i <= set.node_count(); ++i) {
    const Node* node = set.node(i);
    if (node->is_let()) {
      AddEq(node->body()->id, node->id, "axiom for =: let value", {});
    }
  }

  // The pessimistic axiom: outer-most argument variables of the same
  // type may be given the same value (paper Table 2, rule 3).
  if (options_.same_type_argument_equality) {
    std::map<const types::Type*, const Node*> representative;
    for (const unfold::Binder& binder : set.binders()) {
      if (!binder.is_root_arg || binder.occurrences.empty()) continue;
      const Node* occurrence = binder.occurrences[0];
      auto [it, inserted] =
          representative.emplace(binder.type, occurrence);
      if (!inserted) {
        AddEq(it->second->id, occurrence->id,
              "axiom for =: outer-most arguments of the same type", {});
      }
    }
  }

  // Premise-free basic-function rules (e.g. "abs: non-negative image")
  // and rules whose premises are all axioms.
  if (options_.basic_function_rules) {
    for (int i = 1; i <= set.node_count(); ++i) {
      if (set.node(i)->kind == NodeKind::kBasicCall) {
        ReevalBasicCall(set.node(i));
      }
    }
  }
}

void Closure::Run() {
  while (!worklist_.empty()) {
    FactId fact_id = worklist_.front();
    worklist_.pop_front();
    Process(fact_id);
  }
}

void Closure::Process(FactId fact_id) {
  // Copy: steps_ may reallocate while rules fire.
  Fact fact = steps_[fact_id].fact;
  switch (fact.kind) {
    case Fact::Kind::kTa:
      ProcessTa(fact, fact_id);
      break;
    case Fact::Kind::kPa:
      ProcessPa(fact, fact_id);
      break;
    case Fact::Kind::kEq:
      ProcessEqMerge(fact, fact_id);
      break;
    case Fact::Kind::kTi:
      ProcessTi(fact, fact_id);
      break;
    case Fact::Kind::kPi:
      ProcessPi(fact, fact_id);
      break;
    case Fact::Kind::kPiStar:
      ProcessPiStar(fact, fact_id);
      break;
  }
}

// ---------------------------------------------------------------------
// Alterability rules (Table 2, rule 1).

void Closure::FireWriteValueRules(const Node* write, FactId alter_fact,
                                  const Node* read) {
  // Premises: the alterability of the written value plus the equality of
  // the write and read objects.
  const Node* value = write->value_child();
  std::vector<FactId> premises = {alter_fact};
  ExplainEquality(write->object_child()->id, read->object_child()->id,
                  premises);
  if (ta_[value->id] != kNoFact) {
    AddTa(read->id, "alterability based on = (written value, total)",
          premises);
  } else {
    AddPa(read->id, "alterability based on = (written value)", premises);
  }
}

void Closure::FireLetAndWriteRulesForAlterability(int id, bool total,
                                                  FactId fact_id) {
  const Node* node = set_->node(id);
  const Node* parent = node->parent;

  // Written value -> reads of the same attribute on a provably equal
  // object.
  if (options_.write_read_equality && parent != nullptr &&
      parent->kind == NodeKind::kWriteAttr && node->child_index == 1) {
    for (const Node* read : set_->reads(parent->attribute)) {
      if (Find(parent->object_child()->id) ==
          Find(read->object_child()->id)) {
        FireWriteValueRules(parent, fact_id, read);
      }
    }
  }

  // Let rules: a bound expression's alterability reaches every
  // occurrence of the variable; a body's reaches the let value.
  auto binder_it = binder_of_bound_expr_.find(id);
  if (binder_it != binder_of_bound_expr_.end()) {
    for (const Node* occurrence :
         set_->binder(binder_it->second).occurrences) {
      if (total) {
        AddTa(occurrence->id, "let: bound expression to variable",
              {fact_id});
      } else {
        AddPa(occurrence->id, "let: bound expression to variable",
              {fact_id});
      }
    }
  }
  if (parent != nullptr && parent->is_let() && parent->body() == node) {
    if (total) {
      AddTa(parent->id, "let: body to let value", {fact_id});
    } else {
      AddPa(parent->id, "let: body to let value", {fact_id});
    }
  }
}

void Closure::ProcessTa(const Fact& fact, FactId fact_id) {
  AddPa(fact.a, "ta => pa", {fact_id});
  FireLetAndWriteRulesForAlterability(fact.a, /*total=*/true, fact_id);
  const Node* parent = set_->node(fact.a)->parent;
  if (parent != nullptr && parent->kind == NodeKind::kBasicCall &&
      options_.basic_function_rules) {
    ReevalBasicCall(parent);
  }
}

void Closure::ProcessPa(const Fact& fact, FactId fact_id) {
  const Node* node = set_->node(fact.a);
  const Node* parent = node->parent;

  if (parent != nullptr && node->child_index == 0) {
    if (parent->kind == NodeKind::kReadAttr) {
      // Altering which object is read alters the read result (see
      // ClosureOptions::read_object_total_alterability for the
      // conclusion's strength).
      if (options_.read_object_total_alterability) {
        AddTa(parent->id, "alterability via read object", {fact_id});
      } else {
        AddPa(parent->id, "alterability via read object", {fact_id});
      }
    }
    if (parent->kind == NodeKind::kWriteAttr &&
        options_.write_read_equality) {
      // Altering which object is written lets the user hit the object of
      // any read of the attribute.
      for (const Node* read : set_->reads(parent->attribute)) {
        AddTa(read->id, "alterability via write object", {fact_id});
      }
    }
  }

  FireLetAndWriteRulesForAlterability(fact.a, /*total=*/false, fact_id);

  if (parent != nullptr && parent->kind == NodeKind::kBasicCall &&
      options_.basic_function_rules) {
    ReevalBasicCall(parent);
  }
}

// ---------------------------------------------------------------------
// Equality merges (Table 2, rules 2 & 3).

void Closure::ProcessEqMerge(const Fact& fact, FactId fact_id) {
  int ra = Find(fact.a);
  int rb = Find(fact.b);
  if (ra == rb) return;  // derived redundantly while queued

  // Proof forest edge between the original endpoints.
  eq_edges_[fact.a].emplace_back(fact.b, fact_id);
  eq_edges_[fact.b].emplace_back(fact.a, fact_id);

  // Read/read and write/read equality rules, fired across the two halves
  // before the merge (within-half pairs were handled earlier).
  if (options_.write_read_equality) {
    auto cross = [&](int obj_side, int read_side) {
      for (const Node* write : obj_writes_[obj_side]) {
        for (const Node* read : obj_reads_[read_side]) {
          if (write->attribute != read->attribute) continue;
          // =[e1,e2] -> =[e3, r_att(e2)] where w_att(e1, e3): the written
          // value equals reads of the attribute on an equal object.
          std::vector<FactId> premises;
          ExplainEquality(write->object_child()->id,
                          read->object_child()->id, premises);
          // The merge is in progress: the chain runs through this fact.
          premises.push_back(fact_id);
          std::sort(premises.begin(), premises.end());
          premises.erase(std::unique(premises.begin(), premises.end()),
                         premises.end());
          AddEq(write->value_child()->id, read->id,
                "=: written value equals read", premises);
          // Alterability of the written value transfers to the read.
          FactId alter = ta_[write->value_child()->id] != kNoFact
                             ? ta_[write->value_child()->id]
                             : pa_[write->value_child()->id];
          if (alter != kNoFact) FireWriteValueRules(write, alter, read);
        }
      }
      for (const Node* read1 : obj_reads_[obj_side]) {
        for (const Node* read2 : obj_reads_[read_side]) {
          if (read1 == read2 || read1->attribute != read2->attribute) {
            continue;
          }
          AddEq(read1->id, read2->id, "=: reads of equal objects",
                {fact_id});
        }
      }
    };
    cross(ra, rb);
    cross(rb, ra);
  }

  // Union by rank.
  int root = ra;
  int absorbed = rb;
  if (uf_rank_[root] < uf_rank_[absorbed]) std::swap(root, absorbed);
  if (uf_rank_[root] == uf_rank_[absorbed]) ++uf_rank_[root];
  uf_parent_[absorbed] = root;

  // Merge per-class tables.
  auto merge_members = [&](auto& table) {
    auto it = table.find(absorbed);
    if (it == table.end()) return;
    auto& target = table[root];
    target.insert(target.end(), it->second.begin(), it->second.end());
    table.erase(it);
  };
  merge_members(members_);
  merge_members(obj_reads_);
  merge_members(obj_writes_);
  {
    auto it = touching_calls_.find(absorbed);
    if (it != touching_calls_.end()) {
      touching_calls_[root].insert(it->second.begin(), it->second.end());
      touching_calls_.erase(it);
    }
  }

  // Merge inferability origin sets ("=: inferability propagation" is
  // materialized by class-level storage).
  auto merge_origins = [&](std::map<int, std::map<Origin, FactId>>& table) {
    auto it = table.find(absorbed);
    if (it == table.end()) return;
    auto& target = table[root];
    for (const auto& [origin, fid] : it->second) {
      if (target.size() >= kOriginCap) break;
      target.emplace(origin, fid);
    }
    table.erase(it);
  };
  merge_origins(ti_);
  merge_origins(pi_);

  // Re-key pi* pairs that touch the absorbed class.
  {
    auto touching_it = pistar_touching_.find(absorbed);
    if (touching_it != pistar_touching_.end()) {
      std::set<std::pair<int, int>> keys = std::move(touching_it->second);
      pistar_touching_.erase(touching_it);
      for (const std::pair<int, int>& key : keys) {
        auto pair_it = pistar_.find(key);
        if (pair_it == pistar_.end()) continue;
        std::map<Origin, FactId> origins = std::move(pair_it->second);
        pistar_.erase(pair_it);
        pistar_touching_[key.first].erase(key);
        pistar_touching_[key.second].erase(key);
        std::pair<int, int> new_key = {
            key.first == absorbed ? root : key.first,
            key.second == absorbed ? root : key.second};
        auto& target = pistar_[new_key];
        for (const auto& [origin, fid] : origins) {
          if (target.size() >= kOriginCap) break;
          target.emplace(origin, fid);
        }
        pistar_touching_[new_key.first].insert(new_key);
        pistar_touching_[new_key.second].insert(new_key);
      }
    }
  }

  // =[e1,e2] -> pi*[(e1,e2), 0, +]: equal expressions form a known pair.
  AddPiStar(fact.a, fact.b, {0, '+'}, "=: pair of equals", {fact_id});

  // The merged class may have gained inferability origins (pi-join) and
  // new rule opportunities.
  if (options_.pi_join_to_ti) {
    auto pi_it = pi_.find(root);
    if (pi_it != pi_.end() && pi_it->second.size() >= 2) {
      auto first = pi_it->second.begin();
      auto second = std::next(first);
      AddTi(fact.a, first->first, "join of partial inferabilities",
            {first->second, second->second});
    }
  }
  if (options_.basic_function_rules) ReevalCallsTouching(root);
}

// ---------------------------------------------------------------------
// Inferability rules (Table 2, rule 2 + basic-function rules).

void Closure::ProcessTi(const Fact& fact, FactId fact_id) {
  AddPi(fact.a, fact.origin, "ti => pi", {fact_id});
  if (options_.basic_function_rules) ReevalCallsTouching(Find(fact.a));
}

void Closure::ProcessPi(const Fact& fact, FactId fact_id) {
  if (options_.pi_join_to_ti) {
    const auto& origins = pi_[Find(fact.a)];
    if (origins.size() >= 2) {
      // pi[e,n1,d1], pi[e,n2,d2] -> ti[e,n1,d1] for (n1,d1) != (n2,d2):
      // two differently-obtained candidate sets may intersect to a
      // single value (pessimistic assumption 2 of §4.1).
      for (const auto& [origin, other_fact] : origins) {
        if (origin == fact.origin) continue;
        AddTi(fact.a, fact.origin, "join of partial inferabilities",
              {fact_id, other_fact});
        AddTi(fact.a, origin, "join of partial inferabilities",
              {other_fact, fact_id});
        break;
      }
    }
  }
  if (options_.basic_function_rules) ReevalCallsTouching(Find(fact.a));
}

void Closure::ProcessPiStar(const Fact& fact, FactId fact_id) {
  // pi*[(e1,e2)] -> pi*[(e2,e1)] (transposing the set is free).
  AddPiStar(fact.b, fact.a, fact.origin, "pi*: swap", {fact_id});

  // Join: pi*[(ea,eb)], pi*[(eb,ec)] -> pi*[(ea,ec)].
  int ra = Find(fact.a);
  int rb = Find(fact.b);
  std::set<std::pair<int, int>> keys = pistar_touching_[rb];
  for (const std::pair<int, int>& key : keys) {
    if (key.first != rb) continue;
    auto it = pistar_.find(key);
    if (it == pistar_.end() || it->second.empty()) continue;
    int rc = key.second;
    if (rc == ra) continue;
    // Conclusion keeps the first pair's provenance (paper Table 2).
    AddPiStar(fact.a, members_[rc].front(), fact.origin, "pi*: join",
              {fact_id, it->second.begin()->second});
  }
  std::set<std::pair<int, int>> left_keys = pistar_touching_[ra];
  for (const std::pair<int, int>& key : left_keys) {
    if (key.second != ra) continue;
    auto it = pistar_.find(key);
    if (it == pistar_.end() || it->second.empty()) continue;
    int rc = key.first;
    if (rc == rb) continue;
    AddPiStar(members_[rc].front(), fact.b, it->second.begin()->first,
              "pi*: join", {it->second.begin()->second, fact_id});
  }

  if (options_.basic_function_rules) {
    ReevalCallsTouching(ra);
    if (rb != ra) ReevalCallsTouching(rb);
  }
}

// ---------------------------------------------------------------------
// Basic-function rules (§4.1).

bool Closure::PickOrigin(const std::map<Origin, FactId>& origins,
                         const Origin* excluded, Origin& origin_out,
                         FactId& fact_out) {
  for (const auto& [origin, fact] : origins) {
    if (excluded != nullptr && origin == *excluded) continue;
    origin_out = origin;
    fact_out = fact;
    return true;
  }
  return false;
}

void Closure::ReevalBasicCall(const Node* call) {
  const std::vector<BasicRule>& rules = RulesFor(*call->basic);
  if (rules.empty()) return;

  auto id_at = [&](int pos) {
    return pos == kResultPos ? call->id : call->children[pos]->id;
  };
  // The feedback guards of §4.1: an argument premise must not originate
  // from this call's result rules, a result-involving premise must not
  // originate from this call's argument rules.
  Origin arg_guard = {call->id, '-'};
  Origin result_guard = {call->id, '+'};

  for (const BasicRule& rule : rules) {
    std::vector<FactId> premises;
    bool ok = true;
    for (const RuleAtom& atom : rule.premises) {
      int id = id_at(atom.pos);
      switch (atom.pred) {
        case RuleAtom::Pred::kTa:
          if (ta_[id] == kNoFact) ok = false;
          else premises.push_back(ta_[id]);
          break;
        case RuleAtom::Pred::kPa:
          if (pa_[id] == kNoFact) ok = false;
          else premises.push_back(pa_[id]);
          break;
        case RuleAtom::Pred::kTi:
        case RuleAtom::Pred::kPi: {
          const Origin* excluded =
              atom.pos == kResultPos ? &result_guard : &arg_guard;
          auto table_it = (atom.pred == RuleAtom::Pred::kTi ? ti_ : pi_)
                              .find(Find(id));
          Origin origin;
          FactId fact;
          if (table_it == (atom.pred == RuleAtom::Pred::kTi ? ti_ : pi_)
                              .end() ||
              !PickOrigin(table_it->second, excluded, origin, fact)) {
            ok = false;
          } else {
            premises.push_back(fact);
            // The stored fact may live on another member of id's
            // equality class; include the =-chain in the justification.
            int stored_at = steps_[fact].fact.a;
            if (stored_at != id) ExplainEquality(stored_at, id, premises);
          }
          break;
        }
        case RuleAtom::Pred::kPiStar: {
          bool involves_result =
              atom.pos == kResultPos || atom.pos2 == kResultPos;
          const Origin* excluded =
              involves_result ? &result_guard : &arg_guard;
          auto it = pistar_.find({Find(id), Find(id_at(atom.pos2))});
          Origin origin;
          FactId fact;
          if (it == pistar_.end() ||
              !PickOrigin(it->second, excluded, origin, fact)) {
            ok = false;
          } else {
            premises.push_back(fact);
          }
          break;
        }
      }
      if (!ok) break;
    }
    if (!ok) continue;

    bool premise_involves_result = false;
    for (const RuleAtom& atom : rule.premises) {
      if (atom.pos == kResultPos ||
          (atom.pred == RuleAtom::Pred::kPiStar &&
           atom.pos2 == kResultPos)) {
        premise_involves_result = true;
      }
    }
    char dir = premise_involves_result ? '-' : '+';

    const RuleAtom& conclusion = rule.conclusion;
    switch (conclusion.pred) {
      case RuleAtom::Pred::kTa:
        AddTa(id_at(conclusion.pos), rule.label, premises);
        break;
      case RuleAtom::Pred::kPa:
        AddPa(id_at(conclusion.pos), rule.label, premises);
        break;
      case RuleAtom::Pred::kTi:
        AddTi(id_at(conclusion.pos),
              {call->id, conclusion.pos == kResultPos ? '+' : '-'},
              rule.label, premises);
        break;
      case RuleAtom::Pred::kPi:
        AddPi(id_at(conclusion.pos),
              {call->id, conclusion.pos == kResultPos ? '+' : '-'},
              rule.label, premises);
        break;
      case RuleAtom::Pred::kPiStar:
        AddPiStar(id_at(conclusion.pos), id_at(conclusion.pos2),
                  {call->id, dir}, rule.label, premises);
        break;
    }
  }
}

void Closure::ReevalCallsTouching(int rep) {
  auto it = touching_calls_.find(rep);
  if (it == touching_calls_.end()) return;
  // Copy: merges triggered by derived equalities may mutate the table.
  std::vector<const Node*> calls(it->second.begin(), it->second.end());
  for (const Node* call : calls) ReevalBasicCall(call);
}

// ---------------------------------------------------------------------
// Queries and rendering.

bool Closure::HasTi(int id) const {
  auto it = ti_.find(Find(id));
  return it != ti_.end() && !it->second.empty();
}

bool Closure::HasPi(int id) const {
  if (HasTi(id)) return true;
  auto it = pi_.find(Find(id));
  return it != pi_.end() && !it->second.empty();
}

bool Closure::AreEqual(int id1, int id2) const {
  return Find(id1) == Find(id2);
}

FactId Closure::TiFact(int id) const {
  auto it = ti_.find(Find(id));
  if (it == ti_.end() || it->second.empty()) return kNoFact;
  return it->second.begin()->second;
}

FactId Closure::PiFact(int id) const {
  auto it = pi_.find(Find(id));
  if (it != pi_.end() && !it->second.empty()) {
    return it->second.begin()->second;
  }
  return TiFact(id);
}

std::string Closure::FactToString(const Fact& fact) const {
  switch (fact.kind) {
    case Fact::Kind::kTa:
      return common::StrCat("ta[", set_->ShortLabel(fact.a), "]");
    case Fact::Kind::kPa:
      return common::StrCat("pa[", set_->ShortLabel(fact.a), "]");
    case Fact::Kind::kTi:
      return common::StrCat("ti[", set_->ShortLabel(fact.a), ", ",
                            fact.origin.ToString(), "]");
    case Fact::Kind::kPi:
      return common::StrCat("pi[", set_->ShortLabel(fact.a), ", ",
                            fact.origin.ToString(), "]");
    case Fact::Kind::kPiStar:
      return common::StrCat("pi*[(", set_->ShortLabel(fact.a), ", ",
                            set_->ShortLabel(fact.b), "), ",
                            fact.origin.ToString(), "]");
    case Fact::Kind::kEq:
      return common::StrCat("=[", set_->ShortLabel(fact.a), ", ",
                            set_->ShortLabel(fact.b), "]");
  }
  return "?";
}

std::string Closure::ExplainFact(FactId fact) const {
  return ExplainFacts({fact});
}

std::string Closure::ExplainFacts(const std::vector<FactId>& facts) const {
  // Collect the supporting sub-derivation, then print in derivation
  // order (premises always precede conclusions because FactIds grow).
  std::set<FactId> needed;
  std::vector<FactId> stack(facts.begin(), facts.end());
  while (!stack.empty()) {
    FactId current = stack.back();
    stack.pop_back();
    if (current == kNoFact || needed.count(current) > 0) continue;
    needed.insert(current);
    for (FactId premise : steps_[current].premises) {
      stack.push_back(premise);
    }
  }
  std::string out;
  for (FactId id : needed) {  // std::set iterates in increasing order
    const DerivationStep& step = steps_[id];
    out += FactToString(step.fact);
    out += "   (";
    out += step.rule;
    out += ")\n";
  }
  return out;
}

}  // namespace oodbsec::core
