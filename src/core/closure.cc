#include "core/closure.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <map>
#include <mutex>
#include <thread>

#include "common/strings.h"
#include "core/thread_pool.h"

namespace oodbsec::core {

using unfold::Node;
using unfold::NodeKind;

namespace {

// Round-crew sizing. Rounds below the frontier threshold run inline —
// dispatch latency would swamp the work — and parallel rounds split
// into at most kChunksPerThread chunks per worker of at least
// kMinChunkFacts facts each, so the atomic chunk claim amortizes while
// stragglers can still be rebalanced. None of these affect the output:
// candidates merge in frontier order whatever the chunking.
constexpr size_t kParallelFrontierThreshold = 256;
constexpr size_t kMinChunkFacts = 64;
constexpr size_t kChunksPerThread = 4;
constexpr int kMaxClosureThreads = 64;

int ResolveClosureThreads(int requested) {
  if (requested == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    requested = hw == 0 ? 1 : static_cast<int>(hw);
  }
  if (requested < 1) requested = 1;
  if (requested > kMaxClosureThreads) requested = kMaxClosureThreads;
  return requested;
}

// Sorted-unique insert/erase for the small per-rep key lists that
// replace std::set in the hot tables.
void InsertSortedUnique(std::vector<std::pair<int, int>>& keys,
                        std::pair<int, int> key) {
  auto it = std::lower_bound(keys.begin(), keys.end(), key);
  if (it == keys.end() || *it != key) keys.insert(it, key);
}

void EraseSorted(std::vector<std::pair<int, int>>& keys,
                 std::pair<int, int> key) {
  auto it = std::lower_bound(keys.begin(), keys.end(), key);
  if (it != keys.end() && *it == key) keys.erase(it);
}

void InsertSortedUniqueById(std::vector<const Node*>& nodes,
                            const Node* node) {
  auto it = std::lower_bound(
      nodes.begin(), nodes.end(), node,
      [](const Node* a, const Node* b) { return a->id < b->id; });
  if (it == nodes.end() || *it != node) nodes.insert(it, node);
}

}  // namespace

std::string Origin::ToString() const {
  return common::StrCat("(", num, ",", std::string(1, dir), ")");
}

// The worker crew for one Run(): a lazily-spawned pool (first round
// that crosses the parallel threshold) plus one EvalCtx per worker and
// the per-chunk output buffers, all reused across rounds. The crew
// lives on Run()'s stack, so small builds (warm deltas, replays) never
// spawn a thread.
struct Closure::RoundCrew {
  explicit RoundCrew(int threads) : threads(threads) {}

  int threads;  // resolved cap (>= 1)
  std::unique_ptr<ThreadPool> pool;
  std::vector<std::unique_ptr<EvalCtx>> worker_ctxs;
  std::vector<ChunkOut> outs;
  // Context for rounds evaluated on the calling thread.
  EvalCtx inline_ctx;
};

Closure::Closure(const unfold::UnfoldedSet& set, ClosureOptions options,
                 obs::Observability* obs, const Closure* warm_base)
    : set_(&set), options_(options), obs_(obs) {
  obs::Tracer* tracer = obs_ != nullptr ? &obs_->tracer : nullptr;
  obs::ScopedSpan closure_span(tracer, "closure");
  InitTables();

  std::vector<int> delta_ids;
  if (warm_base != nullptr) {
    std::vector<int> old_to_new;
    if (ComputeWarmMap(*warm_base, old_to_new)) {
      obs::ScopedSpan replay_span(tracer, "closure.delta.replay");
      ReplayBase(*warm_base, old_to_new);
      warm_started_ = true;
      // Occurrences the base does not cover: the added roots' blocks.
      // Replayed facts never enter the frontier, so a rule keyed on an
      // old occurrence (e.g. "alterability via write object", whose
      // conclusions span every read of the attribute) would never see
      // these new targets. Rederive() re-fires the per-occurrence and
      // per-class producers from the new nodes' perspective, reading the
      // replayed state the frontier skipped.
      std::vector<char> mapped(set.node_count() + 1, 0);
      for (int old_id = 1; old_id < static_cast<int>(old_to_new.size());
           ++old_id) {
        if (old_to_new[old_id] != 0) mapped[old_to_new[old_id]] = 1;
      }
      for (int id = 1; id <= set.node_count(); ++id) {
        if (mapped[id] == 0) delta_ids.push_back(id);
      }
    }
  }

  {
    obs::ScopedSpan seed_span(tracer, "closure.seed");
    Seed();
  }
  if (!delta_ids.empty()) Rederive(delta_ids, {});
  Run();
  FlushMetrics();
}

Closure::Closure(const unfold::UnfoldedSet& set, ClosureOptions options,
                 obs::Observability* obs, const ReplayLog& log)
    : set_(&set), options_(options), obs_(obs) {
  obs::Tracer* tracer = obs_ != nullptr ? &obs_->tracer : nullptr;
  obs::ScopedSpan closure_span(tracer, "closure");
  InitTables();
  {
    obs::ScopedSpan replay_span(tracer, "closure.snapshot.replay");
    ReplaySteps(log.steps, log.premise_arena, /*old_to_new=*/nullptr);
    warm_started_ = true;
  }
  // A complete log already contains every axiom and every fixpoint
  // conclusion, so the seed pass and the (empty-frontier) run below only
  // dedup — they exist to make a *partial or stale* log merely slow
  // instead of wrong, and they keep the derivation log byte-identical to
  // the saved one in the complete case (dedup appends nothing).
  {
    obs::ScopedSpan seed_span(tracer, "closure.seed");
    Seed();
  }
  Run();
  FlushMetrics();
}

Closure::Closure(const unfold::UnfoldedSet& set, ClosureOptions options,
                 obs::Observability* obs, const ReplayView& view)
    : set_(&set), options_(options), obs_(obs) {
  obs::Tracer* tracer = obs_ != nullptr ? &obs_->tracer : nullptr;
  obs::ScopedSpan closure_span(tracer, "closure");
  InitTables();
  {
    obs::ScopedSpan replay_span(tracer, "closure.snapshot.replay");
    ReplayPackedSteps(view);
    warm_started_ = true;
  }
  // Same complete-log contract as the ReplayLog constructor above: the
  // seed and run only dedup when the log is complete, and make a stale
  // log slow instead of wrong otherwise.
  {
    obs::ScopedSpan seed_span(tracer, "closure.seed");
    Seed();
  }
  Run();
  FlushMetrics();
}

void Closure::InitTables() {
  int n = set_->node_count();
  const unfold::UnfoldedSet& set = *set_;
  uf_parent_.resize(n + 1);
  uf_rank_.assign(n + 1, 0);
  members_.resize(n + 1);
  eq_edges_.resize(n + 1);
  ta_.assign(n + 1, kNoFact);
  pa_.assign(n + 1, kNoFact);
  ti_.resize(n + 1);
  pi_.resize(n + 1);
  pistar_touching_.resize(n + 1);
  touching_calls_.resize(n + 1);
  obj_reads_.resize(n + 1);
  obj_writes_.resize(n + 1);
  binder_of_bound_expr_.assign(n + 1, -1);
  InitCtx(direct_ctx_);
  for (int i = 1; i <= n; ++i) {
    uf_parent_[i] = i;
    members_[i] = {i};
  }
  // Cross-reference tables.
  for (int i = 1; i <= n; ++i) {
    const Node* node = set.node(i);
    if (node->kind == NodeKind::kBasicCall) {
      InsertSortedUniqueById(touching_calls_[node->id], node);
      for (const Node* child : node->children) {
        InsertSortedUniqueById(touching_calls_[child->id], node);
      }
    }
    if (node->kind == NodeKind::kReadAttr) {
      obj_reads_[node->object_child()->id].push_back(node);
    }
    if (node->kind == NodeKind::kWriteAttr) {
      obj_writes_[node->object_child()->id].push_back(node);
    }
  }
  for (const unfold::Binder& binder : set.binders()) {
    if (binder.bound_expr != nullptr) {
      binder_of_bound_expr_[binder.bound_expr->id] = binder.id;
    }
  }
  BuildPremiseIndex();
}

void Closure::BuildPremiseIndex() {
  int n = set_->node_count();
  // The alterability triggers are collected per-id and then flattened
  // into the CSR pair (never merged, so the layout can freeze here);
  // the class-keyed tables stay vectors because MergeClasses folds
  // them on every union.
  std::vector<std::vector<RuleRef>> alter_triggers(n + 1);
  alter_trigger_offsets_.assign(n + 2, 0);
  alter_trigger_refs_.clear();
  infer_triggers_.resize(n + 1);
  pistar_triggers_.resize(n + 1);
  if (!options_.basic_function_rules) return;
  auto insert_ref = [](std::vector<RuleRef>& refs, RuleRef ref) {
    auto it = std::lower_bound(refs.begin(), refs.end(), ref);
    if (it == refs.end() || !(*it == ref)) refs.insert(it, ref);
  };
  for (int i = 1; i <= n; ++i) {
    const Node* node = set_->node(i);
    if (node->kind != NodeKind::kBasicCall) continue;
    for (const BasicRule& rule : RulesFor(*node->basic)) {
      RuleRef ref{node, &rule};
      for (const RuleAtom& atom : rule.premises) {
        int id = atom.pos == kResultPos ? node->id
                                        : node->children[atom.pos]->id;
        switch (atom.pred) {
          case RuleAtom::Pred::kTa:
          case RuleAtom::Pred::kPa:
            insert_ref(alter_triggers[id], ref);
            break;
          case RuleAtom::Pred::kTi:
          case RuleAtom::Pred::kPi:
            // One shared table for ti and pi atoms: "ti => pi" and the
            // pi-join write the sibling table before the triggers run
            // (see ProcessTi / ProcessPi), so either event can complete
            // either atom.
            insert_ref(infer_triggers_[id], ref);
            break;
          case RuleAtom::Pred::kPiStar: {
            insert_ref(pistar_triggers_[id], ref);
            int id2 = atom.pos2 == kResultPos
                          ? node->id
                          : node->children[atom.pos2]->id;
            insert_ref(pistar_triggers_[id2], ref);
            break;
          }
        }
      }
    }
  }
  for (int id = 0; id <= n; ++id) {
    alter_trigger_offsets_[id] =
        static_cast<uint32_t>(alter_trigger_refs_.size());
    alter_trigger_refs_.insert(alter_trigger_refs_.end(),
                               alter_triggers[id].begin(),
                               alter_triggers[id].end());
  }
  alter_trigger_offsets_[n + 1] =
      static_cast<uint32_t>(alter_trigger_refs_.size());
}

bool Closure::ComputeWarmMap(const Closure& base,
                             std::vector<int>& old_to_new) const {
  if (&base == this || !(base.options_ == options_)) return false;
  const std::vector<unfold::Root>& old_roots = base.set_->roots();
  const std::vector<unfold::Root>& new_roots = set_->roots();
  // Match the k-th duplicate of a name to the k-th duplicate: unfolding
  // a function is deterministic, so position within the root list never
  // changes a root's shape (see unfold::Root).
  std::map<std::string_view, std::vector<size_t>> available;
  for (size_t j = 0; j < new_roots.size(); ++j) {
    available[new_roots[j].function_name].push_back(j);
  }
  std::map<std::string_view, size_t> next;
  old_to_new.assign(base.set_->node_count() + 1, 0);
  for (const unfold::Root& old_root : old_roots) {
    auto it = available.find(old_root.function_name);
    if (it == available.end()) return false;
    size_t& cursor = next[old_root.function_name];
    if (cursor >= it->second.size()) return false;
    const unfold::Root& new_root = new_roots[it->second[cursor++]];
    int old_first = old_root.first_node_id;
    int old_last = old_root.body->id;
    int new_first = new_root.first_node_id;
    if (old_last - old_first != new_root.body->id - new_first) {
      return false;  // shape mismatch: schemas differ, fall back cold
    }
    for (int id = old_first; id <= old_last; ++id) {
      old_to_new[id] = id - old_first + new_first;
    }
  }
  return true;
}

void Closure::ReplayBase(const Closure& base,
                         const std::vector<int>& old_to_new) {
  ReplaySteps(base.steps_, base.premise_arena_, &old_to_new);
}

void Closure::ReplaySteps(std::span<const DerivationStep> steps,
                          std::span<const FactId> arena,
                          const std::vector<int>* old_to_new) {
  replayed_facts_ = steps.size();
  steps_.reserve(steps.size() + steps.size() / 4);
  fact_of_.reserve(steps_.capacity());
  premise_arena_.reserve(arena.size());
  for (const DerivationStep& bstep : steps) {
    // Translate the fact into this set's id space. Origin nums are
    // occurrence ids too (0 marks observation/equality axioms and maps
    // to itself). The snapshot path replays into an unfold over the
    // same roots, where the id spaces already coincide.
    Fact fact = bstep.fact;
    if (old_to_new != nullptr) {
      fact.a = (*old_to_new)[fact.a];
      if (fact.kind == Fact::Kind::kPiStar || fact.kind == Fact::Kind::kEq) {
        fact.b = (*old_to_new)[fact.b];
      }
      fact.origin.num = (*old_to_new)[fact.origin.num];
    }
    // Append the step verbatim. Every base step becomes exactly one
    // replayed step, so premise FactIds keep their values and are
    // copied raw. Rule labels have static storage — nothing borrows
    // from the base after construction.
    FactId id = static_cast<FactId>(steps_.size());
    DerivationStep step;
    step.fact = fact;
    step.rule = bstep.rule;
    step.premise_offset = static_cast<uint32_t>(premise_arena_.size());
    step.premise_count = bstep.premise_count;
    const FactId* src = arena.data() + bstep.premise_offset;
    premise_arena_.insert(premise_arena_.end(), src,
                          src + bstep.premise_count);
    steps_.push_back(step);
    fact_of_.push_back(fact);
    // Apply the table effect. Replayed facts never enter the frontier:
    // the follow-up Seed() + Run() re-derive only what the added roots
    // contribute, re-firing rules through the premise index as new
    // facts interact with the replayed state.
    ApplyReplayedFact(fact, id);
  }
}

void Closure::ReplayPackedSteps(const ReplayView& view) {
  replayed_facts_ = view.steps.size();
  steps_.reserve(view.steps.size() + view.steps.size() / 4);
  fact_of_.reserve(steps_.capacity());
  premise_arena_.reserve(view.premise_arena.size());
  for (const PackedStep& pstep : view.steps) {
    // Decode the fixed-width image into a live step. Ids are already in
    // this set's id space (packed records, like snapshots, replay into
    // an unfold over the same roots).
    Fact fact;
    fact.kind = static_cast<Fact::Kind>(pstep.kind);
    fact.a = pstep.a;
    fact.b = pstep.b;
    fact.origin.num = pstep.origin_num;
    fact.origin.dir = static_cast<char>(pstep.origin_dir);
    FactId id = static_cast<FactId>(steps_.size());
    DerivationStep step;
    step.fact = fact;
    step.rule = view.rules[pstep.rule];
    step.premise_offset = static_cast<uint32_t>(premise_arena_.size());
    step.premise_count = pstep.premise_count;
    const FactId* src = view.premise_arena.data() + pstep.premise_offset;
    premise_arena_.insert(premise_arena_.end(), src,
                          src + pstep.premise_count);
    steps_.push_back(step);
    fact_of_.push_back(fact);
    ApplyReplayedFact(fact, id);
  }
}

void Closure::ApplyReplayedFact(const Fact& fact, FactId id) {
  switch (fact.kind) {
    case Fact::Kind::kTa:
      ta_[fact.a] = id;
      break;
    case Fact::Kind::kPa:
      pa_[fact.a] = id;
      break;
    case Fact::Kind::kTi:
      ti_[Find(fact.a)].Insert(fact.origin, id);
      break;
    case Fact::Kind::kPi:
      pi_[Find(fact.a)].Insert(fact.origin, id);
      break;
    case Fact::Kind::kPiStar: {
      std::pair<int, int> key = {Find(fact.a), Find(fact.b)};
      pistar_[PairKey(key.first, key.second)].Insert(fact.origin, id);
      InsertSortedUnique(pistar_touching_[key.first], key);
      InsertSortedUnique(pistar_touching_[key.second], key);
      break;
    }
    case Fact::Kind::kEq: {
      int ra = Find(fact.a);
      int rb = Find(fact.b);
      if (ra != rb) {
        ++eq_merges_;
        eq_edges_[fact.a].emplace_back(fact.b, id);
        eq_edges_[fact.b].emplace_back(fact.a, id);
        MergeClasses(ra, rb);
      }
      break;
    }
  }
}

// ---------------------------------------------------------------------
// Retraction (DRed, delete-and-rederive). See the Retract() contract in
// the header and DESIGN.md §12 for the invariants.

std::unique_ptr<Closure> Closure::Retract(const unfold::UnfoldedSet& set,
                                          ClosureOptions options,
                                          obs::Observability* obs,
                                          const Closure& base) {
  std::unique_ptr<Closure> closure(
      new Closure(set, options, obs, base, RetractTag{}));
  if (!closure->retracted_) return nullptr;
  return closure;
}

bool Closure::ComputeShrinkMap(const Closure& base,
                               std::vector<int>& old_to_new) const {
  if (&base == this || !(base.options_ == options_)) return false;
  const std::vector<unfold::Root>& old_roots = base.set_->roots();
  const std::vector<unfold::Root>& new_roots = set_->roots();
  // ComputeWarmMap's k-th-duplicate matching with the roles reversed:
  // every *new* root claims a distinct old root; old roots nobody
  // claims are the revoked ones, and their id ranges stay mapped to 0.
  std::map<std::string_view, std::vector<size_t>> available;
  for (size_t j = 0; j < old_roots.size(); ++j) {
    available[old_roots[j].function_name].push_back(j);
  }
  std::map<std::string_view, size_t> next;
  old_to_new.assign(base.set_->node_count() + 1, 0);
  for (const unfold::Root& new_root : new_roots) {
    auto it = available.find(new_root.function_name);
    if (it == available.end()) return false;
    size_t& cursor = next[new_root.function_name];
    if (cursor >= it->second.size()) return false;
    const unfold::Root& old_root = old_roots[it->second[cursor++]];
    int old_first = old_root.first_node_id;
    int old_last = old_root.body->id;
    int new_first = new_root.first_node_id;
    if (old_last - old_first != new_root.body->id - new_first) {
      return false;  // shape mismatch: schemas differ, fall back cold
    }
    for (int id = old_first; id <= old_last; ++id) {
      old_to_new[id] = id - old_first + new_first;
    }
  }
  return true;
}

Closure::Closure(const unfold::UnfoldedSet& set, ClosureOptions options,
                 obs::Observability* obs, const Closure& base, RetractTag)
    : set_(&set), options_(options), obs_(obs) {
  obs::Tracer* tracer = obs_ != nullptr ? &obs_->tracer : nullptr;
  obs::ScopedSpan closure_span(tracer, "closure");
  InitTables();
  std::vector<int> old_to_new;
  if (!ComputeShrinkMap(base, old_to_new)) return;  // discarded by Retract()

  // Over-delete the cone of base steps that mention a revoked
  // occurrence — as subject, pair partner, or origin provenance — or
  // depend on a marked step. Premise edges alone do not close the cone:
  // the class-level rules (pi*: join, join of partial inferabilities,
  // EvalRule's pi* atoms) match their premises through the equivalence
  // tables, and the eq facts that merged the mediating class are NOT in
  // the recorded premise list. Classes whose mediation may have changed
  // are marked *suspect*, and every premise-bearing fact whose own or
  // premise endpoints touch a suspect class is over-deleted as well.
  //
  // Suspicion is connectivity-based, not loss-based: a class only
  // becomes suspect when its *surviving* members are no longer all
  // connected by the *surviving* eq facts. Losing an eq edge that the
  // class can route around (e.g. revoking one department of a scaled
  // workload whose argument class is held together by the other
  // departments' axioms) changes nothing any class-mediated derivation
  // relied on — every "a ~ b" among survivors still holds — so those
  // facts are kept and the cone stays proportional to the revoked
  // delta instead of swallowing the whole log. Deleting an eq late in
  // the log can split a class and thereby indict a join earlier in it,
  // so the sweep repeats to a fixpoint, recomputing connectivity from
  // the thinner edge set each round (splits are monotone: edges only
  // disappear). Over-deletion is always safe: the rederive pass
  // restores whatever has surviving support.
  std::vector<char> deleted(base.steps_.size(), 0);
  std::vector<int> touched;
  std::vector<DeletedPair> deleted_pairs;
  {
    obs::ScopedSpan delete_span(tracer, "closure.retract.delete");
    auto removed = [&old_to_new](int id) {
      return id != 0 && old_to_new[id] == 0;
    };
    int base_n = base.set_->node_count();
    std::vector<char> suspect(base_n + 1, 0);
    std::vector<int> parent(base_n + 1);
    std::vector<int> first_member(base_n + 1);
    auto find = [&parent](int x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    auto recompute_suspect = [&] {
      for (int id = 0; id <= base_n; ++id) parent[id] = id;
      for (size_t i = 0; i < base.steps_.size(); ++i) {
        if (deleted[i] != 0) continue;
        const Fact& fact = base.steps_[i].fact;
        if (fact.kind != Fact::Kind::kEq) continue;
        if (removed(fact.a) || removed(fact.b)) continue;
        parent[find(fact.a)] = find(fact.b);
      }
      std::fill(first_member.begin(), first_member.end(), 0);
      for (int id = 1; id <= base_n; ++id) {
        if (removed(id)) continue;
        int rep = base.Rep(id);
        if (first_member[rep] == 0) {
          first_member[rep] = id;
        } else if (find(id) != find(first_member[rep])) {
          suspect[rep] = 1;  // sticky: splits are monotone across rounds
        }
      }
    };
    auto is_pair = [](const Fact& f) {
      return f.kind == Fact::Kind::kPiStar || f.kind == Fact::Kind::kEq;
    };
    auto endpoint_suspect = [&](const Fact& f) {
      if (suspect[base.Rep(f.a)] != 0) return true;
      return is_pair(f) && suspect[base.Rep(f.b)] != 0;
    };
    bool changed = true;
    while (changed) {
      recompute_suspect();
      changed = false;
      for (size_t i = 0; i < base.steps_.size(); ++i) {
        if (deleted[i] != 0) continue;
        const DerivationStep& bstep = base.steps_[i];
        const Fact& fact = bstep.fact;
        bool pair = is_pair(fact);
        bool gone = removed(fact.a) || removed(fact.origin.num) ||
                    (pair && removed(fact.b));
        if (!gone && bstep.premise_count > 0) {
          gone = endpoint_suspect(fact);
          for (FactId premise : base.premises(static_cast<FactId>(i))) {
            if (gone) break;
            gone = deleted[premise] != 0 ||
                   endpoint_suspect(base.steps_[premise].fact);
          }
        }
        if (!gone) continue;
        deleted[i] = 1;
        changed = true;
        ++retracted_facts_;
        if (int a = old_to_new[fact.a]; a != 0) touched.push_back(a);
        if (pair) {
          if (int b = old_to_new[fact.b]; b != 0) touched.push_back(b);
        }
        if (fact.kind == Fact::Kind::kPiStar) {
          int a = old_to_new[fact.a];
          int b = old_to_new[fact.b];
          int onum = fact.origin.num == 0 ? 0 : old_to_new[fact.origin.num];
          if (a != 0 && b != 0 && (fact.origin.num == 0 || onum != 0)) {
            deleted_pairs.push_back({a, b, Origin{onum, fact.origin.dir}});
          }
        }
      }
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()),
                  touched.end());
  }
  {
    obs::ScopedSpan replay_span(tracer, "closure.retract.replay");
    ReplaySurvivors(base, old_to_new, deleted);
  }
  warm_started_ = true;  // replay-prefix semantics (replayed_fact_count)
  retracted_ = true;
  // Seed() re-adds every axiom the cone lost and re-evaluates every
  // basic-function rule against the survivor tables; the targeted pass
  // covers the structural rules. Both only enqueue genuinely missing
  // facts, and Run() propagates their consequences to the fixpoint.
  {
    obs::ScopedSpan seed_span(tracer, "closure.seed");
    Seed();
  }
  {
    obs::ScopedSpan rederive_span(tracer, "closure.retract.rederive");
    Rederive(touched, deleted_pairs);
  }
  Run();
  FlushMetrics();
}

void Closure::ReplaySurvivors(const Closure& base,
                              const std::vector<int>& old_to_new,
                              const std::vector<char>& deleted) {
  // Like ReplaySteps, but survivors compact: premise FactIds shift, so
  // each is remapped through the old-index -> new-index table (always
  // already filled — a survivor's premises are survivors).
  std::vector<FactId> remap(base.steps_.size(), kNoFact);
  steps_.reserve(base.steps_.size());
  fact_of_.reserve(base.steps_.size());
  premise_arena_.reserve(base.premise_arena_.size());
  for (size_t i = 0; i < base.steps_.size(); ++i) {
    if (deleted[i] != 0) continue;
    const DerivationStep& bstep = base.steps_[i];
    Fact fact = bstep.fact;
    fact.a = old_to_new[fact.a];
    if (fact.kind == Fact::Kind::kPiStar || fact.kind == Fact::Kind::kEq) {
      fact.b = old_to_new[fact.b];
    }
    fact.origin.num = old_to_new[fact.origin.num];
    FactId id = static_cast<FactId>(steps_.size());
    remap[i] = id;
    DerivationStep step;
    step.fact = fact;
    step.rule = bstep.rule;
    step.premise_offset = static_cast<uint32_t>(premise_arena_.size());
    step.premise_count = bstep.premise_count;
    for (FactId premise : base.premises(static_cast<FactId>(i))) {
      premise_arena_.push_back(remap[premise]);
    }
    steps_.push_back(step);
    fact_of_.push_back(fact);
    ApplyReplayedFact(fact, id);
  }
  replayed_facts_ = steps_.size();
}

void Closure::Rederive(const std::vector<int>& touched,
                       const std::vector<DeletedPair>& pairs) {
  // Every over-deleted fact's conclusion site is a touched occurrence
  // (or was itself revoked, in which case nothing concludes there any
  // more), so firing every structural producer *at* the touched sites
  // and classes restores exactly the alternate-support facts. Producers
  // whose premises appear only later — added by Seed(), this pass, or
  // the fixpoint — re-fire through the normal Process() handlers when
  // those premises drain from the frontier.
  std::vector<int> reps;
  reps.reserve(touched.size());
  for (int id : touched) reps.push_back(Find(id));
  std::sort(reps.begin(), reps.end());
  reps.erase(std::unique(reps.begin(), reps.end()), reps.end());
  for (int id : touched) RederiveNode(id);
  for (int rep : reps) RederiveClass(rep);
  // Conclusion-driven DRed: probe one-step alternate support for
  // exactly the over-deleted pi* facts. Deeper chains resolve in Run()
  // — every fact a probe restores re-enters the frontier, and
  // ProcessPiStar fires the full swap/join consequences from there.
  for (const DeletedPair& pair : pairs) RederivePair(pair);
}

void Closure::RederiveNode(int id) {
  // The per-occurrence producers, in ProcessTa/ProcessPa order:
  // implication first, then the let and read/write rules.
  if (ta_[id] != kNoFact && pa_[id] == kNoFact) {
    AddPa(direct_ctx_, id, "ta => pa", {ta_[id]});
  }
  const Node* node = set_->node(id);
  if (node->kind == NodeKind::kVarRef && node->binder_id >= 0) {
    const unfold::Binder& binder = set_->binder(node->binder_id);
    if (binder.bound_expr != nullptr) {
      int bound = binder.bound_expr->id;
      if (ta_[bound] != kNoFact) {
        AddTa(direct_ctx_, id, "let: bound expression to variable",
              {ta_[bound]});
      } else if (pa_[bound] != kNoFact) {
        AddPa(direct_ctx_, id, "let: bound expression to variable",
              {pa_[bound]});
      }
    }
  }
  if (node->is_let()) {
    int body = node->body()->id;
    if (ta_[body] != kNoFact) {
      AddTa(direct_ctx_, id, "let: body to let value", {ta_[body]});
    } else if (pa_[body] != kNoFact) {
      AddPa(direct_ctx_, id, "let: body to let value", {pa_[body]});
    }
  }
  if (node->kind != NodeKind::kReadAttr) return;
  const Node* object = node->object_child();
  if (pa_[object->id] != kNoFact) {
    if (options_.read_object_total_alterability) {
      AddTa(direct_ctx_, id, "alterability via read object",
            {pa_[object->id]});
    } else {
      AddPa(direct_ctx_, id, "alterability via read object",
            {pa_[object->id]});
    }
  }
  if (!options_.write_read_equality) return;
  for (const Node* write : set_->writes(node->attribute)) {
    if (pa_[write->object_child()->id] != kNoFact) {
      AddTa(direct_ctx_, id, "alterability via write object",
            {pa_[write->object_child()->id]});
    }
    if (Find(write->object_child()->id) != Find(object->id)) continue;
    if (Find(write->value_child()->id) != Find(id)) {
      std::vector<FactId> premises;
      ExplainEquality(direct_ctx_, write->object_child()->id, object->id,
                      premises);
      std::sort(premises.begin(), premises.end());
      premises.erase(std::unique(premises.begin(), premises.end()),
                     premises.end());
      AddEq(direct_ctx_, write->value_child()->id, id,
            "=: written value equals read", premises);
    }
    FactId alter = ta_[write->value_child()->id] != kNoFact
                       ? ta_[write->value_child()->id]
                       : pa_[write->value_child()->id];
    if (alter != kNoFact) {
      FireWriteValueRules(direct_ctx_, write, alter, node);
    }
  }
  for (const Node* other : obj_reads_[Find(object->id)]) {
    if (other == node || other->attribute != node->attribute) continue;
    if (Find(other->id) == Find(id)) continue;
    std::vector<FactId> premises;
    ExplainEquality(direct_ctx_, object->id, other->object_child()->id,
                    premises);
    AddEq(direct_ctx_, id, other->id, "=: reads of equal objects",
          premises);
  }
}

void Closure::RederiveClass(int rep) {
  // The per-class producers: the ti/pi implication and join, the
  // equal-pair pi* axiom, and the pi* swap/join around every pair key
  // touching the class. Origin sets are copied before iterating — the
  // Add* calls below may insert into the very sets being walked.
  {
    OriginSet tis = ti_[rep];
    for (const OriginSet::Entry& entry : tis.entries()) {
      if (pi_[rep].Lookup(entry.origin) == kNoFact) {
        AddPi(direct_ctx_, fact_of_[entry.fact].a, entry.origin,
              "ti => pi", {entry.fact});
      }
    }
  }
  if (options_.pi_join_to_ti) {
    OriginSet pis = pi_[rep];
    if (pis.size() >= 2) {
      for (const OriginSet::Entry& entry : pis.entries()) {
        if (ti_[rep].Lookup(entry.origin) != kNoFact) continue;
        for (const OriginSet::Entry& other : pis.entries()) {
          if (other.origin == entry.origin) continue;
          AddTi(direct_ctx_, fact_of_[entry.fact].a, entry.origin,
                "join of partial inferabilities",
                {entry.fact, other.fact});
          break;
        }
      }
    }
  }
  if (members_[rep].size() >= 2) {
    auto it = pistar_.find(PairKey(rep, rep));
    if (it == pistar_.end() || it->second.Lookup({0, '+'}) == kNoFact) {
      int m0 = members_[rep][0];
      int m1 = members_[rep][1];
      std::vector<FactId> premises;
      ExplainEquality(direct_ctx_, m0, m1, premises);
      AddPiStar(direct_ctx_, m0, m1, {0, '+'}, "=: pair of equals",
                premises);
    }
  }
}

void Closure::RederivePair(const DeletedPair& pair) {
  // One-step alternate support for an over-deleted pi*(a, b, origin):
  // either the swap of a surviving pi*(b, a, origin), or a join
  // pi*(a, m, origin) + pi*(m, b, _) through some surviving mediator m.
  // The mediator scan walks whichever endpoint's adjacency list is
  // shorter, so probes stay cheap even against a hub class.
  int ra = Find(pair.a);
  int rb = Find(pair.b);
  if (ra == rb) return;  // intra-class pairs come from "=: pair of equals"
  auto it = pistar_.find(PairKey(ra, rb));
  if (it != pistar_.end() && it->second.Lookup(pair.origin) != kNoFact) {
    return;  // already restored (replay kept it, or an earlier probe did)
  }
  auto swap_it = pistar_.find(PairKey(rb, ra));
  if (swap_it != pistar_.end()) {
    FactId swapped = swap_it->second.Lookup(pair.origin);
    if (swapped != kNoFact) {
      AddPiStar(direct_ctx_, pair.a, pair.b, pair.origin, "pi*: swap",
                {swapped});
      return;
    }
  }
  const std::vector<std::pair<int, int>>& left_adj = pistar_touching_[ra];
  const std::vector<std::pair<int, int>>& right_adj = pistar_touching_[rb];
  bool scan_left = left_adj.size() <= right_adj.size();
  const std::vector<std::pair<int, int>>& adj =
      scan_left ? left_adj : right_adj;
  for (const std::pair<int, int>& key : adj) {
    // Scanning from the left wants keys (ra, m); from the right, (m, rb).
    int mediator = scan_left ? key.second : key.first;
    if (scan_left ? key.first != ra : key.second != rb) continue;
    if (mediator == ra || mediator == rb) continue;
    auto left_it = pistar_.find(PairKey(ra, mediator));
    if (left_it == pistar_.end()) continue;
    FactId left_fact = left_it->second.Lookup(pair.origin);
    if (left_fact == kNoFact) continue;
    auto right_it = pistar_.find(PairKey(mediator, rb));
    if (right_it == pistar_.end() || right_it->second.empty()) continue;
    AddPiStar(direct_ctx_, pair.a, pair.b, pair.origin, "pi*: join",
              {left_fact, right_it->second.entries()[0].fact});
    return;
  }
}

// ---------------------------------------------------------------------
// Union-find with proof forest.

int Closure::Find(int id) {
  ++find_calls_;
  int root = id;
  while (uf_parent_[root] != root) root = uf_parent_[root];
  while (uf_parent_[id] != root) {
    int next = uf_parent_[id];
    uf_parent_[id] = root;
    id = next;
  }
  return root;
}

void Closure::InitCtx(EvalCtx& ctx) const {
  size_t n = static_cast<size_t>(set_->node_count()) + 1;
  if (ctx.bfs_seen_epoch.size() != n) {
    ctx.bfs_prev_node.resize(n);
    ctx.bfs_prev_edge.resize(n);
    ctx.bfs_seen_epoch.assign(n, 0);
    ctx.bfs_epoch = 0;
  }
}

void Closure::ExplainEquality(EvalCtx& ctx, int id1, int id2,
                              std::vector<FactId>& out) {
  if (id1 == id2) return;
  // BFS through the proof forest (paths are unique). The scratch state
  // is per-context and epoch-stamped: no per-call clearing, no
  // allocation, no sharing between chunk workers. In buffering mode
  // eq_edges_ is frozen (edges are only added in phase B and replay),
  // so concurrent walks are pure reads.
  ++ctx.bfs_epoch;
  ctx.bfs_queue.clear();
  ctx.bfs_queue.push_back(id1);
  ctx.bfs_seen_epoch[id1] = ctx.bfs_epoch;
  ctx.bfs_prev_node[id1] = id1;
  for (size_t head = 0; head < ctx.bfs_queue.size(); ++head) {
    int current = ctx.bfs_queue[head];
    if (current == id2) break;
    for (const auto& [next, edge] : eq_edges_[current]) {
      if (ctx.bfs_seen_epoch[next] == ctx.bfs_epoch) continue;
      ctx.bfs_seen_epoch[next] = ctx.bfs_epoch;
      ctx.bfs_prev_node[next] = current;
      ctx.bfs_prev_edge[next] = edge;
      ctx.bfs_queue.push_back(next);
    }
  }
  assert(ctx.bfs_seen_epoch[id2] == ctx.bfs_epoch &&
         "equality explanation requested for non-equal occurrences");
  for (int at = id2; at != id1; at = ctx.bfs_prev_node[at]) {
    out.push_back(ctx.bfs_prev_edge[at]);
  }
}

// ---------------------------------------------------------------------
// Fact derivation.

FactId Closure::Log(Fact fact, std::string_view rule, Premises premises) {
  FactId id = static_cast<FactId>(steps_.size());
  DerivationStep step;
  step.fact = fact;
  step.rule = rule;
  step.premise_offset = static_cast<uint32_t>(premise_arena_.size());
  step.premise_count = static_cast<uint32_t>(premises.size());
  premise_arena_.insert(premise_arena_.end(), premises.begin(),
                        premises.end());
  steps_.push_back(step);
  fact_of_.push_back(fact);
  next_frontier_.push_back(id);
  return id;
}

FactId Closure::Buffer(EvalCtx& ctx, const Fact& fact, std::string_view rule,
                       Premises premises) {
  ChunkOut& out = *ctx.out;
  Candidate candidate;
  candidate.fact = fact;
  candidate.rule = rule;
  candidate.premise_offset = static_cast<uint32_t>(out.premise_pool.size());
  candidate.premise_count = static_cast<uint32_t>(premises.size());
  out.premise_pool.insert(out.premise_pool.end(), premises.begin(),
                          premises.end());
  out.candidates.push_back(candidate);
  return kNoFact;
}

// The Add* bodies run in both modes. Dedup reads the (frozen or live)
// tables either way; the tail then either logs + mutates (direct) or
// buffers the candidate (chunk worker). A candidate that passes the
// frozen dedup can still lose at the barrier — an earlier candidate
// this round claimed the slot — where the direct re-check drops it.

FactId Closure::AddTa(EvalCtx& ctx, int id, std::string_view rule,
                      Premises premises) {
  if (ctx.buffering()) ++ctx.out->add_attempts;
  else ++add_attempts_;
  if (ta_[id] != kNoFact) return ta_[id];
  if (ctx.buffering()) {
    return Buffer(ctx, {Fact::Kind::kTa, id, 0, {}}, rule, premises);
  }
  FactId fact = Log({Fact::Kind::kTa, id, 0, {}}, rule, premises);
  ta_[id] = fact;
  return fact;
}

FactId Closure::AddPa(EvalCtx& ctx, int id, std::string_view rule,
                      Premises premises) {
  if (ctx.buffering()) ++ctx.out->add_attempts;
  else ++add_attempts_;
  if (pa_[id] != kNoFact) return pa_[id];
  if (ctx.buffering()) {
    return Buffer(ctx, {Fact::Kind::kPa, id, 0, {}}, rule, premises);
  }
  FactId fact = Log({Fact::Kind::kPa, id, 0, {}}, rule, premises);
  pa_[id] = fact;
  return fact;
}

FactId Closure::AddTi(EvalCtx& ctx, int id, Origin origin,
                      std::string_view rule, Premises premises) {
  if (ctx.buffering()) ++ctx.out->add_attempts;
  else ++add_attempts_;
  if (ctx.buffering()) {
    const OriginSet& origins = ti_[CtxFind(ctx, id)];
    FactId existing = origins.Lookup(origin);
    if (existing != kNoFact) return existing;
    if (origins.full()) return kNoFact;
    return Buffer(ctx, {Fact::Kind::kTi, id, 0, origin}, rule, premises);
  }
  OriginSet& origins = ti_[Find(id)];
  FactId existing = origins.Lookup(origin);
  if (existing != kNoFact) return existing;
  if (origins.full()) return kNoFact;
  FactId fact = Log({Fact::Kind::kTi, id, 0, origin}, rule, premises);
  origins.Insert(origin, fact);
  return fact;
}

FactId Closure::AddPi(EvalCtx& ctx, int id, Origin origin,
                      std::string_view rule, Premises premises) {
  if (ctx.buffering()) ++ctx.out->add_attempts;
  else ++add_attempts_;
  if (ctx.buffering()) {
    const OriginSet& origins = pi_[CtxFind(ctx, id)];
    FactId existing = origins.Lookup(origin);
    if (existing != kNoFact) return existing;
    if (origins.full()) return kNoFact;
    return Buffer(ctx, {Fact::Kind::kPi, id, 0, origin}, rule, premises);
  }
  OriginSet& origins = pi_[Find(id)];
  FactId existing = origins.Lookup(origin);
  if (existing != kNoFact) return existing;
  if (origins.full()) return kNoFact;
  FactId fact = Log({Fact::Kind::kPi, id, 0, origin}, rule, premises);
  origins.Insert(origin, fact);
  return fact;
}

FactId Closure::AddPiStar(EvalCtx& ctx, int id1, int id2, Origin origin,
                          std::string_view rule, Premises premises) {
  if (ctx.buffering()) ++ctx.out->add_attempts;
  else ++add_attempts_;
  std::pair<int, int> key = {CtxFind(ctx, id1), CtxFind(ctx, id2)};
  if (ctx.buffering()) {
    // No operator[]: the map must not grow (or rehash) under the other
    // chunk workers.
    auto it = pistar_.find(PairKey(key.first, key.second));
    if (it != pistar_.end()) {
      FactId existing = it->second.Lookup(origin);
      if (existing != kNoFact) return existing;
      if (it->second.full()) return kNoFact;
    }
    return Buffer(ctx, {Fact::Kind::kPiStar, id1, id2, origin}, rule,
                  premises);
  }
  OriginSet& origins = pistar_[PairKey(key.first, key.second)];
  FactId existing = origins.Lookup(origin);
  if (existing != kNoFact) return existing;
  if (origins.full()) return kNoFact;
  FactId fact = Log({Fact::Kind::kPiStar, id1, id2, origin}, rule, premises);
  origins.Insert(origin, fact);
  InsertSortedUnique(pistar_touching_[key.first], key);
  InsertSortedUnique(pistar_touching_[key.second], key);
  return fact;
}

FactId Closure::AddEq(EvalCtx& ctx, int id1, int id2, std::string_view rule,
                      Premises premises) {
  if (ctx.buffering()) ++ctx.out->add_attempts;
  else ++add_attempts_;
  if (CtxFind(ctx, id1) == CtxFind(ctx, id2)) return kNoFact;  // known
  if (ctx.buffering()) {
    return Buffer(ctx, {Fact::Kind::kEq, id1, id2, {}}, rule, premises);
  }
  return Log({Fact::Kind::kEq, id1, id2, {}}, rule, premises);
}

// ---------------------------------------------------------------------
// Seeding: the axioms of Table 2.

void Closure::Seed() {
  const unfold::UnfoldedSet& set = *set_;

  // Axioms for outer-most argument variables: ta[x] and ti[x, l, +].
  for (const unfold::Binder& binder : set.binders()) {
    if (!binder.is_root_arg) continue;
    for (const Node* occurrence : binder.occurrences) {
      AddTa(direct_ctx_, occurrence->id,
            "axiom: outer-most argument (alterable)", {});
      AddTi(direct_ctx_, occurrence->id, {occurrence->id, '+'},
            "axiom: outer-most argument (known)", {});
    }
  }

  // Axioms for constants and observed results.
  for (int i = 1; i <= set.node_count(); ++i) {
    const Node* node = set.node(i);
    if (node->kind == NodeKind::kConstant) {
      AddTi(direct_ctx_, node->id, {node->id, '+'}, "axiom: constant",
            {});
    }
  }
  for (const unfold::Root& root : set.roots()) {
    AddTi(direct_ctx_, root.body->id, {0, '-'},
          "axiom: observed result", {});
  }

  // Equality axioms: occurrences of the same variable, let bindings, and
  // let bodies.
  for (const unfold::Binder& binder : set.binders()) {
    for (size_t i = 1; i < binder.occurrences.size(); ++i) {
      AddEq(direct_ctx_, binder.occurrences[0]->id,
            binder.occurrences[i]->id, "axiom for =: same variable", {});
    }
    if (binder.bound_expr != nullptr && !binder.occurrences.empty()) {
      AddEq(direct_ctx_, binder.occurrences[0]->id,
            binder.bound_expr->id, "axiom for =: let binding", {});
    }
  }
  for (int i = 1; i <= set.node_count(); ++i) {
    const Node* node = set.node(i);
    if (node->is_let()) {
      AddEq(direct_ctx_, node->body()->id, node->id,
            "axiom for =: let value", {});
    }
  }

  // The pessimistic axiom: outer-most argument variables of the same
  // type may be given the same value (paper Table 2, rule 3).
  if (options_.same_type_argument_equality) {
    std::map<const types::Type*, const Node*> representative;
    for (const unfold::Binder& binder : set.binders()) {
      if (!binder.is_root_arg || binder.occurrences.empty()) continue;
      const Node* occurrence = binder.occurrences[0];
      auto [it, inserted] =
          representative.emplace(binder.type, occurrence);
      if (!inserted) {
        AddEq(direct_ctx_, it->second->id, occurrence->id,
              "axiom for =: outer-most arguments of the same type", {});
      }
    }
  }

  // Premise-free basic-function rules (e.g. "abs: non-negative image")
  // and rules whose premises are all axioms.
  if (options_.basic_function_rules) {
    for (int i = 1; i <= set.node_count(); ++i) {
      if (set.node(i)->kind == NodeKind::kBasicCall) {
        ReevalBasicCall(direct_ctx_, set.node(i));
      }
    }
  }
}

void Closure::Run() {
  obs::Tracer* tracer = obs_ != nullptr ? &obs_->tracer : nullptr;
  obs::Histogram* round_facts =
      obs_ != nullptr ? obs_->metrics.histogram("closure.fixpoint.round_facts")
                      : nullptr;
  RoundCrew crew(ResolveClosureThreads(options_.closure_threads));
  {
    obs::ScopedSpan fixpoint_span(tracer, "closure.fixpoint");
    // Semi-naive delta rounds: one round processes exactly the facts
    // derived before it began (the delta); conclusions land in
    // next_frontier_ and form the next round. Each round runs the
    // two-phase discipline documented on Run() in the header — frozen
    // chunk evaluation, a canonical-order merge, then the sequential
    // equality merges — so the log is byte-identical for every value
    // of closure_threads.
    while (!next_frontier_.empty()) {
      ++rounds_;
      obs::ScopedSpan round_span(tracer, "closure.fixpoint.round");
      size_t facts_before = steps_.size();
      frontier_.clear();
      std::swap(frontier_, next_frontier_);
      RunRound(crew);
      if (round_facts != nullptr) {
        round_facts->Record(steps_.size() - facts_before);
      }
    }
  }
  // Fully compress the union-find: afterwards every parent link points
  // at its root, Rep() is a single read, and the structure is safe for
  // concurrent readers (no mutation behind const).
  obs::ScopedSpan compress_span(tracer, "closure.compress");
  for (int i = 1; i < static_cast<int>(uf_parent_.size()); ++i) {
    uf_parent_[i] = Find(i);
  }
}

void Closure::RunRound(RoundCrew& crew) {
  size_t frontier_size = frontier_.size();
  // Phase A: evaluate every non-eq frontier fact against the frozen
  // round-start tables, buffering conclusions per chunk. Nothing
  // shared is written until every worker has finished.
  bool parallel =
      crew.threads > 1 && frontier_size >= kParallelFrontierThreshold;
  if (!parallel) {
    InitCtx(crew.inline_ctx);
    if (crew.outs.empty()) crew.outs.resize(1);
    ChunkOut& out = crew.outs[0];
    out.Clear();
    crew.inline_ctx.out = &out;
    EvalFrontierChunk(crew.inline_ctx, 0, frontier_size);
    crew.inline_ctx.out = nullptr;
    SnapshotChunkCounters(out);
    ApplyChunk(out);
  } else {
    size_t max_chunks =
        static_cast<size_t>(crew.threads) * kChunksPerThread;
    size_t chunks =
        std::clamp<size_t>(frontier_size / kMinChunkFacts, 1, max_chunks);
    size_t chunk_size = (frontier_size + chunks - 1) / chunks;
    if (crew.pool == nullptr) {
      crew.pool = std::make_unique<ThreadPool>(crew.threads);
      crew.worker_ctxs.reserve(static_cast<size_t>(crew.threads));
      for (int w = 0; w < crew.threads; ++w) {
        crew.worker_ctxs.push_back(std::make_unique<EvalCtx>());
        InitCtx(*crew.worker_ctxs.back());
      }
    }
    if (crew.outs.size() < chunks) crew.outs.resize(chunks);
    // One task per worker; tasks claim chunks through a shared cursor,
    // so a worker stuck on a dense chunk sheds the rest of the range
    // to its siblings. Each task owns one context; each chunk owns one
    // output buffer — no writable state is shared.
    std::atomic<size_t> next_chunk{0};
    for (int w = 0; w < crew.threads; ++w) {
      EvalCtx* ctx = crew.worker_ctxs[static_cast<size_t>(w)].get();
      crew.pool->Submit([this, &crew, &next_chunk, ctx, chunks, chunk_size,
                         frontier_size] {
        for (;;) {
          size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
          if (chunk >= chunks) break;
          size_t begin = chunk * chunk_size;
          size_t end = std::min(frontier_size, begin + chunk_size);
          ChunkOut& out = crew.outs[chunk];
          out.Clear();
          ctx->out = &out;
          EvalFrontierChunk(*ctx, begin, end);
          ctx->out = nullptr;
        }
      });
    }
    crew.pool->Wait();
    // Barrier: fold counters and apply candidates in chunk order —
    // which is frontier order, so the log can't see the chunking.
    ++parallel_rounds_;
    parallel_chunks_ += chunks;
    uint64_t total_candidates = 0;
    uint64_t max_candidates = 0;
    for (size_t chunk = 0; chunk < chunks; ++chunk) {
      const ChunkOut& out = crew.outs[chunk];
      SnapshotChunkCounters(out);
      total_candidates += out.candidates.size();
      max_candidates = std::max<uint64_t>(max_candidates,
                                          out.candidates.size());
    }
    if (obs_ != nullptr && chunks > 1 && total_candidates > 0) {
      // Max-over-mean chunk load in percent: 100 = perfectly balanced.
      obs_->metrics.histogram("closure.parallel.chunk_imbalance_pct")
          ->Record(max_candidates * 100 * chunks / total_candidates);
    }
    for (size_t chunk = 0; chunk < chunks; ++chunk) {
      ApplyChunk(crew.outs[chunk]);
    }
  }
  // Phase B: equality merges, sequential and mutating, in frontier
  // order. They run after the candidate merge so the cross-class
  // re-fires see everything this round derived.
  for (size_t i = 0; i < frontier_size; ++i) {
    FactId fact_id = frontier_[i];
    Fact fact = fact_of_[fact_id];  // copy: fact_of_ grows as rules fire
    if (fact.kind == Fact::Kind::kEq) ProcessEqMerge(fact, fact_id);
  }
}

void Closure::EvalFrontierChunk(EvalCtx& ctx, size_t begin, size_t end) {
  for (size_t i = begin; i < end; ++i) {
    FactId fact_id = frontier_[i];
    const Fact fact = fact_of_[fact_id];
    switch (fact.kind) {
      case Fact::Kind::kTa:
        ProcessTa(ctx, fact, fact_id);
        break;
      case Fact::Kind::kPa:
        ProcessPa(ctx, fact, fact_id);
        break;
      case Fact::Kind::kEq:
        break;  // merged in phase B
      case Fact::Kind::kTi:
        ProcessTi(ctx, fact, fact_id);
        break;
      case Fact::Kind::kPi:
        ProcessPi(ctx, fact, fact_id);
        break;
      case Fact::Kind::kPiStar:
        ProcessPiStar(ctx, fact, fact_id);
        break;
    }
  }
}

void Closure::ApplyChunk(const ChunkOut& out) {
  for (const Candidate& candidate : out.candidates) {
    Premises premises{out.premise_pool.data() + candidate.premise_offset,
                      candidate.premise_count};
    const Fact& fact = candidate.fact;
    switch (fact.kind) {
      case Fact::Kind::kTa:
        AddTa(direct_ctx_, fact.a, candidate.rule, premises);
        break;
      case Fact::Kind::kPa:
        AddPa(direct_ctx_, fact.a, candidate.rule, premises);
        break;
      case Fact::Kind::kTi:
        AddTi(direct_ctx_, fact.a, fact.origin, candidate.rule, premises);
        break;
      case Fact::Kind::kPi:
        AddPi(direct_ctx_, fact.a, fact.origin, candidate.rule, premises);
        break;
      case Fact::Kind::kPiStar:
        AddPiStar(direct_ctx_, fact.a, fact.b, fact.origin, candidate.rule,
                  premises);
        break;
      case Fact::Kind::kEq:
        AddEq(direct_ctx_, fact.a, fact.b, candidate.rule, premises);
        break;
    }
  }
}

void Closure::SnapshotChunkCounters(const ChunkOut& out) {
  find_calls_ += out.find_calls;
  add_attempts_ += out.add_attempts;
  rule_evals_ += out.rule_evals;
  basic_reevals_ += out.basic_reevals;
}

// ---------------------------------------------------------------------
// Alterability rules (Table 2, rule 1).

void Closure::FireWriteValueRules(EvalCtx& ctx, const Node* write,
                                  FactId alter_fact, const Node* read) {
  // Premises: the alterability of the written value plus the equality of
  // the write and read objects.
  const Node* value = write->value_child();
  std::vector<FactId> premises = {alter_fact};
  ExplainEquality(ctx, write->object_child()->id, read->object_child()->id,
                  premises);
  if (ta_[value->id] != kNoFact) {
    AddTa(ctx, read->id, "alterability based on = (written value, total)",
          premises);
  } else {
    AddPa(ctx, read->id, "alterability based on = (written value)",
          premises);
  }
}

void Closure::FireLetAndWriteRulesForAlterability(EvalCtx& ctx, int id,
                                                  bool total,
                                                  FactId fact_id) {
  const Node* node = set_->node(id);
  const Node* parent = node->parent;

  // Written value -> reads of the same attribute on a provably equal
  // object.
  if (options_.write_read_equality && parent != nullptr &&
      parent->kind == NodeKind::kWriteAttr && node->child_index == 1) {
    for (const Node* read : set_->reads(parent->attribute)) {
      if (CtxFind(ctx, parent->object_child()->id) ==
          CtxFind(ctx, read->object_child()->id)) {
        FireWriteValueRules(ctx, parent, fact_id, read);
      }
    }
  }

  // Let rules: a bound expression's alterability reaches every
  // occurrence of the variable; a body's reaches the let value.
  int binder_id = binder_of_bound_expr_[id];
  if (binder_id >= 0) {
    for (const Node* occurrence : set_->binder(binder_id).occurrences) {
      if (total) {
        AddTa(ctx, occurrence->id, "let: bound expression to variable",
              {fact_id});
      } else {
        AddPa(ctx, occurrence->id, "let: bound expression to variable",
              {fact_id});
      }
    }
  }
  if (parent != nullptr && parent->is_let() && parent->body() == node) {
    if (total) {
      AddTa(ctx, parent->id, "let: body to let value", {fact_id});
    } else {
      AddPa(ctx, parent->id, "let: body to let value", {fact_id});
    }
  }
}

void Closure::ProcessTa(EvalCtx& ctx, const Fact& fact, FactId fact_id) {
  AddPa(ctx, fact.a, "ta => pa", {fact_id});
  FireLetAndWriteRulesForAlterability(ctx, fact.a, /*total=*/true, fact_id);
  // The index lists the (parent-call) rules with a ta or pa premise on
  // this occurrence. In the frozen phase the "ta => pa" conclusion above
  // is only a buffered candidate, so a rule needing the pa premise fails
  // here and fires next round, when the pa fact drains from the
  // frontier and re-runs these triggers itself.
  if (options_.basic_function_rules) {
    EvalTriggered(ctx, AlterTriggers(fact.a));
  }
}

void Closure::ProcessPa(EvalCtx& ctx, const Fact& fact, FactId fact_id) {
  const Node* node = set_->node(fact.a);
  const Node* parent = node->parent;

  if (parent != nullptr && node->child_index == 0) {
    if (parent->kind == NodeKind::kReadAttr) {
      // Altering which object is read alters the read result (see
      // ClosureOptions::read_object_total_alterability for the
      // conclusion's strength).
      if (options_.read_object_total_alterability) {
        AddTa(ctx, parent->id, "alterability via read object", {fact_id});
      } else {
        AddPa(ctx, parent->id, "alterability via read object", {fact_id});
      }
    }
    if (parent->kind == NodeKind::kWriteAttr &&
        options_.write_read_equality) {
      // Altering which object is written lets the user hit the object of
      // any read of the attribute.
      for (const Node* read : set_->reads(parent->attribute)) {
        AddTa(ctx, read->id, "alterability via write object", {fact_id});
      }
    }
  }

  FireLetAndWriteRulesForAlterability(ctx, fact.a, /*total=*/false, fact_id);

  if (options_.basic_function_rules) {
    EvalTriggered(ctx, AlterTriggers(fact.a));
  }
}

// ---------------------------------------------------------------------
// Equality merges (Table 2, rules 2 & 3).

void Closure::ProcessEqMerge(const Fact& fact, FactId fact_id) {
  int ra = Find(fact.a);
  int rb = Find(fact.b);
  if (ra == rb) return;  // derived redundantly while queued
  ++eq_merges_;

  // Proof forest edge between the original endpoints.
  eq_edges_[fact.a].emplace_back(fact.b, fact_id);
  eq_edges_[fact.b].emplace_back(fact.a, fact_id);

  // Read/read and write/read equality rules, fired across the two halves
  // before the merge (within-half pairs were handled earlier).
  if (options_.write_read_equality) {
    auto cross = [&](int obj_side, int read_side) {
      for (const Node* write : obj_writes_[obj_side]) {
        for (const Node* read : obj_reads_[read_side]) {
          if (write->attribute != read->attribute) continue;
          // =[e1,e2] -> =[e3, r_att(e2)] where w_att(e1, e3): the written
          // value equals reads of the attribute on an equal object.
          std::vector<FactId> premises;
          ExplainEquality(direct_ctx_, write->object_child()->id,
                          read->object_child()->id, premises);
          // The merge is in progress: the chain runs through this fact.
          premises.push_back(fact_id);
          std::sort(premises.begin(), premises.end());
          premises.erase(std::unique(premises.begin(), premises.end()),
                         premises.end());
          AddEq(direct_ctx_, write->value_child()->id, read->id,
                "=: written value equals read", premises);
          // Alterability of the written value transfers to the read.
          FactId alter = ta_[write->value_child()->id] != kNoFact
                             ? ta_[write->value_child()->id]
                             : pa_[write->value_child()->id];
          if (alter != kNoFact) {
            FireWriteValueRules(direct_ctx_, write, alter, read);
          }
        }
      }
      for (const Node* read1 : obj_reads_[obj_side]) {
        for (const Node* read2 : obj_reads_[read_side]) {
          if (read1 == read2 || read1->attribute != read2->attribute) {
            continue;
          }
          AddEq(direct_ctx_, read1->id, read2->id,
                "=: reads of equal objects", {fact_id});
        }
      }
    };
    cross(ra, rb);
    cross(rb, ra);
  }

  // Snapshot both sides' pi* keys before the union erases the side
  // distinction: the merge is about to make cross-side chains joinable,
  // and every pair involved is an already-processed fact the semi-naive
  // frontier will never revisit. Without the cross-join below, whether
  // pi*[(ea,ec)] gets derived would depend on whether this eq fact
  // happened to precede the two pair facts — an order dependence that
  // cold and warm runs resolve differently (warm starts replay old pairs
  // without processing them, so a late bridge eq would silently drop the
  // joins a cold build happens to catch).
  std::vector<std::pair<int, int>> side_a = pistar_touching_[ra];
  std::vector<std::pair<int, int>> side_b = pistar_touching_[rb];

  int root = MergeClasses(ra, rb);

  // Join: pi*[(ea,eb)], pi*[(eb',ec)] -> pi*[(ea,ec)] where this merge
  // united eb with eb'. Same rule as ProcessPiStar's join, fired at
  // merge time for the cross-side combinations that only now chain.
  // Within-side joins already fired when the later pair was processed.
  auto cross_join = [&](const std::vector<std::pair<int, int>>& into,
                        int into_rep,
                        const std::vector<std::pair<int, int>>& from,
                        int from_rep) {
    for (const std::pair<int, int>& left : into) {
      if (left.second != into_rep) continue;
      for (const std::pair<int, int>& right : from) {
        if (right.first != from_rep) continue;
        // The snapshots hold pre-merge keys; the absorbed side's entries
        // were re-keyed to `root`, so look up through Find.
        auto left_it =
            pistar_.find(PairKey(Find(left.first), Find(left.second)));
        if (left_it == pistar_.end() || left_it->second.empty()) continue;
        auto right_it =
            pistar_.find(PairKey(Find(right.first), Find(right.second)));
        if (right_it == pistar_.end() || right_it->second.empty()) {
          continue;
        }
        const OriginSet::Entry& left_entry = left_it->second.entries()[0];
        const OriginSet::Entry& right_entry =
            right_it->second.entries()[0];
        const Fact& left_fact = fact_of_[left_entry.fact];
        const Fact& right_fact = fact_of_[right_entry.fact];
        if (Find(left_fact.a) == Find(right_fact.b)) continue;
        // Conclusion keeps the first pair's provenance, mirroring
        // ProcessPiStar.
        AddPiStar(direct_ctx_, left_fact.a, right_fact.b, left_entry.origin,
                  "pi*: join", {left_entry.fact, right_entry.fact});
      }
    }
  };
  cross_join(side_a, ra, side_b, rb);
  cross_join(side_b, rb, side_a, ra);

  // =[e1,e2] -> pi*[(e1,e2), 0, +]: equal expressions form a known pair.
  AddPiStar(direct_ctx_, fact.a, fact.b, {0, '+'}, "=: pair of equals",
            {fact_id});

  // The merged class may have gained inferability origins (pi-join) and
  // new rule opportunities.
  if (options_.pi_join_to_ti) {
    const OriginSet& joined = pi_[root];
    if (joined.size() >= 2) {
      std::span<const OriginSet::Entry> entries = joined.entries();
      AddTi(direct_ctx_, fact.a, entries[0].origin,
            "join of partial inferabilities",
            {entries[0].fact, entries[1].fact});
    }
  }
  if (options_.basic_function_rules) ReevalCallsTouching(root);
}

int Closure::MergeClasses(int ra, int rb) {
  // Union by rank.
  int root = ra;
  int absorbed = rb;
  if (uf_rank_[root] < uf_rank_[absorbed]) std::swap(root, absorbed);
  if (uf_rank_[root] == uf_rank_[absorbed]) ++uf_rank_[root];
  uf_parent_[absorbed] = root;

  // Merge per-class tables (append, preserving per-side order).
  auto merge_members = [&](auto& table) {
    auto& source = table[absorbed];
    if (source.empty()) return;
    auto& target = table[root];
    target.insert(target.end(), source.begin(), source.end());
    source.clear();
    source.shrink_to_fit();
  };
  merge_members(members_);
  merge_members(obj_reads_);
  merge_members(obj_writes_);
  {
    // touching_calls_ keeps set semantics: sorted-by-id merge, unique.
    auto& source = touching_calls_[absorbed];
    if (!source.empty()) {
      auto& target = touching_calls_[root];
      for (const Node* call : source) {
        InsertSortedUniqueById(target, call);
      }
      source.clear();
      source.shrink_to_fit();
    }
  }
  // Trigger lists follow their class (same sorted-unique semantics).
  auto merge_triggers = [&](std::vector<std::vector<RuleRef>>& table) {
    std::vector<RuleRef>& source = table[absorbed];
    if (source.empty()) return;
    std::vector<RuleRef>& target = table[root];
    for (const RuleRef& ref : source) {
      auto it = std::lower_bound(target.begin(), target.end(), ref);
      if (it == target.end() || !(*it == ref)) target.insert(it, ref);
    }
    source.clear();
    source.shrink_to_fit();
  };
  merge_triggers(infer_triggers_);
  merge_triggers(pistar_triggers_);

  // Merge inferability origin sets ("=: inferability propagation" is
  // materialized by class-level storage).
  auto merge_origins = [&](std::vector<OriginSet>& table) {
    OriginSet& source = table[absorbed];
    if (source.empty()) return;
    OriginSet& target = table[root];
    for (const OriginSet::Entry& entry : source.entries()) {
      if (target.full()) break;
      target.Insert(entry.origin, entry.fact);
    }
    source.Clear();
  };
  merge_origins(ti_);
  merge_origins(pi_);

  // Re-key pi* pairs that touch the absorbed class.
  {
    std::vector<std::pair<int, int>> keys =
        std::move(pistar_touching_[absorbed]);
    pistar_touching_[absorbed].clear();
    for (const std::pair<int, int>& key : keys) {
      auto pair_it = pistar_.find(PairKey(key.first, key.second));
      if (pair_it == pistar_.end()) continue;
      OriginSet origins = pair_it->second;
      pistar_.erase(pair_it);
      EraseSorted(pistar_touching_[key.first], key);
      EraseSorted(pistar_touching_[key.second], key);
      std::pair<int, int> new_key = {
          key.first == absorbed ? root : key.first,
          key.second == absorbed ? root : key.second};
      OriginSet& target = pistar_[PairKey(new_key.first, new_key.second)];
      for (const OriginSet::Entry& entry : origins.entries()) {
        if (target.full()) break;
        target.Insert(entry.origin, entry.fact);
      }
      InsertSortedUnique(pistar_touching_[new_key.first], new_key);
      InsertSortedUnique(pistar_touching_[new_key.second], new_key);
    }
  }
  return root;
}

// ---------------------------------------------------------------------
// Inferability rules (Table 2, rule 2 + basic-function rules).

void Closure::ProcessTi(EvalCtx& ctx, const Fact& fact, FactId fact_id) {
  AddPi(ctx, fact.a, fact.origin, "ti => pi", {fact_id});
  // infer_triggers_ covers rules with a ti *or* pi premise in the class.
  // The "ti => pi" conclusion above is only buffered, so a rule whose pi
  // premise it would satisfy fails here and fires when that pi fact
  // drains from the frontier next round.
  if (options_.basic_function_rules) {
    EvalTriggered(ctx, infer_triggers_[CtxFind(ctx, fact.a)]);
  }
}

void Closure::ProcessPi(EvalCtx& ctx, const Fact& fact, FactId fact_id) {
  if (options_.pi_join_to_ti) {
    const OriginSet& origins = pi_[CtxFind(ctx, fact.a)];
    if (origins.size() >= 2) {
      // pi[e,n1,d1], pi[e,n2,d2] -> ti[e,n1,d1] for (n1,d1) != (n2,d2):
      // two differently-obtained candidate sets may intersect to a
      // single value (pessimistic assumption 2 of §4.1).
      for (const OriginSet::Entry& entry : origins.entries()) {
        if (entry.origin == fact.origin) continue;
        AddTi(ctx, fact.a, fact.origin, "join of partial inferabilities",
              {fact_id, entry.fact});
        AddTi(ctx, fact.a, entry.origin, "join of partial inferabilities",
              {entry.fact, fact_id});
        break;
      }
    }
  }
  if (options_.basic_function_rules) {
    EvalTriggered(ctx, infer_triggers_[CtxFind(ctx, fact.a)]);
  }
}

void Closure::ProcessPiStar(EvalCtx& ctx, const Fact& fact,
                            FactId fact_id) {
  // pi*[(e1,e2)] -> pi*[(e2,e1)] (transposing the set is free).
  AddPiStar(ctx, fact.b, fact.a, fact.origin, "pi*: swap", {fact_id});

  // Join: pi*[(ea,eb)], pi*[(eb,ec)] -> pi*[(ea,ec)]. Frontier dispatch
  // only reaches here in the frozen phase, where pistar_touching_ cannot
  // grow (AddPiStar buffers instead of inserting), so iterating the
  // lists in place is safe.
  int ra = CtxFind(ctx, fact.a);
  int rb = CtxFind(ctx, fact.b);
  for (const std::pair<int, int>& key : pistar_touching_[rb]) {
    if (key.first != rb) continue;
    auto it = pistar_.find(PairKey(key.first, key.second));
    if (it == pistar_.end() || it->second.empty()) continue;
    int rc = key.second;
    if (rc == ra) continue;
    // Conclusion keeps the first pair's provenance (paper Table 2).
    AddPiStar(ctx, fact.a, members_[rc].front(), fact.origin, "pi*: join",
              {fact_id, it->second.entries()[0].fact});
  }
  for (const std::pair<int, int>& key : pistar_touching_[ra]) {
    if (key.second != ra) continue;
    auto it = pistar_.find(PairKey(key.first, key.second));
    if (it == pistar_.end() || it->second.empty()) continue;
    int rc = key.first;
    if (rc == rb) continue;
    AddPiStar(ctx, members_[rc].front(), fact.b,
              it->second.entries()[0].origin, "pi*: join",
              {it->second.entries()[0].fact, fact_id});
  }

  if (options_.basic_function_rules) {
    EvalTriggered(ctx, pistar_triggers_[ra]);
    if (rb != ra) EvalTriggered(ctx, pistar_triggers_[rb]);
  }
}

// ---------------------------------------------------------------------
// Basic-function rules (§4.1).

bool Closure::PickOrigin(const OriginSet& origins, const Origin* excluded,
                         Origin& origin_out, FactId& fact_out) {
  for (const OriginSet::Entry& entry : origins.entries()) {
    if (excluded != nullptr && entry.origin == *excluded) continue;
    origin_out = entry.origin;
    fact_out = entry.fact;
    return true;
  }
  return false;
}

void Closure::EvalRule(EvalCtx& ctx, const Node* call,
                       const BasicRule& rule) {
  if (ctx.buffering()) ++ctx.out->rule_evals;
  else ++rule_evals_;
  auto id_at = [&](int pos) {
    return pos == kResultPos ? call->id : call->children[pos]->id;
  };
  // The feedback guards of §4.1: an argument premise must not originate
  // from this call's result rules, a result-involving premise must not
  // originate from this call's argument rules.
  Origin arg_guard = {call->id, '-'};
  Origin result_guard = {call->id, '+'};

  {
    std::vector<FactId>& premises = ctx.scratch_premises;
    premises.clear();
    bool ok = true;
    for (const RuleAtom& atom : rule.premises) {
      int id = id_at(atom.pos);
      switch (atom.pred) {
        case RuleAtom::Pred::kTa:
          if (ta_[id] == kNoFact) ok = false;
          else premises.push_back(ta_[id]);
          break;
        case RuleAtom::Pred::kPa:
          if (pa_[id] == kNoFact) ok = false;
          else premises.push_back(pa_[id]);
          break;
        case RuleAtom::Pred::kTi:
        case RuleAtom::Pred::kPi: {
          const Origin* excluded =
              atom.pos == kResultPos ? &result_guard : &arg_guard;
          const OriginSet& origins =
              (atom.pred == RuleAtom::Pred::kTi ? ti_
                                                : pi_)[CtxFind(ctx, id)];
          Origin origin;
          FactId fact;
          if (!PickOrigin(origins, excluded, origin, fact)) {
            ok = false;
          } else {
            premises.push_back(fact);
            // The stored fact may live on another member of id's
            // equality class; include the =-chain in the justification.
            int stored_at = fact_of_[fact].a;
            if (stored_at != id) {
              ExplainEquality(ctx, stored_at, id, premises);
            }
          }
          break;
        }
        case RuleAtom::Pred::kPiStar: {
          bool involves_result =
              atom.pos == kResultPos || atom.pos2 == kResultPos;
          const Origin* excluded =
              involves_result ? &result_guard : &arg_guard;
          auto it = pistar_.find(
              PairKey(CtxFind(ctx, id), CtxFind(ctx, id_at(atom.pos2))));
          Origin origin;
          FactId fact;
          if (it == pistar_.end() ||
              !PickOrigin(it->second, excluded, origin, fact)) {
            ok = false;
          } else {
            premises.push_back(fact);
          }
          break;
        }
      }
      if (!ok) break;
    }
    if (!ok) return;

    bool premise_involves_result = false;
    for (const RuleAtom& atom : rule.premises) {
      if (atom.pos == kResultPos ||
          (atom.pred == RuleAtom::Pred::kPiStar &&
           atom.pos2 == kResultPos)) {
        premise_involves_result = true;
      }
    }
    char dir = premise_involves_result ? '-' : '+';

    const RuleAtom& conclusion = rule.conclusion;
    switch (conclusion.pred) {
      case RuleAtom::Pred::kTa:
        AddTa(ctx, id_at(conclusion.pos), rule.label, premises);
        break;
      case RuleAtom::Pred::kPa:
        AddPa(ctx, id_at(conclusion.pos), rule.label, premises);
        break;
      case RuleAtom::Pred::kTi:
        AddTi(ctx, id_at(conclusion.pos),
              {call->id, conclusion.pos == kResultPos ? '+' : '-'},
              rule.label, premises);
        break;
      case RuleAtom::Pred::kPi:
        AddPi(ctx, id_at(conclusion.pos),
              {call->id, conclusion.pos == kResultPos ? '+' : '-'},
              rule.label, premises);
        break;
      case RuleAtom::Pred::kPiStar:
        AddPiStar(ctx, id_at(conclusion.pos), id_at(conclusion.pos2),
                  {call->id, dir}, rule.label, premises);
        break;
    }
  }
}

void Closure::ReevalBasicCall(EvalCtx& ctx, const Node* call) {
  if (ctx.buffering()) ++ctx.out->basic_reevals;
  else ++basic_reevals_;
  for (const BasicRule& rule : RulesFor(*call->basic)) {
    EvalRule(ctx, call, rule);
  }
}

void Closure::EvalTriggered(EvalCtx& ctx, std::span<const RuleRef> triggers) {
  // Safe to iterate in place: rule firing only logs or buffers facts
  // (merges happen at ProcessEqMerge time, never inside Add*), so the
  // trigger tables cannot move under us.
  for (const RuleRef& ref : triggers) EvalRule(ctx, ref.call, *ref.rule);
}

void Closure::ReevalCallsTouching(int rep) {
  // Copy: merges triggered by derived equalities may mutate the table.
  std::vector<const Node*> calls = touching_calls_[rep];
  for (const Node* call : calls) ReevalBasicCall(direct_ctx_, call);
}

// ---------------------------------------------------------------------
// Metrics publication.

namespace {

// Groups a derivation-rule label into its Table-2 family. Labels are
// stable strings (closure.cc literals or BasicRule labels), so prefix
// tests are enough.
std::string_view RuleFamily(std::string_view rule) {
  if (rule.starts_with("axiom")) return "axiom";        // incl. "axiom for ="
  if (rule.starts_with("=:")) return "equality";
  if (rule.starts_with("pi*")) return "pistar";
  if (rule.starts_with("let:")) return "let";
  if (rule.starts_with("alterability")) return "read_write";
  if (rule == "ta => pa" || rule == "ti => pi") return "implication";
  if (rule == "join of partial inferabilities") return "join";
  return "basic_function";
}

std::string_view KindName(Fact::Kind kind) {
  switch (kind) {
    case Fact::Kind::kTa: return "ta";
    case Fact::Kind::kPa: return "pa";
    case Fact::Kind::kTi: return "ti";
    case Fact::Kind::kPi: return "pi";
    case Fact::Kind::kPiStar: return "pistar";
    case Fact::Kind::kEq: return "eq";
  }
  return "?";
}

}  // namespace

void Closure::FlushMetrics() {
  if (obs_ == nullptr) return;
  obs::MetricsRegistry& metrics = obs_->metrics;
  metrics.counter("closure.builds")->Increment();
  metrics.counter("closure.facts.total")->Increment(steps_.size());
  metrics.counter("closure.fixpoint.rounds")->Increment(rounds_);
  metrics.counter("closure.uf.finds")->Increment(find_calls_);
  metrics.counter("closure.add.attempts")->Increment(add_attempts_);
  metrics.counter("closure.basic_call.reevals")->Increment(basic_reevals_);
  metrics.counter("closure.eq.merges")->Increment(eq_merges_);
  metrics.counter("closure.delta.rule_evals")->Increment(rule_evals_);
  if (parallel_rounds_ > 0) {
    metrics.counter("closure.parallel.rounds")->Increment(parallel_rounds_);
    metrics.counter("closure.parallel.chunks")->Increment(parallel_chunks_);
  }
  if (warm_started_ && !retracted_) {
    metrics.counter("closure.delta.warm_starts")->Increment();
    metrics.counter("closure.delta.replayed_facts")
        ->Increment(replayed_facts_);
    metrics.counter("closure.delta.new_facts")
        ->Increment(steps_.size() - replayed_facts_);
  }
  if (retracted_) {
    metrics.counter("closure.retract.builds")->Increment();
    metrics.counter("closure.retract.cone_facts")
        ->Increment(retracted_facts_);
    metrics.counter("closure.retract.replayed_facts")
        ->Increment(replayed_facts_);
    metrics.counter("closure.retract.rederived_facts")
        ->Increment(steps_.size() - replayed_facts_);
  }

  // Per-family and per-kind fact counts come from one pass over the
  // derivation log — nothing in the hot path pays for them.
  std::array<uint64_t, 6> by_kind{};
  std::map<std::string_view, uint64_t> by_family;
  for (const DerivationStep& step : steps_) {
    ++by_kind[static_cast<size_t>(step.fact.kind)];
    ++by_family[RuleFamily(step.rule)];
  }
  for (size_t k = 0; k < by_kind.size(); ++k) {
    if (by_kind[k] == 0) continue;
    metrics
        .counter(common::StrCat("closure.facts.kind.",
                                KindName(static_cast<Fact::Kind>(k))))
        ->Increment(by_kind[k]);
  }
  for (const auto& [family, count] : by_family) {
    metrics.counter(common::StrCat("closure.facts.family.", family))
        ->Increment(count);
  }
}

// ---------------------------------------------------------------------
// Queries and rendering.

bool Closure::HasTi(int id) const { return !ti_[Rep(id)].empty(); }

bool Closure::HasPi(int id) const {
  return HasTi(id) || !pi_[Rep(id)].empty();
}

bool Closure::AreEqual(int id1, int id2) const {
  return Rep(id1) == Rep(id2);
}

FactId Closure::TiFact(int id) const {
  const OriginSet& origins = ti_[Rep(id)];
  return origins.empty() ? kNoFact : origins.entries()[0].fact;
}

FactId Closure::PiFact(int id) const {
  const OriginSet& origins = pi_[Rep(id)];
  if (!origins.empty()) return origins.entries()[0].fact;
  return TiFact(id);
}

std::string Closure::FactSetDigest() const {
  int n = set_->node_count();
  std::string out;
  out.reserve(static_cast<size_t>(n) * 4 + 32);
  // Per-occurrence predicate bits, one hex digit per occurrence.
  for (int id = 1; id <= n; ++id) {
    unsigned bits = (HasTa(id) ? 1u : 0u) | (HasPa(id) ? 2u : 0u) |
                    (HasTi(id) ? 4u : 0u) | (HasPi(id) ? 8u : 0u);
    out.push_back("0123456789abcdef"[bits]);
  }
  out.push_back('|');
  // Equality partition, canonicalized: each occurrence maps to the
  // smallest member of its class.
  std::vector<int> leader(n + 1, 0);
  for (int id = 1; id <= n; ++id) {
    int rep = Rep(id);
    if (leader[rep] == 0) leader[rep] = id;  // ids ascend: first is min
  }
  for (int id = 1; id <= n; ++id) {
    out += common::StrCat(leader[Rep(id)], ",");
  }
  out.push_back('|');
  // pi* pairs as (min member, min member), sorted for determinism.
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(pistar_.size());
  for (const auto& [key, origins] : pistar_) {
    if (origins.empty()) continue;
    pairs.emplace_back(leader[static_cast<int>(key >> 32)],
                       leader[static_cast<int>(key & 0xffffffffu)]);
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  for (const auto& [a, b] : pairs) {
    out += common::StrCat(a, ":", b, ",");
  }
  return out;
}

std::string Closure::FactToString(const Fact& fact) const {
  switch (fact.kind) {
    case Fact::Kind::kTa:
      return common::StrCat("ta[", set_->ShortLabel(fact.a), "]");
    case Fact::Kind::kPa:
      return common::StrCat("pa[", set_->ShortLabel(fact.a), "]");
    case Fact::Kind::kTi:
      return common::StrCat("ti[", set_->ShortLabel(fact.a), ", ",
                            fact.origin.ToString(), "]");
    case Fact::Kind::kPi:
      return common::StrCat("pi[", set_->ShortLabel(fact.a), ", ",
                            fact.origin.ToString(), "]");
    case Fact::Kind::kPiStar:
      return common::StrCat("pi*[(", set_->ShortLabel(fact.a), ", ",
                            set_->ShortLabel(fact.b), "), ",
                            fact.origin.ToString(), "]");
    case Fact::Kind::kEq:
      return common::StrCat("=[", set_->ShortLabel(fact.a), ", ",
                            set_->ShortLabel(fact.b), "]");
  }
  return "?";
}

std::string Closure::ExplainFact(FactId fact) const {
  return ExplainFacts({fact});
}

std::string Closure::ExplainFacts(const std::vector<FactId>& facts) const {
  // Collect the supporting sub-derivation, then print in derivation
  // order (premises always precede conclusions because FactIds grow).
  // Purely local state: safe for concurrent callers.
  std::vector<bool> needed(steps_.size(), false);
  std::vector<FactId> stack(facts.begin(), facts.end());
  while (!stack.empty()) {
    FactId current = stack.back();
    stack.pop_back();
    if (current == kNoFact || needed[current]) continue;
    needed[current] = true;
    for (FactId premise : premises(current)) {
      stack.push_back(premise);
    }
  }
  std::string out;
  for (FactId id = 0; id < static_cast<FactId>(steps_.size()); ++id) {
    if (!needed[id]) continue;
    const DerivationStep& step = steps_[id];
    out += FactToString(step.fact);
    out += "   (";
    out += step.rule;
    out += ")\n";
  }
  return out;
}

}  // namespace oodbsec::core
