// A small work-stealing thread pool, shared by the batch analysis
// service (one long-lived pool per service) and the closure engine (one
// short-lived crew per Closure::Run when closure_threads > 1).
//
// Design notes. Each worker owns a deque: it pops its own work LIFO
// (the task it just produced is the one whose data is still hot) and
// steals from siblings FIFO (the oldest task in a victim's queue is the
// least likely to still be cache-resident there). Submission
// round-robins across the worker deques so a batch fans out evenly
// before any stealing is needed.
//
// All deques sit behind one mutex. That is deliberate: the tasks this
// pool runs — closure fixpoints and requirement checks over unfolded
// programs — cost milliseconds each, so per-deque locks or lock-free
// Chase-Lev deques would buy nothing measurable while costing a great
// deal of subtlety. The lock is held only to move one std::function in
// or out.
#ifndef OODBSEC_CORE_THREAD_POOL_H_
#define OODBSEC_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace oodbsec::core {

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to at least 1). With `obs`, the
  // pool reports scheduling metrics: tasks executed per worker
  // ("pool.worker<i>.tasks"), steal counts ("pool.steals"), and the
  // queue depth observed at each submit ("pool.queue_depth"). All of
  // these are scheduling-dependent — the "pool." prefix marks them as
  // nondeterministic, unlike every other layer's metrics.
  explicit ThreadPool(int threads, obs::Observability* obs = nullptr);

  // Drains nothing: outstanding tasks still run to completion before the
  // workers exit. Call Wait() first if completion must precede other
  // shutdown work.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task`. Tasks may themselves call Submit (the pending count
  // covers transitively spawned work), but must not call Wait.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished executing. Only the
  // owning thread may call this — which may itself be a worker of a
  // *different* pool (a closure build running on a service worker owns
  // its round crew and waits on it), but never a worker of this one.
  void Wait();

  int thread_count() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop(size_t index);
  // Pops own work LIFO, else steals FIFO. Caller holds mu_.
  bool PopTask(size_t index, std::function<void()>& task);

  std::mutex mu_;
  std::condition_variable work_cv_;  // signalled on Submit and shutdown
  std::condition_variable done_cv_;  // signalled when pending_ hits 0
  std::vector<std::deque<std::function<void()>>> queues_;
  std::vector<std::thread> workers_;
  size_t next_queue_ = 0;  // round-robin submission cursor
  size_t pending_ = 0;     // submitted but not yet finished
  bool stop_ = false;

  // Metric handles (null when the pool runs unobserved); resolved once
  // at construction, incremented with relaxed atomics thereafter.
  obs::Counter* tasks_counter_ = nullptr;
  obs::Counter* steals_counter_ = nullptr;
  obs::Histogram* queue_depth_ = nullptr;
  std::vector<obs::Counter*> worker_tasks_;
};

}  // namespace oodbsec::core

#endif  // OODBSEC_CORE_THREAD_POOL_H_
