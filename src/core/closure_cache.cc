#include "core/closure_cache.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "obs/trace.h"
#include "snapshot/snapshot_store.h"

namespace oodbsec::core {

ClosureCache::ClosureCache(const schema::Schema& schema,
                           ClosureOptions options, size_t capacity,
                           obs::Observability* obs,
                           std::shared_ptr<snapshot::SnapshotStore> store)
    : schema_(schema),
      options_(options),
      capacity_(capacity == 0 ? 1 : capacity),
      obs_(obs),
      store_(std::move(store)) {}

ClosureCache::ClosureCache(const schema::Schema& schema,
                           ClosureOptions options, size_t capacity,
                           obs::Observability* obs, std::string snapshot_dir)
    : ClosureCache(schema, options, capacity, obs,
                   snapshot::ResolveStore(nullptr, snapshot_dir)) {}

std::string ClosureCache::KeyFor(const std::vector<std::string>& roots) {
  std::string key;
  for (const std::string& root : roots) {
    key += root;
    key += '|';
  }
  return key;
}

std::shared_ptr<const CachedAnalysis> ClosureCache::FindExact(
    const std::vector<std::string>& roots) {
  auto it = entries_.find(KeyFor(roots));
  if (it == entries_.end()) return nullptr;
  ++stats_.exact_hits;
  if (obs_ != nullptr) {
    obs_->metrics.counter("closure.cache.exact_hits")->Increment();
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.entry;
}

std::shared_ptr<const CachedAnalysis> ClosureCache::FindLargestSubset(
    const std::vector<std::string>& roots) const {
  std::vector<std::string> sorted(roots);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  const CachedAnalysis* best = nullptr;
  std::shared_ptr<const CachedAnalysis> best_entry;
  for (const auto& [key, slot] : entries_) {
    const CachedAnalysis& candidate = *slot.entry;
    if (candidate.sorted_roots.size() >= sorted.size()) continue;
    if (!std::includes(sorted.begin(), sorted.end(),
                       candidate.sorted_roots.begin(),
                       candidate.sorted_roots.end())) {
      continue;
    }
    // Largest subset wins — it replays the most facts. Ties break
    // toward the lexicographically smallest root list, so the choice
    // (and thus the warm-built derivation log) never depends on hash
    // iteration order.
    if (best == nullptr ||
        candidate.sorted_roots.size() > best->sorted_roots.size() ||
        (candidate.sorted_roots.size() == best->sorted_roots.size() &&
         candidate.sorted_roots < best->sorted_roots)) {
      best = &candidate;
      best_entry = slot.entry;
    }
  }
  return best_entry;
}

std::shared_ptr<const CachedAnalysis> ClosureCache::FindSmallestSuperset(
    const std::vector<std::string>& roots) const {
  std::vector<std::string> sorted(roots);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  const CachedAnalysis* best = nullptr;
  std::shared_ptr<const CachedAnalysis> best_entry;
  for (const auto& [key, slot] : entries_) {
    const CachedAnalysis& candidate = *slot.entry;
    if (candidate.sorted_roots.size() <= sorted.size()) continue;
    // The overlap gate: retraction replays the surviving facts, so it
    // only beats a warm build when most of the superset survives. Root
    // count proxies fact count here (roots unfold to comparable-size
    // programs); half is where the cone stops being the smaller side.
    if (candidate.sorted_roots.size() > sorted.size() * 2) continue;
    if (!std::includes(candidate.sorted_roots.begin(),
                       candidate.sorted_roots.end(), sorted.begin(),
                       sorted.end())) {
      continue;
    }
    // Smallest superset wins — it has the smallest cone to delete. Ties
    // break toward the lexicographically smallest root list, so the
    // choice never depends on hash iteration order.
    if (best == nullptr ||
        candidate.sorted_roots.size() < best->sorted_roots.size() ||
        (candidate.sorted_roots.size() == best->sorted_roots.size() &&
         candidate.sorted_roots < best->sorted_roots)) {
      best = &candidate;
      best_entry = slot.entry;
    }
  }
  return best_entry;
}

std::shared_ptr<const CachedAnalysis> ClosureCache::BuildRetracted(
    const std::vector<std::string>& roots, const CachedAnalysis& base,
    obs::SpanId parent) const {
  if (base.closure == nullptr) return nullptr;
  obs::ScopedSpan span(obs_ != nullptr ? &obs_->tracer : nullptr,
                       "closure.build", parent);
  auto set_or = unfold::UnfoldedSet::Build(schema_, roots, obs_);
  if (!set_or.ok()) return nullptr;
  std::unique_ptr<unfold::UnfoldedSet> set = std::move(set_or).value();
  std::unique_ptr<Closure> closure =
      Closure::Retract(*set, options_, obs_, *base.closure);
  if (closure == nullptr) return nullptr;
  auto entry = std::make_shared<CachedAnalysis>();
  entry->roots = roots;
  entry->sorted_roots = roots;
  std::sort(entry->sorted_roots.begin(), entry->sorted_roots.end());
  entry->sorted_roots.erase(
      std::unique(entry->sorted_roots.begin(), entry->sorted_roots.end()),
      entry->sorted_roots.end());
  entry->closure = std::move(closure);
  entry->set = std::move(set);
  return entry;
}

std::shared_ptr<const CachedAnalysis> ClosureCache::RetractEntry(
    const std::vector<std::string>& old_roots,
    const std::vector<std::string>& new_roots) {
  // Peek, not FindExact: a revoke landing on an already-cached state is
  // not a request-path hit and must not skew the hit-rate stats.
  auto resident = entries_.find(KeyFor(new_roots));
  if (resident != entries_.end()) return resident->second.entry;
  auto base = entries_.find(KeyFor(old_roots));
  if (base == entries_.end()) return nullptr;
  std::shared_ptr<const CachedAnalysis> entry =
      BuildRetracted(new_roots, *base->second.entry);
  if (entry == nullptr) return nullptr;
  CountRetract();
  Insert(entry);
  return entry;
}

common::Result<std::shared_ptr<const CachedAnalysis>>
ClosureCache::BuildDetached(const std::vector<std::string>& roots,
                            const CachedAnalysis* warm_base,
                            obs::SpanId parent) const {
  obs::ScopedSpan span(obs_ != nullptr ? &obs_->tracer : nullptr,
                       "closure.build", parent);
  OODBSEC_ASSIGN_OR_RETURN(std::unique_ptr<unfold::UnfoldedSet> set,
                           unfold::UnfoldedSet::Build(schema_, roots, obs_));
  auto entry = std::make_shared<CachedAnalysis>();
  entry->roots = roots;
  entry->sorted_roots = roots;
  std::sort(entry->sorted_roots.begin(), entry->sorted_roots.end());
  entry->sorted_roots.erase(
      std::unique(entry->sorted_roots.begin(), entry->sorted_roots.end()),
      entry->sorted_roots.end());
  entry->closure = std::make_unique<Closure>(
      *set, options_, obs_,
      warm_base != nullptr ? warm_base->closure.get() : nullptr);
  entry->set = std::move(set);
  return std::shared_ptr<const CachedAnalysis>(std::move(entry));
}

void ClosureCache::Insert(std::shared_ptr<const CachedAnalysis> entry) {
  std::string key = KeyFor(entry->roots);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  if (entries_.size() >= capacity_) {
    // Evict the least-recently-used entry. Holders of its shared_ptr
    // (including builds currently replaying it) are unaffected.
    ++stats_.evictions;
    if (obs_ != nullptr) {
      obs_->metrics.counter("closure.cache.evictions")->Increment();
    }
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  entries_.emplace(std::move(key),
                   Slot{std::move(entry), lru_.begin()});
}

void ClosureCache::CountRetract() {
  ++stats_.retract_builds;
  if (obs_ != nullptr) {
    obs_->metrics.counter("closure.cache.retract_builds")->Increment();
  }
}

void ClosureCache::CountBuild(bool warm) {
  if (warm) {
    ++stats_.warm_builds;
  } else {
    ++stats_.cold_builds;
  }
  if (obs_ != nullptr) {
    obs_->metrics
        .counter(warm ? "closure.cache.warm_builds"
                      : "closure.cache.cold_builds")
        ->Increment();
  }
}

std::shared_ptr<const CachedAnalysis> ClosureCache::FindSnapshot(
    const std::vector<std::string>& roots) {
  if (store_ == nullptr) return nullptr;
  auto loaded = store_->Find(schema_, options_, roots, obs_);
  const char* counter = nullptr;
  std::shared_ptr<const CachedAnalysis> entry;
  if (loaded.ok()) {
    // The store verifies the stored root list against the request
    // (signature collisions read as kNotFound), so ok means hit.
    ++stats_.snapshot_hits;
    counter = "closure.cache.snapshot_hits";
    entry = std::move(loaded).value();
  } else if (loaded.status().code() == common::StatusCode::kNotFound) {
    ++stats_.snapshot_misses;
    counter = "closure.cache.snapshot_misses";
  } else {
    // Truncated / corrupt / wrong fingerprint or version: fall back to
    // a build, never fail the request.
    ++stats_.snapshot_invalid;
    counter = "closure.cache.snapshot_invalid";
  }
  if (obs_ != nullptr) obs_->metrics.counter(counter)->Increment();
  return entry;
}

common::Status ClosureCache::SaveCacheSnapshot(
    const CachedAnalysis& entry) const {
  if (store_ == nullptr) {
    return common::FailedPreconditionError(
        "closure cache has no snapshot store");
  }
  return store_->Save(schema_, options_, entry);
}

common::Status ClosureCache::SaveCacheSnapshot() const {
  if (store_ == nullptr) {
    return common::FailedPreconditionError(
        "closure cache has no snapshot store");
  }
  common::Status first_error;
  for (const std::string& key : lru_) {
    common::Status status = SaveCacheSnapshot(*entries_.at(key).entry);
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

size_t ClosureCache::LoadCacheSnapshot() {
  if (store_ == nullptr) return 0;
  size_t invalid = 0;
  std::vector<std::shared_ptr<const CachedAnalysis>> entries =
      store_->LoadAll(schema_, options_, capacity_, &invalid, obs_);
  stats_.snapshot_invalid += invalid;
  if (obs_ != nullptr && invalid > 0) {
    obs_->metrics.counter("closure.cache.snapshot_invalid")
        ->Increment(invalid);
  }
  for (auto& entry : entries) {
    ++stats_.snapshot_hits;
    if (obs_ != nullptr) {
      obs_->metrics.counter("closure.cache.snapshot_hits")->Increment();
    }
    Insert(std::move(entry));
  }
  return entries.size();
}

common::Result<std::shared_ptr<const CachedAnalysis>>
ClosureCache::GetOrBuild(const std::vector<std::string>& roots) {
  if (std::shared_ptr<const CachedAnalysis> hit = FindExact(roots)) {
    return hit;
  }
  if (std::shared_ptr<const CachedAnalysis> loaded = FindSnapshot(roots)) {
    Insert(loaded);
    return loaded;
  }
  if (std::shared_ptr<const CachedAnalysis> super =
          FindSmallestSuperset(roots)) {
    if (std::shared_ptr<const CachedAnalysis> entry =
            BuildRetracted(roots, *super)) {
      CountRetract();
      Insert(entry);
      return entry;
    }
  }
  std::shared_ptr<const CachedAnalysis> base = FindLargestSubset(roots);
  OODBSEC_ASSIGN_OR_RETURN(std::shared_ptr<const CachedAnalysis> entry,
                           BuildDetached(roots, base.get()));
  CountBuild(entry->closure->warm_started());
  Insert(entry);
  return entry;
}

}  // namespace oodbsec::core
