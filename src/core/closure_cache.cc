#include "core/closure_cache.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "obs/trace.h"

namespace oodbsec::core {

ClosureCache::ClosureCache(const schema::Schema& schema,
                           ClosureOptions options, size_t capacity,
                           obs::Observability* obs)
    : schema_(schema),
      options_(options),
      capacity_(capacity == 0 ? 1 : capacity),
      obs_(obs) {}

std::string ClosureCache::KeyFor(const std::vector<std::string>& roots) {
  std::string key;
  for (const std::string& root : roots) {
    key += root;
    key += '|';
  }
  return key;
}

std::shared_ptr<const CachedAnalysis> ClosureCache::FindExact(
    const std::vector<std::string>& roots) {
  auto it = entries_.find(KeyFor(roots));
  if (it == entries_.end()) return nullptr;
  ++stats_.exact_hits;
  if (obs_ != nullptr) {
    obs_->metrics.counter("closure.cache.exact_hits")->Increment();
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.entry;
}

std::shared_ptr<const CachedAnalysis> ClosureCache::FindLargestSubset(
    const std::vector<std::string>& roots) const {
  std::vector<std::string> sorted(roots);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  const CachedAnalysis* best = nullptr;
  std::shared_ptr<const CachedAnalysis> best_entry;
  for (const auto& [key, slot] : entries_) {
    const CachedAnalysis& candidate = *slot.entry;
    if (candidate.sorted_roots.size() >= sorted.size()) continue;
    if (!std::includes(sorted.begin(), sorted.end(),
                       candidate.sorted_roots.begin(),
                       candidate.sorted_roots.end())) {
      continue;
    }
    // Largest subset wins — it replays the most facts. Ties break
    // toward the lexicographically smallest root list, so the choice
    // (and thus the warm-built derivation log) never depends on hash
    // iteration order.
    if (best == nullptr ||
        candidate.sorted_roots.size() > best->sorted_roots.size() ||
        (candidate.sorted_roots.size() == best->sorted_roots.size() &&
         candidate.sorted_roots < best->sorted_roots)) {
      best = &candidate;
      best_entry = slot.entry;
    }
  }
  return best_entry;
}

common::Result<std::shared_ptr<const CachedAnalysis>>
ClosureCache::BuildDetached(const std::vector<std::string>& roots,
                            const CachedAnalysis* warm_base,
                            obs::SpanId parent) const {
  obs::ScopedSpan span(obs_ != nullptr ? &obs_->tracer : nullptr,
                       "closure.build", parent);
  OODBSEC_ASSIGN_OR_RETURN(std::unique_ptr<unfold::UnfoldedSet> set,
                           unfold::UnfoldedSet::Build(schema_, roots, obs_));
  auto entry = std::make_shared<CachedAnalysis>();
  entry->roots = roots;
  entry->sorted_roots = roots;
  std::sort(entry->sorted_roots.begin(), entry->sorted_roots.end());
  entry->sorted_roots.erase(
      std::unique(entry->sorted_roots.begin(), entry->sorted_roots.end()),
      entry->sorted_roots.end());
  entry->closure = std::make_unique<Closure>(
      *set, options_, obs_,
      warm_base != nullptr ? warm_base->closure.get() : nullptr);
  entry->set = std::move(set);
  return std::shared_ptr<const CachedAnalysis>(std::move(entry));
}

void ClosureCache::Insert(std::shared_ptr<const CachedAnalysis> entry) {
  std::string key = KeyFor(entry->roots);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  if (entries_.size() >= capacity_) {
    // Evict the least-recently-used entry. Holders of its shared_ptr
    // (including builds currently replaying it) are unaffected.
    ++stats_.evictions;
    if (obs_ != nullptr) {
      obs_->metrics.counter("closure.cache.evictions")->Increment();
    }
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  entries_.emplace(std::move(key),
                   Slot{std::move(entry), lru_.begin()});
}

void ClosureCache::CountBuild(bool warm) {
  if (warm) {
    ++stats_.warm_builds;
  } else {
    ++stats_.cold_builds;
  }
  if (obs_ != nullptr) {
    obs_->metrics
        .counter(warm ? "closure.cache.warm_builds"
                      : "closure.cache.cold_builds")
        ->Increment();
  }
}

common::Result<std::shared_ptr<const CachedAnalysis>>
ClosureCache::GetOrBuild(const std::vector<std::string>& roots) {
  if (std::shared_ptr<const CachedAnalysis> hit = FindExact(roots)) {
    return hit;
  }
  std::shared_ptr<const CachedAnalysis> base = FindLargestSubset(roots);
  OODBSEC_ASSIGN_OR_RETURN(std::shared_ptr<const CachedAnalysis> entry,
                           BuildDetached(roots, base.get()));
  CountBuild(entry->closure->warm_started());
  Insert(entry);
  return entry;
}

}  // namespace oodbsec::core
