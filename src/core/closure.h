// The static inference system F(F) (paper §4.1, Table 2) and its closure
// computation.
//
// Terms range over the numbered occurrences of an UnfoldedSet:
//
//   ta[e]              the user may totally alter e
//   pa[e]              the user may partially alter e
//   ti[e, num, dir]    the user may totally infer e
//   pi[e, num, dir]    the user may partially infer e
//   pi*[(e1,e2), num, dir]  the user may infer a proper subset the pair
//                            (e1,e2) must lie in
//   =[e1, e2]          the user can recognize e1 and e2 as equal
//
// (num, dir) records how an inferability was obtained: num is the
// occurrence that produced it ('+' = from the arguments of that
// occurrence, '-' = from its result; num 0 marks axioms of observation /
// equality). The provenance serves two purposes (paper §4.1): two
// *different* partial inferabilities on the same expression join to a
// total one, and a basic-function rule must not feed an inferability
// back to the occurrence that produced it.
//
// Implementation notes:
//  * Equality is an equivalence; it is maintained as a union-find with a
//    proof forest, so every use of an equality premise can be explained
//    by base =-facts (Explain()).
//  * ti/pi/pi* live on equality classes: the Table-2 rules
//    "=[e1,e2], ti[e1] -> ti[e2]" etc. are materialized by class lookup
//    instead of fact copies. Alterability (ta/pa) does NOT propagate
//    through generic equality (only through the specific read/write and
//    let rules), so ta/pa are per-occurrence flags.
//  * Inferability origin sets are capped at a small constant per class;
//    since every guard excludes at most one origin and the join rule
//    needs two, keeping 4 distinct origins preserves completeness while
//    bounding the closure size.
//  * The hot tables are dense: per-occurrence state lives in flat
//    vectors indexed by occurrence id, origin sets are small inline
//    sorted arrays (OriginSet), and derivation premises are stored in
//    one shared arena instead of one heap vector per step. The closure
//    over a production-sized capability list is dominated by dedup
//    lookups (millions of Add* calls for tens of thousands of accepted
//    facts), so the miss path allocates nothing.
//
// Thread-safety contract: all table *mutation* happens on the
// constructing thread. With ClosureOptions::closure_threads > 1, Run()
// additionally spawns a short-lived worker crew, but workers only
// evaluate rules against the frozen round-start state into private
// buffers — every write (dedup, Log(), union-find merge, pi* re-keying)
// still happens sequentially at the round barrier, and the resulting
// derivation log is byte-identical for every thread count (see Run()).
// Run() ends with a full path-compression pass over the union-find,
// after which a Closure is deeply immutable. Every const member
// function (the Has*/TaFact*/AreEqual queries, ExplainFact*,
// FactToString) is a pure read and safe to call from many threads
// concurrently — this is what lets the service layer share one Closure
// among parallel requirement checks.
#ifndef OODBSEC_CORE_CLOSURE_H_
#define OODBSEC_CORE_CLOSURE_H_

#include <array>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "core/basic_rules.h"
#include "obs/obs.h"
#include "unfold/unfolded.h"

namespace oodbsec::core {

struct Origin {
  int num = 0;
  char dir = '+';

  friend auto operator<=>(const Origin&, const Origin&) = default;
  std::string ToString() const;
};

using FactId = int;
inline constexpr FactId kNoFact = -1;

// Maximum distinct (num, dir) origins kept per class. Every rule guard
// excludes at most one origin and the pi-join needs two, so four keeps
// the system complete while bounding the state (see the header comment).
inline constexpr size_t kOriginCap = 4;

struct Fact {
  enum class Kind { kTa, kPa, kTi, kPi, kPiStar, kEq };

  Kind kind = Kind::kTa;
  int a = 0;       // occurrence id
  int b = 0;       // second occurrence (kPiStar, kEq)
  Origin origin;   // kTi / kPi / kPiStar
};

// A small Origin -> FactId map with at most kOriginCap entries, kept
// sorted by Origin — the dense replacement for std::map in the ti/pi/pi*
// tables, with identical iteration order.
class OriginSet {
 public:
  struct Entry {
    Origin origin;
    FactId fact = kNoFact;
  };

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ >= kOriginCap; }

  // kNoFact when absent.
  FactId Lookup(Origin origin) const {
    for (size_t i = 0; i < size_; ++i) {
      if (entries_[i].origin == origin) return entries_[i].fact;
    }
    return kNoFact;
  }

  // Sorted insert-if-absent; no-op when the origin is present or the set
  // is full (mirrors the capped std::map::emplace it replaces).
  void Insert(Origin origin, FactId fact) {
    size_t at = 0;
    while (at < size_ && entries_[at].origin < origin) ++at;
    if (at < size_ && entries_[at].origin == origin) return;
    if (full()) return;
    for (size_t i = size_; i > at; --i) entries_[i] = entries_[i - 1];
    entries_[at] = {origin, fact};
    ++size_;
  }

  void Clear() { size_ = 0; }

  // Entries in increasing Origin order.
  std::span<const Entry> entries() const { return {entries_.data(), size_}; }

 private:
  std::array<Entry, kOriginCap> entries_;
  uint8_t size_ = 0;
};

// Derivation log entry. Premises live in the closure's shared arena;
// resolve them with Closure::premises(fact_id). `rule` references either
// a string literal or a BasicRule label (both have static storage).
struct DerivationStep {
  Fact fact;
  std::string_view rule;       // e.g. "axiom: constant", ">=: probe …"
  uint32_t premise_offset = 0;
  uint32_t premise_count = 0;
};

// Premise lists are passed as borrowed spans; the initializer-list
// overloads on the Add* functions let call sites pass brace lists
// without allocating (std::span can't bind one until C++26).
using Premises = std::span<const FactId>;

// A complete derivation log lifted out of some earlier closure — the
// payload of a persisted snapshot (src/snapshot). Ids are in the id
// space of the unfold the log was computed over; replaying it into a
// new Closure requires an UnfoldedSet built over the *same* root list
// (unfolding is deterministic, so the id spaces coincide). Rule
// string_views must outlive every closure replayed from the log — the
// snapshot loader guarantees this by interning them process-wide.
struct ReplayLog {
  std::vector<DerivationStep> steps;
  std::vector<FactId> premise_arena;
};

// One derivation step in the packed snapshot layout (src/snapshot
// packed_store): a fixed-width, trivially-copyable image of
// DerivationStep with the rule string replaced by an index into a
// per-record label table. Arrays of these are written verbatim into
// packed segments and read back by aliasing the mapped bytes — no
// per-step decode — so the layout is part of the v3 record format:
// change it and bump the format version.
struct PackedStep {
  int32_t a = 0;
  int32_t b = 0;
  int32_t origin_num = 0;
  uint32_t rule = 0;            // index into the record's label table
  uint32_t premise_offset = 0;  // into the record's premise arena
  uint32_t premise_count = 0;
  uint8_t kind = 0;             // Fact::Kind as u8
  uint8_t origin_dir = '+';
  uint8_t pad[2] = {0, 0};
};
static_assert(sizeof(PackedStep) == 28);
static_assert(std::is_trivially_copyable_v<PackedStep>);

// A derivation log borrowed straight from a mapped packed record: steps
// and premise arena alias the mapping, `rules` is the record's label
// table resolved to interned (process-lifetime) string_views. Replaying
// copies everything into the closure's own tables, so the view — and
// the mapping behind it — only needs to outlive the constructor call.
// The caller must pre-validate ids and premise references, exactly as
// with ReplayLog.
struct ReplayView {
  std::span<const PackedStep> steps;
  std::span<const FactId> premise_arena;
  std::span<const std::string_view> rules;
};

// Ablation switches for experiment A1 (see DESIGN.md §7). All on by
// default; each "off" weakens the analyzer and must lose a documented
// detection.
struct ClosureOptions {
  // The pessimistic axiom "=[x1,x2] for outer-most argument variables of
  // the same type".
  bool same_type_argument_equality = true;
  // The rule pi[e,n1,d1], pi[e,n2,d2] -> ti[e,n1,d1].
  bool pi_join_to_ti = true;
  // The per-basic-function rule sets (basic_rules.h).
  bool basic_function_rules = true;
  // The =-based rules for reads/writes (equal objects make reads equal,
  // a written value equals subsequent reads, written-value alterability
  // transfers to reads).
  bool write_read_equality = true;
  // Strength of the read-object rule "pa[e1] -> ?a[r_att(e1)]" (altering
  // *which* object is read alters the read result). Under the paper's
  // exists-D semantics (Definition 2 quantifies the database state
  // existentially) the conclusion is total alterability; the default is
  // the moderate partial reading, which preserves the paper's intended
  // contrast that updateSalary becomes *totally* controllable only when
  // w_budget is also granted (§3.1).
  bool read_object_total_alterability = false;

  // Worker threads for the fixpoint rounds inside Run(): 1 (default)
  // evaluates every round on the calling thread, 0 resolves to the
  // hardware concurrency, N > 1 caps the round crew at N. This is
  // purely an execution knob — the derivation log and every published
  // closure.* metric are byte-identical for all values (see Run()) —
  // which is why operator== below ignores it: closures built at
  // different thread counts warm-start from each other, share cache
  // entries, and replay each other's snapshots.
  int closure_threads = 1;

  // Warm-start seeding requires identical *semantics* on both sides;
  // closure_threads never changes the result and is excluded.
  friend bool operator==(const ClosureOptions& x, const ClosureOptions& y) {
    return x.same_type_argument_equality == y.same_type_argument_equality &&
           x.pi_join_to_ti == y.pi_join_to_ti &&
           x.basic_function_rules == y.basic_function_rules &&
           x.write_read_equality == y.write_read_equality &&
           x.read_object_total_alterability ==
               y.read_object_total_alterability;
  }
};

class Closure {
 public:
  // Computes the full closure over `set`. The set must outlive the
  // closure. `obs` (optional) is used during construction only: the
  // build runs under a "closure" span with seed / fixpoint-round /
  // compress children, and fact counts per rule family, union-find
  // finds, and dedup-lookup counts land in the metrics registry. `obs`
  // is not part of the closure semantics (cache keys ignore it).
  //
  // Warm start: `warm_base` (optional) is a completed closure whose
  // roots form a sub-multiset of `set`'s, computed under the same
  // options. Its derivation log is replayed into this closure's tables
  // (translating occurrence ids through the per-root contiguous-range
  // invariant documented on unfold::Root), and the fixpoint then derives
  // only the delta contributed by the additional roots. The base is
  // read during construction only — it may be evicted or destroyed
  // afterwards. An incompatible base (different options, a root missing
  // from `set`, mismatched unfold shapes) is ignored and the build falls
  // back to a cold run; warm_started() reports which path was taken.
  // Warm and cold runs over the same set derive the same fact *set*
  // (compare with FactSetDigest()), but generally different derivation
  // *logs* — fact_count() and ExplainFact() output depend on the route.
  explicit Closure(const unfold::UnfoldedSet& set, ClosureOptions options = {},
                   obs::Observability* obs = nullptr,
                   const Closure* warm_base = nullptr);

  // Snapshot warm start: replays `log` — the complete derivation log of
  // a finished closure over the same root list (see ReplayLog) — and
  // then runs Seed() + the fixpoint, which merely dedup against the
  // replayed tables when the log is complete. The result is
  // byte-identical to the closure the log was saved from (same steps,
  // same premises, same derivation text) at replay cost instead of
  // fixpoint cost. The caller must pre-validate the log (ids in range,
  // premises acyclic) — the snapshot loader does; out-of-range ids here
  // are undefined behaviour. Counts as warm_started().
  Closure(const unfold::UnfoldedSet& set, ClosureOptions options,
          obs::Observability* obs, const ReplayLog& log);

  // Same contract as the ReplayLog constructor, but reading the packed
  // in-place layout (see ReplayView): steps and premises are consumed
  // directly from the caller's mapping without materializing an
  // intermediate ReplayLog.
  Closure(const unfold::UnfoldedSet& set, ClosureOptions options,
          obs::Observability* obs, const ReplayView& view);

  // Retraction (DRed, delete-and-rederive): builds the closure over
  // `set` — whose roots must form a sub-multiset of `base`'s, computed
  // under the same options — by *shrinking* the base instead of
  // rebuilding. The base's derivation log is scanned once to over-delete
  // the cone of steps that mention a removed occurrence (as subject,
  // pair partner, origin, or transitively through a premise), the
  // surviving steps are replayed into fresh tables, and the deleted
  // facts with alternate support are re-derived: Seed() re-evaluates
  // every axiom and basic-function rule, and a targeted pass re-fires
  // the structural rules at exactly the occurrences and equality
  // classes the cone touched. The standard semi-naive frontier then
  // runs to completion, so the result derives the same fact *set* as a
  // cold build over `set` (FactSetDigest equality — the log and
  // derivation routes may differ, as with warm starts).
  //
  // Returns nullptr when the base is incompatible (different options, a
  // root of `set` missing from the base, mismatched unfold shapes) —
  // the caller falls back to a cold or warm build. The base is read
  // during construction only. Counts as warm_started(); retracted()
  // reports the path.
  static std::unique_ptr<Closure> Retract(const unfold::UnfoldedSet& set,
                                          ClosureOptions options,
                                          obs::Observability* obs,
                                          const Closure& base);

  Closure(const Closure&) = delete;
  Closure& operator=(const Closure&) = delete;

  const unfold::UnfoldedSet& set() const { return *set_; }

  // True when a warm_base was accepted and replayed.
  bool warm_started() const { return warm_started_; }
  // Facts replayed from the base (prefix of steps()); 0 for cold runs.
  size_t replayed_fact_count() const { return replayed_facts_; }
  // True when this closure was produced by Retract().
  bool retracted() const { return retracted_; }
  // Over-deleted base facts (the DRed cone); 0 unless retracted().
  size_t retracted_fact_count() const { return retracted_facts_; }
  // Facts appended after the survivor replay: re-seeded axioms,
  // alternate-support re-derivations, and their consequences.
  size_t rederived_fact_count() const {
    return steps_.size() - replayed_facts_;
  }

  // Canonical, order-insensitive summary of the derived fact set:
  // per-occurrence predicate bits, the equality partition, and the set
  // of pi* class pairs. Derivation routes, origin provenance, and log
  // order are deliberately excluded — two closures over the same
  // unfolded program agree semantically iff their digests are equal.
  // This is the equivalence the warm-start tests assert.
  std::string FactSetDigest() const;

  // Capability queries by occurrence id. pi/pa include ti/ta (the
  // implication rules are materialized). All queries are safe for
  // concurrent readers (see the thread-safety contract above).
  bool HasTa(int id) const { return ta_[id] != kNoFact; }
  bool HasPa(int id) const { return pa_[id] != kNoFact; }
  bool HasTi(int id) const;
  bool HasPi(int id) const;
  bool AreEqual(int id1, int id2) const;

  // Supporting facts for derivation printing; kNoFact when absent.
  FactId TaFact(int id) const { return ta_[id]; }
  FactId PaFact(int id) const { return pa_[id]; }
  FactId TiFact(int id) const;
  FactId PiFact(int id) const;

  size_t fact_count() const { return steps_.size(); }
  const std::vector<DerivationStep>& steps() const { return steps_; }
  // The premise FactIds of one derivation step.
  std::span<const FactId> premises(FactId fact) const {
    const DerivationStep& step = steps_[fact];
    return {premise_arena_.data() + step.premise_offset, step.premise_count};
  }

  // Renders one fact, e.g. "ti[5:r_salary(broker), 6, -]".
  std::string FactToString(const Fact& fact) const;
  // Renders the full derivation supporting `fact` (premises first,
  // Figure-1 style), one step per line.
  std::string ExplainFact(FactId fact) const;
  std::string ExplainFacts(const std::vector<FactId>& facts) const;

 private:
  // --- parallel round engine (see Run) ---
  // One buffered conclusion from the read-only half of a round: the
  // fact, its rule label, and a premise slice in the owning chunk's
  // premise pool. Every premise FactId references a fact from an
  // earlier round — the frozen tables never hand out ids minted in the
  // current one — so a candidate is position-independent and the
  // barrier replays it through the ordinary Add*/Log() path unchanged.
  struct Candidate {
    Fact fact;
    std::string_view rule;
    uint32_t premise_offset = 0;
    uint32_t premise_count = 0;
  };
  // Per-chunk output buffer: candidates in evaluation order plus their
  // premise pool, and the work counters accumulated while producing
  // them. The counters are snapshotted into the closure totals at the
  // barrier, in chunk order, so the published metrics are identical
  // for every thread count (and never racy).
  struct ChunkOut {
    std::vector<Candidate> candidates;
    std::vector<FactId> premise_pool;
    uint64_t find_calls = 0;
    uint64_t add_attempts = 0;
    uint64_t rule_evals = 0;
    uint64_t basic_reevals = 0;

    void Clear() {
      candidates.clear();
      premise_pool.clear();
      find_calls = add_attempts = rule_evals = basic_reevals = 0;
    }
  };
  // Evaluation context threaded through every rule-firing helper. The
  // direct context (out == nullptr) mutates the tables through the
  // Add*/Log() tails; a buffering context (out != nullptr) only reads
  // the frozen round-start state and appends candidates to its chunk.
  // Each context owns the scratch one evaluation strand needs — the
  // rule premise buffer and the equality-explanation BFS state — so
  // chunk workers share nothing writable.
  struct EvalCtx {
    ChunkOut* out = nullptr;
    std::vector<FactId> scratch_premises;
    std::vector<int> bfs_prev_node;
    std::vector<FactId> bfs_prev_edge;
    std::vector<int> bfs_queue;
    // Visitation is epoch-stamped so the BFS state never needs clearing.
    std::vector<uint32_t> bfs_seen_epoch;
    uint32_t bfs_epoch = 0;

    bool buffering() const { return out != nullptr; }
  };
  // Lazily-spawned worker pool + per-worker contexts for one Run();
  // defined in closure.cc.
  struct RoundCrew;

  // --- union-find with proof forest ---
  // Mutating find with path compression; single-threaded phases only.
  int Find(int id);
  // Non-mutating find for the frozen evaluation phase: chunk workers
  // walk parent links without path compression (the sequential phases
  // compress; the parent array is stable while workers run).
  int FindRoot(int id) const {
    while (uf_parent_[id] != id) id = uf_parent_[id];
    return id;
  }
  // Find through `ctx`: the mutating find in direct mode, the read-only
  // walk (with chunk-local accounting) in buffering mode.
  int CtxFind(EvalCtx& ctx, int id) {
    if (!ctx.buffering()) return Find(id);
    ++ctx.out->find_calls;
    return FindRoot(id);
  }
  // Post-construction representative lookup: Run() ends with a full
  // compression pass, so every parent link points at the root and this
  // is a single read — safe for concurrent readers (no path-compression
  // writes behind const, unlike the classic mutable-parent find).
  int Rep(int id) const { return uf_parent_[id]; }
  // Appends the base =-fact ids proving id1 == id2 to `out`, using the
  // context's BFS scratch.
  void ExplainEquality(EvalCtx& ctx, int id1, int id2,
                       std::vector<FactId>& out);

  // --- fact derivation (dedup + log + worklist) ---
  // The rule string must have static (or closure-outliving) storage.
  // In direct mode the returned FactId is the logged (or deduplicated)
  // fact; in buffering mode the conclusion is appended to the chunk and
  // kNoFact is returned — no caller on the frozen path consumes Add*
  // return values (the invariant that makes candidate buffers
  // premise-complete; see Run()).
  FactId AddTa(EvalCtx& ctx, int id, std::string_view rule,
               Premises premises);
  FactId AddPa(EvalCtx& ctx, int id, std::string_view rule,
               Premises premises);
  FactId AddTi(EvalCtx& ctx, int id, Origin origin, std::string_view rule,
               Premises premises);
  FactId AddPi(EvalCtx& ctx, int id, Origin origin, std::string_view rule,
               Premises premises);
  FactId AddPiStar(EvalCtx& ctx, int id1, int id2, Origin origin,
                   std::string_view rule, Premises premises);
  FactId AddEq(EvalCtx& ctx, int id1, int id2, std::string_view rule,
               Premises premises);
  FactId Log(Fact fact, std::string_view rule, Premises premises);
  // The buffering tail shared by the Add* functions.
  FactId Buffer(EvalCtx& ctx, const Fact& fact, std::string_view rule,
                Premises premises);

  // Brace-list forwarders (a braced argument prefers an initializer_list
  // parameter, whose backing array lives for the whole call).
  FactId AddTa(EvalCtx& ctx, int id, std::string_view rule,
               std::initializer_list<FactId> premises) {
    return AddTa(ctx, id, rule, Premises{premises.begin(), premises.size()});
  }
  FactId AddPa(EvalCtx& ctx, int id, std::string_view rule,
               std::initializer_list<FactId> premises) {
    return AddPa(ctx, id, rule, Premises{premises.begin(), premises.size()});
  }
  FactId AddTi(EvalCtx& ctx, int id, Origin origin, std::string_view rule,
               std::initializer_list<FactId> premises) {
    return AddTi(ctx, id, origin, rule,
                 Premises{premises.begin(), premises.size()});
  }
  FactId AddPi(EvalCtx& ctx, int id, Origin origin, std::string_view rule,
               std::initializer_list<FactId> premises) {
    return AddPi(ctx, id, origin, rule,
                 Premises{premises.begin(), premises.size()});
  }
  FactId AddPiStar(EvalCtx& ctx, int id1, int id2, Origin origin,
                   std::string_view rule,
                   std::initializer_list<FactId> premises) {
    return AddPiStar(ctx, id1, id2, origin, rule,
                     Premises{premises.begin(), premises.size()});
  }
  FactId AddEq(EvalCtx& ctx, int id1, int id2, std::string_view rule,
               std::initializer_list<FactId> premises) {
    return AddEq(ctx, id1, id2, rule,
                 Premises{premises.begin(), premises.size()});
  }

  // --- premise index ---
  // One candidate rule instantiation: a basic call plus one of its
  // rules. `rule` points into the static per-function catalog, so refs
  // from the same call compare in catalog order by address.
  struct RuleRef {
    const unfold::Node* call = nullptr;
    const BasicRule* rule = nullptr;

    friend bool operator==(const RuleRef& x, const RuleRef& y) {
      return x.call == y.call && x.rule == y.rule;
    }
    friend bool operator<(const RuleRef& x, const RuleRef& y) {
      if (x.call->id != y.call->id) return x.call->id < y.call->id;
      return x.rule < y.rule;
    }
  };
  // Fills the trigger tables: every premise atom of every rule
  // instantiation is indexed under the occurrence (alterability) or
  // class (inferability / pi*) it reads, so a newly derived fact visits
  // only the rules it can complete.
  void BuildPremiseIndex();

  // --- warm start ---
  // Maps every base occurrence id to its id in set_ by matching roots by
  // function name (k-th duplicate to k-th duplicate) and shifting each
  // root's contiguous id range. False when the base is incompatible.
  bool ComputeWarmMap(const Closure& base, std::vector<int>& old_to_new) const;
  // Replays the base derivation log: every step is appended verbatim
  // (ids translated) and applied to the tables, but never enqueued —
  // Seed() + Run() then derive only the delta on top.
  void ReplayBase(const Closure& base, const std::vector<int>& old_to_new);
  // The shared replay core: appends every step of (steps, arena) to this
  // closure's log and applies its table effect, translating ids through
  // `old_to_new` when given (nullptr = identity, the snapshot path).
  void ReplaySteps(std::span<const DerivationStep> steps,
                   std::span<const FactId> arena,
                   const std::vector<int>* old_to_new);
  // ReplaySteps for the packed layout: identical table effects, reading
  // (step, premises, rule label) straight out of the view.
  void ReplayPackedSteps(const ReplayView& view);
  // Applies one already-logged fact to the tables without enqueueing it
  // (the replay half of ReplaySteps / ReplaySurvivors).
  void ApplyReplayedFact(const Fact& fact, FactId id);
  // Table/index allocation shared by every constructor.
  void InitTables();

  // --- retraction (DRed) ---
  struct RetractTag {};
  Closure(const unfold::UnfoldedSet& set, ClosureOptions options,
          obs::Observability* obs, const Closure& base, RetractTag);
  // ComputeWarmMap with the roles reversed: every root of *this* set
  // (the reduced list) must match a distinct base root; base ids inside
  // an unmatched (revoked) root map to 0. False when incompatible.
  bool ComputeShrinkMap(const Closure& base,
                        std::vector<int>& old_to_new) const;
  // Replays the non-deleted base steps, remapping premise FactIds to
  // the compacted log (a survivor's premises all survive — the cone is
  // premise-closed by construction).
  void ReplaySurvivors(const Closure& base,
                       const std::vector<int>& old_to_new,
                       const std::vector<char>& deleted);
  // An over-deleted pi* fact whose endpoints (and origin occurrence)
  // survive the shrink map, recorded in *new* id space. The rederive
  // pass attempts exactly these conclusions instead of sweeping the
  // pair index, keeping the cost proportional to the cone.
  struct DeletedPair {
    int a;
    int b;
    Origin origin;
  };
  // Re-fires the structural (non-basic) rules whose conclusions may
  // have been over-deleted: `touched` holds the surviving occurrence
  // ids the cone mentioned, sorted unique, and `pairs` the over-deleted
  // pi* conclusions to probe for one-step alternate support. Additions
  // enter the frontier and propagate in Run(), which also restores any
  // conclusion whose alternate support is itself rederived later.
  void Rederive(const std::vector<int>& touched,
                const std::vector<DeletedPair>& pairs);
  void RederiveNode(int id);
  void RederiveClass(int rep);
  void RederivePair(const DeletedPair& pair);

  // --- rule application ---
  void Seed();
  // Runs the semi-naive fixpoint to completion. Every round has the
  // same two-phase shape regardless of thread count:
  //
  //   Phase A (frozen): every non-eq frontier fact is evaluated against
  //   the round-*start* tables — no writes — and its conclusions are
  //   buffered as Candidates, per contiguous frontier chunk. With
  //   closure_threads > 1 and a large enough frontier, the chunks run
  //   on a worker crew; otherwise the calling thread evaluates one
  //   chunk inline. Chunk boundaries never leak into the output: the
  //   buffers are concatenated in (chunk index, intra-chunk) order,
  //   which is exactly frontier order.
  //
  //   Barrier: the candidates are applied in that canonical order
  //   through the ordinary dedup + Log() path (duplicates melt here).
  //
  //   Phase B (sequential): the round's =-facts are merged in frontier
  //   order — union-find mutation, pi* re-keying, and the cross-class
  //   re-fires stay single-threaded.
  //
  // Facts derived mid-round become visible one round later (they enter
  // the next frontier), so the log differs from a live-interleaved
  // engine but is *identical across thread counts* — the determinism
  // the snapshot, warm-start, and shard layers already pin.
  void Run();
  // One fixpoint round over frontier_ (the phases described on Run).
  void RunRound(RoundCrew& crew);
  // Phase A for frontier_[begin, end): frozen evaluation into ctx.out.
  void EvalFrontierChunk(EvalCtx& ctx, size_t begin, size_t end);
  // Barrier half: replays one chunk's candidates through the direct
  // Add* path, in buffer order.
  void ApplyChunk(const ChunkOut& out);
  // Folds one chunk's work counters into the closure totals.
  void SnapshotChunkCounters(const ChunkOut& out);
  // Publishes the construction-time counters (and a per-rule-family
  // breakdown of steps_) into obs_->metrics; no-op without obs_.
  void FlushMetrics();
  void ProcessTa(EvalCtx& ctx, const Fact& fact, FactId fact_id);
  void ProcessPa(EvalCtx& ctx, const Fact& fact, FactId fact_id);
  // Equality merge; always direct-mode (phase B / replay / rederive).
  void ProcessEqMerge(const Fact& fact, FactId fact_id);
  void ProcessTi(EvalCtx& ctx, const Fact& fact, FactId fact_id);
  void ProcessPi(EvalCtx& ctx, const Fact& fact, FactId fact_id);
  void ProcessPiStar(EvalCtx& ctx, const Fact& fact, FactId fact_id);
  void FireLetAndWriteRulesForAlterability(EvalCtx& ctx, int id, bool total,
                                           FactId fact_id);
  void FireWriteValueRules(EvalCtx& ctx, const unfold::Node* write,
                           FactId eq_or_alter, const unfold::Node* read);
  // Structural half of an equality merge: union by rank plus the merge
  // of every per-class table (members, reads/writes, touching calls,
  // trigger lists, origin sets, pi* re-keying). Shared between
  // ProcessEqMerge and warm-start replay; returns the surviving root.
  int MergeClasses(int ra, int rb);
  void EvalRule(EvalCtx& ctx, const unfold::Node* call,
                const BasicRule& rule);
  void EvalTriggered(EvalCtx& ctx, std::span<const RuleRef> triggers);
  void ReevalBasicCall(EvalCtx& ctx, const unfold::Node* call);
  void ReevalCallsTouching(int rep);
  // Sizes a context's BFS scratch for this closure's id space.
  void InitCtx(EvalCtx& ctx) const;

  // Picks an origin of `origins` different from `excluded` (or any if
  // `excluded` is null); returns false if none.
  static bool PickOrigin(const OriginSet& origins, const Origin* excluded,
                         Origin& origin_out, FactId& fact_out);

  static uint64_t PairKey(int a, int b) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
           static_cast<uint32_t>(b);
  }

  const unfold::UnfoldedSet* set_;
  ClosureOptions options_;
  // Observability (construction only; may be null). The work counters
  // below are plain members, only ever touched from the constructing
  // thread: chunk workers accumulate into their ChunkOut and RunRound
  // folds those in at the barrier (SnapshotChunkCounters), so the
  // totals are deterministic across thread counts and published to the
  // shared registry once, in FlushMetrics().
  obs::Observability* obs_ = nullptr;
  uint64_t find_calls_ = 0;     // union-find lookups during construction
  uint64_t add_attempts_ = 0;   // Add* calls (dedup lookups), incl. misses
  uint64_t basic_reevals_ = 0;  // whole-call rule re-evaluations
  uint64_t rule_evals_ = 0;     // single-rule evaluations (incl. indexed)
  uint64_t eq_merges_ = 0;      // equality merges actually performed
  uint64_t rounds_ = 0;         // fixpoint delta rounds
  uint64_t parallel_rounds_ = 0;  // rounds evaluated on the worker crew
  uint64_t parallel_chunks_ = 0;  // chunks dispatched across those rounds

  bool warm_started_ = false;
  size_t replayed_facts_ = 0;
  bool retracted_ = false;
  size_t retracted_facts_ = 0;

  // Union-find over occurrence ids (1-based). No `mutable` escape hatch:
  // path compression happens only during construction, and Run() leaves
  // every parent pointing directly at its root (see Rep()).
  std::vector<int> uf_parent_;
  std::vector<int> uf_rank_;
  // Class members, indexed by representative id; absorbed slots are
  // drained on merge.
  std::vector<std::vector<int>> members_;
  // Proof forest: accepted merge edges only.
  std::vector<std::vector<std::pair<int, FactId>>> eq_edges_;

  std::vector<FactId> ta_;
  std::vector<FactId> pa_;
  // Indexed by class representative id.
  std::vector<OriginSet> ti_;
  std::vector<OriginSet> pi_;
  // pi* pairs keyed by (rep, rep); pistar_touching_[rep] lists the keys
  // involving rep, sorted (the dense replacement for std::set — the
  // sorted order preserves the original rule-firing order).
  std::unordered_map<uint64_t, OriginSet> pistar_;
  std::vector<std::vector<std::pair<int, int>>> pistar_touching_;

  // Rep id -> basic calls with an argument or themselves in the class,
  // sorted by occurrence id, unique.
  std::vector<std::vector<const unfold::Node*>> touching_calls_;
  // Premise index (see BuildPremiseIndex). The alterability triggers
  // are keyed by occurrence id (ta/pa are per-occurrence and never
  // merge), so the table is frozen after BuildPremiseIndex and stored
  // CSR-style — one offsets array over one contiguous RuleRef payload —
  // which chunk workers scan without chasing a per-id vector header.
  // infer_triggers_ / pistar_triggers_ must stay vector-of-vectors:
  // they are keyed by class representative and merged on every union
  // (MergeClasses), which a flattened layout cannot absorb mid-
  // fixpoint. All lists are sorted by (call id, catalog order), unique
  // — the evaluation order of the full per-call scan they replace.
  std::vector<uint32_t> alter_trigger_offsets_;  // id -> payload range
  std::vector<RuleRef> alter_trigger_refs_;
  std::span<const RuleRef> AlterTriggers(int id) const {
    return {alter_trigger_refs_.data() + alter_trigger_offsets_[id],
            alter_trigger_offsets_[id + 1] - alter_trigger_offsets_[id]};
  }
  std::vector<std::vector<RuleRef>> infer_triggers_;
  std::vector<std::vector<RuleRef>> pistar_triggers_;
  // Rep id -> reads/writes whose *object* child is in the class.
  std::vector<std::vector<const unfold::Node*>> obj_reads_;
  std::vector<std::vector<const unfold::Node*>> obj_writes_;
  // Bound-expression node id -> binder id, -1 when none (let rules).
  std::vector<int> binder_of_bound_expr_;

  std::vector<DerivationStep> steps_;
  // Struct-of-arrays mirror of steps_[i].fact: the fixpoint hot paths
  // (frontier dispatch, EvalRule's stored-at lookup, RederiveClass)
  // only need the fact, and reading it from a dense Fact array instead
  // of the 48-byte DerivationStep keeps chunk workers' shared read
  // traffic compact. Appended alongside steps_ in Log() and the replay
  // paths.
  std::vector<Fact> fact_of_;
  std::vector<FactId> premise_arena_;
  // Semi-naive delta frontiers: Log() appends every accepted fact to
  // next_frontier_; Run() swaps it into frontier_ and processes one
  // round. Same FIFO order as the deque worklist this replaces.
  std::vector<FactId> frontier_;
  std::vector<FactId> next_frontier_;

  // The direct (table-mutating) evaluation context: seeding, replay,
  // rederivation, the barrier merge, and phase B all run through it on
  // the constructing thread. Worker contexts live in the RoundCrew.
  EvalCtx direct_ctx_;
};

}  // namespace oodbsec::core

#endif  // OODBSEC_CORE_CLOSURE_H_
