// The static inference system F(F) (paper §4.1, Table 2) and its closure
// computation.
//
// Terms range over the numbered occurrences of an UnfoldedSet:
//
//   ta[e]              the user may totally alter e
//   pa[e]              the user may partially alter e
//   ti[e, num, dir]    the user may totally infer e
//   pi[e, num, dir]    the user may partially infer e
//   pi*[(e1,e2), num, dir]  the user may infer a proper subset the pair
//                            (e1,e2) must lie in
//   =[e1, e2]          the user can recognize e1 and e2 as equal
//
// (num, dir) records how an inferability was obtained: num is the
// occurrence that produced it ('+' = from the arguments of that
// occurrence, '-' = from its result; num 0 marks axioms of observation /
// equality). The provenance serves two purposes (paper §4.1): two
// *different* partial inferabilities on the same expression join to a
// total one, and a basic-function rule must not feed an inferability
// back to the occurrence that produced it.
//
// Implementation notes:
//  * Equality is an equivalence; it is maintained as a union-find with a
//    proof forest, so every use of an equality premise can be explained
//    by base =-facts (Explain()).
//  * ti/pi/pi* live on equality classes: the Table-2 rules
//    "=[e1,e2], ti[e1] -> ti[e2]" etc. are materialized by class lookup
//    instead of fact copies. Alterability (ta/pa) does NOT propagate
//    through generic equality (only through the specific read/write and
//    let rules), so ta/pa are per-occurrence flags.
//  * Inferability origin sets are capped at a small constant per class;
//    since every guard excludes at most one origin and the join rule
//    needs two, keeping 4 distinct origins preserves completeness while
//    bounding the closure size.
#ifndef OODBSEC_CORE_CLOSURE_H_
#define OODBSEC_CORE_CLOSURE_H_

#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/basic_rules.h"
#include "unfold/unfolded.h"

namespace oodbsec::core {

struct Origin {
  int num = 0;
  char dir = '+';

  friend auto operator<=>(const Origin&, const Origin&) = default;
  std::string ToString() const;
};

using FactId = int;
inline constexpr FactId kNoFact = -1;

struct Fact {
  enum class Kind { kTa, kPa, kTi, kPi, kPiStar, kEq };

  Kind kind = Kind::kTa;
  int a = 0;       // occurrence id
  int b = 0;       // second occurrence (kPiStar, kEq)
  Origin origin;   // kTi / kPi / kPiStar
};

struct DerivationStep {
  Fact fact;
  std::string rule;              // e.g. "axiom: constant", ">=: probe …"
  std::vector<FactId> premises;  // earlier steps
};

// Ablation switches for experiment A1 (see DESIGN.md §7). All on by
// default; each "off" weakens the analyzer and must lose a documented
// detection.
struct ClosureOptions {
  // The pessimistic axiom "=[x1,x2] for outer-most argument variables of
  // the same type".
  bool same_type_argument_equality = true;
  // The rule pi[e,n1,d1], pi[e,n2,d2] -> ti[e,n1,d1].
  bool pi_join_to_ti = true;
  // The per-basic-function rule sets (basic_rules.h).
  bool basic_function_rules = true;
  // The =-based rules for reads/writes (equal objects make reads equal,
  // a written value equals subsequent reads, written-value alterability
  // transfers to reads).
  bool write_read_equality = true;
  // Strength of the read-object rule "pa[e1] -> ?a[r_att(e1)]" (altering
  // *which* object is read alters the read result). Under the paper's
  // exists-D semantics (Definition 2 quantifies the database state
  // existentially) the conclusion is total alterability; the default is
  // the moderate partial reading, which preserves the paper's intended
  // contrast that updateSalary becomes *totally* controllable only when
  // w_budget is also granted (§3.1).
  bool read_object_total_alterability = false;
};

class Closure {
 public:
  // Computes the full closure over `set`. The set must outlive the
  // closure.
  explicit Closure(const unfold::UnfoldedSet& set, ClosureOptions options = {});

  Closure(const Closure&) = delete;
  Closure& operator=(const Closure&) = delete;

  const unfold::UnfoldedSet& set() const { return *set_; }

  // Capability queries by occurrence id. pi/pa include ti/ta (the
  // implication rules are materialized).
  bool HasTa(int id) const { return ta_[id] != kNoFact; }
  bool HasPa(int id) const { return pa_[id] != kNoFact; }
  bool HasTi(int id) const;
  bool HasPi(int id) const;
  bool AreEqual(int id1, int id2) const;

  // Supporting facts for derivation printing; kNoFact when absent.
  FactId TaFact(int id) const { return ta_[id]; }
  FactId PaFact(int id) const { return pa_[id]; }
  FactId TiFact(int id) const;
  FactId PiFact(int id) const;

  size_t fact_count() const { return steps_.size(); }
  const std::vector<DerivationStep>& steps() const { return steps_; }

  // Renders one fact, e.g. "ti[5:r_salary(broker), 6, -]".
  std::string FactToString(const Fact& fact) const;
  // Renders the full derivation supporting `fact` (premises first,
  // Figure-1 style), one step per line.
  std::string ExplainFact(FactId fact) const;
  std::string ExplainFacts(const std::vector<FactId>& facts) const;

 private:
  // --- union-find with proof forest ---
  int Find(int id) const;
  // Appends the base =-fact ids proving id1 == id2 to `out`.
  void ExplainEquality(int id1, int id2, std::vector<FactId>& out) const;

  // --- fact derivation (dedup + log + worklist) ---
  FactId AddTa(int id, std::string rule, std::vector<FactId> premises);
  FactId AddPa(int id, std::string rule, std::vector<FactId> premises);
  FactId AddTi(int id, Origin origin, std::string rule,
               std::vector<FactId> premises);
  FactId AddPi(int id, Origin origin, std::string rule,
               std::vector<FactId> premises);
  FactId AddPiStar(int id1, int id2, Origin origin, std::string rule,
                   std::vector<FactId> premises);
  FactId AddEq(int id1, int id2, std::string rule,
               std::vector<FactId> premises);
  FactId Log(Fact fact, std::string rule, std::vector<FactId> premises);

  // --- rule application ---
  void Seed();
  void Run();
  void Process(FactId fact_id);
  void ProcessTa(const Fact& fact, FactId fact_id);
  void ProcessPa(const Fact& fact, FactId fact_id);
  void ProcessEqMerge(const Fact& fact, FactId fact_id);
  void ProcessTi(const Fact& fact, FactId fact_id);
  void ProcessPi(const Fact& fact, FactId fact_id);
  void ProcessPiStar(const Fact& fact, FactId fact_id);
  void FireLetAndWriteRulesForAlterability(int id, bool total,
                                           FactId fact_id);
  void FireWriteValueRules(const unfold::Node* write, FactId eq_or_alter,
                           const unfold::Node* read);
  void ReevalBasicCall(const unfold::Node* call);
  void ReevalCallsTouching(int rep);

  // Picks an origin of `origins` different from `excluded` (or any if
  // `excluded` is null); returns false if none.
  static bool PickOrigin(const std::map<Origin, FactId>& origins,
                         const Origin* excluded, Origin& origin_out,
                         FactId& fact_out);

  const unfold::UnfoldedSet* set_;
  ClosureOptions options_;

  // Union-find over occurrence ids (1-based).
  mutable std::vector<int> uf_parent_;
  std::vector<int> uf_rank_;
  std::map<int, std::vector<int>> members_;
  // Proof forest: accepted merge edges only.
  std::vector<std::vector<std::pair<int, FactId>>> eq_edges_;

  std::vector<FactId> ta_;
  std::vector<FactId> pa_;
  // Keyed by class representative.
  std::map<int, std::map<Origin, FactId>> ti_;
  std::map<int, std::map<Origin, FactId>> pi_;
  std::map<std::pair<int, int>, std::map<Origin, FactId>> pistar_;
  std::map<int, std::set<std::pair<int, int>>> pistar_touching_;

  // Class rep -> basic calls with an argument or themselves in the class.
  std::map<int, std::set<const unfold::Node*>> touching_calls_;
  // Class rep -> reads/writes whose *object* child is in the class.
  std::map<int, std::vector<const unfold::Node*>> obj_reads_;
  std::map<int, std::vector<const unfold::Node*>> obj_writes_;
  // Bound-expression node id -> binder id (for the let rules).
  std::map<int, int> binder_of_bound_expr_;

  std::vector<DerivationStep> steps_;
  std::deque<FactId> worklist_;
};

}  // namespace oodbsec::core

#endif  // OODBSEC_CORE_CLOSURE_H_
