// Capability-propagation rules for basic functions (paper §4.1).
//
// The generic rules of Table 2 handle variables, lets and attribute
// reads/writes; propagation through a basic function fb depends on fb's
// semantics and is given by per-function rules derived from the paper's
// metarules. This file ships the hand-derived rule sets for the default
// catalog (the paper prints the sets for >= and * explicitly; the rest
// follow the same metarules). src/basicfun contains the metarule engine
// that machine-checks each shipped rule's quantified side condition over
// finite sample domains.
//
// A rule is a schema over the positions of one call occurrence
// fb(e_0, …, e_{n-1}):
//
//   positions 0 … n-1 denote the arguments, kResultPos the call itself.
//
// Example (the paper's >= probing rule):
//   ti[e1], pa[e1], ti[>=(e1,e2)] -> ti[e2]
// is {premises: {ti@0, pa@0, ti@result}, conclusion: ti@1}.
//
// num/dir provenance guards (§4.1) are applied uniformly by the closure
// engine: a ti/pi/pi* premise *on an argument* must not originate from
// this call's result rule (num = call id, dir = '-') when the conclusion
// is the result, and a premise *involving the result* must not originate
// from this call's argument rules (num = call id, dir = '+') when the
// conclusion is an argument.
#ifndef OODBSEC_CORE_BASIC_RULES_H_
#define OODBSEC_CORE_BASIC_RULES_H_

#include <string>
#include <vector>

#include "exec/basic_functions.h"

namespace oodbsec::core {

// Position of the call's own value in a rule atom.
inline constexpr int kResultPos = -1;

struct RuleAtom {
  enum class Pred { kTa, kPa, kTi, kPi, kPiStar };

  Pred pred = Pred::kTa;
  int pos = 0;    // argument index or kResultPos
  int pos2 = 0;   // second component, kPiStar only

  std::string ToString() const;
};

// Atom factories for terse rule tables.
RuleAtom Ta(int pos);
RuleAtom Pa(int pos);
RuleAtom Ti(int pos);
RuleAtom Pi(int pos);
RuleAtom PiStar(int pos, int pos2);

struct BasicRule {
  std::string label;  // shown in derivations, e.g. ">=: probe argument"
  std::vector<RuleAtom> premises;
  RuleAtom conclusion;

  std::string ToString() const;
};

// The shipped rules for `fn`; empty for functions with no propagation
// beyond the generic ones. The returned reference is stable.
const std::vector<BasicRule>& RulesFor(const exec::BasicFunction& fn);

}  // namespace oodbsec::core

#endif  // OODBSEC_CORE_BASIC_RULES_H_
