// AnalysisSession: the one construction point for an analysis pipeline.
//
// Before this façade existed, every layer took its own slice of
// configuration — free functions took ClosureOptions, UserAnalysis::Build
// took ClosureOptions again, AnalysisService took a ServiceOptions with
// a third copy inside — and there was no place to hang cross-cutting
// state like tracing. The session now owns the full bundle:
//
//   (schema, users, SessionOptions{closure, threads}, Tracer, Metrics)
//
// and everything downstream borrows from it: core::UserAnalysis and the
// one-shot Check() here, service::AnalysisService for cached parallel
// batches, the shell for its `trace` command. The observability bundle
// lives exactly as long as the session, so spans and counters from
// every phase of every check accumulate in one place and dump together.
//
// Thread-safety: the session itself is a single-caller object (like the
// service); the Observability it hands out is safe to write from the
// worker threads the service spawns.
#ifndef OODBSEC_CORE_ANALYSIS_SESSION_H_
#define OODBSEC_CORE_ANALYSIS_SESSION_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/analyzer.h"
#include "core/closure.h"
#include "core/closure_cache.h"
#include "core/requirement.h"
#include "obs/obs.h"
#include "schema/schema.h"
#include "schema/user.h"

namespace oodbsec::core {

struct SessionOptions {
  // Fixpoint semantics; flows into every closure the session builds and
  // into the service layer's cache keys. closure.closure_threads
  // additionally parallelises each build's fixpoint rounds (0 = auto);
  // it never changes the derivation log, so it is excluded from cache
  // keys and snapshot fingerprints.
  ClosureOptions closure;
  // Worker threads for layers that parallelise *across* closures
  // (service::AnalysisService reads this as its pool size); independent
  // of closure.closure_threads, which parallelises *inside* one build.
  int threads = 1;
  // Arms the tracer from construction. Metrics are always collected —
  // they are counters folded into reports and stats — while span
  // recording costs clock reads and is opt-in.
  bool tracing = false;
  // LRU bound for the subset-lattice closure cache behind
  // RecheckRequirements (and the service layer, which reads this as its
  // cache bound too).
  size_t cache_capacity = ClosureCache::kDefaultCapacity;
  // Deprecated shim: a non-empty directory constructs a
  // snapshot::DirectoryStore for the L2 tier when `snapshot_store` is
  // null. New call sites should open a store and set the field below.
  std::string snapshot_dir;
  // The persistent closure-snapshot tier (L2) behind every cache this
  // session's options configure — the session's recheck cache and the
  // service layer's cache alike (the session resolves `snapshot_dir`
  // into this field at construction, so borrowing layers share one
  // store and its page cache). Several sessions and processes may share
  // one store (see snapshot/snapshot_store.h).
  std::shared_ptr<snapshot::SnapshotStore> snapshot_store;
};

class AnalysisSession {
 public:
  // `schema` and `users` must outlive the session.
  AnalysisSession(const schema::Schema& schema,
                  const schema::UserRegistry& users,
                  SessionOptions options = {});

  AnalysisSession(const AnalysisSession&) = delete;
  AnalysisSession& operator=(const AnalysisSession&) = delete;

  const schema::Schema& schema() const { return schema_; }
  const schema::UserRegistry& users() const { return users_; }
  const SessionOptions& options() const { return options_; }
  const ClosureOptions& closure_options() const { return options_.closure; }

  // The session's observability bundle. Stable address for the
  // session's lifetime; pass `&session.obs()` down to layers that take
  // an Observability*.
  obs::Observability& obs() { return *obs_; }
  const obs::Observability& obs() const { return *obs_; }
  obs::Tracer& tracer() { return obs_->tracer; }
  obs::MetricsRegistry& metrics() { return obs_->metrics; }

  // Unfolds `user`'s capability list and computes its closure under the
  // session's options, traced and counted.
  common::Result<std::unique_ptr<UserAnalysis>> BuildUser(
      const schema::User& user) const;

  // One-shot sequential A(R): resolve the requirement's user, build the
  // analysis, check. No caching — the service layer is the cached,
  // parallel consumer of this session. Sees session-local grant/revoke
  // edits (below).
  common::Result<AnalysisReport> Check(const Requirement& requirement);

  // --- grant/revoke re-audit -----------------------------------------
  //
  // Policy changes arrive one grant or revoke at a time, and each one
  // invalidates every affected user's closure. The session keeps its
  // own copy-on-write overlay over the (const) registry — the registry
  // itself is never mutated — plus a subset-lattice closure cache, so a
  // re-audit after a change costs only the delta:
  //
  //   * after AddCapability, the user's old root list is a subset of
  //     the new one: the cached closure seeds a warm-started build that
  //     derives just the new function's contribution;
  //   * after RemoveCapability, the user's cached closure is shrunk by
  //     DRed retraction (Closure::Retract) into a fresh cache entry,
  //     eagerly — the revoked capability's fact cone is deleted and
  //     alternate support re-derived, so the next recheck is an exact
  //     hit ("session.retractions_fast"). When the pre-revoke closure
  //     was never built or already evicted, the next recheck pays the
  //     ordinary subset-warm-start or cold path instead
  //     ("session.retractions_fallback").

  // The session's view of `name`: the overlay copy when the user has
  // been edited here, the registry's user otherwise. nullptr if unknown.
  const schema::User* FindUser(std::string_view name) const;

  // Grants `function` to `user` in the session overlay. Fails if the
  // user is unknown or the name resolves to nothing in the schema.
  common::Status AddCapability(std::string_view user, std::string function);

  // Revokes `function` from `user` in the session overlay. Fails if the
  // user is unknown or does not currently hold the capability.
  common::Status RemoveCapability(std::string_view user,
                                  std::string_view function);

  // Re-checks `requirements` against the current (overlay) capability
  // state, serving closures from the session's subset-lattice cache:
  // exact hit, else warm-start from the largest cached subset, else
  // cold build. Reports come back in input order; the first failing
  // requirement's error wins. Because warm-started closures take
  // different derivation routes than cold ones, reports' fact_count
  // and derivation text may differ from a cold Check() — verdicts and
  // flaw sites do not.
  common::Result<std::vector<AnalysisReport>> RecheckRequirements(
      const std::vector<Requirement>& requirements);

  // The cache behind RecheckRequirements (shared with no one else;
  // the service layer builds its own from the same options).
  const ClosureCache& recheck_cache() const { return *recheck_cache_; }

 private:
  const schema::Schema& schema_;
  const schema::UserRegistry& users_;
  SessionOptions options_;
  // unique_ptr: handed-out pointers survive a session move-construction
  // being added later, and keep the header light.
  std::unique_ptr<obs::Observability> obs_;
  // Copy-on-write user edits (AddCapability/RemoveCapability). Keyed by
  // user name; absent means "registry state".
  std::map<std::string, schema::User, std::less<>> overlay_users_;
  std::unique_ptr<ClosureCache> recheck_cache_;
};

}  // namespace oodbsec::core

#endif  // OODBSEC_CORE_ANALYSIS_SESSION_H_
