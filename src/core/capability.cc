#include "core/capability.h"

namespace oodbsec::core {

std::string_view CapabilityName(Capability capability) {
  switch (capability) {
    case Capability::kTotalInferability:
      return "ti";
    case Capability::kPartialInferability:
      return "pi";
    case Capability::kTotalAlterability:
      return "ta";
    case Capability::kPartialAlterability:
      return "pa";
  }
  return "??";
}

std::optional<Capability> ParseCapability(std::string_view text) {
  if (text == "ti") return Capability::kTotalInferability;
  if (text == "pi") return Capability::kPartialInferability;
  if (text == "ta") return Capability::kTotalAlterability;
  if (text == "pa") return Capability::kPartialAlterability;
  return std::nullopt;
}

bool Implies(Capability stronger, Capability weaker) {
  if (stronger == weaker) return true;
  if (stronger == Capability::kTotalInferability &&
      weaker == Capability::kPartialInferability) {
    return true;
  }
  if (stronger == Capability::kTotalAlterability &&
      weaker == Capability::kPartialAlterability) {
    return true;
  }
  return false;
}

bool IsInferability(Capability capability) {
  return capability == Capability::kTotalInferability ||
         capability == Capability::kPartialInferability;
}

bool IsAlterability(Capability capability) {
  return !IsInferability(capability);
}

}  // namespace oodbsec::core
