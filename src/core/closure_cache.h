// ClosureCache: a subset-lattice cache of computed closures with
// warm-start reuse.
//
// The PR-1 service cache was an exact-signature map: a request either
// matched a cached root list byte-for-byte or paid a full cold fixpoint.
// Real populations don't change that way — capability lists overlap
// heavily and drift one grant at a time — so this cache treats its
// entries as points in the subset lattice of root sets:
//
//   * exact hit: the request's root list is cached — return it;
//   * warm build: otherwise find the largest cached entry whose roots
//     are a subset of the request's, replay its derivation log into the
//     new closure (core::Closure's warm_base), and run only the delta;
//   * cold build: no subset is cached — full fixpoint.
//
// Entries are handed out as shared_ptr<const CachedAnalysis>: the cache
// is LRU-bounded, and eviction must not invalidate entries that callers
// (or in-flight parallel builds using one as a warm base) still hold.
// A Closure never borrows from its warm base after construction, so an
// evicted base may be destroyed while closures derived from it live on.
//
// Warm-started closures derive the same fact set as a cold run over the
// same roots (Closure::FactSetDigest) but a different derivation log —
// callers that promise byte-identical derivation text must build cold.
//
// Thread-safety: like the service layer, the cache is a single-caller
// object — Find*/GetOrBuild/Insert must not race. BuildDetached is the
// exception: it is const, touches no cache state, and may run on many
// worker threads at once (the service's parallel build phase), each
// sharing cached entries as warm bases.
#ifndef OODBSEC_CORE_CLOSURE_CACHE_H_
#define OODBSEC_CORE_CLOSURE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/closure.h"
#include "obs/obs.h"
#include "schema/schema.h"
#include "unfold/unfolded.h"

namespace oodbsec::core {

// One cached analysis unit: the root list that was unfolded, its
// program, and the closed fixpoint. Immutable after construction and
// shared read-only.
struct CachedAnalysis {
  std::vector<std::string> roots;         // unfold order
  std::vector<std::string> sorted_roots;  // subset-lattice key (unique'd)
  std::unique_ptr<unfold::UnfoldedSet> set;
  std::unique_ptr<Closure> closure;
};

class ClosureCache {
 public:
  static constexpr size_t kDefaultCapacity = 64;

  struct Stats {
    uint64_t exact_hits = 0;
    uint64_t warm_builds = 0;  // built from a cached subset's facts
    uint64_t cold_builds = 0;
    uint64_t evictions = 0;
  };

  // `schema` must outlive the cache. `obs` (optional) receives the
  // closure/unfold spans of every build plus "closure.cache.*" counters.
  ClosureCache(const schema::Schema& schema, ClosureOptions options,
               size_t capacity = kDefaultCapacity,
               obs::Observability* obs = nullptr);

  ClosureCache(const ClosureCache&) = delete;
  ClosureCache& operator=(const ClosureCache&) = delete;

  // Exact-root-list lookup; bumps the entry to most-recently-used.
  // Counts an exact hit. nullptr on miss.
  std::shared_ptr<const CachedAnalysis> FindExact(
      const std::vector<std::string>& roots);

  // The best warm-start base for `roots`: the cached entry with the
  // largest root set that is a *proper* subset of `roots` (ties broken
  // by key order, deterministically). nullptr when none qualifies.
  // Read-only: no LRU bump, no stats.
  std::shared_ptr<const CachedAnalysis> FindLargestSubset(
      const std::vector<std::string>& roots) const;

  // Unfolds `roots` and computes the closure, warm-started from
  // `warm_base` when given (incompatible bases fall back cold — see
  // Closure). Never touches cache state; safe on worker threads.
  common::Result<std::shared_ptr<const CachedAnalysis>> BuildDetached(
      const std::vector<std::string>& roots,
      const CachedAnalysis* warm_base = nullptr,
      obs::SpanId parent = obs::kNoSpan) const;

  // Inserts a built entry, evicting the least-recently-used entry when
  // over capacity. Replaces an existing entry with the same roots.
  void Insert(std::shared_ptr<const CachedAnalysis> entry);

  // FindExact, else BuildDetached from the largest cached subset (warm
  // when one exists, cold otherwise) and Insert. Counts accordingly.
  common::Result<std::shared_ptr<const CachedAnalysis>> GetOrBuild(
      const std::vector<std::string>& roots);

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Slot {
    std::shared_ptr<const CachedAnalysis> entry;
    std::list<std::string>::iterator lru_it;  // position in lru_
  };

  static std::string KeyFor(const std::vector<std::string>& roots);
  void CountBuild(bool warm);

  const schema::Schema& schema_;
  ClosureOptions options_;
  size_t capacity_;
  obs::Observability* obs_;
  Stats stats_;
  // Most-recently-used at the front; Slot::lru_it points into this.
  std::list<std::string> lru_;
  std::unordered_map<std::string, Slot> entries_;
};

}  // namespace oodbsec::core

#endif  // OODBSEC_CORE_CLOSURE_CACHE_H_
