// ClosureCache: a subset-lattice cache of computed closures with
// warm-start reuse.
//
// The PR-1 service cache was an exact-signature map: a request either
// matched a cached root list byte-for-byte or paid a full cold fixpoint.
// Real populations don't change that way — capability lists overlap
// heavily and drift one grant at a time — so this cache treats its
// entries as points in the subset lattice of root sets:
//
//   * exact hit: the request's root list is cached — return it;
//   * retract build: otherwise, when a cached entry's roots are a
//     *superset* of the request's and close enough (at least half the
//     superset's roots remain), shrink it by DRed retraction
//     (core::Closure::Retract) instead of growing a subset;
//   * warm build: otherwise find the largest cached entry whose roots
//     are a subset of the request's, replay its derivation log into the
//     new closure (core::Closure's warm_base), and run only the delta;
//   * cold build: no subset is cached — full fixpoint.
//
// Retraction is copy-on-write: the superset entry is never mutated (it
// may be shared with concurrent readers); the shrunk closure becomes a
// brand-new entry under the reduced root list's key.
//
// Entries are handed out as shared_ptr<const CachedAnalysis>: the cache
// is LRU-bounded, and eviction must not invalidate entries that callers
// (or in-flight parallel builds using one as a warm base) still hold.
// A Closure never borrows from its warm base after construction, so an
// evicted base may be destroyed while closures derived from it live on.
//
// Warm-started closures derive the same fact set as a cold run over the
// same roots (Closure::FactSetDigest) but a different derivation log —
// callers that promise byte-identical derivation text must build cold.
//
// Snapshot tier (L2): when constructed with a snapshot::SnapshotStore,
// the cache persists entries through it (a packed segment file or a
// snapshot directory — see snapshot/snapshot_store.h) and consults it
// between the exact-hit check and the build path:
//
//   exact hit (L1) → store probe (L2) → warm/cold build
//
// An L2 hit replays the persisted derivation log into a fresh closure —
// byte-identical to the one that was saved, at replay cost — and is
// inserted into L1 so the process pays the decode once. Invalid
// records (truncated, wrong schema fingerprint, wrong format version,
// corrupt) are counted and fall back to a build; they are never an
// error. Several caches and processes may share one store: writes are
// atomic and loads validate before trusting, so the store doubles as
// the cross-process cache the sharded audit workers warm from.
//
// Thread-safety: like the service layer, the cache is a single-caller
// object — Find*/GetOrBuild/Insert must not race. BuildDetached is the
// exception: it is const, touches no cache state, and may run on many
// worker threads at once (the service's parallel build phase), each
// sharing cached entries as warm bases.
#ifndef OODBSEC_CORE_CLOSURE_CACHE_H_
#define OODBSEC_CORE_CLOSURE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/closure.h"
#include "obs/obs.h"
#include "schema/schema.h"
#include "unfold/unfolded.h"

namespace oodbsec::snapshot {
class SnapshotStore;  // snapshot/snapshot_store.h
}  // namespace oodbsec::snapshot

namespace oodbsec::core {

// One cached analysis unit: the root list that was unfolded, its
// program, and the closed fixpoint. Immutable after construction and
// shared read-only.
struct CachedAnalysis {
  std::vector<std::string> roots;         // unfold order
  std::vector<std::string> sorted_roots;  // subset-lattice key (unique'd)
  std::unique_ptr<unfold::UnfoldedSet> set;
  std::unique_ptr<Closure> closure;
};

class ClosureCache {
 public:
  static constexpr size_t kDefaultCapacity = 64;

  struct Stats {
    uint64_t exact_hits = 0;
    uint64_t warm_builds = 0;  // built from a cached subset's facts
    uint64_t cold_builds = 0;
    // Built by DRed retraction from a cached superset (GetOrBuild's
    // retract path and RetractEntry's revoke fast path).
    uint64_t retract_builds = 0;
    uint64_t evictions = 0;
    // L2 accounting, all zero when no snapshot directory is configured.
    // snapshot_hits counts closures served by replaying a persisted
    // derivation log — distinct from warm_builds, which replay another
    // *in-memory* entry and still run a delta fixpoint.
    uint64_t snapshot_hits = 0;
    uint64_t snapshot_misses = 0;   // probes with no snapshot file
    uint64_t snapshot_invalid = 0;  // files rejected by validation
  };

  // `schema` must outlive the cache. `obs` (optional) receives the
  // closure/unfold spans of every build plus "closure.cache.*" counters.
  // A non-null `store` arms the L2 tier (see the header comment); the
  // store may be shared with other caches and sessions.
  ClosureCache(const schema::Schema& schema, ClosureOptions options,
               size_t capacity, obs::Observability* obs,
               std::shared_ptr<snapshot::SnapshotStore> store);

  // Deprecated shim: a non-empty `snapshot_dir` constructs a
  // DirectoryStore over it (the pre-store spelling of the L2 tier).
  // New call sites should build a store and pass it above.
  ClosureCache(const schema::Schema& schema, ClosureOptions options,
               size_t capacity = kDefaultCapacity,
               obs::Observability* obs = nullptr,
               std::string snapshot_dir = {});

  ClosureCache(const ClosureCache&) = delete;
  ClosureCache& operator=(const ClosureCache&) = delete;

  // Exact-root-list lookup; bumps the entry to most-recently-used.
  // Counts an exact hit. nullptr on miss.
  std::shared_ptr<const CachedAnalysis> FindExact(
      const std::vector<std::string>& roots);

  // The best warm-start base for `roots`: the cached entry with the
  // largest root set that is a *proper* subset of `roots` (ties broken
  // by key order, deterministically). nullptr when none qualifies.
  // Read-only: no LRU bump, no stats.
  std::shared_ptr<const CachedAnalysis> FindLargestSubset(
      const std::vector<std::string>& roots) const;

  // The best retraction base for `roots`: the cached entry with the
  // smallest root set that is a *proper* superset of `roots` AND shares
  // at least half its roots with the request (2·|request| ≥ |superset|,
  // on deduplicated sorted lists) — below that, deleting the cone costs
  // more than warm-starting up from a subset. Ties break toward the
  // lexicographically smallest root list. Read-only; nullptr when none
  // qualifies.
  std::shared_ptr<const CachedAnalysis> FindSmallestSuperset(
      const std::vector<std::string>& roots) const;

  // Unfolds `roots` and computes the closure, warm-started from
  // `warm_base` when given (incompatible bases fall back cold — see
  // Closure). Never touches cache state; safe on worker threads.
  common::Result<std::shared_ptr<const CachedAnalysis>> BuildDetached(
      const std::vector<std::string>& roots,
      const CachedAnalysis* warm_base = nullptr,
      obs::SpanId parent = obs::kNoSpan) const;

  // Shrinks `base` to `roots` by DRed retraction (Closure::Retract)
  // into a brand-new entry; `base` itself is never mutated. Never
  // touches cache state; safe on worker threads. nullptr when the base
  // is incompatible or the unfold fails — callers fall back to the
  // warm/cold build path (which surfaces real errors).
  std::shared_ptr<const CachedAnalysis> BuildRetracted(
      const std::vector<std::string>& roots, const CachedAnalysis& base,
      obs::SpanId parent = obs::kNoSpan) const;

  // The revoke fast path: replaces the resident entry for `old_roots`
  // with one for `new_roots` by retraction, copy-on-write (the old
  // entry object stays immutable for concurrent holders; the new entry
  // is Insert()ed under its own key). Returns the already-resident
  // entry for `new_roots` when one exists (revoke-then-regrant churn
  // returns to a cached state — nothing to build). nullptr when
  // `old_roots` is not resident or retraction is not applicable; the
  // caller falls back to the ordinary GetOrBuild path on next use.
  std::shared_ptr<const CachedAnalysis> RetractEntry(
      const std::vector<std::string>& old_roots,
      const std::vector<std::string>& new_roots);

  // Inserts a built entry, evicting the least-recently-used entry when
  // over capacity. Replaces an existing entry with the same roots.
  void Insert(std::shared_ptr<const CachedAnalysis> entry);

  // L2 probe: loads the snapshot persisted for `roots`, if any, and
  // counts a snapshot hit / miss / invalid. Does NOT insert into L1
  // (GetOrBuild does). nullptr when the tier is disabled, the file is
  // absent, or validation rejected it.
  std::shared_ptr<const CachedAnalysis> FindSnapshot(
      const std::vector<std::string>& roots);

  // Persists one entry to the snapshot directory (atomic write).
  // kFailedPrecondition when no snapshot directory is configured.
  common::Status SaveCacheSnapshot(const CachedAnalysis& entry) const;

  // Persists every resident L1 entry, least-recently-used last so a
  // concurrent reader warms from the hottest signatures first. Returns
  // the first write error, after attempting every entry.
  common::Status SaveCacheSnapshot() const;

  // Bulk warm start: loads every valid snapshot in the directory into
  // L1 (up to capacity) and returns how many were loaded. Invalid files
  // are counted and skipped. 0 when the tier is disabled.
  size_t LoadCacheSnapshot();

  // FindExact, else FindSnapshot (inserted into L1 on a hit), else
  // BuildRetracted from the smallest qualifying cached superset, else
  // BuildDetached from the largest cached subset (warm when one exists,
  // cold otherwise) and Insert. Counts accordingly.
  common::Result<std::shared_ptr<const CachedAnalysis>> GetOrBuild(
      const std::vector<std::string>& roots);

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  const Stats& stats() const { return stats_; }
  // Null when the snapshot tier is disabled.
  const std::shared_ptr<snapshot::SnapshotStore>& snapshot_store() const {
    return store_;
  }

 private:
  struct Slot {
    std::shared_ptr<const CachedAnalysis> entry;
    std::list<std::string>::iterator lru_it;  // position in lru_
  };

  static std::string KeyFor(const std::vector<std::string>& roots);
  void CountBuild(bool warm);
  void CountRetract();

  const schema::Schema& schema_;
  ClosureOptions options_;
  size_t capacity_;
  obs::Observability* obs_;
  std::shared_ptr<snapshot::SnapshotStore> store_;
  Stats stats_;
  // Most-recently-used at the front; Slot::lru_it points into this.
  std::list<std::string> lru_;
  std::unordered_map<std::string, Slot> entries_;
};

}  // namespace oodbsec::core

#endif  // OODBSEC_CORE_CLOSURE_CACHE_H_
