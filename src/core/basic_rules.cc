#include "core/basic_rules.h"

#include <map>

#include "common/strings.h"

namespace oodbsec::core {

RuleAtom Ta(int pos) { return {RuleAtom::Pred::kTa, pos, 0}; }
RuleAtom Pa(int pos) { return {RuleAtom::Pred::kPa, pos, 0}; }
RuleAtom Ti(int pos) { return {RuleAtom::Pred::kTi, pos, 0}; }
RuleAtom Pi(int pos) { return {RuleAtom::Pred::kPi, pos, 0}; }
RuleAtom PiStar(int pos, int pos2) {
  return {RuleAtom::Pred::kPiStar, pos, pos2};
}

std::string RuleAtom::ToString() const {
  auto pos_name = [](int p) {
    return p == kResultPos ? std::string("R") : common::StrCat("e", p);
  };
  switch (pred) {
    case Pred::kTa:
      return common::StrCat("ta[", pos_name(pos), "]");
    case Pred::kPa:
      return common::StrCat("pa[", pos_name(pos), "]");
    case Pred::kTi:
      return common::StrCat("ti[", pos_name(pos), "]");
    case Pred::kPi:
      return common::StrCat("pi[", pos_name(pos), "]");
    case Pred::kPiStar:
      return common::StrCat("pi*[(", pos_name(pos), ", ", pos_name(pos2),
                            ")]");
  }
  return "?";
}

std::string BasicRule::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(premises.size());
  for (const RuleAtom& atom : premises) parts.push_back(atom.ToString());
  return common::StrCat(common::Join(parts, ", "), " -> ",
                        conclusion.ToString(), "   (", label, ")");
}

namespace {

constexpr int R = kResultPos;

void Add(std::vector<BasicRule>& rules, std::string label,
         std::vector<RuleAtom> premises, RuleAtom conclusion) {
  rules.push_back({std::move(label), std::move(premises), conclusion});
}

// Rules every deterministic function admits.
void AddDeterminism(std::vector<BasicRule>& rules, const std::string& op,
                    int arity) {
  std::vector<RuleAtom> premises;
  for (int i = 0; i < arity; ++i) premises.push_back(Ti(i));
  Add(rules, op + ": known arguments", std::move(premises), Ti(R));
}

// Comparison predicates over a totally ordered domain, and equality
// tests: the paper prints this set for >= (§4.1).
std::vector<BasicRule> ComparisonFamily(const std::string& op) {
  std::vector<BasicRule> rules;
  // pa[e1] -> ta[>=(e1,e2)]: two probe values can straddle e2; the bool
  // result domain is then fully covered (pessimistically).
  Add(rules, op + ": flip via left", {Pa(0)}, Ta(R));
  Add(rules, op + ": flip via right", {Pa(1)}, Ta(R));
  // pi[e1], pi[e2] -> ti[>=]: the two candidate sets may determine the
  // comparison.
  Add(rules, op + ": bounded operands", {Pi(0), Pi(1)}, Ti(R));
  // pi*[(e1,e2)] -> ti[>=]: a pair constraint may pin the comparison.
  Add(rules, op + ": pair constraint", {PiStar(0, 1)}, Ti(R));
  // ti[e1], pa[e1], ti[>=(e1,e2)] -> ti[e2]: the paper's probing rule —
  // sweep a known, alterable left operand and watch the result flip.
  Add(rules, op + ": probe right via left", {Ti(0), Pa(0), Ti(R)}, Ti(1));
  Add(rules, op + ": probe left via right", {Ti(1), Pa(1), Ti(R)}, Ti(0));
  // pi[e1], ti[>=] -> pi[e2]: a bounded operand plus the outcome bounds
  // the other operand.
  Add(rules, op + ": bound right", {Pi(0), Ti(R)}, Pi(1));
  Add(rules, op + ": bound left", {Pi(1), Ti(R)}, Pi(0));
  // ti[>=] -> pi*[(e1,e2)]: the outcome constrains the operand pair.
  Add(rules, op + ": outcome pairs operands", {Ti(R)}, PiStar(0, 1));
  // pi[e1] -> pi*[(e2, >=)]: a bounded operand ties the other operand to
  // the outcome.
  Add(rules, op + ": left ties (right,result)", {Pi(0)}, PiStar(1, R));
  Add(rules, op + ": right ties (left,result)", {Pi(1)}, PiStar(0, R));
  AddDeterminism(rules, op, 2);
  return rules;
}

// + and - on int, concat on string: alterable and invertible in each
// argument given the other.
std::vector<BasicRule> InvertibleFamily(const std::string& op) {
  std::vector<BasicRule> rules;
  Add(rules, op + ": sweep left", {Ta(0)}, Ta(R));
  Add(rules, op + ": sweep right", {Ta(1)}, Ta(R));
  Add(rules, op + ": perturb left", {Pa(0)}, Pa(R));
  Add(rules, op + ": perturb right", {Pa(1)}, Pa(R));
  Add(rules, op + ": bounded operands", {Pi(0), Pi(1)}, Pi(R));
  Add(rules, op + ": invert right", {Ti(R), Ti(0)}, Ti(1));
  Add(rules, op + ": invert left", {Ti(R), Ti(1)}, Ti(0));
  Add(rules, op + ": bound right via result", {Ti(R), Pi(0)}, Pi(1));
  Add(rules, op + ": bound left via result", {Ti(R), Pi(1)}, Pi(0));
  Add(rules, op + ": bound right via known left", {Pi(R), Ti(0)}, Pi(1));
  Add(rules, op + ": bound left via known right", {Pi(R), Ti(1)}, Pi(0));
  Add(rules, op + ": outcome pairs operands", {Ti(R)}, PiStar(0, 1));
  Add(rules, op + ": bounded outcome pairs operands", {Pi(R)}, PiStar(0, 1));
  Add(rules, op + ": left ties (right,result)", {Pi(0)}, PiStar(1, R));
  Add(rules, op + ": right ties (left,result)", {Pi(1)}, PiStar(0, R));
  AddDeterminism(rules, op, 2);
  return rules;
}

// * on int: the paper prints this set (§4.1); multiplication absorbs 0
// and is invertible for known non-zero factors (pessimistically: for any
// known factor).
std::vector<BasicRule> MultiplicativeFamily(const std::string& op) {
  std::vector<BasicRule> rules;
  // ta[e1] -> ta[*]: e2 may be 1.
  Add(rules, op + ": sweep left", {Ta(0)}, Ta(R));
  Add(rules, op + ": sweep right", {Ta(1)}, Ta(R));
  Add(rules, op + ": perturb left", {Pa(0)}, Pa(R));
  Add(rules, op + ": perturb right", {Pa(1)}, Pa(R));
  // ti[e1] -> ti[*]: e1 may be 0, which absorbs.
  Add(rules, op + ": absorbing left", {Ti(0)}, Ti(R));
  Add(rules, op + ": absorbing right", {Ti(1)}, Ti(R));
  Add(rules, op + ": bounded left", {Pi(0)}, Pi(R));
  Add(rules, op + ": bounded right", {Pi(1)}, Pi(R));
  // pi[e1] -> pi*[(e2, *)].
  Add(rules, op + ": left ties (right,result)", {Pi(0)}, PiStar(1, R));
  Add(rules, op + ": right ties (left,result)", {Pi(1)}, PiStar(0, R));
  // pi[e1], pi[*] -> ti[e2]: the paper's {2,3} x {4,5} example.
  Add(rules, op + ": corner right", {Pi(0), Pi(R)}, Ti(1));
  Add(rules, op + ": corner left", {Pi(1), Pi(R)}, Ti(0));
  Add(rules, op + ": altered corner right", {Pa(0), Pi(R)}, Ti(1));
  Add(rules, op + ": altered corner left", {Pa(1), Pi(R)}, Ti(0));
  // pi[*] -> pi[e2]: a bounded product bounds each factor.
  Add(rules, op + ": factor bound left", {Pi(R)}, Pi(0));
  Add(rules, op + ": factor bound right", {Pi(R)}, Pi(1));
  // pi*[(e1, *)] -> ti[e2].
  Add(rules, op + ": pair pins right", {PiStar(0, R)}, Ti(1));
  Add(rules, op + ": pair pins left", {PiStar(1, R)}, Ti(0));
  Add(rules, op + ": bounded outcome pairs operands", {Pi(R)}, PiStar(0, 1));
  // ti[e1], ti[*] -> ti[e2]: divide out a known factor (Figure 1's final
  // step, 10 * r_salary).
  Add(rules, op + ": invert known factor right", {Ti(0), Ti(R)}, Ti(1));
  Add(rules, op + ": invert known factor left", {Ti(1), Ti(R)}, Ti(0));
  AddDeterminism(rules, op, 2);
  return rules;
}

// Integer division: totalized (x/0 = 0), left-invertible only
// approximately.
std::vector<BasicRule> DivisionFamily(const std::string& op) {
  std::vector<BasicRule> rules;
  // ta[e1] -> ta[/]: e2 may be 1.
  Add(rules, op + ": sweep dividend", {Ta(0)}, Ta(R));
  Add(rules, op + ": perturb dividend", {Pa(0)}, Pa(R));
  Add(rules, op + ": perturb divisor", {Pa(1)}, Pa(R));
  Add(rules, op + ": bounded operands", {Pi(0), Pi(1)}, Pi(R));
  // ti[/], ti[e2] -> pi[e1]: quotient and divisor bracket the dividend.
  Add(rules, op + ": bracket dividend", {Ti(R), Ti(1)}, Pi(0));
  Add(rules, op + ": bound divisor", {Ti(R), Ti(0)}, Pi(1));
  // Probing: sweep a known dividend (divisor) and watch quotients.
  Add(rules, op + ": probe divisor", {Ti(0), Pa(0), Ti(R)}, Ti(1));
  Add(rules, op + ": probe dividend", {Ti(1), Pa(1), Ti(R)}, Ti(0));
  Add(rules, op + ": outcome pairs operands", {Ti(R)}, PiStar(0, 1));
  AddDeterminism(rules, op, 2);
  return rules;
}

// Remainder: totalized (x%0 = 0); the result never covers all of int.
std::vector<BasicRule> RemainderFamily(const std::string& op) {
  std::vector<BasicRule> rules;
  Add(rules, op + ": perturb dividend", {Pa(0)}, Pa(R));
  Add(rules, op + ": perturb divisor", {Pa(1)}, Pa(R));
  Add(rules, op + ": bounded operands", {Pi(0), Pi(1)}, Pi(R));
  // r = a % b constrains a to a residue class and b to divisors of a-r.
  Add(rules, op + ": residue bound", {Ti(R), Ti(1)}, Pi(0));
  Add(rules, op + ": divisor bound", {Ti(R), Ti(0)}, Pi(1));
  // No probe rules: x % b == x % -b, so sweeping the dividend cannot
  // separate a divisor from its negation (caught by the metarule
  // engine), and symmetrically sweeping the divisor cannot separate
  // dividends congruent under every modulus in range.
  Add(rules, op + ": outcome pairs operands", {Ti(R)}, PiStar(0, 1));
  AddDeterminism(rules, op, 2);
  return rules;
}

// min/max: alterable through either argument (the other may not bind),
// the outcome bounds both arguments, probeable.
std::vector<BasicRule> ExtremumFamily(const std::string& op) {
  std::vector<BasicRule> rules;
  Add(rules, op + ": sweep left", {Ta(0)}, Ta(R));
  Add(rules, op + ": sweep right", {Ta(1)}, Ta(R));
  Add(rules, op + ": perturb left", {Pa(0)}, Pa(R));
  Add(rules, op + ": perturb right", {Pa(1)}, Pa(R));
  Add(rules, op + ": outcome bounds left", {Ti(R)}, Pi(0));
  Add(rules, op + ": outcome bounds right", {Ti(R)}, Pi(1));
  Add(rules, op + ": probe right via left", {Ti(0), Pa(0), Ti(R)}, Ti(1));
  Add(rules, op + ": probe left via right", {Ti(1), Pa(1), Ti(R)}, Ti(0));
  Add(rules, op + ": outcome pairs operands", {Ti(R)}, PiStar(0, 1));
  AddDeterminism(rules, op, 2);
  return rules;
}

// and/or: absorbing element in each argument; fully probeable.
std::vector<BasicRule> BoolConnectiveFamily(const std::string& op) {
  std::vector<BasicRule> rules;
  // pa over bool means both values, which flips the result when the
  // other operand may be non-absorbing.
  Add(rules, op + ": flip via left", {Pa(0)}, Ta(R));
  Add(rules, op + ": flip via right", {Pa(1)}, Ta(R));
  // ti[e1] -> ti[R]: e1 may be the absorbing element.
  Add(rules, op + ": absorbing left", {Ti(0)}, Ti(R));
  Add(rules, op + ": absorbing right", {Ti(1)}, Ti(R));
  // The non-absorbing outcome pins both operands.
  Add(rules, op + ": outcome bounds left", {Ti(R)}, Pi(0));
  Add(rules, op + ": outcome bounds right", {Ti(R)}, Pi(1));
  Add(rules, op + ": probe right via left", {Ti(0), Pa(0), Ti(R)}, Ti(1));
  Add(rules, op + ": probe left via right", {Ti(1), Pa(1), Ti(R)}, Ti(0));
  Add(rules, op + ": outcome pairs operands", {Ti(R)}, PiStar(0, 1));
  Add(rules, op + ": left ties (right,result)", {Pi(0)}, PiStar(1, R));
  Add(rules, op + ": right ties (left,result)", {Pi(1)}, PiStar(0, R));
  AddDeterminism(rules, op, 2);
  return rules;
}

// not / neg: bijective unary functions propagate everything both ways.
std::vector<BasicRule> BijectiveUnaryFamily(const std::string& op) {
  std::vector<BasicRule> rules;
  Add(rules, op + ": sweep", {Ta(0)}, Ta(R));
  Add(rules, op + ": perturb", {Pa(0)}, Pa(R));
  Add(rules, op + ": forward", {Ti(0)}, Ti(R));
  Add(rules, op + ": forward bound", {Pi(0)}, Pi(R));
  Add(rules, op + ": backward", {Ti(R)}, Ti(0));
  Add(rules, op + ": backward bound", {Pi(R)}, Pi(0));
  return rules;
}

// abs: two-to-one; its image is a proper subset of int.
std::vector<BasicRule> AbsFamily(const std::string& op) {
  std::vector<BasicRule> rules;
  Add(rules, op + ": perturb", {Pa(0)}, Pa(R));
  Add(rules, op + ": forward", {Ti(0)}, Ti(R));
  Add(rules, op + ": forward bound", {Pi(0)}, Pi(R));
  // |x| = r leaves two candidates for x.
  Add(rules, op + ": backward bound", {Ti(R)}, Pi(0));
  Add(rules, op + ": backward set bound", {Pi(R)}, Pi(0));
  // The result is always non-negative: partial inferability for free.
  Add(rules, op + ": non-negative image", {}, Pi(R));
  return rules;
}

const std::map<std::string, std::vector<BasicRule>>& FamilyTable() {
  static const auto& table = *new std::map<std::string, std::vector<BasicRule>>{
      {"<", ComparisonFamily("<")},
      {">", ComparisonFamily(">")},
      {"<=", ComparisonFamily("<=")},
      {">=", ComparisonFamily(">=")},
      {"==", ComparisonFamily("==")},
      {"!=", ComparisonFamily("!=")},
      {"+", InvertibleFamily("+")},
      {"-", InvertibleFamily("-")},
      {"concat", InvertibleFamily("concat")},
      {"*", MultiplicativeFamily("*")},
      {"/", DivisionFamily("/")},
      {"%", RemainderFamily("%")},
      {"min", ExtremumFamily("min")},
      {"max", ExtremumFamily("max")},
      {"and", BoolConnectiveFamily("and")},
      {"or", BoolConnectiveFamily("or")},
      {"not", BijectiveUnaryFamily("not")},
      {"neg", BijectiveUnaryFamily("neg")},
      {"abs", AbsFamily("abs")},
  };
  return table;
}

}  // namespace

const std::vector<BasicRule>& RulesFor(const exec::BasicFunction& fn) {
  static const std::vector<BasicRule>& empty = *new std::vector<BasicRule>();
  auto it = FamilyTable().find(fn.name());
  return it == FamilyTable().end() ? empty : it->second;
}

}  // namespace oodbsec::core
