#include "core/analyzer.h"

#include <algorithm>

#include "common/strings.h"

namespace oodbsec::core {

using unfold::Node;
using unfold::NodeKind;

std::string AnalysisReport::ToString() const {
  std::string out = common::StrCat(
      "requirement ", requirement.ToString(), ": ",
      satisfied ? "SATISFIED" : "NOT SATISFIED (security flaw)", "\n");
  for (const FlawSite& flaw : flaws) {
    out += common::StrCat("  flaw at ", flaw.description, "\n");
  }
  return out;
}

std::vector<std::string> AnalysisRoots(const schema::Schema& schema,
                                       const schema::User& user) {
  return AnalysisRoots(schema, user.capabilities());
}

std::vector<std::string> AnalysisRoots(const schema::Schema& schema,
                                       const std::set<std::string>& functions) {
  std::vector<std::string> roots(functions.begin(), functions.end());
  // Integrity constraints (paper §1.1) are known-true to every user:
  // their unfolded bodies join the closure as observed results, so
  // constraint knowledge participates in inference even without a grant.
  for (const schema::FunctionDecl* constraint : schema.constraints()) {
    if (!functions.contains(constraint->name())) {
      roots.push_back(constraint->name());
    }
  }
  return roots;
}

common::Result<std::unique_ptr<UserAnalysis>> UserAnalysis::Build(
    const schema::Schema& schema, const schema::User& user,
    ClosureOptions options, obs::Observability* obs) {
  OODBSEC_ASSIGN_OR_RETURN(
      std::unique_ptr<unfold::UnfoldedSet> set,
      unfold::UnfoldedSet::Build(schema, AnalysisRoots(schema, user), obs));
  std::unique_ptr<UserAnalysis> analysis(new UserAnalysis());
  analysis->user_name_ = user.name();
  analysis->closure_ = std::make_unique<Closure>(*set, options, obs);
  analysis->set_ = std::move(set);
  return analysis;
}

namespace {

// Collects the supporting fact for capability `cap` on occurrence `id`;
// returns false when the capability is not derivable.
bool CapabilityHolds(const Closure& closure, Capability cap, int id,
                     std::vector<FactId>& supporting) {
  switch (cap) {
    case Capability::kTotalInferability:
      if (!closure.HasTi(id)) return false;
      supporting.push_back(closure.TiFact(id));
      return true;
    case Capability::kPartialInferability:
      if (!closure.HasPi(id)) return false;
      supporting.push_back(closure.PiFact(id));
      return true;
    case Capability::kTotalAlterability:
      if (!closure.HasTa(id)) return false;
      supporting.push_back(closure.TaFact(id));
      return true;
    case Capability::kPartialAlterability:
      if (!closure.HasPa(id)) return false;
      supporting.push_back(closure.PaFact(id));
      return true;
  }
  return false;
}

}  // namespace

common::Result<AnalysisReport> UserAnalysis::Check(
    const Requirement& requirement) const {
  if (requirement.user != user_name_) {
    return common::InvalidArgumentError(common::StrCat(
        "requirement names user '", requirement.user,
        "' but this analysis is for '", user_name_, "'"));
  }
  return CheckAgainstClosure(*set_, *closure_, requirement);
}

common::Result<AnalysisReport> CheckAgainstClosure(
    const unfold::UnfoldedSet& set, const Closure& closure,
    const Requirement& requirement, obs::Observability* obs,
    obs::SpanId parent) {
  obs::ScopedSpan check_span(obs != nullptr ? &obs->tracer : nullptr,
                             "check", parent);
  schema::Callable callable =
      set.schema().ResolveCallable(requirement.function);
  if (!callable.ok()) {
    return common::NotFoundError(common::StrCat(
        "requirement names unknown function '", requirement.function, "'"));
  }
  if (!requirement.arg_caps.empty() &&
      requirement.arg_caps.size() != callable.param_types.size()) {
    return common::InvalidArgumentError(common::StrCat(
        "requirement lists ", requirement.arg_caps.size(),
        " argument(s) but '", requirement.function, "' takes ",
        callable.param_types.size()));
  }

  AnalysisReport report;
  report.requirement = requirement;
  report.node_count = set.node_count();
  report.fact_count = closure.fact_count();

  // Enumerate invocation sites: (argument ids, result id, description).
  struct Site {
    std::vector<int> arg_ids;  // id 0 = trivially-held root argument
    int result_id = 0;
    int site_id = 0;
    bool is_root = false;
    std::string description;
  };
  std::vector<Site> sites;

  if (callable.kind == schema::Callable::Kind::kAccess) {
    for (int i = 1; i <= set.node_count(); ++i) {
      const Node* node = set.node(i);
      if (node->is_let() &&
          node->origin_function == requirement.function) {
        Site site;
        for (size_t a = 0; a + 1 < node->children.size(); ++a) {
          site.arg_ids.push_back(node->children[a]->id);
        }
        site.result_id = node->id;
        site.site_id = node->id;
        site.description = common::StrCat("indirect invocation ",
                                          set.ShortLabel(node));
        sites.push_back(std::move(site));
      }
    }
    for (const unfold::Root& root : set.roots()) {
      if (root.function_name != requirement.function) continue;
      Site site;
      // Root arguments are supplied directly by the user: every
      // capability on them holds trivially (id 0 marks this).
      site.arg_ids.assign(root.arg_binder_ids.size(), 0);
      site.result_id = root.body->id;
      site.site_id = root.body->id;
      site.is_root = true;
      site.description = common::StrCat("direct invocation of ",
                                        requirement.function);
      sites.push_back(std::move(site));
    }
  } else {
    // Special function: every read/write occurrence on the attribute
    // (including those that are capability-list roots).
    const std::string& attribute = callable.attribute->name;
    const auto& occurrences =
        callable.kind == schema::Callable::Kind::kReadAttr
            ? set.reads(attribute)
            : set.writes(attribute);
    for (const Node* node : occurrences) {
      Site site;
      for (const Node* child : node->children) {
        site.arg_ids.push_back(child->id);
      }
      site.result_id = node->id;
      site.site_id = node->id;
      site.description =
          common::StrCat("operation ", set.ShortLabel(node));
      sites.push_back(std::move(site));
    }
  }

  for (const Site& site : sites) {
    std::vector<FactId> supporting;
    bool all_hold = true;
    for (size_t i = 0; i < requirement.arg_caps.size() && all_hold; ++i) {
      for (Capability cap : requirement.arg_caps[i]) {
        if (site.arg_ids[i] == 0) continue;  // root argument: trivial
        if (!CapabilityHolds(closure, cap, site.arg_ids[i], supporting)) {
          all_hold = false;
          break;
        }
      }
    }
    for (Capability cap : requirement.return_caps) {
      if (!all_hold) break;
      if (!CapabilityHolds(closure, cap, site.result_id, supporting)) {
        all_hold = false;
      }
    }
    if (!all_hold) continue;

    FlawSite flaw;
    flaw.site_id = site.site_id;
    flaw.is_root_site = site.is_root;
    flaw.description = site.description;
    flaw.supporting_facts = supporting;
    flaw.derivation = closure.ExplainFacts(supporting);
    report.flaws.push_back(std::move(flaw));
  }

  report.satisfied = report.flaws.empty();
  if (obs != nullptr) {
    obs->metrics.counter("analyzer.checks")->Increment();
    obs->metrics.counter("analyzer.sites_enumerated")
        ->Increment(sites.size());
    obs->metrics.counter("analyzer.flaws")->Increment(report.flaws.size());
  }
  return report;
}

common::Result<AnalysisReport> CheckRequirement(
    const schema::Schema& schema, const schema::UserRegistry& users,
    const Requirement& requirement, ClosureOptions options) {
  const schema::User* user = users.Find(requirement.user);
  if (user == nullptr) {
    return common::NotFoundError(
        common::StrCat("unknown user '", requirement.user, "'"));
  }
  OODBSEC_ASSIGN_OR_RETURN(std::unique_ptr<UserAnalysis> analysis,
                           UserAnalysis::Build(schema, *user, options));
  return analysis->Check(requirement);
}

}  // namespace oodbsec::core
