// The four user capabilities of §3.1:
//
//   ti  total inferability    — infer the exact value
//   pi  partial inferability  — infer a proper subset it must lie in
//   ta  total alterability    — change the value to anything in its domain
//   pa  partial alterability  — change it within some limited subset
//
// Controllability = inferability + alterability. Total implies partial
// within each family (ti => pi, ta => pa).
#ifndef OODBSEC_CORE_CAPABILITY_H_
#define OODBSEC_CORE_CAPABILITY_H_

#include <optional>
#include <string>
#include <string_view>

namespace oodbsec::core {

enum class Capability {
  kTotalInferability,
  kPartialInferability,
  kTotalAlterability,
  kPartialAlterability,
};

// "ti", "pi", "ta", "pa".
std::string_view CapabilityName(Capability capability);

// Parses "ti" | "pi" | "ta" | "pa".
std::optional<Capability> ParseCapability(std::string_view text);

// ti => pi and ta => pa; every capability implies itself.
bool Implies(Capability stronger, Capability weaker);

bool IsInferability(Capability capability);
bool IsAlterability(Capability capability);

}  // namespace oodbsec::core

#endif  // OODBSEC_CORE_CAPABILITY_H_
