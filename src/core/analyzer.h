// Algorithm A(R) (paper §4.1, Definition 6): decides whether a security
// requirement is satisfied by computing the F(F) closure over the
// program of every function in the user's capability list and looking
// for an invocation site of the requirement's function at which all
// listed capabilities are simultaneously derivable.
//
// Invocation sites of f in S(F):
//   * every let(f) occurrence (indirect invocation): arguments are the
//     bound expressions, the returned value is the let node;
//   * every r_att / w_att occurrence when f is a special function;
//   * the root itself when f is on the capability list: argument
//     capabilities hold trivially (the user passes the arguments), the
//     returned value is the unfolded body.
//
// The algorithm is sound (paper Theorem 1): if the requirement is
// actually violable, some site is reported. It is pessimistic: reported
// sites may be unrealizable (see the S2/pessimism experiment).
#ifndef OODBSEC_CORE_ANALYZER_H_
#define OODBSEC_CORE_ANALYZER_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/closure.h"
#include "core/requirement.h"
#include "schema/user.h"

namespace oodbsec::core {

// One invocation site at which every required capability is derivable.
struct FlawSite {
  int site_id = 0;          // occurrence id of the site (0 for pure roots)
  bool is_root_site = false;
  std::string description;  // human-readable site label
  std::vector<FactId> supporting_facts;
  std::string derivation;   // Figure-1 style justification
};

struct AnalysisReport {
  Requirement requirement;
  bool satisfied = true;
  std::vector<FlawSite> flaws;

  // Closure statistics (for the scaling experiments).
  int node_count = 0;
  size_t fact_count = 0;

  std::string ToString() const;
};

// The roots whose unfolded program a user's closure runs over: the
// capability list (already sorted — capability sets are std::set) plus
// every integrity constraint not granted outright (paper §1.1).
// Deterministic: two users with permuted-equal grant sets produce equal
// root lists, which is what the service layer's capability-signature
// cache keys on.
std::vector<std::string> AnalysisRoots(const schema::Schema& schema,
                                       const schema::User& user);

// The same root list for a bare function set (no registry user): the
// sorted set plus every constraint it does not already contain. The
// dynamic session guard keys its incremental closures on this form —
// a session's exercised-function set is a transient capability list,
// and both overloads must produce identical lists for identical sets so
// guard closures and registry-user closures share cache entries.
std::vector<std::string> AnalysisRoots(const schema::Schema& schema,
                                       const std::set<std::string>& functions);

// Checks `requirement` against an already-computed closure, without
// validating the requirement's user name: the site enumeration and
// capability tests of A(R), shared by UserAnalysis::Check and the
// service layer (which serves many same-signature users from one
// closure). Read-only on `set`/`closure`; safe to call concurrently.
// With `obs`, the check runs under a "check" span (parented under
// `parent` when given — pass the submitting side's span id when the
// check runs on a pool worker) and site/flaw counts hit the registry.
common::Result<AnalysisReport> CheckAgainstClosure(
    const unfold::UnfoldedSet& set, const Closure& closure,
    const Requirement& requirement, obs::Observability* obs = nullptr,
    obs::SpanId parent = obs::kNoSpan);

// The per-user analysis context: the unfolded capability-list program
// and its closure, reusable across many requirement checks.
//
// DEPRECATED as an entry point: construct an AnalysisSession
// (core/analysis_session.h) and call its BuildUser/Check instead —
// the session is the one place that owns options and observability.
// Build stays as a thin wrapper so existing callers keep compiling.
class UserAnalysis {
 public:
  // Unfolds every function on `user`'s capability list and computes the
  // closure, both observed through `obs` when given.
  static common::Result<std::unique_ptr<UserAnalysis>> Build(
      const schema::Schema& schema, const schema::User& user,
      ClosureOptions options = {}, obs::Observability* obs = nullptr);

  const unfold::UnfoldedSet& set() const { return *set_; }
  const Closure& closure() const { return *closure_; }
  const std::string& user_name() const { return user_name_; }

  // Checks one requirement (its user field must match this analysis'
  // user). The requirement's function need not be on the capability
  // list — indirect invocation sites still count.
  common::Result<AnalysisReport> Check(const Requirement& requirement) const;

 private:
  UserAnalysis() = default;

  std::string user_name_;
  std::unique_ptr<unfold::UnfoldedSet> set_;
  std::unique_ptr<Closure> closure_;
};

// One-shot convenience: build the user's analysis and check one
// requirement.
common::Result<AnalysisReport> CheckRequirement(
    const schema::Schema& schema, const schema::UserRegistry& users,
    const Requirement& requirement, ClosureOptions options = {});

}  // namespace oodbsec::core

#endif  // OODBSEC_CORE_ANALYZER_H_
