#include "core/thread_pool.h"

#include <utility>

#include "common/strings.h"

namespace oodbsec::core {

ThreadPool::ThreadPool(int threads, obs::Observability* obs) {
  if (threads < 1) threads = 1;
  if (obs != nullptr) {
    tasks_counter_ = obs->metrics.counter("pool.tasks");
    steals_counter_ = obs->metrics.counter("pool.steals");
    queue_depth_ = obs->metrics.histogram("pool.queue_depth");
    worker_tasks_.reserve(static_cast<size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      worker_tasks_.push_back(
          obs->metrics.counter(common::StrCat("pool.worker", i, ".tasks")));
    }
  }
  queues_.resize(static_cast<size_t>(threads));
  workers_.reserve(static_cast<size_t>(threads));
  for (size_t i = 0; i < static_cast<size_t>(threads); ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_depth_ != nullptr) queue_depth_->Record(pending_);
    queues_[next_queue_].push_back(std::move(task));
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++pending_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

bool ThreadPool::PopTask(size_t index, std::function<void()>& task) {
  std::deque<std::function<void()>>& own = queues_[index];
  if (!own.empty()) {
    task = std::move(own.back());
    own.pop_back();
    return true;
  }
  for (size_t offset = 1; offset < queues_.size(); ++offset) {
    std::deque<std::function<void()>>& victim =
        queues_[(index + offset) % queues_.size()];
    if (!victim.empty()) {
      task = std::move(victim.front());
      victim.pop_front();
      if (steals_counter_ != nullptr) steals_counter_->Increment();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t index) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    std::function<void()> task;
    if (PopTask(index, task)) {
      lock.unlock();
      if (tasks_counter_ != nullptr) {
        tasks_counter_->Increment();
        worker_tasks_[index]->Increment();
      }
      task();
      task = nullptr;  // destroy captures outside the lock
      lock.lock();
      if (--pending_ == 0) done_cv_.notify_all();
      continue;
    }
    // stop_ is checked only with the queues empty: shutdown still runs
    // everything that was submitted before the destructor.
    if (stop_) return;
    work_cv_.wait(lock);
  }
}

}  // namespace oodbsec::core
