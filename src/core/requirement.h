// Security requirement descriptions (paper §3.1):
//
//   req  ::= (u, f(x1 : clist, …, xn : clist) : clist)
//   cap  ::= ti | pi | ta | pa
//
// "(u, f(… xi : c …) : c')" means: user u must NOT be able to invoke f in
// a context where they simultaneously achieve every listed capability on
// each argument and on the returned value. Both paper examples parse:
//
//   (clerk, r_salary(x) : ti)      -- must not infer the salary read
//   (u, w_salary(a, v : pa))       -- must not alter the written value
#ifndef OODBSEC_CORE_REQUIREMENT_H_
#define OODBSEC_CORE_REQUIREMENT_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/diagnostics.h"
#include "common/result.h"
#include "core/capability.h"
#include "lang/parser.h"

namespace oodbsec::core {

struct Requirement {
  std::string user;
  std::string function;
  std::vector<std::string> arg_names;             // for printing only
  std::vector<std::set<Capability>> arg_caps;     // one entry per argument
  std::set<Capability> return_caps;

  // Total number of capabilities listed (must be >= 1 to be meaningful).
  size_t capability_count() const;

  // Round-trips through ParseRequirement.
  std::string ToString() const;
};

// Parses a requirement from `stream`; reports into `sink` and returns
// nullopt on error. Shared with the workspace format (src/text).
std::optional<Requirement> ParseRequirement(lang::TokenStream& stream,
                                            common::DiagnosticSink& sink);

// Parses `source` as a complete requirement.
common::Result<Requirement> ParseRequirementString(std::string_view source);

}  // namespace oodbsec::core

#endif  // OODBSEC_CORE_REQUIREMENT_H_
