#include "core/requirement.h"

#include "common/strings.h"

namespace oodbsec::core {

using lang::TokenKind;

size_t Requirement::capability_count() const {
  size_t count = return_caps.size();
  for (const std::set<Capability>& caps : arg_caps) count += caps.size();
  return count;
}

std::string Requirement::ToString() const {
  std::string out = common::StrCat("(", user, ", ", function, "(");
  for (size_t i = 0; i < arg_names.size(); ++i) {
    if (i > 0) out += ", ";
    out += arg_names[i];
    for (Capability cap : arg_caps[i]) {
      out += " : ";
      out += CapabilityName(cap);
    }
  }
  out += ")";
  for (Capability cap : return_caps) {
    out += " : ";
    out += CapabilityName(cap);
  }
  out += ")";
  return out;
}

namespace {

// Parses a possibly empty ": cap : cap …" list.
bool ParseCapList(lang::TokenStream& stream, common::DiagnosticSink& sink,
                  std::set<Capability>& out) {
  while (stream.Match(TokenKind::kColon)) {
    if (!stream.Check(TokenKind::kIdentifier)) {
      sink.Error(stream.location(), "expected capability (ti|pi|ta|pa)");
      return false;
    }
    lang::Token token = stream.Advance();
    std::optional<Capability> cap = ParseCapability(token.text);
    if (!cap.has_value()) {
      sink.Error(token.location,
                 common::StrCat("unknown capability '", token.text,
                                "' (expected ti|pi|ta|pa)"));
      return false;
    }
    out.insert(*cap);
  }
  return true;
}

}  // namespace

std::optional<Requirement> ParseRequirement(lang::TokenStream& stream,
                                            common::DiagnosticSink& sink) {
  Requirement req;
  if (!stream.Expect(TokenKind::kLParen, "'('", sink)) return std::nullopt;
  if (!stream.Check(TokenKind::kIdentifier)) {
    sink.Error(stream.location(), "expected user name");
    return std::nullopt;
  }
  req.user = stream.Advance().text;
  if (!stream.Expect(TokenKind::kComma, "','", sink)) return std::nullopt;
  if (!stream.Check(TokenKind::kIdentifier)) {
    sink.Error(stream.location(), "expected function name");
    return std::nullopt;
  }
  req.function = stream.Advance().text;
  if (!stream.Expect(TokenKind::kLParen, "'('", sink)) return std::nullopt;
  if (!stream.Check(TokenKind::kRParen)) {
    while (true) {
      if (!stream.Check(TokenKind::kIdentifier)) {
        sink.Error(stream.location(), "expected argument name");
        return std::nullopt;
      }
      req.arg_names.push_back(stream.Advance().text);
      req.arg_caps.emplace_back();
      if (!ParseCapList(stream, sink, req.arg_caps.back())) {
        return std::nullopt;
      }
      if (!stream.Match(TokenKind::kComma)) break;
    }
  }
  if (!stream.Expect(TokenKind::kRParen, "')'", sink)) return std::nullopt;
  if (!ParseCapList(stream, sink, req.return_caps)) return std::nullopt;
  if (!stream.Expect(TokenKind::kRParen, "')'", sink)) return std::nullopt;
  if (req.capability_count() == 0) {
    sink.Error(stream.location(),
               "requirement lists no capabilities; it would be vacuous");
    return std::nullopt;
  }
  return req;
}

common::Result<Requirement> ParseRequirementString(std::string_view source) {
  lang::TokenStream stream(source);
  common::DiagnosticSink sink;
  std::optional<Requirement> req = ParseRequirement(stream, sink);
  if (!req.has_value()) return sink.ToStatus();
  if (!stream.AtEnd()) {
    return common::ParseError(
        common::StrCat("trailing input at ", stream.location().ToString()));
  }
  return *req;
}

}  // namespace oodbsec::core
