// The workspace file format: one text file declaring a schema, access
// functions, users with capability lists, security requirements, and
// seed objects — everything the examples and benchmark harnesses need.
//
//   class Broker {
//     name: string;
//     salary: int;
//     budget: int;
//   }
//
//   function checkBudget(broker: Broker): bool =
//     r_budget(broker) >= 10 * r_salary(broker);
//
//   user clerk can checkBudget, w_budget, r_name;
//
//   require (clerk, r_salary(x) : ti);
//
//   object Broker { name = "John", salary = 50, budget = 400 }
//
// Object initializers take literal values only (ints, strings, bools,
// null); class- and set-typed attributes keep their zero values.
#ifndef OODBSEC_TEXT_WORKSPACE_H_
#define OODBSEC_TEXT_WORKSPACE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/analyzer.h"
#include "core/requirement.h"
#include "schema/schema.h"
#include "schema/user.h"
#include "store/database.h"

namespace oodbsec::text {

struct Workspace {
  std::unique_ptr<schema::Schema> schema;
  std::unique_ptr<schema::UserRegistry> users;
  std::vector<core::Requirement> requirements;
  std::unique_ptr<store::Database> database;  // seeded with the objects
};

// Parses and validates a workspace from source text.
common::Result<Workspace> LoadWorkspace(std::string_view source);

// Reads `path` and parses it.
common::Result<Workspace> LoadWorkspaceFile(const std::string& path);

// Runs A(R) for every requirement in the workspace; reports are in
// declaration order.
common::Result<std::vector<core::AnalysisReport>> CheckAllRequirements(
    const Workspace& workspace, core::ClosureOptions options = {});

// Renders the workspace back to the text format (classes, functions,
// constraints, users, requirements, objects). LoadWorkspace of the
// output reproduces an equivalent workspace.
std::string FormatWorkspace(const Workspace& workspace);

}  // namespace oodbsec::text

#endif  // OODBSEC_TEXT_WORKSPACE_H_
