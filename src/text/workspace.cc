#include "text/workspace.h"

#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "common/strings.h"
#include "lang/parser.h"
#include "lang/printer.h"

namespace oodbsec::text {

using common::Result;
using common::Status;
using lang::TokenKind;

namespace {

// A type expression in declarations: IDENT | int | bool | string | null
// | { type }.
bool ParseTypeText(lang::TokenStream& stream, common::DiagnosticSink& sink,
                   std::string& out) {
  if (stream.Check(TokenKind::kLBrace)) {
    stream.Advance();
    std::string inner;
    if (!ParseTypeText(stream, sink, inner)) return false;
    if (!stream.Expect(TokenKind::kRBrace, "'}'", sink)) return false;
    out = common::StrCat("{", inner, "}");
    return true;
  }
  if (stream.Check(TokenKind::kIdentifier) ||
      stream.Check(TokenKind::kKwNull)) {
    out = stream.Advance().text;
    return true;
  }
  sink.Error(stream.location(), "expected a type");
  return false;
}

struct PendingObject {
  std::string class_name;
  std::vector<std::pair<std::string, types::Value>> fields;
  common::SourceLocation location;
};

struct PendingUser {
  std::string name;
  std::vector<std::string> grants;
};

}  // namespace

Result<Workspace> LoadWorkspace(std::string_view source) {
  lang::TokenStream stream(source);
  common::DiagnosticSink sink;
  schema::SchemaBuilder builder;
  std::vector<PendingUser> users;
  std::vector<core::Requirement> requirements;
  std::vector<PendingObject> objects;

  while (!stream.AtEnd()) {
    if (stream.Match(TokenKind::kSemicolon)) continue;

    if (stream.Match(TokenKind::kKwClass)) {
      if (!stream.Check(TokenKind::kIdentifier)) {
        sink.Error(stream.location(), "expected class name");
        return sink.ToStatus();
      }
      std::string name = stream.Advance().text;
      if (!stream.Expect(TokenKind::kLBrace, "'{'", sink)) {
        return sink.ToStatus();
      }
      std::vector<schema::SchemaBuilder::AttributeSpec> attributes;
      while (!stream.Check(TokenKind::kRBrace)) {
        if (!stream.Check(TokenKind::kIdentifier)) {
          sink.Error(stream.location(), "expected attribute name");
          return sink.ToStatus();
        }
        std::string attr = stream.Advance().text;
        if (!stream.Expect(TokenKind::kColon, "':'", sink)) {
          return sink.ToStatus();
        }
        std::string type;
        if (!ParseTypeText(stream, sink, type)) return sink.ToStatus();
        attributes.push_back({std::move(attr), std::move(type)});
        if (!stream.Match(TokenKind::kSemicolon) &&
            !stream.Match(TokenKind::kComma)) {
          break;
        }
      }
      if (!stream.Expect(TokenKind::kRBrace, "'}'", sink)) {
        return sink.ToStatus();
      }
      builder.AddClass(std::move(name), std::move(attributes));
      continue;
    }

    bool is_constraint = stream.Check(TokenKind::kKwConstraint);
    if (is_constraint || stream.Check(TokenKind::kKwFunction)) {
      stream.Advance();
      if (!stream.Check(TokenKind::kIdentifier)) {
        sink.Error(stream.location(), "expected function name");
        return sink.ToStatus();
      }
      std::string name = stream.Advance().text;
      if (is_constraint) builder.MarkConstraint(name);
      if (!stream.Expect(TokenKind::kLParen, "'('", sink)) {
        return sink.ToStatus();
      }
      std::vector<schema::SchemaBuilder::ParamSpec> params;
      if (!stream.Check(TokenKind::kRParen)) {
        while (true) {
          if (!stream.Check(TokenKind::kIdentifier)) {
            sink.Error(stream.location(), "expected parameter name");
            return sink.ToStatus();
          }
          std::string param = stream.Advance().text;
          if (!stream.Expect(TokenKind::kColon, "':'", sink)) {
            return sink.ToStatus();
          }
          std::string type;
          if (!ParseTypeText(stream, sink, type)) return sink.ToStatus();
          params.push_back({std::move(param), std::move(type)});
          if (!stream.Match(TokenKind::kComma)) break;
        }
      }
      if (!stream.Expect(TokenKind::kRParen, "')'", sink)) {
        return sink.ToStatus();
      }
      if (!stream.Expect(TokenKind::kColon, "':'", sink)) {
        return sink.ToStatus();
      }
      std::string return_type;
      if (!ParseTypeText(stream, sink, return_type)) return sink.ToStatus();
      if (!stream.Expect(TokenKind::kAssign, "'='", sink)) {
        return sink.ToStatus();
      }
      std::unique_ptr<lang::Expr> body = lang::ParseExpression(stream, sink);
      if (body == nullptr) return sink.ToStatus();
      if (!stream.Expect(TokenKind::kSemicolon, "';'", sink)) {
        return sink.ToStatus();
      }
      builder.AddFunctionAst(std::move(name), std::move(params),
                             std::move(return_type), std::move(body));
      continue;
    }

    if (stream.Match(TokenKind::kKwUser)) {
      if (!stream.Check(TokenKind::kIdentifier)) {
        sink.Error(stream.location(), "expected user name");
        return sink.ToStatus();
      }
      PendingUser user;
      user.name = stream.Advance().text;
      if (!stream.Expect(TokenKind::kKwCan, "'can'", sink)) {
        return sink.ToStatus();
      }
      while (true) {
        if (!stream.Check(TokenKind::kIdentifier)) {
          sink.Error(stream.location(), "expected function name in grant");
          return sink.ToStatus();
        }
        user.grants.push_back(stream.Advance().text);
        if (!stream.Match(TokenKind::kComma)) break;
      }
      if (!stream.Expect(TokenKind::kSemicolon, "';'", sink)) {
        return sink.ToStatus();
      }
      users.push_back(std::move(user));
      continue;
    }

    if (stream.Match(TokenKind::kKwRequire)) {
      std::optional<core::Requirement> req =
          core::ParseRequirement(stream, sink);
      if (!req.has_value()) return sink.ToStatus();
      if (!stream.Expect(TokenKind::kSemicolon, "';'", sink)) {
        return sink.ToStatus();
      }
      requirements.push_back(std::move(*req));
      continue;
    }

    if (stream.Match(TokenKind::kKwObject)) {
      PendingObject object;
      object.location = stream.location();
      if (!stream.Check(TokenKind::kIdentifier)) {
        sink.Error(stream.location(), "expected class name after 'object'");
        return sink.ToStatus();
      }
      object.class_name = stream.Advance().text;
      if (!stream.Expect(TokenKind::kLBrace, "'{'", sink)) {
        return sink.ToStatus();
      }
      while (!stream.Check(TokenKind::kRBrace)) {
        if (!stream.Check(TokenKind::kIdentifier)) {
          sink.Error(stream.location(), "expected attribute name");
          return sink.ToStatus();
        }
        std::string attr = stream.Advance().text;
        if (!stream.Expect(TokenKind::kAssign, "'='", sink)) {
          return sink.ToStatus();
        }
        const lang::Token& token = stream.Peek();
        types::Value value;
        switch (token.kind) {
          case TokenKind::kIntLiteral:
            value = types::Value::Int(token.int_value);
            break;
          case TokenKind::kMinus:
            stream.Advance();
            if (!stream.Check(TokenKind::kIntLiteral)) {
              sink.Error(stream.location(), "expected integer after '-'");
              return sink.ToStatus();
            }
            value = types::Value::Int(-stream.Peek().int_value);
            break;
          case TokenKind::kStringLiteral:
            value = types::Value::String(token.text);
            break;
          case TokenKind::kKwTrue:
            value = types::Value::Bool(true);
            break;
          case TokenKind::kKwFalse:
            value = types::Value::Bool(false);
            break;
          case TokenKind::kKwNull:
            value = types::Value::Null();
            break;
          default:
            sink.Error(token.location,
                       "object fields take literal values only");
            return sink.ToStatus();
        }
        stream.Advance();
        object.fields.emplace_back(std::move(attr), std::move(value));
        if (!stream.Match(TokenKind::kComma)) break;
      }
      if (!stream.Expect(TokenKind::kRBrace, "'}'", sink)) {
        return sink.ToStatus();
      }
      objects.push_back(std::move(object));
      continue;
    }

    sink.Error(stream.location(),
               common::StrCat("expected a declaration, found ",
                              DescribeToken(stream.Peek())));
    return sink.ToStatus();
  }

  Workspace workspace;
  OODBSEC_ASSIGN_OR_RETURN(workspace.schema, std::move(builder).Build());
  workspace.users =
      std::make_unique<schema::UserRegistry>(*workspace.schema);
  for (const PendingUser& user : users) {
    OODBSEC_RETURN_IF_ERROR(workspace.users->AddUser(user.name));
    for (const std::string& grant : user.grants) {
      OODBSEC_RETURN_IF_ERROR(
          workspace.users->Grant(user.name, grant)
              .WithContext(common::StrCat("granting to '", user.name, "'")));
    }
  }
  for (const core::Requirement& req : requirements) {
    if (workspace.users->Find(req.user) == nullptr) {
      return common::NotFoundError(common::StrCat(
          "requirement ", req.ToString(), " names unknown user '", req.user,
          "'"));
    }
    if (!workspace.schema->ResolveCallable(req.function).ok()) {
      return common::NotFoundError(common::StrCat(
          "requirement ", req.ToString(), " names unknown function '",
          req.function, "'"));
    }
  }
  workspace.requirements = std::move(requirements);
  workspace.database = std::make_unique<store::Database>(*workspace.schema);
  for (const PendingObject& object : objects) {
    auto oid = workspace.database->CreateObject(object.class_name);
    if (!oid.ok()) {
      return oid.status().WithContext(common::StrCat(
          "object at ", object.location.ToString()));
    }
    for (const auto& [attr, value] : object.fields) {
      OODBSEC_RETURN_IF_ERROR(
          workspace.database->WriteAttribute(*oid, attr, value)
              .WithContext(common::StrCat("object at ",
                                          object.location.ToString())));
    }
  }
  return workspace;
}

Result<Workspace> LoadWorkspaceFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return common::NotFoundError(
        common::StrCat("cannot open workspace file '", path, "'"));
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  Result<Workspace> workspace = LoadWorkspace(contents.str());
  if (!workspace.ok()) {
    return workspace.status().WithContext(path);
  }
  return workspace;
}

Result<std::vector<core::AnalysisReport>> CheckAllRequirements(
    const Workspace& workspace, core::ClosureOptions options) {
  std::vector<core::AnalysisReport> reports;
  std::map<std::string, std::unique_ptr<core::UserAnalysis>> analyses;
  for (const core::Requirement& req : workspace.requirements) {
    auto it = analyses.find(req.user);
    if (it == analyses.end()) {
      OODBSEC_ASSIGN_OR_RETURN(
          std::unique_ptr<core::UserAnalysis> analysis,
          core::UserAnalysis::Build(*workspace.schema,
                                    *workspace.users->Find(req.user),
                                    options));
      it = analyses.emplace(req.user, std::move(analysis)).first;
    }
    OODBSEC_ASSIGN_OR_RETURN(core::AnalysisReport report,
                             it->second->Check(req));
    reports.push_back(std::move(report));
  }
  return reports;
}

std::string FormatWorkspace(const Workspace& workspace) {
  std::string out;
  const schema::Schema& schema = *workspace.schema;

  for (const auto& cls : schema.classes()) {
    out += common::StrCat("class ", cls->name(), " {\n");
    for (const schema::AttributeDef& attr : cls->attributes()) {
      out += common::StrCat("  ", attr.name, ": ", attr.type->ToString(),
                            ";\n");
    }
    out += "}\n\n";
  }

  std::set<std::string> constraint_names;
  for (const schema::FunctionDecl* constraint : schema.constraints()) {
    constraint_names.insert(constraint->name());
  }
  for (const auto& fn : schema.functions()) {
    bool is_constraint = constraint_names.count(fn->name()) > 0;
    out += common::StrCat(is_constraint ? "constraint " : "function ",
                          fn->name(), "(");
    for (size_t i = 0; i < fn->params().size(); ++i) {
      if (i > 0) out += ", ";
      out += common::StrCat(fn->params()[i].name, ": ",
                            fn->params()[i].type->ToString());
    }
    out += common::StrCat("): ", fn->return_type()->ToString(), " =\n  ",
                          lang::PrintExpr(fn->body()), ";\n\n");
  }

  for (const schema::User* user : workspace.users->users()) {
    if (user->capabilities().empty()) continue;
    std::vector<std::string> caps(user->capabilities().begin(),
                                  user->capabilities().end());
    out += common::StrCat("user ", user->name(), " can ",
                          common::Join(caps, ", "), ";\n");
  }
  if (!workspace.users->users().empty()) out += "\n";

  for (const core::Requirement& req : workspace.requirements) {
    out += common::StrCat("require ", req.ToString(), ";\n");
  }
  if (!workspace.requirements.empty()) out += "\n";

  for (const auto& cls : schema.classes()) {
    for (types::Oid oid : workspace.database->Extent(cls->name())) {
      std::vector<std::string> fields;
      for (const schema::AttributeDef& attr : cls->attributes()) {
        auto value = workspace.database->ReadAttribute(oid, attr.name);
        if (!value.ok()) continue;
        const types::Value& v = value.value();
        // Only literal-representable values round-trip.
        if (v.is_int() || v.is_string() || v.is_bool()) {
          fields.push_back(
              common::StrCat(attr.name, " = ", v.ToString()));
        }
      }
      out += common::StrCat("object ", cls->name(), " { ",
                            common::Join(fields, ", "), " }\n");
    }
  }
  return out;
}

}  // namespace oodbsec::text
