// TCP plumbing for the distributed audit: RAII sockets, bounded-retry
// dialing, ephemeral-port listeners, and deadline-bounded exact I/O.
//
// Everything here is deliberately thin POSIX — no event library, no
// buffering policy (that lives in net/frame.h and the coordinator's
// pump). Two properties matter and are owned here:
//
//   * Bounded blocking. Every operation that can stall on a peer takes
//     a timeout in milliseconds (poll()-bounded); a hung worker shows
//     up as a timed-out call, never as a wedged coordinator. timeout_ms
//     <= 0 means wait forever (the worker's accept loop uses a short
//     timeout so its stop flag is honoured).
//   * Short-op discipline. The *FullTimeout helpers loop over partial
//     reads/writes and EINTR exactly like snapshot/binio.h's ReadFull/
//     WriteFull, plus the poll bound. WritevFullTimeout is the gather
//     path: frame header and payload go out in one writev from their
//     own buffers, so a frame is never re-copied into a combined
//     buffer just to be sent.
//
// Dialing retries transient failures (ECONNREFUSED while a worker is
// still binding, timeouts) with a bounded attempt count and backoff —
// the "bounded retry" half of the transport's robustness contract; the
// other half (re-queuing a dead worker's batches) lives in
// service/tcp_shard.cc.
#ifndef OODBSEC_NET_SOCKET_H_
#define OODBSEC_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"

struct iovec;  // <sys/uio.h>

namespace oodbsec::net {

// A close-on-destruct fd. Movable, not copyable.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  // Hands ownership to the caller.
  int Release();
  void Close();

 private:
  int fd_ = -1;
};

struct DialOptions {
  int connect_timeout_ms = 5000;
  // Total connect attempts (>= 1); transient failures back off between
  // attempts.
  int attempts = 3;
  int retry_backoff_ms = 100;
};

// Connects to "host:port" (host: dotted quad or name resolvable by
// getaddrinfo). TCP_NODELAY is set — the shard protocol is
// latency-sensitive small frames interleaved with bulk payloads, and
// the pipelined coordinator does its own batching.
common::Result<Socket> Dial(const std::string& host_port,
                            const DialOptions& options = {});

// A listening TCP socket. port 0 binds an ephemeral port; port() then
// reports what the kernel picked (how tests and benches build loopback
// fleets without port coordination).
class Listener {
 public:
  static common::Result<Listener> Bind(uint16_t port,
                                       bool loopback_only = true);
  Listener() = default;
  Listener(Listener&&) = default;
  Listener& operator=(Listener&&) = default;

  uint16_t port() const { return port_; }
  bool valid() const { return socket_.valid(); }
  int fd() const { return socket_.fd(); }

  // Accepts one connection (TCP_NODELAY set). kFailedPrecondition with
  // message "accept: timed out" on timeout — callers loop and check
  // their stop flag between attempts.
  common::Result<Socket> Accept(int timeout_ms);

 private:
  Socket socket_;
  uint16_t port_ = 0;
};

// Exact I/O with a poll() deadline per progress step. A call fails (and
// returns false) on EOF, error, or when the fd makes no progress for
// `timeout_ms`. Works on blocking and nonblocking fds alike.
bool ReadFullTimeout(int fd, void* buf, size_t n, int timeout_ms);
bool WriteFullTimeout(int fd, const void* buf, size_t n, int timeout_ms);

// Gather write: drains the whole iovec array (which it may mutate to
// track progress), looping short writes, EINTR, and the poll deadline.
bool WritevFullTimeout(int fd, struct iovec* iov, int iovcnt,
                       int timeout_ms);

// Single poll for readability. >0 readable, 0 timeout, <0 error/hup.
int WaitReadable(int fd, int timeout_ms);

void SetNonBlocking(int fd, bool nonblocking);

}  // namespace oodbsec::net

#endif  // OODBSEC_NET_SOCKET_H_
