#include "net/frame.h"

#include <sys/uio.h>

#include <cstring>

#include "common/strings.h"
#include "net/socket.h"
#include "snapshot/binio.h"

namespace oodbsec::net {

std::string EncodeFrameHeader(FrameType type, std::string_view payload) {
  snapshot::ByteWriter header;
  header.PutU32(kFrameMagic);
  header.PutU8(static_cast<uint8_t>(type));
  header.PutU8(0);
  header.PutU8(0);
  header.PutU8(0);
  header.PutU32(static_cast<uint32_t>(payload.size()));
  header.PutU64(snapshot::Fnv1a64(payload));
  return header.Release();
}

common::Status WriteFrame(int fd, FrameType type, std::string_view payload,
                          int timeout_ms) {
  std::string header = EncodeFrameHeader(type, payload);
  struct iovec iov[2];
  iov[0].iov_base = header.data();
  iov[0].iov_len = header.size();
  iov[1].iov_base = const_cast<char*>(payload.data());
  iov[1].iov_len = payload.size();
  int iovcnt = payload.empty() ? 1 : 2;
  if (!WritevFullTimeout(fd, iov, iovcnt, timeout_ms)) {
    return common::InternalError("frame: write failed or timed out");
  }
  return common::Status::Ok();
}

common::Status DecodeFrameHeader(std::string_view header, FrameType* type,
                                 uint32_t* length, uint64_t* checksum) {
  if (header.size() < kFrameHeaderSize) {
    return common::FailedPreconditionError("frame: short header");
  }
  snapshot::ByteReader reader(header.substr(0, kFrameHeaderSize));
  uint32_t magic = reader.GetU32();
  if (magic != kFrameMagic) {
    return common::FailedPreconditionError(
        "frame: bad magic (garbage prefix or foreign-endian peer)");
  }
  uint8_t raw_type = reader.GetU8();
  reader.GetU8();
  reader.GetU8();
  reader.GetU8();
  uint32_t raw_length = reader.GetU32();
  uint64_t raw_checksum = reader.GetU64();
  if (!reader.ok()) {
    return common::FailedPreconditionError("frame: short header");
  }
  if (raw_type < static_cast<uint8_t>(FrameType::kHello) ||
      raw_type > static_cast<uint8_t>(FrameType::kStoreStatsReply)) {
    return common::FailedPreconditionError(
        common::StrCat("frame: unknown type ", raw_type));
  }
  if (raw_length > kMaxFramePayload) {
    return common::FailedPreconditionError(
        common::StrCat("frame: payload length ", raw_length,
                       " exceeds limit (corrupt length prefix)"));
  }
  *type = static_cast<FrameType>(raw_type);
  *length = raw_length;
  *checksum = raw_checksum;
  return common::Status::Ok();
}

common::Status ReadFrame(int fd, Frame* frame, int timeout_ms) {
  char header[kFrameHeaderSize];
  // Distinguish clean close from a torn frame: probe the first byte,
  // then insist on the rest.
  if (!ReadFullTimeout(fd, header, 1, timeout_ms)) {
    return common::NotFoundError("frame: connection closed");
  }
  if (!ReadFullTimeout(fd, header + 1, kFrameHeaderSize - 1, timeout_ms)) {
    return common::FailedPreconditionError(
        "frame: torn header (peer died mid-frame or stalled)");
  }
  FrameType type;
  uint32_t length = 0;
  uint64_t checksum = 0;
  OODBSEC_RETURN_IF_ERROR(DecodeFrameHeader(
      std::string_view(header, kFrameHeaderSize), &type, &length, &checksum));
  std::string payload(length, '\0');
  if (length > 0 &&
      !ReadFullTimeout(fd, payload.data(), length, timeout_ms)) {
    return common::FailedPreconditionError(
        "frame: torn payload (peer died mid-frame or stalled)");
  }
  if (snapshot::Fnv1a64(payload) != checksum) {
    return common::FailedPreconditionError(
        "frame: payload checksum mismatch (corrupt stream)");
  }
  frame->type = type;
  frame->payload = std::move(payload);
  return common::Status::Ok();
}

}  // namespace oodbsec::net
