#include "net/socket.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/strings.h"

namespace oodbsec::net {

namespace {

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

// Polls `fd` for `events`; handles EINTR by re-polling with the time
// already spent deducted (coarsely: full timeout again is acceptable —
// the deadline is a liveness bound, not a precise budget).
int PollOne(int fd, short events, int timeout_ms) {
  struct pollfd pfd = {fd, events, 0};
  for (;;) {
    int n = ::poll(&pfd, 1, timeout_ms);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return n;  // timeout or error
    if (pfd.revents & (POLLERR | POLLNVAL)) return -1;
    return 1;
  }
}

// One connect with a poll()-bounded wait; the socket comes back in
// blocking mode. Empty message on success.
std::string ConnectOnce(int fd, const struct sockaddr* addr,
                        socklen_t addrlen, int timeout_ms) {
  SetNonBlocking(fd, true);
  int rc = ::connect(fd, addr, addrlen);
  if (rc != 0 && errno != EINPROGRESS) {
    return std::strerror(errno);
  }
  if (rc != 0) {
    if (PollOne(fd, POLLOUT, timeout_ms) <= 0) return "connect timed out";
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      return std::strerror(err != 0 ? err : errno);
    }
  }
  SetNonBlocking(fd, false);
  return {};
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Socket::Release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void SetNonBlocking(int fd, bool nonblocking) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return;
  if (nonblocking) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  ::fcntl(fd, F_SETFL, flags);
}

common::Result<Socket> Dial(const std::string& host_port,
                            const DialOptions& options) {
  size_t colon = host_port.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == host_port.size()) {
    return common::InvalidArgumentError(
        common::StrCat("dial ", host_port, ": expected host:port"));
  }
  std::string host = host_port.substr(0, colon);
  std::string port = host_port.substr(colon + 1);

  struct addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* resolved = nullptr;
  int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &resolved);
  if (rc != 0) {
    return common::NotFoundError(
        common::StrCat("dial ", host_port, ": ", ::gai_strerror(rc)));
  }

  std::string last_error = "no addresses";
  int attempts = options.attempts < 1 ? 1 : options.attempts;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0 && options.retry_backoff_ms > 0) {
      struct timespec backoff = {options.retry_backoff_ms / 1000,
                                 (options.retry_backoff_ms % 1000) * 1000000L};
      ::nanosleep(&backoff, nullptr);
    }
    for (struct addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
      Socket socket(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
      if (!socket.valid()) {
        last_error = std::strerror(errno);
        continue;
      }
      std::string error = ConnectOnce(socket.fd(), ai->ai_addr,
                                      static_cast<socklen_t>(ai->ai_addrlen),
                                      options.connect_timeout_ms);
      if (error.empty()) {
        SetNoDelay(socket.fd());
        ::freeaddrinfo(resolved);
        return socket;
      }
      last_error = std::move(error);
    }
  }
  ::freeaddrinfo(resolved);
  return common::InternalError(common::StrCat(
      "dial ", host_port, ": ", last_error, " (", attempts, " attempt(s))"));
}

common::Result<Listener> Listener::Bind(uint16_t port, bool loopback_only) {
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) {
    return common::InternalError(
        common::StrCat("listen: socket(): ", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  if (::bind(socket.fd(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof addr) != 0) {
    return common::InternalError(
        common::StrCat("listen: bind(", port, "): ", std::strerror(errno)));
  }
  if (::listen(socket.fd(), 64) != 0) {
    return common::InternalError(
        common::StrCat("listen(", port, "): ", std::strerror(errno)));
  }
  struct sockaddr_in bound = {};
  socklen_t len = sizeof bound;
  if (::getsockname(socket.fd(), reinterpret_cast<struct sockaddr*>(&bound),
                    &len) != 0) {
    return common::InternalError(
        common::StrCat("listen: getsockname(): ", std::strerror(errno)));
  }
  Listener listener;
  listener.socket_ = std::move(socket);
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

common::Result<Socket> Listener::Accept(int timeout_ms) {
  int ready = PollOne(socket_.fd(), POLLIN, timeout_ms);
  if (ready == 0) {
    return common::FailedPreconditionError("accept: timed out");
  }
  if (ready < 0) {
    return common::InternalError("accept: listener poll failed");
  }
  for (;;) {
    int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return common::InternalError(
          common::StrCat("accept: ", std::strerror(errno)));
    }
    SetNoDelay(fd);
    return Socket(fd);
  }
}

bool ReadFullTimeout(int fd, void* buf, size_t n, int timeout_ms) {
  char* out = static_cast<char*>(buf);
  size_t off = 0;
  while (off < n) {
    ssize_t got = ::read(fd, out + off, n - off);
    if (got > 0) {
      off += static_cast<size_t>(got);
      continue;
    }
    if (got == 0) return false;  // EOF
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) return false;
    if (PollOne(fd, POLLIN, timeout_ms) <= 0) return false;
  }
  return true;
}

bool WriteFullTimeout(int fd, const void* buf, size_t n, int timeout_ms) {
  const char* in = static_cast<const char*>(buf);
  size_t off = 0;
  while (off < n) {
    ssize_t put = ::write(fd, in + off, n - off);
    if (put >= 0) {
      off += static_cast<size_t>(put);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) return false;
    if (PollOne(fd, POLLOUT, timeout_ms) <= 0) return false;
  }
  return true;
}

bool WritevFullTimeout(int fd, struct iovec* iov, int iovcnt,
                       int timeout_ms) {
  int first = 0;
  while (first < iovcnt) {
    ssize_t put = ::writev(fd, iov + first, iovcnt - first);
    if (put < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) return false;
      if (PollOne(fd, POLLOUT, timeout_ms) <= 0) return false;
      continue;
    }
    size_t remaining = static_cast<size_t>(put);
    while (first < iovcnt && remaining >= iov[first].iov_len) {
      remaining -= iov[first].iov_len;
      ++first;
    }
    if (first < iovcnt && remaining > 0) {
      iov[first].iov_base = static_cast<char*>(iov[first].iov_base) + remaining;
      iov[first].iov_len -= remaining;
    }
  }
  return true;
}

int WaitReadable(int fd, int timeout_ms) {
  return PollOne(fd, POLLIN, timeout_ms);
}

}  // namespace oodbsec::net
