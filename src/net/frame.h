// Length-prefixed binio frames: the unit of the shard and snapshot-store
// wire protocols.
//
// A frame is a fixed 20-byte header followed by a binio payload:
//
//   u32 magic "ONF1" | u8 type | u8 pad[3] | u32 payload length
//   | u64 payload checksum (FNV-1a)
//
// Integers are host-endian, like every other wire the repository owns
// (the fork shard pipes, the snapshot header): a connection between
// machines of different endianness is *detected* at the hello handshake
// (each side sends snapshot::kByteOrderMark) and refused with a specific
// diagnosis rather than mis-decoded. The one payload that legitimately
// crosses endianness — a directory-format snapshot record inside a
// store frame — carries its own byte-order marker and swap-decodes
// itself (snapshot/snapshot.h, v2), so a heterogeneous fleet shares the
// snapshot *tier* even though shard peers must match.
//
// Robustness contract (the torn-frame / garbage-prefix tests in
// net_test pin this): a reader never trusts a byte it has not
// validated. Bad magic, an oversized length, a checksum mismatch, or
// EOF mid-frame all fail with kFailedPrecondition naming the defect;
// only a clean EOF *between* frames reports kNotFound ("connection
// closed"), which is how a peer's orderly shutdown is told apart from a
// death mid-message.
//
// Writing uses the gather path: header and payload go out in one
// writev from their own buffers (WriteFrame never concatenates), so the
// coordinator streams report-sized payloads straight out of the
// ByteWriter buffers they were serialized into.
#ifndef OODBSEC_NET_FRAME_H_
#define OODBSEC_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace oodbsec::net {

// Protocol version spoken by TcpTransport / ServeShardWorker /
// StoreServer; carried in every hello and bumped on any frame-layout or
// payload-schema change.
inline constexpr uint32_t kProtocolVersion = 1;

inline constexpr uint32_t kFrameMagic = 0x314f4e46;  // "FNO1" LE spells ONF1
// Upper bound a reader will allocate for one payload; a length above it
// is diagnosed as garbage, not trusted.
inline constexpr uint32_t kMaxFramePayload = 1u << 30;
inline constexpr size_t kFrameHeaderSize = 4 + 1 + 3 + 4 + 8;

enum class FrameType : uint8_t {
  // Shard protocol (coordinator <-> worker).
  kHello = 1,       // coord -> worker: version, byte order, fingerprint
  kHelloAck = 2,    // worker -> coord: same fields + accept/refuse
  kBatch = 3,       // coord -> worker: one signature-coalesced batch
  kReports = 4,     // worker -> coord: the batch's reports
  kBatchError = 5,  // worker -> coord: earliest failure in the batch
  kDone = 6,        // coord -> worker: no more batches
  kStats = 7,       // worker -> coord: final ServiceStats, then close
  // Snapshot-store protocol (remote store <-> store server).
  kStoreHello = 8,       // client -> server: version, byte order, fingerprint
  kStoreHelloAck = 9,    // server -> client
  kStoreFind = 10,       // client -> server: roots
  kStoreFound = 11,      // server -> client: encoded snapshot bytes
  kStoreMiss = 12,       // server -> client: no record for the signature
  kStoreFail = 13,       // server -> client: status code + message
  kStoreSave = 14,       // client -> server: encoded snapshot bytes
  kStoreSaveAck = 15,    // server -> client: status code + message
  kStoreStats = 16,      // client -> server
  kStoreStatsReply = 17, // server -> client: StoreStats fields
};

struct Frame {
  FrameType type = FrameType::kHello;
  std::string payload;
};

// Renders the 20-byte header for a payload (exposed so a sender that
// owns its own iovec batching — the pipelined coordinator — can gather
// many frames into one writev).
std::string EncodeFrameHeader(FrameType type, std::string_view payload);

// Gather-writes header + payload in one writev (payload bytes are never
// copied into a combined buffer). Blocking or nonblocking fd; the
// poll deadline bounds every stall.
common::Status WriteFrame(int fd, FrameType type, std::string_view payload,
                          int timeout_ms);

// Reads and validates one frame. kNotFound on clean EOF between frames;
// kFailedPrecondition for garbage magic, oversized length, torn frame,
// checksum mismatch, or a stall past `timeout_ms` (the message says
// which).
common::Status ReadFrame(int fd, Frame* frame, int timeout_ms);

// Validates a complete header already in memory and extracts (type,
// length, checksum). Shared by ReadFrame and the coordinator's
// buffer-at-a-time pump. Returns kFailedPrecondition on garbage.
common::Status DecodeFrameHeader(std::string_view header, FrameType* type,
                                 uint32_t* length, uint64_t* checksum);

}  // namespace oodbsec::net

#endif  // OODBSEC_NET_FRAME_H_
