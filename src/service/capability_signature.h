// Capability signatures: the cache key of the analysis service.
//
// A user's closure is determined entirely by (a) the list of roots the
// unfolder runs over and (b) the ClosureOptions the fixpoint runs
// under. Two users whose grants differ only in insertion order — the
// common case in a role-shaped population, where thousands of users
// carry one of a handful of grant bundles — therefore share a closure,
// and the service detects this by hashing neither the user name nor the
// grant order but the canonical root list:
//
//   * User::capabilities() is a std::set<std::string>, so the grant
//     portion of AnalysisRoots() is already sorted;
//   * the integrity-constraint portion is appended in schema declaration
//     order, identical for every user of one schema.
//
// The signature is the options bits followed by the '|'-joined roots
// (root names are schema identifiers and cannot contain '|'). It is a
// readable string rather than a digest: collisions are impossible by
// construction and the keys double as debugging output.
#ifndef OODBSEC_SERVICE_CAPABILITY_SIGNATURE_H_
#define OODBSEC_SERVICE_CAPABILITY_SIGNATURE_H_

#include <span>
#include <string>

#include "core/closure.h"
#include "schema/schema.h"
#include "schema/user.h"

namespace oodbsec::service {

// The canonical cache key for `user`'s closure under `options`.
// Deterministic in the *set* of grants: permuting the order in which
// capabilities were granted yields the same signature.
std::string CapabilitySignature(const schema::Schema& schema,
                                const schema::User& user,
                                const core::ClosureOptions& options);

// Lower-level form over an explicit root list (as produced by
// core::AnalysisRoots). Equal root lists + equal options ⇒ equal keys.
std::string SignatureFromRoots(std::span<const std::string> roots,
                               const core::ClosureOptions& options);

}  // namespace oodbsec::service

#endif  // OODBSEC_SERVICE_CAPABILITY_SIGNATURE_H_
