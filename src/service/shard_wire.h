// The report/stats wire codec shared by every shard transport.
//
// Fork pipes (service/shard.cc) and TCP frames (service/tcp_shard.cc)
// carry the same payloads: analysis reports tagged with their global
// input index, and ServiceStats totals. The byte-identity contract —
// fork == tcp == single-process CheckBatch — is easiest to keep honest
// when there is exactly one code path producing and parsing those
// bytes, so both transports call these helpers instead of hand-rolling
// the field order twice.
//
// Layout (snapshot/binio primitives, host-endian like the rest of the
// repository's wires):
//
//   report  u32 global_index, u8 satisfied, i32 node_count,
//           u64 fact_count, u32 flaw_count, then per flaw
//             i32 site_id, u8 is_root_site, string description,
//             u32 fact_ids, i32 each, string derivation
//   stats   6 x u64: closures_built, signature_hits, requirement_hits,
//           checks, warm_starts, snapshot_hits
//
// The requirement itself never crosses the wire inside a report — the
// coordinator re-attaches requirements[global_index] after decode,
// which is what makes the merged report bytes identical to CheckBatch's
// (the worker checked the same requirement text).
#ifndef OODBSEC_SERVICE_SHARD_WIRE_H_
#define OODBSEC_SERVICE_SHARD_WIRE_H_

#include <cstdint>

#include "core/analyzer.h"
#include "service/analysis_service.h"
#include "snapshot/binio.h"

namespace oodbsec::service::wire {

void PutStats(snapshot::ByteWriter& w, const ServiceStats& stats);
ServiceStats GetStats(snapshot::ByteReader& r);

// Serializes one report under its global input index. The report's
// `requirement` field is intentionally not written (see header note).
void PutReport(snapshot::ByteWriter& w, uint32_t global_index,
               const core::AnalysisReport& report);

// Decodes one report; `report->requirement` is left default — the
// caller re-attaches the original. Returns false (and leaves outputs
// unspecified) when the stream is short or malformed.
bool GetReport(snapshot::ByteReader& r, uint32_t* global_index,
               core::AnalysisReport* report);

}  // namespace oodbsec::service::wire

#endif  // OODBSEC_SERVICE_SHARD_WIRE_H_
