#include "service/analysis_service.h"

#include <optional>
#include <utility>

#include "common/strings.h"
#include "service/capability_signature.h"

namespace oodbsec::service {

AnalysisService::AnalysisService(const schema::Schema& schema,
                                 const schema::UserRegistry& users,
                                 ServiceOptions options)
    : schema_(schema),
      users_(users),
      options_(options),
      pool_(options.threads) {}

common::Result<std::unique_ptr<AnalysisService::Entry>>
AnalysisService::BuildEntry(const std::vector<std::string>& roots) const {
  OODBSEC_ASSIGN_OR_RETURN(std::unique_ptr<unfold::UnfoldedSet> set,
                           unfold::UnfoldedSet::Build(schema_, roots));
  auto entry = std::make_unique<Entry>();
  entry->closure = std::make_unique<core::Closure>(*set, options_.closure);
  entry->set = std::move(set);
  return entry;
}

common::Result<core::AnalysisReport> AnalysisService::Check(
    const core::Requirement& requirement) {
  const schema::User* user = users_.Find(requirement.user);
  if (user == nullptr) {
    return common::NotFoundError(
        common::StrCat("unknown user '", requirement.user, "'"));
  }
  ++stats_.checks;
  std::vector<std::string> roots = core::AnalysisRoots(schema_, *user);
  std::string signature = SignatureFromRoots(roots, options_.closure);
  auto it = cache_.find(signature);
  if (it == cache_.end()) {
    ++stats_.closures_built;
    OODBSEC_ASSIGN_OR_RETURN(std::unique_ptr<Entry> entry, BuildEntry(roots));
    it = cache_.emplace(std::move(signature), std::move(entry)).first;
  } else {
    ++stats_.cache_hits;
  }
  return core::CheckAgainstClosure(*it->second->set, *it->second->closure,
                                   requirement);
}

common::Result<std::vector<core::AnalysisReport>> AnalysisService::CheckBatch(
    const std::vector<core::Requirement>& requirements) {
  const size_t n = requirements.size();

  // Phase 1 (sequential): resolve users, derive signatures, and plan one
  // build per distinct uncached signature. Unknown users are recorded,
  // not returned yet — the error surfaced at the end must belong to the
  // *earliest* failing requirement, which may instead fail later at
  // build or check time.
  struct Planned {
    const schema::User* user = nullptr;  // nullptr: unknown user
    std::string signature;
  };
  struct Build {
    std::string signature;
    std::vector<std::string> roots;
    common::Result<std::unique_ptr<Entry>> result =
        common::InternalError("closure not built");
  };
  std::vector<Planned> planned(n);
  std::vector<Build> builds;
  std::unordered_map<std::string, size_t> build_index;
  for (size_t i = 0; i < n; ++i) {
    ++stats_.checks;
    const schema::User* user = users_.Find(requirements[i].user);
    if (user == nullptr) continue;
    planned[i].user = user;
    std::vector<std::string> roots = core::AnalysisRoots(schema_, *user);
    planned[i].signature = SignatureFromRoots(roots, options_.closure);
    if (cache_.contains(planned[i].signature) ||
        build_index.contains(planned[i].signature)) {
      ++stats_.cache_hits;
      continue;
    }
    ++stats_.closures_built;
    build_index.emplace(planned[i].signature, builds.size());
    builds.push_back(Build{planned[i].signature, std::move(roots)});
  }

  // Phase 2 (parallel): compute the distinct closures. Workers write to
  // disjoint pre-allocated slots; Wait() orders those writes before the
  // sequential phase below reads them.
  for (Build& build : builds) {
    pool_.Submit([this, &build] { build.result = BuildEntry(build.roots); });
  }
  pool_.Wait();

  // Phase 3 (sequential): publish successful builds. Failures stay out
  // of the cache so a later batch retries them.
  for (Build& build : builds) {
    if (build.result.ok()) {
      cache_.emplace(build.signature, std::move(build.result).value());
    }
  }

  // Phase 4 (parallel): every requirement with a closure is checked
  // concurrently. Entries are immutable and Closure's const queries are
  // pure reads, so many checks may share one closure.
  std::vector<std::optional<common::Result<core::AnalysisReport>>> outcomes(n);
  for (size_t i = 0; i < n; ++i) {
    if (planned[i].user == nullptr) continue;
    auto it = cache_.find(planned[i].signature);
    if (it == cache_.end()) continue;  // its build failed
    const Entry* entry = it->second.get();
    pool_.Submit([&outcomes, &requirements, entry, i] {
      outcomes[i].emplace(core::CheckAgainstClosure(
          *entry->set, *entry->closure, requirements[i]));
    });
  }
  pool_.Wait();

  // Phase 5 (sequential): assemble in input order; the first failure in
  // input order wins, exactly as a sequential loop would report it.
  std::vector<core::AnalysisReport> reports;
  reports.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (planned[i].user == nullptr) {
      return common::NotFoundError(
          common::StrCat("unknown user '", requirements[i].user, "'"));
    }
    if (!outcomes[i].has_value()) {
      return builds[build_index.at(planned[i].signature)].result.status();
    }
    if (!outcomes[i]->ok()) return outcomes[i]->status();
    reports.push_back(std::move(*outcomes[i]).value());
  }
  return reports;
}

}  // namespace oodbsec::service
