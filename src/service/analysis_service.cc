#include "service/analysis_service.h"

#include <optional>
#include <unordered_set>
#include <utility>

#include "common/strings.h"
#include "obs/trace.h"
#include "service/capability_signature.h"
#include "unfold/unfolded.h"

namespace oodbsec::service {

AnalysisService::AnalysisService(core::AnalysisSession& session,
                                 int threads_override)
    : session_(&session),
      pool_(threads_override > 0 ? threads_override : session.options().threads,
            &session.obs()),
      closures_built_(session.metrics().counter("service.closures_built")),
      signature_hits_(session.metrics().counter("service.signature_hits")),
      requirement_hits_(session.metrics().counter("service.requirement_hits")),
      checks_(session.metrics().counter("service.checks")) {}

AnalysisService::AnalysisService(const schema::Schema& schema,
                                 const schema::UserRegistry& users,
                                 ServiceOptions options)
    : owned_session_(std::make_unique<core::AnalysisSession>(
          schema, users,
          core::SessionOptions{.closure = options.closure,
                               .threads = options.threads})),
      session_(owned_session_.get()),
      pool_(session_->options().threads, &session_->obs()),
      closures_built_(session_->metrics().counter("service.closures_built")),
      signature_hits_(session_->metrics().counter("service.signature_hits")),
      requirement_hits_(
          session_->metrics().counter("service.requirement_hits")),
      checks_(session_->metrics().counter("service.checks")) {}

common::Result<std::unique_ptr<AnalysisService::Entry>>
AnalysisService::BuildEntry(const std::vector<std::string>& roots,
                            obs::SpanId parent) const {
  obs::Observability* obs = &session_->obs();
  obs::ScopedSpan span(&obs->tracer, "closure.build", parent);
  OODBSEC_ASSIGN_OR_RETURN(
      std::unique_ptr<unfold::UnfoldedSet> set,
      unfold::UnfoldedSet::Build(session_->schema(), roots, obs));
  auto entry = std::make_unique<Entry>();
  entry->closure = std::make_unique<core::Closure>(
      *set, session_->closure_options(), obs);
  entry->set = std::move(set);
  return entry;
}

ServiceStats AnalysisService::Stats() const {
  ServiceStats stats;
  stats.closures_built = static_cast<size_t>(closures_built_->value());
  stats.signature_hits = static_cast<size_t>(signature_hits_->value());
  stats.requirement_hits = static_cast<size_t>(requirement_hits_->value());
  stats.checks = static_cast<size_t>(checks_->value());
  return stats;
}

common::Result<core::AnalysisReport> AnalysisService::Check(
    const core::Requirement& requirement) {
  obs::ScopedSpan span(&session_->tracer(), "service.check");
  const schema::User* user = session_->users().Find(requirement.user);
  if (user == nullptr) {
    return common::NotFoundError(
        common::StrCat("unknown user '", requirement.user, "'"));
  }
  checks_->Increment();
  std::vector<std::string> roots =
      core::AnalysisRoots(session_->schema(), *user);
  std::string signature =
      SignatureFromRoots(roots, session_->closure_options());
  auto it = cache_.find(signature);
  if (it == cache_.end()) {
    closures_built_->Increment();
    OODBSEC_ASSIGN_OR_RETURN(std::unique_ptr<Entry> entry, BuildEntry(roots));
    it = cache_.emplace(std::move(signature), std::move(entry)).first;
  } else {
    signature_hits_->Increment();
    requirement_hits_->Increment();
  }
  return core::CheckAgainstClosure(*it->second->set, *it->second->closure,
                                   requirement, &session_->obs());
}

common::Result<std::vector<core::AnalysisReport>> AnalysisService::CheckBatch(
    const std::vector<core::Requirement>& requirements) {
  const size_t n = requirements.size();
  obs::Tracer* tracer = &session_->tracer();
  obs::ScopedSpan batch_span(tracer, "batch");

  // Phase 1 (sequential): resolve users, derive signatures, and plan one
  // build per distinct uncached signature. Unknown users are recorded,
  // not returned yet — the error surfaced at the end must belong to the
  // *earliest* failing requirement, which may instead fail later at
  // build or check time.
  struct Planned {
    const schema::User* user = nullptr;  // nullptr: unknown user
    std::string signature;
  };
  struct Build {
    std::string signature;
    std::vector<std::string> roots;
    common::Result<std::unique_ptr<Entry>> result =
        common::InternalError("closure not built");
  };
  std::vector<Planned> planned(n);
  std::vector<Build> builds;
  std::unordered_map<std::string, size_t> build_index;
  {
    obs::ScopedSpan plan_span(tracer, "batch.plan");
    // A cached signature scores one signature hit per batch no matter
    // how many requirements resolve to it; each of those requirements
    // scores its own requirement hit (see ServiceStats).
    std::unordered_set<std::string> counted_signatures;
    for (size_t i = 0; i < n; ++i) {
      checks_->Increment();
      const schema::User* user = session_->users().Find(requirements[i].user);
      if (user == nullptr) continue;
      planned[i].user = user;
      std::vector<std::string> roots =
          core::AnalysisRoots(session_->schema(), *user);
      planned[i].signature =
          SignatureFromRoots(roots, session_->closure_options());
      if (cache_.contains(planned[i].signature)) {
        requirement_hits_->Increment();
        if (counted_signatures.insert(planned[i].signature).second) {
          signature_hits_->Increment();
        }
        continue;
      }
      if (build_index.contains(planned[i].signature)) {
        // Reuses a closure another requirement in this batch is
        // building: a requirement-level hit, not a signature-level one.
        requirement_hits_->Increment();
        continue;
      }
      closures_built_->Increment();
      build_index.emplace(planned[i].signature, builds.size());
      builds.push_back(Build{planned[i].signature, std::move(roots)});
    }
  }

  // Phase 2 (parallel): compute the distinct closures. Workers write to
  // disjoint pre-allocated slots; Wait() orders those writes before the
  // sequential phase below reads them.
  {
    obs::ScopedSpan build_span(tracer, "batch.build");
    obs::SpanId build_parent = build_span.id();
    for (Build& build : builds) {
      pool_.Submit([this, &build, build_parent] {
        build.result = BuildEntry(build.roots, build_parent);
      });
    }
    pool_.Wait();
  }

  // Phase 3 (sequential): publish successful builds. Failures stay out
  // of the cache so a later batch retries them.
  for (Build& build : builds) {
    if (build.result.ok()) {
      cache_.emplace(build.signature, std::move(build.result).value());
    }
  }

  // Phase 4 (parallel): every requirement with a closure is checked
  // concurrently. Entries are immutable and Closure's const queries are
  // pure reads, so many checks may share one closure.
  std::vector<std::optional<common::Result<core::AnalysisReport>>> outcomes(n);
  {
    obs::ScopedSpan check_span(tracer, "batch.check");
    obs::SpanId check_parent = check_span.id();
    obs::Observability* obs = &session_->obs();
    for (size_t i = 0; i < n; ++i) {
      if (planned[i].user == nullptr) continue;
      auto it = cache_.find(planned[i].signature);
      if (it == cache_.end()) continue;  // its build failed
      const Entry* entry = it->second.get();
      pool_.Submit([&outcomes, &requirements, entry, obs, check_parent, i] {
        outcomes[i].emplace(core::CheckAgainstClosure(
            *entry->set, *entry->closure, requirements[i], obs, check_parent));
      });
    }
    pool_.Wait();
  }

  // Phase 5 (sequential): assemble in input order; the first failure in
  // input order wins, exactly as a sequential loop would report it.
  std::vector<core::AnalysisReport> reports;
  reports.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (planned[i].user == nullptr) {
      return common::NotFoundError(
          common::StrCat("unknown user '", requirements[i].user, "'"));
    }
    if (!outcomes[i].has_value()) {
      return builds[build_index.at(planned[i].signature)].result.status();
    }
    if (!outcomes[i]->ok()) return outcomes[i]->status();
    reports.push_back(std::move(*outcomes[i]).value());
  }
  return reports;
}

}  // namespace oodbsec::service
