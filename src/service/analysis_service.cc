#include "service/analysis_service.h"

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/strings.h"
#include "obs/trace.h"
#include "service/capability_signature.h"
#include "unfold/unfolded.h"

namespace oodbsec::service {

using core::CachedAnalysis;

AnalysisService::AnalysisService(core::AnalysisSession& session,
                                 int threads_override)
    : session_(&session),
      pool_(threads_override > 0 ? threads_override : session.options().threads,
            &session.obs()),
      // The session resolved snapshot_dir into snapshot_store at its
      // construction; reading the resolved field shares one store (and
      // its page cache) between the session's cache and this one.
      cache_(session.schema(), session.closure_options(),
             session.options().cache_capacity, &session.obs(),
             session.options().snapshot_store),
      closures_built_(session.metrics().counter("service.closures_built")),
      signature_hits_(session.metrics().counter("service.signature_hits")),
      requirement_hits_(session.metrics().counter("service.requirement_hits")),
      checks_(session.metrics().counter("service.checks")),
      warm_starts_(session.metrics().counter("service.warm_starts")),
      retract_builds_(session.metrics().counter("service.retract_builds")),
      snapshot_hits_(session.metrics().counter("service.snapshot_hits")),
      revokes_(session.metrics().counter("session.revokes")),
      retractions_fast_(
          session.metrics().counter("session.retractions_fast")),
      retractions_fallback_(
          session.metrics().counter("session.retractions_fallback")) {}

AnalysisService::AnalysisService(const schema::Schema& schema,
                                 const schema::UserRegistry& users,
                                 ServiceOptions options)
    : owned_session_(std::make_unique<core::AnalysisSession>(
          schema, users,
          core::SessionOptions{.closure = options.closure,
                               .threads = options.threads,
                               .cache_capacity = options.cache_capacity,
                               .snapshot_dir = options.snapshot_dir,
                               .snapshot_store = options.snapshot_store})),
      session_(owned_session_.get()),
      pool_(session_->options().threads, &session_->obs()),
      cache_(schema, options.closure, options.cache_capacity,
             &session_->obs(), session_->options().snapshot_store),
      closures_built_(session_->metrics().counter("service.closures_built")),
      signature_hits_(session_->metrics().counter("service.signature_hits")),
      requirement_hits_(
          session_->metrics().counter("service.requirement_hits")),
      checks_(session_->metrics().counter("service.checks")),
      warm_starts_(session_->metrics().counter("service.warm_starts")),
      retract_builds_(
          session_->metrics().counter("service.retract_builds")),
      snapshot_hits_(session_->metrics().counter("service.snapshot_hits")),
      revokes_(session_->metrics().counter("session.revokes")),
      retractions_fast_(
          session_->metrics().counter("session.retractions_fast")),
      retractions_fallback_(
          session_->metrics().counter("session.retractions_fallback")) {}

ServiceStats AnalysisService::Stats() const {
  ServiceStats stats;
  stats.closures_built = static_cast<size_t>(closures_built_->value());
  stats.signature_hits = static_cast<size_t>(signature_hits_->value());
  stats.requirement_hits = static_cast<size_t>(requirement_hits_->value());
  stats.checks = static_cast<size_t>(checks_->value());
  stats.warm_starts = static_cast<size_t>(warm_starts_->value());
  stats.retract_builds = static_cast<size_t>(retract_builds_->value());
  stats.snapshot_hits = static_cast<size_t>(snapshot_hits_->value());
  stats.revokes = static_cast<size_t>(revokes_->value());
  stats.retractions_fast = static_cast<size_t>(retractions_fast_->value());
  stats.retractions_fallback =
      static_cast<size_t>(retractions_fallback_->value());
  return stats;
}

common::Result<core::AnalysisReport> AnalysisService::Check(
    const core::Requirement& requirement) {
  obs::ScopedSpan span(&session_->tracer(), "service.check");
  const schema::User* user = session_->users().Find(requirement.user);
  if (user == nullptr) {
    return common::NotFoundError(
        common::StrCat("unknown user '", requirement.user, "'"));
  }
  checks_->Increment();
  std::vector<std::string> roots =
      core::AnalysisRoots(session_->schema(), *user);
  std::shared_ptr<const CachedAnalysis> entry = cache_.FindExact(roots);
  if (entry != nullptr) {
    signature_hits_->Increment();
    requirement_hits_->Increment();
  } else {
    // L2 before building: a persisted snapshot replays in a fraction of
    // even a warm fixpoint and lands in L1 for the rest of the process.
    entry = cache_.FindSnapshot(roots);
    if (entry != nullptr) {
      snapshot_hits_->Increment();
      cache_.Insert(entry);
    }
  }
  if (entry == nullptr) {
    closures_built_->Increment();
    // Shrink beats grow when a close-enough superset is cached (a role
    // that lost a capability): DRed-retract its closure. Otherwise
    // warm-start up from the largest cached subset, or run cold.
    if (std::shared_ptr<const CachedAnalysis> super =
            cache_.FindSmallestSuperset(roots)) {
      entry = cache_.BuildRetracted(roots, *super);
    }
    if (entry != nullptr) {
      retract_builds_->Increment();
    } else {
      std::shared_ptr<const CachedAnalysis> base =
          cache_.FindLargestSubset(roots);
      OODBSEC_ASSIGN_OR_RETURN(entry,
                               cache_.BuildDetached(roots, base.get()));
      if (entry->closure->warm_started()) warm_starts_->Increment();
    }
    cache_.Insert(entry);
  }
  return core::CheckAgainstClosure(*entry->set, *entry->closure, requirement,
                                   &session_->obs());
}

common::Result<std::vector<core::AnalysisReport>> AnalysisService::CheckBatch(
    const std::vector<core::Requirement>& requirements) {
  const size_t n = requirements.size();
  obs::Tracer* tracer = &session_->tracer();
  obs::ScopedSpan batch_span(tracer, "batch");

  // Phase 1 (sequential): resolve users, derive signatures, and plan one
  // build per distinct uncached signature, pairing each with its best
  // warm-start base (largest cached subset) up front — lookups stay in
  // this sequential phase, so the parallel phase below never touches
  // cache state. Unknown users are recorded, not returned yet — the
  // error surfaced at the end must belong to the *earliest* failing
  // requirement, which may instead fail later at build or check time.
  struct Planned {
    const schema::User* user = nullptr;  // nullptr: unknown user
    std::string signature;
    // The serving closure when the signature was already cached.
    std::shared_ptr<const CachedAnalysis> entry;
  };
  struct Build {
    std::vector<std::string> roots;
    std::shared_ptr<const CachedAnalysis> warm_base;     // may be null
    std::shared_ptr<const CachedAnalysis> retract_base;  // may be null
    common::Result<std::shared_ptr<const CachedAnalysis>> result =
        common::InternalError("closure not built");
  };
  std::vector<Planned> planned(n);
  std::vector<Build> builds;
  std::unordered_map<std::string, size_t> build_index;
  {
    obs::ScopedSpan plan_span(tracer, "batch.plan");
    // A cached signature scores one signature hit per batch no matter
    // how many requirements resolve to it; each of those requirements
    // scores its own requirement hit (see ServiceStats).
    std::unordered_set<std::string> counted_signatures;
    for (size_t i = 0; i < n; ++i) {
      checks_->Increment();
      const schema::User* user = session_->users().Find(requirements[i].user);
      if (user == nullptr) continue;
      planned[i].user = user;
      std::vector<std::string> roots =
          core::AnalysisRoots(session_->schema(), *user);
      planned[i].signature =
          SignatureFromRoots(roots, session_->closure_options());
      planned[i].entry = cache_.FindExact(roots);
      if (planned[i].entry != nullptr) {
        requirement_hits_->Increment();
        if (counted_signatures.insert(planned[i].signature).second) {
          signature_hits_->Increment();
        }
        continue;
      }
      if (build_index.contains(planned[i].signature)) {
        // Reuses a closure another requirement in this batch is
        // building: a requirement-level hit, not a signature-level one.
        requirement_hits_->Increment();
        continue;
      }
      // L2 probe before planning a build: a valid persisted snapshot
      // replays straight into L1, and every later requirement of this
      // signature takes the exact-hit path above.
      planned[i].entry = cache_.FindSnapshot(roots);
      if (planned[i].entry != nullptr) {
        snapshot_hits_->Increment();
        counted_signatures.insert(planned[i].signature);
        cache_.Insert(planned[i].entry);
        continue;
      }
      closures_built_->Increment();
      build_index.emplace(planned[i].signature, builds.size());
      // Both shrink and grow bases are picked here, in the sequential
      // phase; the worker tries retraction first and falls back to the
      // warm/cold build — a deterministic function of its inputs.
      std::shared_ptr<const CachedAnalysis> warm_base =
          cache_.FindLargestSubset(roots);
      std::shared_ptr<const CachedAnalysis> retract_base =
          cache_.FindSmallestSuperset(roots);
      builds.push_back(Build{std::move(roots), std::move(warm_base),
                             std::move(retract_base)});
    }
  }

  // Phase 2 (parallel): compute the distinct closures. Workers write to
  // disjoint pre-allocated slots; Wait() orders those writes before the
  // sequential phase below reads them. BuildDetached is const and the
  // warm bases are pinned by shared_ptr, so eviction elsewhere cannot
  // disturb a replay in progress.
  {
    obs::ScopedSpan build_span(tracer, "batch.build");
    obs::SpanId build_parent = build_span.id();
    for (Build& build : builds) {
      pool_.Submit([this, &build, build_parent] {
        if (build.retract_base != nullptr) {
          std::shared_ptr<const CachedAnalysis> entry =
              cache_.BuildRetracted(build.roots, *build.retract_base,
                                    build_parent);
          if (entry != nullptr) {
            build.result = std::move(entry);
            return;
          }
        }
        build.result =
            cache_.BuildDetached(build.roots, build.warm_base.get(),
                                 build_parent);
      });
    }
    pool_.Wait();
  }

  // Phase 3 (sequential): publish successful builds. Failures stay out
  // of the cache so a later batch retries them.
  for (Build& build : builds) {
    if (build.result.ok()) {
      const std::shared_ptr<const CachedAnalysis>& entry =
          build.result.value();
      if (entry->closure->retracted()) {
        retract_builds_->Increment();
      } else if (entry->closure->warm_started()) {
        warm_starts_->Increment();
      }
      cache_.Insert(entry);
    }
  }

  // Phase 4 (parallel): every requirement with a closure is checked
  // concurrently. Entries are immutable and Closure's const queries are
  // pure reads, so many checks may share one closure.
  std::vector<std::optional<common::Result<core::AnalysisReport>>> outcomes(n);
  {
    obs::ScopedSpan check_span(tracer, "batch.check");
    obs::SpanId check_parent = check_span.id();
    obs::Observability* obs = &session_->obs();
    for (size_t i = 0; i < n; ++i) {
      if (planned[i].user == nullptr) continue;
      const CachedAnalysis* entry = planned[i].entry.get();
      if (entry == nullptr) {
        const Build& build = builds[build_index.at(planned[i].signature)];
        if (!build.result.ok()) continue;  // its build failed
        entry = build.result.value().get();
      }
      pool_.Submit([&outcomes, &requirements, entry, obs, check_parent, i] {
        outcomes[i].emplace(core::CheckAgainstClosure(
            *entry->set, *entry->closure, requirements[i], obs, check_parent));
      });
    }
    pool_.Wait();
  }

  // Phase 5 (sequential): assemble in input order; the first failure in
  // input order wins, exactly as a sequential loop would report it.
  std::vector<core::AnalysisReport> reports;
  reports.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (planned[i].user == nullptr) {
      return common::NotFoundError(
          common::StrCat("unknown user '", requirements[i].user, "'"));
    }
    if (!outcomes[i].has_value()) {
      return builds[build_index.at(planned[i].signature)].result.status();
    }
    if (!outcomes[i]->ok()) return outcomes[i]->status();
    reports.push_back(std::move(*outcomes[i]).value());
  }
  return reports;
}

}  // namespace oodbsec::service
