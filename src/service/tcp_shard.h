// TCP shard transport: the distributed audit over real sockets.
//
// The fork transport (service/shard.h) tops out at one machine: workers
// are children of the coordinator and inherit the schema by
// copy-on-write. This transport speaks the same partitioned audit over
// TCP — a coordinator dials a static worker list, streams
// signature-coalesced requirement batches as length-prefixed binio
// frames (net/frame.h), and merges the reply stream into a result
// byte-identical to RunShardedBatch and single-process CheckBatch.
//
// What makes it fast rather than merely remote:
//
//   * Pipelined streaming. Up to max_in_flight batches ride unacked
//     per worker (1 = request/reply lockstep, the bench baseline), so
//     a worker finishing a batch always has the next one already in
//     its socket buffer instead of idling a round trip plus the
//     coordinator's service latency. The coordinator pumps every
//     worker from one poll() loop over nonblocking sockets: a
//     per-worker outbox of encoded frames drains through writev
//     gather (header and payload from their own buffers — bytes are
//     serialized exactly once), a per-worker inbox reassembles frames
//     from whatever read() delivered.
//   * Batch coalescing. Requirements sharing a capability signature
//     collapse into one batch (split at max_batch_requirements), so a
//     signature's closure crosses the planning path once per worker;
//     all chunks of a signature route to one worker (ShardOf) for
//     cache affinity.
//   * Connection reuse. One connection per worker per Run; workers
//     keep their L1 closure cache across connections (persistent_cache)
//     so a warmed fleet answers repeat audits at exact-hit speed.
//
// Byte-identity under all of that — pipelining, requeue, persistent
// worker caches — holds because workers build cache misses COLD only
// (FindExact -> FindSnapshot -> cold BuildDetached; never a warm start
// or retraction): a fresh single-process CheckBatch builds every
// distinct signature cold, replaying a snapshot of a cold log is
// byte-identical to the cold build, and an exact hit returns the same
// object — so no matter which worker ends up with a batch, or whether
// it had the signature cached, the report bytes match.
//
// Robustness: every frame carries an FNV-1a checksum; connects retry
// bounded (net::DialOptions); reads and writes are stall-bounded. A
// worker that dies mid-audit (EOF, connection reset, poll error, or no
// progress for io_timeout_ms) has its unacknowledged and unsent
// batches re-queued to the surviving workers — a batch is acked only
// by a complete validated kReports/kBatchError frame, so nothing is
// double-applied and the merged report is unchanged. Only when the
// last worker dies does the audit fail. (Merged *stats* are
// best-effort under death: a dead worker never sends its kStats frame,
// so its counters are missing from merged_stats; the reports are the
// contract.)
//
// The networked snapshot tier: with serve_snapshot_store set and a
// store configured, the coordinator fronts its store with a
// snapshot::StoreServer and advertises the port in its hello; workers
// without a local store mount it as a RemoteSnapshotStore, so a fresh
// fleet warms from the coordinator's packed segment without any file
// distribution, and (save_snapshots) persists what it builds back.
#ifndef OODBSEC_SERVICE_TCP_SHARD_H_
#define OODBSEC_SERVICE_TCP_SHARD_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/closure.h"
#include "core/closure_cache.h"
#include "net/socket.h"
#include "obs/obs.h"
#include "schema/schema.h"
#include "schema/user.h"
#include "service/shard.h"
#include "snapshot/remote_store.h"
#include "snapshot/snapshot_store.h"

namespace oodbsec::service {

struct TcpTransportOptions {
  // Worker addresses ("host:port"), the static fleet. At least one.
  std::vector<std::string> workers;
  // Unacked batches allowed per worker. 1 = request/reply lockstep.
  int max_in_flight = 4;
  // Coalescing cap: a signature with more requirements is split into
  // chunks of this size (later chunks exact-hit the worker's cache).
  int max_batch_requirements = 32;
  core::ClosureOptions closure;
  // Stall bound for every socket operation; a worker making no
  // progress for this long is declared dead and its batches re-queued.
  int io_timeout_ms = 30000;
  net::DialOptions dial;
  // Coordinator-side snapshot store. With serve_snapshot_store, Run
  // fronts it with a StoreServer (ephemeral loopback port, advertised
  // in the hello) for workers to mount remotely.
  std::shared_ptr<snapshot::SnapshotStore> snapshot_store;
  bool serve_snapshot_store = true;
  // Ask workers to persist closures they build (through their mounted
  // store — for remote mounts the bytes land in the coordinator's
  // store via kStoreSave).
  bool save_snapshots = false;
};

// The TCP coordinator behind the ShardTransport seam. Uses threads
// (the store server); create fork transports before this one when a
// process mixes both (fork() wants a single-threaded image).
class TcpTransport : public ShardTransport {
 public:
  explicit TcpTransport(TcpTransportOptions options);
  ~TcpTransport() override;

  std::string_view name() const override { return "tcp"; }
  common::Result<ShardedBatchResult> Run(
      const schema::Schema& schema, const schema::UserRegistry& users,
      const std::vector<core::Requirement>& requirements,
      obs::Observability* obs) override;

 private:
  TcpTransportOptions options_;
  snapshot::StoreServer store_server_;
  // The store server binds lazily on first Run (it needs the schema)
  // and stays up across runs; the fingerprint it pins is the first
  // run's schema.
  bool store_server_started_ = false;
};

struct TcpWorkerOptions {
  core::ClosureOptions closure;
  size_t cache_capacity = core::ClosureCache::kDefaultCapacity;
  // Local store (L2). When null and the coordinator advertises a store
  // port, a RemoteSnapshotStore is mounted instead (mount_remote_store).
  std::shared_ptr<snapshot::SnapshotStore> snapshot_store;
  bool mount_remote_store = true;
  int io_timeout_ms = 30000;
  // Keep the L1 cache across connections (the warmed-fleet behaviour).
  // The cache is dropped anyway when a new connection mounts a
  // different store or schema fingerprint.
  bool persistent_cache = true;
  // Test seam: serve this many batches on a connection, then drop it
  // without kStats — a worker dying mid-audit. 0 = never.
  int abort_after_batches = 0;
};

// Serves shard batches on `listener` until `stop` goes true (checked
// every 200ms) or, when stop is null, forever. One connection at a
// time (a coordinator dials each worker exactly once per Run; repeat
// Runs reconnect and hit the persistent cache). `schema` must outlive
// the call. Returns only on stop (Ok) or a listener-level error.
common::Status ServeShardWorker(net::Listener& listener,
                                const schema::Schema& schema,
                                const TcpWorkerOptions& options,
                                const std::atomic<bool>* stop = nullptr);

}  // namespace oodbsec::service

#endif  // OODBSEC_SERVICE_TCP_SHARD_H_
