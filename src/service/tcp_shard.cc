#include "service/tcp_shard.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/strings.h"
#include "core/analyzer.h"
#include "core/requirement.h"
#include "net/frame.h"
#include "obs/trace.h"
#include "service/capability_signature.h"
#include "service/shard_wire.h"
#include "snapshot/binio.h"
#include "snapshot/snapshot.h"

namespace oodbsec::service {

namespace {

using net::Frame;
using net::FrameType;
using snapshot::ByteReader;
using snapshot::ByteWriter;
using Clock = std::chrono::steady_clock;

struct Failure {
  size_t global_index;
  common::Status status;
};

void NoteFailure(std::optional<Failure>& worst, size_t global_index,
                 common::Status status) {
  if (!worst.has_value() || global_index < worst->global_index) {
    worst = Failure{global_index, std::move(status)};
  }
}

// --- hello handshake -------------------------------------------------
//
//   coord -> worker  u32 version, u32 byte-order mark, u64 schema
//                    fingerprint, u32 store port (0 = none),
//                    u8 save_snapshots
//   worker -> coord  u8 accept, string refusal message

struct HelloRequest {
  uint32_t version = 0;
  uint32_t byte_order = 0;
  uint64_t fingerprint = 0;
  uint32_t store_port = 0;
  bool save_snapshots = false;
};

std::string EncodeHello(const HelloRequest& hello) {
  ByteWriter w;
  w.PutU32(hello.version);
  w.PutU32(hello.byte_order);
  w.PutU64(hello.fingerprint);
  w.PutU32(hello.store_port);
  w.PutU8(hello.save_snapshots ? 1 : 0);
  return w.Release();
}

bool DecodeHello(std::string_view payload, HelloRequest* hello) {
  ByteReader r(payload);
  hello->version = r.GetU32();
  hello->byte_order = r.GetU32();
  hello->fingerprint = r.GetU64();
  hello->store_port = r.GetU32();
  hello->save_snapshots = r.GetU8() != 0;
  return r.exhausted();
}

std::string PeerHost(int fd) {
  struct sockaddr_storage ss = {};
  socklen_t len = sizeof ss;
  if (::getpeername(fd, reinterpret_cast<struct sockaddr*>(&ss), &len) != 0) {
    return "127.0.0.1";
  }
  char buf[INET6_ADDRSTRLEN] = {};
  if (ss.ss_family == AF_INET) {
    ::inet_ntop(AF_INET,
                &reinterpret_cast<struct sockaddr_in*>(&ss)->sin_addr, buf,
                sizeof buf);
  } else if (ss.ss_family == AF_INET6) {
    ::inet_ntop(AF_INET6,
                &reinterpret_cast<struct sockaddr_in6*>(&ss)->sin6_addr, buf,
                sizeof buf);
  } else {
    return "127.0.0.1";
  }
  return buf;
}

// --- coordinator -----------------------------------------------------

// One signature-coalesced batch. The payload is encoded exactly once
// (at planning) and shared by reference into the outbox, so a requeue
// after a worker death re-sends the same bytes without re-serializing.
struct Batch {
  std::vector<size_t> indices;  // global input positions, input order
  std::shared_ptr<const std::string> payload;
};

// A frame staged for writev gather: header and payload stay in their
// own buffers; `offset` tracks partial progress across both.
struct PendingFrame {
  std::string header;
  std::shared_ptr<const std::string> payload;
  size_t size() const {
    return header.size() + (payload ? payload->size() : 0);
  }
  size_t offset = 0;
};

struct WorkerConn {
  std::string address;
  net::Socket sock;
  bool alive = false;
  std::deque<size_t> queue;    // batch ids waiting to be sent
  std::deque<PendingFrame> outbox;
  std::deque<size_t> unacked;  // batch ids sent, reports pending
  std::string inbox;
  bool done_enqueued = false;
  bool stats_received = false;
  ServiceStats stats;
  size_t acked_requirements = 0;
  Clock::time_point last_progress;

  size_t load() const {
    return queue.size() + unacked.size() + outbox.size();
  }
  bool pending_work() const {
    return !queue.empty() || !outbox.empty() || !unacked.empty() ||
           (done_enqueued && !stats_received);
  }
};

void EnqueueFrame(WorkerConn& w, FrameType type,
                  std::shared_ptr<const std::string> payload) {
  PendingFrame frame;
  frame.header = net::EncodeFrameHeader(
      type, payload ? std::string_view(*payload) : std::string_view());
  frame.payload = std::move(payload);
  w.outbox.push_back(std::move(frame));
}

// Drains as much of the outbox as the socket accepts, 8 frames per
// writev. Returns false when the socket is dead.
bool DrainOutbox(WorkerConn& w, uint64_t* bytes_out) {
  while (!w.outbox.empty()) {
    struct iovec iov[16];
    int iovcnt = 0;
    for (const PendingFrame& frame : w.outbox) {
      if (iovcnt >= 14) break;
      size_t off = frame.offset;
      if (off < frame.header.size()) {
        iov[iovcnt].iov_base =
            const_cast<char*>(frame.header.data()) + off;
        iov[iovcnt].iov_len = frame.header.size() - off;
        ++iovcnt;
        off = 0;
      } else {
        off -= frame.header.size();
      }
      if (frame.payload != nullptr && off < frame.payload->size()) {
        iov[iovcnt].iov_base =
            const_cast<char*>(frame.payload->data()) + off;
        iov[iovcnt].iov_len = frame.payload->size() - off;
        ++iovcnt;
      }
    }
    ssize_t n = ::writev(w.sock.fd(), iov, iovcnt);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno == EAGAIN || errno == EWOULDBLOCK;
    }
    *bytes_out += static_cast<uint64_t>(n);
    w.last_progress = Clock::now();
    size_t remaining = static_cast<size_t>(n);
    while (remaining > 0 && !w.outbox.empty()) {
      PendingFrame& front = w.outbox.front();
      size_t left = front.size() - front.offset;
      if (remaining >= left) {
        remaining -= left;
        w.outbox.pop_front();
      } else {
        front.offset += remaining;
        remaining = 0;
      }
    }
  }
  return true;
}

struct CoordinatorState {
  const std::vector<core::Requirement>* requirements = nullptr;
  std::vector<Batch>* batches = nullptr;
  std::vector<std::optional<core::AnalysisReport>>* assembled = nullptr;
  std::optional<Failure>* failure = nullptr;
  size_t acked_batches = 0;
};

// Handles one complete, checksum-verified frame from `w`. Returns
// false when the worker broke protocol (treated as a death).
bool HandleWorkerFrame(WorkerConn& w, FrameType type,
                       std::string_view payload, CoordinatorState& state) {
  auto ack = [&](uint32_t batch_id) {
    for (auto it = w.unacked.begin(); it != w.unacked.end(); ++it) {
      if (*it == batch_id) {
        w.unacked.erase(it);
        ++state.acked_batches;
        return true;
      }
    }
    return false;
  };
  switch (type) {
    case FrameType::kReports: {
      ByteReader r(payload);
      uint32_t batch_id = r.GetU32();
      uint32_t count = r.GetU32();
      if (!r.ok() || batch_id >= state.batches->size()) return false;
      const Batch& batch = (*state.batches)[batch_id];
      if (count != batch.indices.size()) return false;
      const size_t n = state.requirements->size();
      for (uint32_t k = 0; k < count; ++k) {
        uint32_t gi = 0;
        core::AnalysisReport report;
        if (!wire::GetReport(r, &gi, &report) || gi >= n ||
            (*state.assembled)[gi].has_value()) {
          return false;
        }
        report.requirement = (*state.requirements)[gi];
        (*state.assembled)[gi] = std::move(report);
      }
      if (!r.exhausted() || !ack(batch_id)) return false;
      w.acked_requirements += count;
      return true;
    }
    case FrameType::kBatchError: {
      ByteReader r(payload);
      uint32_t batch_id = r.GetU32();
      uint32_t gi = r.GetU32();
      auto code = static_cast<common::StatusCode>(r.GetU8());
      std::string message = r.GetString();
      if (!r.ok() || !r.exhausted() || batch_id >= state.batches->size() ||
          gi >= state.requirements->size()) {
        return false;
      }
      if (!ack(batch_id)) return false;
      w.acked_requirements += (*state.batches)[batch_id].indices.size();
      NoteFailure(*state.failure, gi,
                  common::Status(code, std::move(message)));
      return true;
    }
    case FrameType::kStats: {
      ByteReader r(payload);
      w.stats = wire::GetStats(r);
      if (!r.exhausted()) return false;
      w.stats_received = true;
      return true;
    }
    default:
      return false;
  }
}

// Reads everything the socket has, reassembles frames from the inbox,
// dispatches them. Returns false when the worker died (EOF, error,
// torn or garbage frame, protocol violation).
bool DrainInbox(WorkerConn& w, CoordinatorState& state, uint64_t* bytes_in,
                uint64_t* frames_in) {
  bool saw_eof = false;
  for (;;) {
    char buf[64 << 10];
    ssize_t n = ::read(w.sock.fd(), buf, sizeof buf);
    if (n > 0) {
      w.inbox.append(buf, static_cast<size_t>(n));
      *bytes_in += static_cast<uint64_t>(n);
      w.last_progress = Clock::now();
      continue;
    }
    if (n == 0) {
      saw_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    saw_eof = true;  // hard error: same treatment as a hangup
    break;
  }
  size_t pos = 0;
  bool ok = true;
  while (w.inbox.size() - pos >= net::kFrameHeaderSize) {
    FrameType type;
    uint32_t length = 0;
    uint64_t checksum = 0;
    if (!net::DecodeFrameHeader(
             std::string_view(w.inbox.data() + pos, net::kFrameHeaderSize),
             &type, &length, &checksum)
             .ok()) {
      ok = false;
      break;
    }
    if (w.inbox.size() - pos < net::kFrameHeaderSize + length) break;
    std::string_view payload(w.inbox.data() + pos + net::kFrameHeaderSize,
                             length);
    if (snapshot::Fnv1a64(payload) != checksum ||
        !HandleWorkerFrame(w, type, payload, state)) {
      ok = false;
      break;
    }
    ++*frames_in;
    pos += net::kFrameHeaderSize + length;
  }
  w.inbox.erase(0, pos);
  return ok && !saw_eof;
}

}  // namespace

TcpTransport::TcpTransport(TcpTransportOptions options)
    : options_(std::move(options)) {}

TcpTransport::~TcpTransport() { store_server_.Stop(); }

common::Result<ShardedBatchResult> TcpTransport::Run(
    const schema::Schema& schema, const schema::UserRegistry& users,
    const std::vector<core::Requirement>& requirements,
    obs::Observability* obs) {
  if (options_.workers.empty()) {
    return common::InvalidArgumentError("tcp shard: no workers configured");
  }
  const int in_flight_cap =
      options_.max_in_flight < 1 ? 1 : options_.max_in_flight;
  const size_t batch_cap = options_.max_batch_requirements < 1
                               ? 1
                               : static_cast<size_t>(
                                     options_.max_batch_requirements);
  const size_t n = requirements.size();
  obs::Tracer* tracer = obs != nullptr ? &obs->tracer : nullptr;
  obs::ScopedSpan batch_span(tracer, "tcp.batch");

  // The networked snapshot tier: front the coordinator's store once,
  // advertise the port in every hello.
  if (options_.snapshot_store != nullptr && options_.serve_snapshot_store &&
      !store_server_started_) {
    common::Status started = store_server_.Start(
        schema, options_.closure, options_.snapshot_store, /*port=*/0);
    if (!started.ok()) return started;
    store_server_started_ = true;
  }

  // Plan: resolve every requirement to roots, coalesce by signature
  // (first-appearance order), chunk at the cap. Unknown users become
  // failure candidates at their input position, exactly as the fork
  // path and CheckBatch surface them.
  std::vector<Batch> batches;
  std::vector<size_t> batch_target;  // initial worker index per batch
  std::optional<Failure> failure;
  {
    obs::ScopedSpan plan_span(tracer, "tcp.plan");
    struct Group {
      std::vector<std::string> roots;
      std::string signature;
      std::vector<size_t> indices;
    };
    std::vector<Group> groups;
    std::unordered_map<std::string, size_t> group_of;
    for (size_t i = 0; i < n; ++i) {
      const schema::User* user = users.Find(requirements[i].user);
      if (user == nullptr) {
        NoteFailure(failure, i,
                    common::NotFoundError(common::StrCat(
                        "unknown user '", requirements[i].user, "'")));
        continue;
      }
      std::vector<std::string> roots = core::AnalysisRoots(schema, *user);
      std::string signature = SignatureFromRoots(roots, options_.closure);
      auto [it, inserted] = group_of.emplace(signature, groups.size());
      if (inserted) {
        groups.push_back(Group{std::move(roots), signature, {}});
      }
      groups[it->second].indices.push_back(i);
    }
    const int worker_count = static_cast<int>(options_.workers.size());
    for (const Group& group : groups) {
      const size_t target =
          static_cast<size_t>(ShardOf(group.signature, worker_count));
      for (size_t begin = 0; begin < group.indices.size();
           begin += batch_cap) {
        const size_t end =
            std::min(begin + batch_cap, group.indices.size());
        Batch batch;
        batch.indices.assign(group.indices.begin() + begin,
                             group.indices.begin() + end);
        ByteWriter p;
        p.PutU32(static_cast<uint32_t>(batches.size()));
        p.PutU32(static_cast<uint32_t>(group.roots.size()));
        for (const std::string& root : group.roots) p.PutString(root);
        p.PutU32(static_cast<uint32_t>(batch.indices.size()));
        for (size_t gi : batch.indices) {
          p.PutU32(static_cast<uint32_t>(gi));
          p.PutString(requirements[gi].ToString());
        }
        batch.payload = std::make_shared<const std::string>(p.Release());
        batches.push_back(std::move(batch));
        batch_target.push_back(target);
      }
    }
  }

  ShardedBatchResult result;
  result.shard_stats.resize(options_.workers.size());
  result.shard_requirements.resize(options_.workers.size());
  if (batches.empty()) {
    if (failure.has_value()) return std::move(failure->status);
    return result;
  }

  // Dial + hello, blocking per worker. A failed dial marks the worker
  // dead from the start (its batches route to survivors); a *refused*
  // hello is a configuration error and fails the run — a version or
  // fingerprint mismatch will not heal by retrying.
  HelloRequest hello;
  hello.version = net::kProtocolVersion;
  hello.byte_order = snapshot::kByteOrderMark;
  hello.fingerprint = snapshot::SchemaFingerprint(schema, options_.closure);
  hello.store_port = store_server_started_ ? store_server_.port() : 0;
  hello.save_snapshots = options_.save_snapshots;
  const std::string hello_payload = EncodeHello(hello);

  std::vector<WorkerConn> workers(options_.workers.size());
  size_t alive_count = 0;
  for (size_t wi = 0; wi < workers.size(); ++wi) {
    WorkerConn& w = workers[wi];
    w.address = options_.workers[wi];
    auto dialed = net::Dial(w.address, options_.dial);
    if (!dialed.ok()) {
      if (obs != nullptr) {
        obs->metrics.counter("net.dial_failures")->Increment();
      }
      continue;
    }
    w.sock = std::move(dialed).value();
    if (!net::WriteFrame(w.sock.fd(), FrameType::kHello, hello_payload,
                         options_.io_timeout_ms)
             .ok()) {
      w.sock.Close();
      continue;
    }
    Frame ack;
    if (!net::ReadFrame(w.sock.fd(), &ack, options_.io_timeout_ms).ok() ||
        ack.type != FrameType::kHelloAck) {
      w.sock.Close();
      continue;
    }
    ByteReader r(ack.payload);
    uint8_t accepted = r.GetU8();
    std::string message = r.GetString();
    if (!r.ok() || !r.exhausted()) {
      w.sock.Close();
      continue;
    }
    if (accepted == 0) {
      return common::FailedPreconditionError(common::StrCat(
          "tcp shard: worker ", w.address, " refused: ", message));
    }
    net::SetNonBlocking(w.sock.fd(), true);
    w.alive = true;
    w.last_progress = Clock::now();
    ++alive_count;
    if (obs != nullptr) obs->metrics.counter("shard.workers")->Increment();
  }
  if (alive_count == 0) {
    return common::InternalError(
        "tcp shard: no worker could be dialed");
  }

  // Route each batch to its signature's worker, spilling batches whose
  // target never connected to the least-loaded survivor.
  for (size_t b = 0; b < batches.size(); ++b) {
    WorkerConn* target = &workers[batch_target[b]];
    if (!target->alive) {
      target = nullptr;
      for (WorkerConn& w : workers) {
        if (w.alive && (target == nullptr || w.load() < target->load())) {
          target = &w;
        }
      }
    }
    target->queue.push_back(b);
  }

  std::vector<std::optional<core::AnalysisReport>> assembled(n);
  CoordinatorState state;
  state.requirements = &requirements;
  state.batches = &batches;
  state.assembled = &assembled;
  state.failure = &failure;

  uint64_t bytes_in = 0, bytes_out = 0, frames_in = 0, frames_out = 0;
  uint64_t requeues = 0, worker_deaths = 0;
  obs::Histogram* in_flight_hist =
      obs != nullptr ? obs->metrics.histogram("net.in_flight") : nullptr;

  common::Status fatal = common::Status::Ok();
  auto kill_worker = [&](WorkerConn& w, std::string_view reason) {
    if (!w.alive) return;
    w.alive = false;
    w.sock.Close();
    ++worker_deaths;
    std::vector<size_t> orphaned(w.unacked.begin(), w.unacked.end());
    orphaned.insert(orphaned.end(), w.queue.begin(), w.queue.end());
    w.unacked.clear();
    w.queue.clear();
    w.outbox.clear();
    WorkerConn* survivor = nullptr;
    for (WorkerConn& other : workers) {
      if (other.alive &&
          (survivor == nullptr || other.load() < survivor->load())) {
        survivor = &other;
      }
    }
    if (survivor == nullptr) {
      if (!orphaned.empty()) {
        fatal = common::InternalError(common::StrCat(
            "tcp shard: all workers died (last: ", w.address, ": ", reason,
            ")"));
      }
      return;
    }
    // Unacked batches were never reported (an ack requires a complete
    // validated frame), so replaying them on a survivor cannot
    // double-apply; cold-only worker builds keep the report bytes
    // identical to the original routing.
    for (size_t b : orphaned) survivor->queue.push_back(b);
    requeues += orphaned.size();
  };

  while (fatal.ok()) {
    const bool all_acked = state.acked_batches == batches.size();
    if (all_acked) {
      bool pending = false;
      for (WorkerConn& w : workers) {
        if (!w.alive) continue;
        if (!w.done_enqueued) {
          EnqueueFrame(w, FrameType::kDone, nullptr);
          w.done_enqueued = true;
        }
        if (!w.stats_received || !w.outbox.empty()) pending = true;
      }
      if (!pending) break;
    } else {
      for (WorkerConn& w : workers) {
        if (!w.alive) continue;
        while (!w.queue.empty() &&
               static_cast<int>(w.unacked.size()) < in_flight_cap) {
          size_t b = w.queue.front();
          w.queue.pop_front();
          EnqueueFrame(w, FrameType::kBatch, batches[b].payload);
          w.unacked.push_back(b);
          ++frames_out;
          if (in_flight_hist != nullptr) {
            in_flight_hist->Record(w.unacked.size());
          }
        }
      }
    }

    std::vector<struct pollfd> pfds;
    std::vector<size_t> pfd_worker;
    for (size_t wi = 0; wi < workers.size(); ++wi) {
      WorkerConn& w = workers[wi];
      if (!w.alive || !w.pending_work()) continue;
      short events = POLLIN;
      if (!w.outbox.empty()) events |= POLLOUT;
      pfds.push_back({w.sock.fd(), events, 0});
      pfd_worker.push_back(wi);
    }
    if (pfds.empty()) {
      if (!all_acked && fatal.ok()) {
        fatal = common::InternalError(
            "tcp shard: no live workers with batches outstanding");
      }
      break;
    }

    int ready = ::poll(pfds.data(), pfds.size(), 100);
    if (ready < 0 && errno != EINTR) {
      fatal = common::InternalError(
          common::StrCat("tcp shard: poll: ", std::strerror(errno)));
      break;
    }
    for (size_t p = 0; p < pfds.size(); ++p) {
      WorkerConn& w = workers[pfd_worker[p]];
      if (!w.alive) continue;
      short revents = pfds[p].revents;
      if (revents & (POLLERR | POLLNVAL)) {
        kill_worker(w, "socket error");
        continue;
      }
      if (revents & (POLLIN | POLLHUP)) {
        if (!DrainInbox(w, state, &bytes_in, &frames_in)) {
          kill_worker(w, "connection closed or corrupt stream");
          continue;
        }
      }
      if (revents & POLLOUT) {
        if (!DrainOutbox(w, &bytes_out)) {
          kill_worker(w, "write failed");
          continue;
        }
      }
    }
    const Clock::time_point now = Clock::now();
    for (WorkerConn& w : workers) {
      if (w.alive && w.pending_work() &&
          now - w.last_progress >
              std::chrono::milliseconds(options_.io_timeout_ms)) {
        kill_worker(w, "no progress before timeout");
      }
    }
  }

  if (obs != nullptr) {
    obs->metrics.counter("net.bytes_sent")->Increment(bytes_out);
    obs->metrics.counter("net.bytes_received")->Increment(bytes_in);
    obs->metrics.counter("net.frames_sent")->Increment(frames_out);
    obs->metrics.counter("net.frames_received")->Increment(frames_in);
    obs->metrics.counter("net.requeues")->Increment(requeues);
    obs->metrics.counter("net.worker_deaths")->Increment(worker_deaths);
    obs->metrics.counter("shard.reports")
        ->Increment(static_cast<uint64_t>(state.acked_batches));
  }
  if (!fatal.ok()) return fatal;

  for (size_t wi = 0; wi < workers.size(); ++wi) {
    result.shard_stats[wi] = workers[wi].stats;
    result.shard_requirements[wi] = workers[wi].acked_requirements;
    result.merged_stats.closures_built += workers[wi].stats.closures_built;
    result.merged_stats.signature_hits += workers[wi].stats.signature_hits;
    result.merged_stats.requirement_hits +=
        workers[wi].stats.requirement_hits;
    result.merged_stats.checks += workers[wi].stats.checks;
    result.merged_stats.warm_starts += workers[wi].stats.warm_starts;
    result.merged_stats.snapshot_hits += workers[wi].stats.snapshot_hits;
  }
  if (failure.has_value()) {
    return std::move(failure->status);
  }
  result.reports.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!assembled[i].has_value()) {
      return common::InternalError(common::StrCat(
          "tcp shard merge lost requirement ", i, " ('",
          requirements[i].user, "')"));
    }
    result.reports.push_back(std::move(*assembled[i]));
  }
  return result;
}

// --- worker ----------------------------------------------------------

namespace {

// Waits until `fd` is readable, re-checking `stop` every 200ms, up to
// `timeout_ms` total. 1 readable, 0 stopped, -1 timeout/error.
int WaitReadableOrStop(int fd, int timeout_ms,
                       const std::atomic<bool>* stop) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (stop != nullptr && stop->load()) return 0;
    int ready = net::WaitReadable(fd, 200);
    if (ready > 0) return 1;
    if (ready < 0) return -1;
    if (Clock::now() >= deadline) return -1;
  }
}

// Buffered frame reader for the worker's batch loop. One read() pulls
// everything the coordinator has streamed ahead, so a pipelined stream
// costs one syscall per buffer-full of frames instead of the several
// poll/read calls net::ReadFrame pays per frame — the worker-side half
// of what makes max_in_flight > 1 collapse to back-to-back batches.
// Same validation contract as ReadFrame: kNotFound on a clean EOF
// between frames, kFailedPrecondition for garbage, torn frames,
// checksum mismatches, or a stall past timeout_ms.
class FrameReader {
 public:
  explicit FrameReader(int fd) : fd_(fd) {}

  // `*stopped` is set (and kOk-with-no-frame returned as kNotFound
  // "stopped") when `stop` went true while waiting.
  common::Status Next(Frame* frame, int timeout_ms,
                      const std::atomic<bool>* stop, bool* stopped) {
    *stopped = false;
    for (;;) {
      // Serve from the buffer when a complete frame is already in it.
      if (buffer_.size() - pos_ >= net::kFrameHeaderSize) {
        FrameType type;
        uint32_t length = 0;
        uint64_t checksum = 0;
        OODBSEC_RETURN_IF_ERROR(net::DecodeFrameHeader(
            std::string_view(buffer_.data() + pos_, net::kFrameHeaderSize),
            &type, &length, &checksum));
        if (buffer_.size() - pos_ >= net::kFrameHeaderSize + length) {
          std::string_view payload(
              buffer_.data() + pos_ + net::kFrameHeaderSize, length);
          if (snapshot::Fnv1a64(payload) != checksum) {
            return common::FailedPreconditionError(
                "frame: payload checksum mismatch");
          }
          frame->type = type;
          frame->payload.assign(payload);
          pos_ += net::kFrameHeaderSize + length;
          if (pos_ == buffer_.size()) {
            buffer_.clear();
            pos_ = 0;
          }
          return common::Status::Ok();
        }
      }
      int ready = WaitReadableOrStop(fd_, timeout_ms, stop);
      if (ready == 0) {
        *stopped = true;
        return common::NotFoundError("frame: stopped");
      }
      if (ready != 1) {
        return common::FailedPreconditionError("frame: read timed out");
      }
      char buf[64 << 10];
      ssize_t n = ::read(fd_, buf, sizeof buf);
      if (n > 0) {
        if (pos_ > 0 && pos_ == buffer_.size()) {
          buffer_.clear();
          pos_ = 0;
        }
        buffer_.append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
      if (n == 0 && buffer_.size() == pos_) {
        return common::NotFoundError("frame: connection closed");
      }
      return common::FailedPreconditionError(
          n == 0 ? "frame: torn frame (EOF mid-frame)"
                 : "frame: read failed");
    }
  }

  // True when the buffer already holds (at least the start of) another
  // frame — the reply to the frame just served can be batched with the
  // next one's instead of paying its own write syscall.
  bool more_buffered() const { return buffer_.size() > pos_; }

 private:
  int fd_;
  std::string buffer_;
  size_t pos_ = 0;
};

// Per-connection audit state living across batches; the cache (and its
// mounted store) can outlive connections — see ServeShardWorker.
struct WorkerAudit {
  core::ClosureCache* cache = nullptr;
  bool save_snapshots = false;
  ServiceStats stats;
};

// Processes one kBatch payload into a kReports/kBatchError reply.
// Cold-only discipline: a cache miss is built with no warm base and no
// retraction, so the derivation log — and with it every report byte —
// matches what a fresh single-process CheckBatch would have produced,
// regardless of routing, requeues, or what this worker built before.
common::Status ProcessBatch(const schema::Schema& schema,
                            std::string_view payload, WorkerAudit& audit,
                            FrameType* reply_type, std::string* reply) {
  ByteReader r(payload);
  const uint32_t batch_id = r.GetU32();
  std::vector<std::string> roots;
  const uint32_t root_count = r.GetU32();
  for (uint32_t i = 0; i < root_count && r.ok(); ++i) {
    roots.push_back(r.GetString());
  }
  std::vector<std::pair<uint32_t, std::string>> requirements;
  const uint32_t req_count = r.GetU32();
  for (uint32_t i = 0; i < req_count && r.ok(); ++i) {
    uint32_t gi = r.GetU32();
    requirements.emplace_back(gi, r.GetString());
  }
  if (!r.exhausted() || requirements.empty()) {
    return common::FailedPreconditionError("tcp worker: malformed batch");
  }

  auto fail = [&](uint32_t gi, const common::Status& status) {
    ByteWriter w;
    w.PutU32(batch_id);
    w.PutU32(gi);
    w.PutU8(static_cast<uint8_t>(status.code()));
    w.PutString(status.message());
    *reply_type = FrameType::kBatchError;
    *reply = w.Release();
    return common::Status::Ok();
  };

  std::shared_ptr<const core::CachedAnalysis> entry =
      audit.cache->FindExact(roots);
  if (entry != nullptr) {
    ++audit.stats.signature_hits;
  } else {
    entry = audit.cache->FindSnapshot(roots);
    if (entry != nullptr) {
      ++audit.stats.snapshot_hits;
      audit.cache->Insert(entry);
    }
  }
  if (entry == nullptr) {
    auto built = audit.cache->BuildDetached(roots, /*warm_base=*/nullptr);
    if (!built.ok()) {
      // Every requirement in the batch shares this signature, so the
      // earliest casualty is the batch's first input position.
      return fail(requirements.front().first, built.status());
    }
    entry = std::move(built).value();
    ++audit.stats.closures_built;
    audit.cache->Insert(entry);
    if (audit.save_snapshots &&
        audit.cache->snapshot_store() != nullptr) {
      // Best-effort persistence, like the fork workers: a full disk or
      // an unreachable store must not fail the audit.
      audit.cache->SaveCacheSnapshot(*entry).ok();
    }
  }

  ByteWriter w;
  w.PutU32(batch_id);
  w.PutU32(static_cast<uint32_t>(requirements.size()));
  for (const auto& [gi, text] : requirements) {
    auto parsed = core::ParseRequirementString(text);
    if (!parsed.ok()) return fail(gi, parsed.status());
    auto checked = core::CheckAgainstClosure(*entry->set, *entry->closure,
                                             parsed.value());
    ++audit.stats.checks;
    if (!checked.ok()) return fail(gi, checked.status());
    wire::PutReport(w, gi, checked.value());
  }
  *reply_type = FrameType::kReports;
  *reply = w.Release();
  return common::Status::Ok();
}

}  // namespace

common::Status ServeShardWorker(net::Listener& listener,
                                const schema::Schema& schema,
                                const TcpWorkerOptions& options,
                                const std::atomic<bool>* stop) {
  if (!listener.valid()) {
    return common::InvalidArgumentError("tcp worker: invalid listener");
  }
  const uint64_t fingerprint =
      snapshot::SchemaFingerprint(schema, options.closure);

  // Survives connections: the L1 cache (exact hits across repeat
  // audits) and the mounted remote store (connection reuse).
  std::unique_ptr<core::ClosureCache> cache;
  std::shared_ptr<snapshot::SnapshotStore> mounted_store;
  std::string mounted_endpoint;

  for (;;) {
    if (stop != nullptr && stop->load()) return common::Status::Ok();
    auto accepted = listener.Accept(/*timeout_ms=*/200);
    if (!accepted.ok()) {
      if (accepted.status().code() ==
          common::StatusCode::kFailedPrecondition) {
        continue;  // accept timeout: re-check the stop flag
      }
      return accepted.status();
    }
    net::Socket conn = std::move(accepted).value();

    // Hello: refuse version, endianness, or fingerprint mismatches
    // with a specific message; the coordinator surfaces it verbatim.
    Frame frame;
    if (WaitReadableOrStop(conn.fd(), options.io_timeout_ms, stop) != 1 ||
        !net::ReadFrame(conn.fd(), &frame, options.io_timeout_ms).ok() ||
        frame.type != FrameType::kHello) {
      continue;
    }
    HelloRequest hello;
    std::string refuse;
    if (!DecodeHello(frame.payload, &hello)) {
      refuse = "malformed hello";
    } else if (hello.version != net::kProtocolVersion) {
      refuse = common::StrCat("protocol version mismatch (coordinator ",
                              hello.version, ", worker ",
                              net::kProtocolVersion, ")");
    } else if (hello.byte_order != snapshot::kByteOrderMark) {
      refuse = "byte-order mismatch (foreign-endian peer)";
    } else if (hello.fingerprint != fingerprint) {
      refuse = "schema fingerprint mismatch (different schema or options)";
    }
    ByteWriter ack;
    ack.PutU8(refuse.empty() ? 1 : 0);
    ack.PutString(refuse);
    if (!net::WriteFrame(conn.fd(), FrameType::kHelloAck, ack.buffer(),
                         options.io_timeout_ms)
             .ok() ||
        !refuse.empty()) {
      continue;
    }

    // Mount the L2 tier: a local store wins; otherwise the
    // coordinator's advertised store port, as a remote client.
    std::shared_ptr<snapshot::SnapshotStore> store = options.snapshot_store;
    if (store == nullptr && options.mount_remote_store &&
        hello.store_port != 0) {
      std::string endpoint = common::StrCat(PeerHost(conn.fd()), ":",
                                            hello.store_port);
      if (endpoint != mounted_endpoint || mounted_store == nullptr) {
        snapshot::RemoteStoreOptions remote;
        remote.io_timeout_ms = options.io_timeout_ms;
        mounted_store = snapshot::OpenRemoteStore(endpoint, remote);
        mounted_endpoint = std::move(endpoint);
        cache.reset();  // a different tier invalidates the warm cache
      }
      store = mounted_store;
    } else if (store == options.snapshot_store && mounted_store != nullptr &&
               options.snapshot_store != nullptr) {
      // Local store configured: the remote mount is never used.
      mounted_store.reset();
      mounted_endpoint.clear();
    }
    if (cache == nullptr || !options.persistent_cache) {
      cache = std::make_unique<core::ClosureCache>(
          schema, options.closure, options.cache_capacity,
          /*obs=*/nullptr, store);
    }

    WorkerAudit audit;
    audit.cache = cache.get();
    audit.save_snapshots = hello.save_snapshots;
    int batches_served = 0;
    bool abort_connection = false;
    FrameReader reader(conn.fd());
    // Replies accumulate here while further batches are already
    // buffered and flush in one write when the stream drains — the
    // reply-side syscall amortization matching the reader's. Lockstep
    // coordinators never stream ahead, so they still get one write per
    // batch, immediately.
    std::string pending_replies;
    auto flush_replies = [&]() {
      if (pending_replies.empty()) return true;
      bool ok = net::WriteFullTimeout(conn.fd(), pending_replies.data(),
                                      pending_replies.size(),
                                      options.io_timeout_ms);
      pending_replies.clear();
      return ok;
    };
    for (;;) {
      bool stopped = false;
      if (!reader.Next(&frame, options.io_timeout_ms, stop, &stopped).ok()) {
        if (stopped) return common::Status::Ok();
        break;  // clean close, torn frame, or stall: drop the connection
      }
      if (frame.type == FrameType::kBatch) {
        FrameType reply_type = FrameType::kReports;
        std::string reply;
        if (!ProcessBatch(schema, frame.payload, audit, &reply_type, &reply)
                 .ok()) {
          break;
        }
        pending_replies += net::EncodeFrameHeader(reply_type, reply);
        pending_replies += reply;
        if ((!reader.more_buffered() ||
             pending_replies.size() >= (256u << 10)) &&
            !flush_replies()) {
          break;
        }
        ++batches_served;
        if (options.abort_after_batches > 0 &&
            batches_served >= options.abort_after_batches) {
          abort_connection = true;  // test seam: die without kStats
          break;
        }
        continue;
      }
      if (frame.type == FrameType::kDone) {
        ByteWriter w;
        wire::PutStats(w, audit.stats);
        pending_replies += net::EncodeFrameHeader(FrameType::kStats,
                                                  w.buffer());
        pending_replies += w.buffer();
        flush_replies();
        break;
      }
      break;  // protocol violation: drop the connection
    }
    (void)abort_connection;  // the drop itself is the simulated death
  }
}

}  // namespace oodbsec::service
