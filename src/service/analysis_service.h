// AnalysisService: batch security analysis over a user population.
//
// The paper's Algorithm A(R) is per-user: unfold the capability list,
// compute the F(F) closure, enumerate invocation sites. A production
// deployment asks a different question — "check these hundred
// requirements across this organisation, nightly" — and the dominant
// structure of such a population is roles: most users carry one of a
// handful of grant bundles, so most of the per-user work is identical.
// The service exploits that twice:
//
//   * Capability-signature cache. Closures are keyed by the canonical
//     signature of (root list, ClosureOptions) — see
//     capability_signature.h — so every user of a role shares one
//     unfold + one fixpoint. The cache persists across batches.
//   * Work-stealing parallelism. Distinct signatures' closures build
//     concurrently; then every requirement check runs concurrently
//     against the (immutable, read-safe) shared closures.
//
// Determinism contract: CheckBatch returns reports in input order and
// each report is byte-identical to what sequential
// core::CheckRequirement produces for that requirement, regardless of
// thread count or cache state. On failure the error returned is the one
// the *earliest failing requirement in input order* would have produced
// sequentially.
//
// Thread-safety: the service parallelises internally but is itself a
// single-caller object — do not invoke Check/CheckBatch from two
// threads at once.
#ifndef OODBSEC_SERVICE_ANALYSIS_SERVICE_H_
#define OODBSEC_SERVICE_ANALYSIS_SERVICE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/analyzer.h"
#include "core/closure.h"
#include "core/requirement.h"
#include "schema/schema.h"
#include "schema/user.h"
#include "service/thread_pool.h"

namespace oodbsec::service {

struct ServiceOptions {
  // Worker threads for closure builds and requirement checks.
  int threads = 1;
  // Fixpoint semantics; part of every cache key.
  core::ClosureOptions closure;
};

struct ServiceStats {
  size_t closures_built = 0;  // cache misses: fixpoints actually computed
  size_t cache_hits = 0;      // requirements served by a pre-existing closure
  size_t checks = 0;          // requirements checked (successfully or not)

  double HitRate() const {
    size_t total = closures_built + cache_hits;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }
};

class AnalysisService {
 public:
  // `schema` and `users` must outlive the service.
  AnalysisService(const schema::Schema& schema,
                  const schema::UserRegistry& users,
                  ServiceOptions options = {});

  // Checks one requirement, reusing (and populating) the closure cache.
  common::Result<core::AnalysisReport> Check(
      const core::Requirement& requirement);

  // Checks every requirement. Closure builds for distinct uncached
  // signatures run in parallel, then all per-requirement checks run in
  // parallel. See the determinism contract above.
  common::Result<std::vector<core::AnalysisReport>> CheckBatch(
      const std::vector<core::Requirement>& requirements);

  const ServiceStats& stats() const { return stats_; }
  size_t cache_size() const { return cache_.size(); }
  int thread_count() const { return pool_.thread_count(); }

 private:
  // One cached analysis: the unfolded program and its closed fixpoint.
  // Immutable once built; shared read-only across worker threads.
  struct Entry {
    std::unique_ptr<unfold::UnfoldedSet> set;
    std::unique_ptr<core::Closure> closure;
  };

  // Builds (set, closure) for `roots`; never touches the cache.
  common::Result<std::unique_ptr<Entry>> BuildEntry(
      const std::vector<std::string>& roots) const;

  const schema::Schema& schema_;
  const schema::UserRegistry& users_;
  ServiceOptions options_;
  ThreadPool pool_;
  // signature -> analysis; entries are never evicted or replaced, so
  // raw Entry pointers handed to workers stay valid.
  std::unordered_map<std::string, std::unique_ptr<Entry>> cache_;
  ServiceStats stats_;
};

}  // namespace oodbsec::service

#endif  // OODBSEC_SERVICE_ANALYSIS_SERVICE_H_
