// AnalysisService: batch security analysis over a user population.
//
// The paper's Algorithm A(R) is per-user: unfold the capability list,
// compute the F(F) closure, enumerate invocation sites. A production
// deployment asks a different question — "check these hundred
// requirements across this organisation, nightly" — and the dominant
// structure of such a population is roles: most users carry one of a
// handful of grant bundles, so most of the per-user work is identical.
// The service exploits that twice:
//
//   * Subset-lattice closure cache (core::ClosureCache). Closures are
//     keyed by the canonical signature of (root list, ClosureOptions) —
//     see capability_signature.h — so every user of a role shares one
//     unfold + one fixpoint. Beyond exact hits, a miss whose root list
//     is a superset of a cached entry *warm-starts* from that entry's
//     fact set and derives only the delta, so overlapping roles pay
//     incremental cost, not full fixpoints. The cache is LRU-bounded
//     (SessionOptions/ServiceOptions cache_capacity) and persists
//     across batches; entries are shared_ptr, so eviction never
//     invalidates in-flight work.
//   * Work-stealing parallelism. Distinct signatures' closures build
//     concurrently; then every requirement check runs concurrently
//     against the (immutable, read-safe) shared closures.
//
// The service is a consumer of core::AnalysisSession: the session owns
// the semantic options and the observability bundle (tracer + metrics);
// the service adds the cache and the pool. Batches run under a "batch"
// span with plan / build / check phase children, and the cache
// accounting lives in the session's metrics registry ("service.*"
// counters) — ServiceStats is merely a value snapshot of those.
//
// Determinism contract: CheckBatch returns reports in input order,
// deterministically — thread count and scheduling never change any
// verdict, flaw site, metric (outside "pool.*"), or byte of output. A
// report's *verdict and flaw sites* always equal what sequential
// core::CheckRequirement produces; its fact_count and derivation text
// are additionally byte-identical whenever the serving closure was
// built cold (an exact-signature world, e.g. disjoint role bundles).
// A warm-started closure derives the same fact set along a different
// route, so those two report fields may differ from the cold-run text —
// see core::ClosureCache. On failure the error returned is the one the
// *earliest failing requirement in input order* would have produced
// sequentially.
//
// Single-caller contract (the one authoritative statement — other
// layers reference this paragraph): the service parallelises
// internally but is itself a single-caller object. Do not invoke
// Check/CheckBatch from two threads at once, and do not share the
// underlying AnalysisSession between concurrently-calling services.
// Stats()/cache_size() return value snapshots precisely so that no
// reference into service internals outlives a call.
#ifndef OODBSEC_SERVICE_ANALYSIS_SERVICE_H_
#define OODBSEC_SERVICE_ANALYSIS_SERVICE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/analysis_session.h"
#include "core/analyzer.h"
#include "core/closure.h"
#include "core/closure_cache.h"
#include "core/requirement.h"
#include "schema/schema.h"
#include "schema/user.h"
#include "core/thread_pool.h"

namespace oodbsec::service {

// Configuration for the convenience constructor that builds a private
// session. Prefer constructing an AnalysisSession yourself and passing
// it in — that is the one place options and observability live.
struct ServiceOptions {
  // Worker threads for closure builds and requirement checks — the
  // across-closures pool. Independent of closure.closure_threads below.
  int threads = 1;
  // Fixpoint semantics; part of every cache key (except
  // closure.closure_threads, which parallelises each build's fixpoint
  // rounds without changing its derivation log).
  core::ClosureOptions closure;
  // LRU bound on cached closures (see core::ClosureCache).
  size_t cache_capacity = core::ClosureCache::kDefaultCapacity;
  // Deprecated shim: a non-empty directory opens a DirectoryStore when
  // `snapshot_store` is null (see core::SessionOptions).
  std::string snapshot_dir;
  // Persistent L2 tier behind the closure cache (see
  // snapshot/snapshot_store.h); forwarded into the private session's
  // SessionOptions.
  std::shared_ptr<snapshot::SnapshotStore> snapshot_store;
};

// A value snapshot of the service's cache accounting (reads of the
// "service.*" counters in the session's metrics registry). Cheap to
// copy; no reference-returning accessor exists, by design — see the
// single-caller contract above.
//
// Hit accounting is two-level, because "hit rate" means two different
// things: `signature_hits` counts signature resolutions served by a
// pre-existing cache entry (one per distinct signature per batch — the
// build-vs-reuse ratio of fixpoint work), while `requirement_hits`
// counts requirements that reused a closure they did not themselves
// trigger building (the per-check amortisation). A warm batch of N
// same-role requirements scores signature_hits += 1 but
// requirement_hits += N.
struct ServiceStats {
  size_t closures_built = 0;    // signature misses: fixpoints computed
  size_t signature_hits = 0;    // signature resolutions served from cache
  size_t requirement_hits = 0;  // requirements that reused a closure
  size_t checks = 0;            // requirements checked (ok or not)
  // Of closures_built, how many warm-started from a cached subset
  // instead of running a cold fixpoint.
  size_t warm_starts = 0;
  // Of closures_built, how many were DRed-retracted from a cached
  // superset (core::Closure::Retract) — the shrink counterpart of
  // warm_starts. Disjoint from warm_starts.
  size_t retract_builds = 0;
  // Session-level revoke accounting, read from the shared registry's
  // "session.*" counters (satellite of the retraction work): every
  // RemoveCapability counts one revoke, and exactly one of
  // retractions_fast (the cached closure was shrunk in place, or the
  // post-revoke state was already cached) or retractions_fallback (no
  // resident pre-revoke closure — the next recheck pays a warm or cold
  // build). All 0 when no session-level revokes happened.
  size_t revokes = 0;
  size_t retractions_fast = 0;
  size_t retractions_fallback = 0;
  // Signature resolutions served by replaying a persisted snapshot
  // (the L2 tier) instead of building — disjoint from both
  // closures_built and signature_hits. Always 0 without a snapshot
  // store.
  size_t snapshot_hits = 0;

  // closures reused / closures resolved: how much fixpoint work the
  // cache saved.
  double SignatureHitRate() const {
    size_t total = closures_built + signature_hits;
    return total == 0 ? 0.0
                      : static_cast<double>(signature_hits) /
                            static_cast<double>(total);
  }
  // requirements served without a build of their own / all checks.
  double RequirementHitRate() const {
    return checks == 0 ? 0.0
                       : static_cast<double>(requirement_hits) /
                             static_cast<double>(checks);
  }
};

class AnalysisService {
 public:
  // Canonical form: borrow `session` (must outlive the service; see the
  // single-caller contract above for sharing rules). The pool size is
  // session.options().threads unless `threads_override` > 0 — the
  // override exists for callers like the shell that re-run one session
  // at different widths.
  explicit AnalysisService(core::AnalysisSession& session,
                           int threads_override = 0);

  // Convenience form: builds and owns a private session over `schema`
  // and `users` (which must outlive the service) from `options`.
  AnalysisService(const schema::Schema& schema,
                  const schema::UserRegistry& users,
                  ServiceOptions options = {});

  // Checks one requirement, reusing (and populating) the closure cache.
  common::Result<core::AnalysisReport> Check(
      const core::Requirement& requirement);

  // Checks every requirement. Closure builds for distinct uncached
  // signatures run in parallel, then all per-requirement checks run in
  // parallel. See the determinism contract above.
  common::Result<std::vector<core::AnalysisReport>> CheckBatch(
      const std::vector<core::Requirement>& requirements);

  // Value snapshot of the cache accounting; see ServiceStats.
  ServiceStats Stats() const;

  // Persists every resident cache entry to the snapshot store / warms
  // the cache from it. Thin forwards to core::ClosureCache;
  // kFailedPrecondition / 0 when no snapshot store is configured.
  common::Status SaveCacheSnapshot() const {
    return cache_.SaveCacheSnapshot();
  }
  size_t LoadCacheSnapshot() { return cache_.LoadCacheSnapshot(); }

  size_t cache_size() const { return cache_.size(); }
  int thread_count() const { return pool_.thread_count(); }
  core::AnalysisSession& session() { return *session_; }

 private:
  std::unique_ptr<core::AnalysisSession> owned_session_;
  core::AnalysisSession* session_;  // owned_session_.get() or borrowed
  core::ThreadPool pool_;
  // Subset-lattice LRU cache of (unfolded set, closure) entries, shared
  // as shared_ptr so eviction never invalidates in-flight work (see
  // core::ClosureCache). Lookups and inserts happen only in sequential
  // phases; the parallel build phase uses the const BuildDetached.
  core::ClosureCache cache_;

  // "service.*" (and session revoke) counter handles into the
  // session's registry.
  obs::Counter* closures_built_;
  obs::Counter* signature_hits_;
  obs::Counter* requirement_hits_;
  obs::Counter* checks_;
  obs::Counter* warm_starts_;
  obs::Counter* retract_builds_;
  obs::Counter* snapshot_hits_;
  obs::Counter* revokes_;
  obs::Counter* retractions_fast_;
  obs::Counter* retractions_fallback_;
};

}  // namespace oodbsec::service

#endif  // OODBSEC_SERVICE_ANALYSIS_SERVICE_H_
