// Sharded multi-process audit: fan a requirement batch out over N
// worker processes, merge their reports back deterministically.
//
// The paper's A(R) is per-user, so a population-scale audit partitions
// perfectly: no fact ever flows between two users' closures. The unit
// of partitioning here is the *capability signature* (the service's
// cache key, capability_signature.h), not the user — all requirements
// whose users share a grant bundle land on the same worker, so each
// distinct fixpoint is computed exactly once across the whole fleet,
// and the partition is a pure function of the signature string:
//
//   shard(signature) = FNV-1a64(signature) mod shard_count
//
// Workers are forked from the coordinator, run a private
// AnalysisService over their requirement subset, and stream their
// reports and ServiceStats back over a pipe (snapshot/binio format).
// When a shared snapshot store is configured, every worker mounts a
// fork of it (SnapshotStore::ForkWorker) as the L2 tier behind its
// in-memory L1 cache, so a fleet restart replays persisted derivation
// logs instead of re-running fixpoints — and with save_snapshots set,
// workers persist what they built (a packed store's workers append to
// private side segments the coordinator merges back afterwards),
// warming the next run.
//
// Determinism contract: RunShardedBatch over fresh caches produces
// reports byte-identical to a fresh single-process
// AnalysisService::CheckBatch over the same requirements — same input
// order, same verdicts, flaw sites, fact counts, and derivation text —
// for any shard_count and any thread count. (Both sides build every
// distinct signature cold within the batch; a snapshot-seeded run is
// also byte-identical because a loaded snapshot replays the saved
// cold log bit for bit.) On failure the error is the one the earliest
// failing requirement in input order would have produced, exactly as
// CheckBatch reports it.
//
// Coordinator caveat: fork() is only safe from a single-threaded
// process image. Call RunShardedBatch before spinning up thread pools
// (the coordinator itself creates none; workers create theirs after
// the fork).
#ifndef OODBSEC_SERVICE_SHARD_H_
#define OODBSEC_SERVICE_SHARD_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/closure.h"
#include "core/closure_cache.h"
#include "core/requirement.h"
#include "obs/obs.h"
#include "schema/schema.h"
#include "schema/user.h"
#include "service/analysis_service.h"

namespace oodbsec::service {

struct ShardOptions {
  // Worker processes to fork. 1 still forks (uniform code path).
  int shard_count = 4;
  // Worker threads *per shard process* (each worker's pool width).
  int threads = 1;
  // Fixpoint semantics, forwarded to every worker's session.
  // closure.closure_threads parallelises each fixpoint inside a worker
  // (reports stay byte-identical; it is not part of any cache key).
  core::ClosureOptions closure;
  size_t cache_capacity = core::ClosureCache::kDefaultCapacity;
  // Deprecated shim: a non-empty directory opens a DirectoryStore when
  // `snapshot_store` is null.
  std::string snapshot_dir;
  // Workers persist every closure they built to the snapshot store
  // before exiting (atomic directory writes race benignly; packed
  // workers append to private side segments, merged after the drain).
  bool save_snapshots = false;
  // Shared snapshot store every worker mounts (via ForkWorker) as its
  // L2 closure tier (see snapshot/snapshot_store.h).
  std::shared_ptr<snapshot::SnapshotStore> snapshot_store;
};

struct ShardedBatchResult {
  // Input order, byte-identical to single-process CheckBatch (see the
  // determinism contract above).
  std::vector<core::AnalysisReport> reports;
  // Element-wise sum of the workers' ServiceStats.
  ServiceStats merged_stats;
  // Indexed by shard id; shards with no requirements report zeros.
  std::vector<ServiceStats> shard_stats;
  // Requirements routed to each shard (sums to the batch size minus
  // none — every requirement is routed).
  std::vector<size_t> shard_requirements;
};

// The stable partitioner. shard_count must be >= 1; the result is in
// [0, shard_count). Pure function of the bytes of `signature` — stable
// across processes, runs, and machines.
int ShardOf(std::string_view signature, int shard_count);

// Partitions `requirements` by capability signature, forks
// options.shard_count workers, runs each worker's subset through a
// private AnalysisService, and merges. `obs` (optional, coordinator
// side) gets a "shard.batch" span with one "shard.wait" child per
// worker plus "shard.*" routing counters; worker-side spans stay in
// the workers (their metrics come back inside ServiceStats).
common::Result<ShardedBatchResult> RunShardedBatch(
    const schema::Schema& schema, const schema::UserRegistry& users,
    const std::vector<core::Requirement>& requirements,
    const ShardOptions& options, obs::Observability* obs = nullptr);

// The transport seam: one interface over the fork engine (this file)
// and the TCP engine (service/tcp_shard.h), so audit drivers pick a
// process model without changing any audit code. Every implementation
// owes the same determinism contract as RunShardedBatch — reports
// byte-identical to single-process CheckBatch, earliest-failure error
// parity — which is what the transport parity tests pin.
class ShardTransport {
 public:
  virtual ~ShardTransport() = default;
  // Short label for logs and bench output ("fork", "tcp").
  virtual std::string_view name() const = 0;
  virtual common::Result<ShardedBatchResult> Run(
      const schema::Schema& schema, const schema::UserRegistry& users,
      const std::vector<core::Requirement>& requirements,
      obs::Observability* obs) = 0;
};

// RunShardedBatch behind the seam. Carries the fork() caveat above:
// Run() must be called from a single-threaded process image.
class ForkTransport : public ShardTransport {
 public:
  explicit ForkTransport(ShardOptions options)
      : options_(std::move(options)) {}
  std::string_view name() const override { return "fork"; }
  common::Result<ShardedBatchResult> Run(
      const schema::Schema& schema, const schema::UserRegistry& users,
      const std::vector<core::Requirement>& requirements,
      obs::Observability* obs) override {
    return RunShardedBatch(schema, users, requirements, options_, obs);
  }

 private:
  ShardOptions options_;
};

}  // namespace oodbsec::service

#endif  // OODBSEC_SERVICE_SHARD_H_
