#include "service/capability_signature.h"

#include <vector>

#include "core/analyzer.h"

namespace oodbsec::service {

std::string SignatureFromRoots(std::span<const std::string> roots,
                               const core::ClosureOptions& options) {
  std::string signature;
  size_t total = 8;
  for (const std::string& root : roots) total += root.size() + 1;
  signature.reserve(total);
  // Every semantic knob of the fixpoint is part of the key: the same
  // capability set under weakened options is a different closure.
  signature.push_back(options.same_type_argument_equality ? '1' : '0');
  signature.push_back(options.pi_join_to_ti ? '1' : '0');
  signature.push_back(options.basic_function_rules ? '1' : '0');
  signature.push_back(options.write_read_equality ? '1' : '0');
  signature.push_back(options.read_object_total_alterability ? '1' : '0');
  for (const std::string& root : roots) {
    signature.push_back('|');
    signature.append(root);
  }
  return signature;
}

std::string CapabilitySignature(const schema::Schema& schema,
                                const schema::User& user,
                                const core::ClosureOptions& options) {
  std::vector<std::string> roots = core::AnalysisRoots(schema, user);
  return SignatureFromRoots(roots, options);
}

}  // namespace oodbsec::service
