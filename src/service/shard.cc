#include "service/shard.h"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdlib>
#include <optional>
#include <utility>

#include "common/strings.h"
#include "core/analyzer.h"
#include "obs/trace.h"
#include "service/capability_signature.h"
#include "service/shard_wire.h"
#include "snapshot/binio.h"
#include "snapshot/snapshot_store.h"

namespace oodbsec::service {

namespace {

using core::AnalysisReport;
using snapshot::ByteReader;
using snapshot::ByteWriter;

// --- worker wire protocol (one EOF-delimited message per worker) -----
//
//   u8 ok
//   ok=1: u32 report_count, then report_count reports and a stats
//         block, both in shard_wire.h layout
//   ok=0: u32 earliest failing global index, u8 status code,
//         string message

// Runs one worker's subset and serializes the outcome. Runs in the
// forked child; must not touch coordinator state it shouldn't (it
// operates on the fork's copy-on-write image of schema/users/
// requirements, which is exactly the point — no re-parsing).
std::string RunWorker(const schema::Schema& schema,
                      const schema::UserRegistry& users,
                      const std::vector<core::Requirement>& requirements,
                      const std::vector<size_t>& indices,
                      const ShardOptions& options,
                      std::shared_ptr<snapshot::SnapshotStore> store) {
  AnalysisService service(schema, users,
                          ServiceOptions{.threads = options.threads,
                                         .closure = options.closure,
                                         .cache_capacity =
                                             options.cache_capacity,
                                         .snapshot_store =
                                             std::move(store)});
  std::vector<core::Requirement> subset;
  subset.reserve(indices.size());
  for (size_t gi : indices) subset.push_back(requirements[gi]);

  ByteWriter w;
  auto batch = service.CheckBatch(subset);
  if (!batch.ok()) {
    // CheckBatch reports the earliest failure but not its index;
    // recover it with a sequential pass (the batch left every closure
    // it could build in cache, so this costs checks, not fixpoints).
    // `indices` preserves global input order, so the first local
    // failure is the earliest global one.
    size_t failing = indices.empty() ? 0 : indices.front();
    common::Status status = batch.status();
    for (size_t li = 0; li < subset.size(); ++li) {
      auto single = service.Check(subset[li]);
      if (!single.ok()) {
        failing = indices[li];
        status = single.status();
        break;
      }
    }
    w.PutU8(0);
    w.PutU32(static_cast<uint32_t>(failing));
    w.PutU8(static_cast<uint8_t>(status.code()));
    w.PutString(status.message());
    return w.Release();
  }

  if (options.save_snapshots &&
      service.session().options().snapshot_store != nullptr) {
    // Best-effort persistence; a full disk must not fail the audit.
    service.SaveCacheSnapshot();
  }

  const std::vector<AnalysisReport>& reports = batch.value();
  w.PutU8(1);
  w.PutU32(static_cast<uint32_t>(reports.size()));
  for (size_t li = 0; li < reports.size(); ++li) {
    wire::PutReport(w, static_cast<uint32_t>(indices[li]), reports[li]);
  }
  wire::PutStats(w, service.Stats());
  return w.Release();
}

// Test seam for the worker-death path: OODBSEC_TEST_SHARD_CRASH=<shard>
// makes that shard write half its message and die with a nonzero exit,
// simulating a worker killed mid-stream. Returns -1 when unset.
int CrashShardFromEnv() {
  const char* value = std::getenv("OODBSEC_TEST_SHARD_CRASH");
  return value != nullptr ? std::atoi(value) : -1;
}

struct Failure {
  size_t global_index;
  common::Status status;
};

void NoteFailure(std::optional<Failure>& worst, size_t global_index,
                 common::Status status) {
  if (!worst.has_value() || global_index < worst->global_index) {
    worst = Failure{global_index, std::move(status)};
  }
}

}  // namespace

int ShardOf(std::string_view signature, int shard_count) {
  if (shard_count <= 1) return 0;
  return static_cast<int>(snapshot::Fnv1a64(signature) %
                          static_cast<uint64_t>(shard_count));
}

common::Result<ShardedBatchResult> RunShardedBatch(
    const schema::Schema& schema, const schema::UserRegistry& users,
    const std::vector<core::Requirement>& requirements,
    const ShardOptions& options, obs::Observability* obs) {
  if (options.shard_count < 1) {
    return common::InvalidArgumentError("shard_count must be >= 1");
  }
  const int shards = options.shard_count;
  const size_t n = requirements.size();
  obs::Tracer* tracer = obs != nullptr ? &obs->tracer : nullptr;
  obs::ScopedSpan batch_span(tracer, "shard.batch");

  // One shared base store across the fleet (the deprecated snapshot_dir
  // shim resolves here); each child forks a worker view of it so
  // sibling writers never contend on one segment.
  std::shared_ptr<snapshot::SnapshotStore> base_store =
      snapshot::ResolveStore(options.snapshot_store, options.snapshot_dir);

  // Route every requirement: signature -> shard. Unknown users cannot
  // be signed; they become failure candidates at their input position,
  // exactly where single-process CheckBatch would surface them.
  std::vector<std::vector<size_t>> routed(static_cast<size_t>(shards));
  std::optional<Failure> failure;
  {
    obs::ScopedSpan plan_span(tracer, "shard.plan");
    for (size_t i = 0; i < n; ++i) {
      const schema::User* user = users.Find(requirements[i].user);
      if (user == nullptr) {
        NoteFailure(failure, i,
                    common::NotFoundError(common::StrCat(
                        "unknown user '", requirements[i].user, "'")));
        continue;
      }
      std::vector<std::string> roots = core::AnalysisRoots(schema, *user);
      std::string signature = SignatureFromRoots(roots, options.closure);
      routed[static_cast<size_t>(ShardOf(signature, shards))].push_back(i);
    }
  }

  // Fork the fleet first, then drain pipes in shard order — every
  // worker runs concurrently, and the ordered drain keeps the merge
  // (and the span sequence) deterministic. A worker never blocks on
  // its pipe: messages are far below the pipe buffer for any failure
  // and the parent drains continuously for bulk report payloads.
  struct Worker {
    pid_t pid = -1;
    int read_fd = -1;
  };
  std::vector<Worker> workers(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    int fds[2];
    if (::pipe(fds) != 0) {
      return common::InternalError("shard: pipe() failed");
    }
    pid_t pid = ::fork();
    if (pid < 0) {
      return common::InternalError("shard: fork() failed");
    }
    if (pid == 0) {
      // Child: run the subset, stream the message, and _exit without
      // flushing inherited stdio buffers twice. The worker store is
      // forked post-fork so the child owns its descriptors and side
      // segment; a failed fork degrades to no L2 tier (reports stay
      // byte-identical — only warm hits are lost).
      ::close(fds[0]);
      std::shared_ptr<snapshot::SnapshotStore> worker_store;
      if (base_store != nullptr) {
        auto forked = base_store->ForkWorker(s);
        if (forked.ok()) worker_store = std::move(forked).value();
      }
      std::string message = RunWorker(schema, users, requirements,
                                      routed[static_cast<size_t>(s)],
                                      options, std::move(worker_store));
      if (CrashShardFromEnv() == s) {
        // Die mid-stream: half a message, nonzero exit, no side-segment
        // cleanup — exactly what a worker killed by the OOM killer (or
        // a crash in report serialization) leaves behind.
        snapshot::WriteFull(
            fds[1], std::string_view(message).substr(0, message.size() / 2));
        ::_exit(3);
      }
      snapshot::WriteFull(fds[1], message);
      ::close(fds[1]);
      ::_exit(0);
    }
    ::close(fds[1]);
    workers[static_cast<size_t>(s)] = Worker{pid, fds[0]};
    if (obs != nullptr) obs->metrics.counter("shard.workers")->Increment();
  }

  ShardedBatchResult result;
  result.shard_stats.resize(static_cast<size_t>(shards));
  result.shard_requirements.resize(static_cast<size_t>(shards));
  std::vector<std::optional<AnalysisReport>> assembled(n);
  for (int s = 0; s < shards; ++s) {
    Worker& worker = workers[static_cast<size_t>(s)];
    const std::vector<size_t>& indices = routed[static_cast<size_t>(s)];
    result.shard_requirements[static_cast<size_t>(s)] = indices.size();
    std::string message;
    int wstatus = 0;
    {
      obs::ScopedSpan wait_span(tracer,
                                common::StrCat("shard.wait.", s));
      message = snapshot::ReadToEof(worker.read_fd);
      ::close(worker.read_fd);
      while (::waitpid(worker.pid, &wstatus, 0) < 0 && errno == EINTR) {
      }
    }
    // A worker that died (signal or nonzero exit) may have written a
    // prefix of a valid message; naming the shard and the cause beats
    // mis-diagnosing the truncation as a protocol bug. Its side segment
    // (if any) is torn mid-record — MergeWorkers below salvages the
    // complete records and removes the segment either way.
    if (WIFSIGNALED(wstatus)) {
      NoteFailure(failure, indices.empty() ? n : indices.front(),
                  common::InternalError(common::StrCat(
                      "shard ", s, " worker killed by signal ",
                      WTERMSIG(wstatus))));
      continue;
    }
    if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) != 0) {
      NoteFailure(failure, indices.empty() ? n : indices.front(),
                  common::InternalError(common::StrCat(
                      "shard ", s, " worker exited with status ",
                      WEXITSTATUS(wstatus))));
      continue;
    }

    ByteReader r(message);
    uint8_t ok = r.GetU8();
    if (!r.ok()) {
      // Crashed or wrote nothing: attribute the failure to the
      // shard's earliest requirement (determinism under crashes is
      // best-effort; correctness of the error path is not).
      NoteFailure(failure, indices.empty() ? n : indices.front(),
                  common::InternalError(
                      common::StrCat("shard ", s, " produced no output")));
      continue;
    }
    if (ok == 0) {
      size_t failing = r.GetU32();
      auto code = static_cast<common::StatusCode>(r.GetU8());
      std::string text = r.GetString();
      if (!r.ok()) {
        NoteFailure(failure, indices.empty() ? n : indices.front(),
                    common::InternalError(common::StrCat(
                        "shard ", s, " sent a malformed failure")));
      } else {
        NoteFailure(failure, failing, common::Status(code, std::move(text)));
      }
      continue;
    }
    uint32_t report_count = r.GetU32();
    bool malformed = false;
    for (uint32_t k = 0; k < report_count && r.ok(); ++k) {
      uint32_t gi = 0;
      AnalysisReport report;
      if (!wire::GetReport(r, &gi, &report) || gi >= n ||
          assembled[gi].has_value()) {
        malformed = true;
        break;
      }
      // The worker checked requirements[gi] verbatim (fork copy), so
      // re-attaching it here reproduces CheckBatch's report bytes.
      report.requirement = requirements[gi];
      assembled[gi] = std::move(report);
    }
    ServiceStats stats = wire::GetStats(r);
    if (malformed || !r.exhausted()) {
      NoteFailure(failure, indices.empty() ? n : indices.front(),
                  common::InternalError(common::StrCat(
                      "shard ", s, " sent a malformed report stream")));
      continue;
    }
    result.shard_stats[static_cast<size_t>(s)] = stats;
    result.merged_stats.closures_built += stats.closures_built;
    result.merged_stats.signature_hits += stats.signature_hits;
    result.merged_stats.requirement_hits += stats.requirement_hits;
    result.merged_stats.checks += stats.checks;
    result.merged_stats.warm_starts += stats.warm_starts;
    result.merged_stats.snapshot_hits += stats.snapshot_hits;
    if (obs != nullptr) {
      obs->metrics.counter("shard.reports")->Increment(report_count);
    }
  }

  // Every worker has exited; fold their side segments (packed stores
  // append privately per worker) back into the shared base segment.
  // Best-effort, like worker saves: a failed merge costs the next run
  // warm hits, never this run's reports.
  if (base_store != nullptr && options.save_snapshots) {
    common::Status merged = base_store->MergeWorkers();
    if (obs != nullptr) {
      obs->metrics.counter(merged.ok() ? "shard.merges" : "shard.merge_errors")
          ->Increment();
    }
  }

  if (failure.has_value()) {
    return std::move(failure->status);
  }
  result.reports.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!assembled[i].has_value()) {
      return common::InternalError(common::StrCat(
          "shard merge lost requirement ", i, " ('",
          requirements[i].user, "')"));
    }
    result.reports.push_back(std::move(*assembled[i]));
  }
  return result;
}

}  // namespace oodbsec::service
