#include "service/shard.h"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <optional>
#include <utility>

#include "common/strings.h"
#include "core/analyzer.h"
#include "obs/trace.h"
#include "service/capability_signature.h"
#include "snapshot/binio.h"
#include "snapshot/snapshot_store.h"

namespace oodbsec::service {

namespace {

using core::AnalysisReport;
using core::FlawSite;
using snapshot::ByteReader;
using snapshot::ByteWriter;

// Writes the whole buffer to `fd`, retrying on EINTR / short writes.
bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

// Reads `fd` to EOF.
std::string ReadAll(int fd) {
  std::string data;
  char buf[64 << 10];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    data.append(buf, static_cast<size_t>(n));
  }
  return data;
}

// --- worker wire protocol (one EOF-delimited message per worker) -----
//
//   u8 ok
//   ok=1: u32 report_count, then per report
//           u32 global_index, u8 satisfied, i32 node_count,
//           u64 fact_count, u32 flaw_count, then per flaw
//             i32 site_id, u8 is_root_site, string description,
//             u32 fact_ids, i32 each, string derivation
//         then 6 x u64 ServiceStats fields
//   ok=0: u32 earliest failing global index, u8 status code,
//         string message

void PutStats(ByteWriter& w, const ServiceStats& stats) {
  w.PutU64(stats.closures_built);
  w.PutU64(stats.signature_hits);
  w.PutU64(stats.requirement_hits);
  w.PutU64(stats.checks);
  w.PutU64(stats.warm_starts);
  w.PutU64(stats.snapshot_hits);
}

ServiceStats GetStats(ByteReader& r) {
  ServiceStats stats;
  stats.closures_built = static_cast<size_t>(r.GetU64());
  stats.signature_hits = static_cast<size_t>(r.GetU64());
  stats.requirement_hits = static_cast<size_t>(r.GetU64());
  stats.checks = static_cast<size_t>(r.GetU64());
  stats.warm_starts = static_cast<size_t>(r.GetU64());
  stats.snapshot_hits = static_cast<size_t>(r.GetU64());
  return stats;
}

// Runs one worker's subset and serializes the outcome. Runs in the
// forked child; must not touch coordinator state it shouldn't (it
// operates on the fork's copy-on-write image of schema/users/
// requirements, which is exactly the point — no re-parsing).
std::string RunWorker(const schema::Schema& schema,
                      const schema::UserRegistry& users,
                      const std::vector<core::Requirement>& requirements,
                      const std::vector<size_t>& indices,
                      const ShardOptions& options,
                      std::shared_ptr<snapshot::SnapshotStore> store) {
  AnalysisService service(schema, users,
                          ServiceOptions{.threads = options.threads,
                                         .closure = options.closure,
                                         .cache_capacity =
                                             options.cache_capacity,
                                         .snapshot_store =
                                             std::move(store)});
  std::vector<core::Requirement> subset;
  subset.reserve(indices.size());
  for (size_t gi : indices) subset.push_back(requirements[gi]);

  ByteWriter w;
  auto batch = service.CheckBatch(subset);
  if (!batch.ok()) {
    // CheckBatch reports the earliest failure but not its index;
    // recover it with a sequential pass (the batch left every closure
    // it could build in cache, so this costs checks, not fixpoints).
    // `indices` preserves global input order, so the first local
    // failure is the earliest global one.
    size_t failing = indices.empty() ? 0 : indices.front();
    common::Status status = batch.status();
    for (size_t li = 0; li < subset.size(); ++li) {
      auto single = service.Check(subset[li]);
      if (!single.ok()) {
        failing = indices[li];
        status = single.status();
        break;
      }
    }
    w.PutU8(0);
    w.PutU32(static_cast<uint32_t>(failing));
    w.PutU8(static_cast<uint8_t>(status.code()));
    w.PutString(status.message());
    return w.Release();
  }

  if (options.save_snapshots &&
      service.session().options().snapshot_store != nullptr) {
    // Best-effort persistence; a full disk must not fail the audit.
    service.SaveCacheSnapshot();
  }

  const std::vector<AnalysisReport>& reports = batch.value();
  w.PutU8(1);
  w.PutU32(static_cast<uint32_t>(reports.size()));
  for (size_t li = 0; li < reports.size(); ++li) {
    const AnalysisReport& report = reports[li];
    w.PutU32(static_cast<uint32_t>(indices[li]));
    w.PutU8(report.satisfied ? 1 : 0);
    w.PutI32(report.node_count);
    w.PutU64(report.fact_count);
    w.PutU32(static_cast<uint32_t>(report.flaws.size()));
    for (const FlawSite& flaw : report.flaws) {
      w.PutI32(flaw.site_id);
      w.PutU8(flaw.is_root_site ? 1 : 0);
      w.PutString(flaw.description);
      w.PutU32(static_cast<uint32_t>(flaw.supporting_facts.size()));
      for (core::FactId fact : flaw.supporting_facts) w.PutI32(fact);
      w.PutString(flaw.derivation);
    }
  }
  PutStats(w, service.Stats());
  return w.Release();
}

struct Failure {
  size_t global_index;
  common::Status status;
};

void NoteFailure(std::optional<Failure>& worst, size_t global_index,
                 common::Status status) {
  if (!worst.has_value() || global_index < worst->global_index) {
    worst = Failure{global_index, std::move(status)};
  }
}

}  // namespace

int ShardOf(std::string_view signature, int shard_count) {
  if (shard_count <= 1) return 0;
  return static_cast<int>(snapshot::Fnv1a64(signature) %
                          static_cast<uint64_t>(shard_count));
}

common::Result<ShardedBatchResult> RunShardedBatch(
    const schema::Schema& schema, const schema::UserRegistry& users,
    const std::vector<core::Requirement>& requirements,
    const ShardOptions& options, obs::Observability* obs) {
  if (options.shard_count < 1) {
    return common::InvalidArgumentError("shard_count must be >= 1");
  }
  const int shards = options.shard_count;
  const size_t n = requirements.size();
  obs::Tracer* tracer = obs != nullptr ? &obs->tracer : nullptr;
  obs::ScopedSpan batch_span(tracer, "shard.batch");

  // One shared base store across the fleet (the deprecated snapshot_dir
  // shim resolves here); each child forks a worker view of it so
  // sibling writers never contend on one segment.
  std::shared_ptr<snapshot::SnapshotStore> base_store =
      snapshot::ResolveStore(options.snapshot_store, options.snapshot_dir);

  // Route every requirement: signature -> shard. Unknown users cannot
  // be signed; they become failure candidates at their input position,
  // exactly where single-process CheckBatch would surface them.
  std::vector<std::vector<size_t>> routed(static_cast<size_t>(shards));
  std::optional<Failure> failure;
  {
    obs::ScopedSpan plan_span(tracer, "shard.plan");
    for (size_t i = 0; i < n; ++i) {
      const schema::User* user = users.Find(requirements[i].user);
      if (user == nullptr) {
        NoteFailure(failure, i,
                    common::NotFoundError(common::StrCat(
                        "unknown user '", requirements[i].user, "'")));
        continue;
      }
      std::vector<std::string> roots = core::AnalysisRoots(schema, *user);
      std::string signature = SignatureFromRoots(roots, options.closure);
      routed[static_cast<size_t>(ShardOf(signature, shards))].push_back(i);
    }
  }

  // Fork the fleet first, then drain pipes in shard order — every
  // worker runs concurrently, and the ordered drain keeps the merge
  // (and the span sequence) deterministic. A worker never blocks on
  // its pipe: messages are far below the pipe buffer for any failure
  // and the parent drains continuously for bulk report payloads.
  struct Worker {
    pid_t pid = -1;
    int read_fd = -1;
  };
  std::vector<Worker> workers(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    int fds[2];
    if (::pipe(fds) != 0) {
      return common::InternalError("shard: pipe() failed");
    }
    pid_t pid = ::fork();
    if (pid < 0) {
      return common::InternalError("shard: fork() failed");
    }
    if (pid == 0) {
      // Child: run the subset, stream the message, and _exit without
      // flushing inherited stdio buffers twice. The worker store is
      // forked post-fork so the child owns its descriptors and side
      // segment; a failed fork degrades to no L2 tier (reports stay
      // byte-identical — only warm hits are lost).
      ::close(fds[0]);
      std::shared_ptr<snapshot::SnapshotStore> worker_store;
      if (base_store != nullptr) {
        auto forked = base_store->ForkWorker(s);
        if (forked.ok()) worker_store = std::move(forked).value();
      }
      std::string message = RunWorker(schema, users, requirements,
                                      routed[static_cast<size_t>(s)],
                                      options, std::move(worker_store));
      WriteAll(fds[1], message);
      ::close(fds[1]);
      ::_exit(0);
    }
    ::close(fds[1]);
    workers[static_cast<size_t>(s)] = Worker{pid, fds[0]};
    if (obs != nullptr) obs->metrics.counter("shard.workers")->Increment();
  }

  ShardedBatchResult result;
  result.shard_stats.resize(static_cast<size_t>(shards));
  result.shard_requirements.resize(static_cast<size_t>(shards));
  std::vector<std::optional<AnalysisReport>> assembled(n);
  for (int s = 0; s < shards; ++s) {
    Worker& worker = workers[static_cast<size_t>(s)];
    const std::vector<size_t>& indices = routed[static_cast<size_t>(s)];
    result.shard_requirements[static_cast<size_t>(s)] = indices.size();
    std::string message;
    {
      obs::ScopedSpan wait_span(tracer,
                                common::StrCat("shard.wait.", s));
      message = ReadAll(worker.read_fd);
      ::close(worker.read_fd);
      int wstatus = 0;
      while (::waitpid(worker.pid, &wstatus, 0) < 0 && errno == EINTR) {
      }
    }

    ByteReader r(message);
    uint8_t ok = r.GetU8();
    if (!r.ok()) {
      // Crashed or wrote nothing: attribute the failure to the
      // shard's earliest requirement (determinism under crashes is
      // best-effort; correctness of the error path is not).
      NoteFailure(failure, indices.empty() ? n : indices.front(),
                  common::InternalError(
                      common::StrCat("shard ", s, " produced no output")));
      continue;
    }
    if (ok == 0) {
      size_t failing = r.GetU32();
      auto code = static_cast<common::StatusCode>(r.GetU8());
      std::string text = r.GetString();
      if (!r.ok()) {
        NoteFailure(failure, indices.empty() ? n : indices.front(),
                    common::InternalError(common::StrCat(
                        "shard ", s, " sent a malformed failure")));
      } else {
        NoteFailure(failure, failing, common::Status(code, std::move(text)));
      }
      continue;
    }
    uint32_t report_count = r.GetU32();
    bool malformed = false;
    for (uint32_t k = 0; k < report_count && r.ok(); ++k) {
      uint32_t gi = r.GetU32();
      AnalysisReport report;
      report.satisfied = r.GetU8() != 0;
      report.node_count = r.GetI32();
      report.fact_count = static_cast<size_t>(r.GetU64());
      uint32_t flaw_count = r.GetU32();
      for (uint32_t f = 0; f < flaw_count && r.ok(); ++f) {
        FlawSite flaw;
        flaw.site_id = r.GetI32();
        flaw.is_root_site = r.GetU8() != 0;
        flaw.description = r.GetString();
        uint32_t fact_count = r.GetU32();
        for (uint32_t p = 0; p < fact_count && r.ok(); ++p) {
          flaw.supporting_facts.push_back(r.GetI32());
        }
        flaw.derivation = r.GetString();
        report.flaws.push_back(std::move(flaw));
      }
      if (!r.ok() || gi >= n || assembled[gi].has_value()) {
        malformed = true;
        break;
      }
      // The worker checked requirements[gi] verbatim (fork copy), so
      // re-attaching it here reproduces CheckBatch's report bytes.
      report.requirement = requirements[gi];
      assembled[gi] = std::move(report);
    }
    ServiceStats stats = GetStats(r);
    if (malformed || !r.exhausted()) {
      NoteFailure(failure, indices.empty() ? n : indices.front(),
                  common::InternalError(common::StrCat(
                      "shard ", s, " sent a malformed report stream")));
      continue;
    }
    result.shard_stats[static_cast<size_t>(s)] = stats;
    result.merged_stats.closures_built += stats.closures_built;
    result.merged_stats.signature_hits += stats.signature_hits;
    result.merged_stats.requirement_hits += stats.requirement_hits;
    result.merged_stats.checks += stats.checks;
    result.merged_stats.warm_starts += stats.warm_starts;
    result.merged_stats.snapshot_hits += stats.snapshot_hits;
    if (obs != nullptr) {
      obs->metrics.counter("shard.reports")->Increment(report_count);
    }
  }

  // Every worker has exited; fold their side segments (packed stores
  // append privately per worker) back into the shared base segment.
  // Best-effort, like worker saves: a failed merge costs the next run
  // warm hits, never this run's reports.
  if (base_store != nullptr && options.save_snapshots) {
    common::Status merged = base_store->MergeWorkers();
    if (obs != nullptr) {
      obs->metrics.counter(merged.ok() ? "shard.merges" : "shard.merge_errors")
          ->Increment();
    }
  }

  if (failure.has_value()) {
    return std::move(failure->status);
  }
  result.reports.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!assembled[i].has_value()) {
      return common::InternalError(common::StrCat(
          "shard merge lost requirement ", i, " ('",
          requirements[i].user, "')"));
    }
    result.reports.push_back(std::move(*assembled[i]));
  }
  return result;
}

}  // namespace oodbsec::service
