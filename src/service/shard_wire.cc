#include "service/shard_wire.h"

#include <utility>

namespace oodbsec::service::wire {

void PutStats(snapshot::ByteWriter& w, const ServiceStats& stats) {
  w.PutU64(stats.closures_built);
  w.PutU64(stats.signature_hits);
  w.PutU64(stats.requirement_hits);
  w.PutU64(stats.checks);
  w.PutU64(stats.warm_starts);
  w.PutU64(stats.snapshot_hits);
}

ServiceStats GetStats(snapshot::ByteReader& r) {
  ServiceStats stats;
  stats.closures_built = static_cast<size_t>(r.GetU64());
  stats.signature_hits = static_cast<size_t>(r.GetU64());
  stats.requirement_hits = static_cast<size_t>(r.GetU64());
  stats.checks = static_cast<size_t>(r.GetU64());
  stats.warm_starts = static_cast<size_t>(r.GetU64());
  stats.snapshot_hits = static_cast<size_t>(r.GetU64());
  return stats;
}

void PutReport(snapshot::ByteWriter& w, uint32_t global_index,
               const core::AnalysisReport& report) {
  w.PutU32(global_index);
  w.PutU8(report.satisfied ? 1 : 0);
  w.PutI32(report.node_count);
  w.PutU64(report.fact_count);
  w.PutU32(static_cast<uint32_t>(report.flaws.size()));
  for (const core::FlawSite& flaw : report.flaws) {
    w.PutI32(flaw.site_id);
    w.PutU8(flaw.is_root_site ? 1 : 0);
    w.PutString(flaw.description);
    w.PutU32(static_cast<uint32_t>(flaw.supporting_facts.size()));
    for (core::FactId fact : flaw.supporting_facts) w.PutI32(fact);
    w.PutString(flaw.derivation);
  }
}

bool GetReport(snapshot::ByteReader& r, uint32_t* global_index,
               core::AnalysisReport* report) {
  *global_index = r.GetU32();
  core::AnalysisReport out;
  out.satisfied = r.GetU8() != 0;
  out.node_count = r.GetI32();
  out.fact_count = static_cast<size_t>(r.GetU64());
  uint32_t flaw_count = r.GetU32();
  for (uint32_t f = 0; f < flaw_count && r.ok(); ++f) {
    core::FlawSite flaw;
    flaw.site_id = r.GetI32();
    flaw.is_root_site = r.GetU8() != 0;
    flaw.description = r.GetString();
    uint32_t fact_count = r.GetU32();
    for (uint32_t p = 0; p < fact_count && r.ok(); ++p) {
      flaw.supporting_facts.push_back(r.GetI32());
    }
    flaw.derivation = r.GetString();
    out.flaws.push_back(std::move(flaw));
  }
  if (!r.ok()) return false;
  *report = std::move(out);
  return true;
}

}  // namespace oodbsec::service::wire
