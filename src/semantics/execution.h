// Execution instances (paper §3.3).
//
// An execution instance E = (D, f1(v…) = r1, …, fn(v…) = rn) is one run
// of a function sequence L against an initial database state D. The
// unfolded, numbered sequence (unfold::UnfoldedSet with duplicate roots
// allowed) is evaluated root by root — writes mutate the database, so
// later roots observe earlier effects — and the value [ᵏe]E of every
// numbered occurrence is recorded.
#ifndef OODBSEC_SEMANTICS_EXECUTION_H_
#define OODBSEC_SEMANTICS_EXECUTION_H_

#include <vector>

#include "common/result.h"
#include "store/database.h"
#include "types/value.h"
#include "unfold/unfolded.h"

namespace oodbsec::semantics {

struct ExecutionInstance {
  // values[id] = [ᵏe]E for occurrence id (1-based; index 0 unused).
  std::vector<types::Value> values;
  // One result per root, in order.
  std::vector<types::Value> root_results;
};

// Runs `sequence` against `db` (mutating it), with `root_args[i]` the
// argument values of root i. Fails on runtime errors (e.g. an attribute
// read on null).
common::Result<ExecutionInstance> Execute(
    const unfold::UnfoldedSet& sequence, store::Database& db,
    const std::vector<types::ValueSet>& root_args);

}  // namespace oodbsec::semantics

#endif  // OODBSEC_SEMANTICS_EXECUTION_H_
