// The semantic inference system I(E) (paper §3.3, Table 1).
//
// I(E) formalizes what a user can deduce from observing one execution:
// starting from singleton knowledge about constants, the arguments they
// supplied, and the results they observed, plus the extensional
// relations of the basic functions and the equalities of Table 1's
// axioms, the user closes under join and projection.
//
// Over finite domains, the deductive closure of Table 1 computes exactly
// the per-occurrence projections of the constraint system
//
//   variables    = equality classes of occurrences,
//   domains      = finite domains of their types,
//   constraints  = singletons (axiom 1) + one row-membership constraint
//                  per basic call (the graph of fb),
//
// so this implementation realizes I(E) as an exact CSP projection
// solver: InferredSet(e) is the set S in the strongest derivable
// [e ∈ S]. Class-typed occurrences draw from the database's extents;
// set-typed occurrences are out of scope (the oracle never queries
// them).
#ifndef OODBSEC_SEMANTICS_INFERENCE_H_
#define OODBSEC_SEMANTICS_INFERENCE_H_

#include <map>
#include <memory>
#include <vector>

#include "common/result.h"
#include "semantics/execution.h"
#include "types/domain.h"
#include "unfold/unfolded.h"

namespace oodbsec::semantics {

class SemanticInference {
 public:
  // `domains` must cover every type occurring in the sequence (basic
  // types and the class types of object-valued occurrences).
  static common::Result<std::unique_ptr<SemanticInference>> Build(
      const unfold::UnfoldedSet& sequence, const ExecutionInstance& execution,
      const types::DomainMap& domains);

  // The strongest derivable candidate set for occurrence `id`.
  const types::ValueSet& InferredSet(int id) const;

  // [e ∈ {v}]: the user pins the exact value.
  bool InfersTotal(int id) const;
  // [e ∈ S] with S a proper subset of the domain.
  bool InfersPartial(int id) const;

 private:
  SemanticInference() = default;

  struct Constraint {
    const exec::BasicFunction* fn;
    std::vector<int> vars;  // class indices: one per argument + result
  };

  int ClassOf(int id) const { return class_of_[static_cast<size_t>(id)]; }
  void Solve();
  void Enumerate(size_t index, std::vector<int>& choice,
                 const std::vector<int>& order);
  bool Consistent(const Constraint& constraint,
                  const std::vector<int>& partial,
                  const std::vector<int>& var_position) const;

  std::vector<int> class_of_;               // occurrence id -> class index
  std::vector<types::ValueSet> domains_;    // per class
  std::vector<types::ValueSet> candidates_; // per class, after singletons
  std::vector<Constraint> constraints_;
  std::vector<types::ValueSet> projections_;  // per class, the answer
};

}  // namespace oodbsec::semantics

#endif  // OODBSEC_SEMANTICS_INFERENCE_H_
