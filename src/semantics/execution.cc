#include "semantics/execution.h"

#include <map>

#include "common/strings.h"

namespace oodbsec::semantics {

using common::Result;
using types::Value;
using unfold::Node;
using unfold::NodeKind;

namespace {

class TreeEvaluator {
 public:
  TreeEvaluator(store::Database& db, ExecutionInstance& out)
      : db_(db), out_(out) {}

  std::map<int, Value>& env() { return env_; }

  Result<Value> Eval(const Node* node) {
    Value result;
    switch (node->kind) {
      case NodeKind::kConstant:
        result = node->constant;
        break;
      case NodeKind::kVarRef: {
        auto it = env_.find(node->binder_id);
        if (it == env_.end()) {
          return common::InternalError(
              common::StrCat("unbound binder for ", node->var_name));
        }
        result = it->second;
        break;
      }
      case NodeKind::kBasicCall: {
        types::ValueSet args;
        args.reserve(node->children.size());
        for (const Node* child : node->children) {
          OODBSEC_ASSIGN_OR_RETURN(Value v, Eval(child));
          args.push_back(std::move(v));
        }
        result = node->basic->Eval(args);
        break;
      }
      case NodeKind::kReadAttr: {
        OODBSEC_ASSIGN_OR_RETURN(Value object, Eval(node->object_child()));
        if (!object.is_object()) {
          return common::FailedPreconditionError(
              common::StrCat("read of r_", node->attribute, " on ",
                             object.ToString()));
        }
        OODBSEC_ASSIGN_OR_RETURN(
            result, db_.ReadAttribute(object.oid(), node->attribute));
        break;
      }
      case NodeKind::kWriteAttr: {
        OODBSEC_ASSIGN_OR_RETURN(Value object, Eval(node->object_child()));
        OODBSEC_ASSIGN_OR_RETURN(Value value, Eval(node->value_child()));
        if (!object.is_object()) {
          return common::FailedPreconditionError(
              common::StrCat("write of w_", node->attribute, " on ",
                             object.ToString()));
        }
        OODBSEC_RETURN_IF_ERROR(
            db_.WriteAttribute(object.oid(), node->attribute, value));
        result = Value::Null();
        break;
      }
      case NodeKind::kLet: {
        for (size_t i = 0; i + 1 < node->children.size(); ++i) {
          OODBSEC_ASSIGN_OR_RETURN(Value v, Eval(node->children[i]));
          env_[node->binder_ids[i]] = std::move(v);
        }
        OODBSEC_ASSIGN_OR_RETURN(result, Eval(node->body()));
        break;
      }
    }
    out_.values[static_cast<size_t>(node->id)] = result;
    return result;
  }

 private:
  store::Database& db_;
  ExecutionInstance& out_;
  std::map<int, Value> env_;
};

}  // namespace

Result<ExecutionInstance> Execute(const unfold::UnfoldedSet& sequence,
                                  store::Database& db,
                                  const std::vector<types::ValueSet>& root_args) {
  if (root_args.size() != sequence.roots().size()) {
    return common::InvalidArgumentError(common::StrCat(
        "expected arguments for ", sequence.roots().size(), " root(s), got ",
        root_args.size()));
  }
  ExecutionInstance instance;
  instance.values.assign(static_cast<size_t>(sequence.node_count()) + 1,
                         Value::Null());
  for (size_t i = 0; i < sequence.roots().size(); ++i) {
    const unfold::Root& root = sequence.roots()[i];
    if (root_args[i].size() != root.arg_binder_ids.size()) {
      return common::InvalidArgumentError(common::StrCat(
          "root ", i, " ('", root.function_name, "') expects ",
          root.arg_binder_ids.size(), " argument(s), got ",
          root_args[i].size()));
    }
    TreeEvaluator evaluator(db, instance);
    for (size_t a = 0; a < root.arg_binder_ids.size(); ++a) {
      evaluator.env()[root.arg_binder_ids[a]] = root_args[i][a];
      // Argument-variable occurrences record the supplied value even if
      // the body never evaluates them.
      for (const Node* occurrence :
           sequence.binder(root.arg_binder_ids[a]).occurrences) {
        instance.values[static_cast<size_t>(occurrence->id)] =
            root_args[i][a];
      }
    }
    OODBSEC_ASSIGN_OR_RETURN(Value result, evaluator.Eval(root.body));
    instance.root_results.push_back(std::move(result));
  }
  return instance;
}

}  // namespace oodbsec::semantics
