#include "semantics/inference.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "common/strings.h"

namespace oodbsec::semantics {

using common::Result;
using types::Value;
using types::ValueSet;
using unfold::Node;
using unfold::NodeKind;

namespace {

// Plain union-find over occurrence ids.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n + 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Merge(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<int> parent_;
};

ValueSet Intersect(const ValueSet& a, const ValueSet& b) {
  std::set<Value> in_b(b.begin(), b.end());
  ValueSet out;
  for (const Value& v : a) {
    if (in_b.count(v) > 0) out.push_back(v);
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<SemanticInference>> SemanticInference::Build(
    const unfold::UnfoldedSet& sequence, const ExecutionInstance& execution,
    const types::DomainMap& domains) {
  std::unique_ptr<SemanticInference> inference(new SemanticInference());
  int n = sequence.node_count();

  // --- Table 1 equality axioms -> union-find classes ---
  UnionFind uf(n);
  for (const unfold::Binder& binder : sequence.binders()) {
    for (size_t i = 1; i < binder.occurrences.size(); ++i) {
      uf.Merge(binder.occurrences[0]->id, binder.occurrences[i]->id);
    }
    if (binder.bound_expr != nullptr && !binder.occurrences.empty()) {
      uf.Merge(binder.occurrences[0]->id, binder.bound_expr->id);
    }
  }
  for (int i = 1; i <= n; ++i) {
    const Node* node = sequence.node(i);
    if (node->is_let()) uf.Merge(node->body()->id, node->id);
  }
  // Axiom 2's user-knowledge case: the user knows the arguments they
  // supplied, so root-argument occurrences carrying equal values are
  // recognizably equal (the paper's "passed values through the same
  // from-clause variable" covers the object-typed case).
  {
    std::vector<const Node*> root_arg_occurrences;
    for (const unfold::Binder& binder : sequence.binders()) {
      if (!binder.is_root_arg || binder.occurrences.empty()) continue;
      root_arg_occurrences.push_back(binder.occurrences[0]);
    }
    for (size_t i = 0; i < root_arg_occurrences.size(); ++i) {
      for (size_t j = i + 1; j < root_arg_occurrences.size(); ++j) {
        int a = root_arg_occurrences[i]->id;
        int b = root_arg_occurrences[j]->id;
        if (root_arg_occurrences[i]->type == root_arg_occurrences[j]->type &&
            execution.values[static_cast<size_t>(a)] ==
                execution.values[static_cast<size_t>(b)]) {
          uf.Merge(a, b);
        }
      }
    }
  }

  // Rule 4 (reads/writes) with Table 1's ordering conditions, iterated
  // because object equality may itself be derived: two reads of an
  // attribute on an equal object are equal when no write to that
  // attribute lies between them (in evaluation order); a written value
  // equals later reads up to the next write. Intervening writes are
  // blocked conservatively regardless of their target object — the
  // conservative direction under-approximates user inference, which is
  // the safe direction for the soundness experiment.
  auto write_between = [&sequence](const std::string& attribute, int lo,
                                   int hi) {
    for (const Node* write : sequence.writes(attribute)) {
      if (write->id > lo && write->id < hi) return true;
    }
    return false;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::string& attribute : sequence.touched_attributes()) {
      const auto& reads = sequence.reads(attribute);
      const auto& writes = sequence.writes(attribute);
      for (size_t i = 0; i < reads.size(); ++i) {
        for (size_t j = 0; j < reads.size(); ++j) {
          int lo = reads[i]->id;
          int hi = reads[j]->id;
          if (lo >= hi) continue;
          if (uf.Find(reads[i]->object_child()->id) ==
                  uf.Find(reads[j]->object_child()->id) &&
              !write_between(attribute, lo, hi)) {
            changed |= uf.Merge(reads[i]->id, reads[j]->id);
          }
        }
      }
      for (const Node* write : writes) {
        for (const Node* read : reads) {
          if (write->id < read->id &&
              uf.Find(write->object_child()->id) ==
                  uf.Find(read->object_child()->id) &&
              !write_between(attribute, write->id, read->id)) {
            changed |= uf.Merge(write->value_child()->id, read->id);
          }
        }
      }
    }
  }

  // Class indexing.
  inference->class_of_.assign(static_cast<size_t>(n) + 1, -1);
  std::map<int, int> class_index;
  for (int i = 1; i <= n; ++i) {
    int rep = uf.Find(i);
    auto [it, inserted] =
        class_index.emplace(rep, static_cast<int>(class_index.size()));
    inference->class_of_[static_cast<size_t>(i)] = it->second;
  }
  size_t class_count = class_index.size();
  inference->domains_.resize(class_count);
  inference->candidates_.resize(class_count);

  // Domains per class (null-typed classes use the singleton {null}).
  for (int i = 1; i <= n; ++i) {
    int cls = inference->ClassOf(i);
    if (!inference->domains_[static_cast<size_t>(cls)].empty()) continue;
    const types::Type* type = sequence.node(i)->type;
    if (type->kind() == types::TypeKind::kNull) {
      inference->domains_[static_cast<size_t>(cls)] = {Value::Null()};
      continue;
    }
    const types::Domain* domain = domains.Find(type);
    if (domain == nullptr) {
      return common::NotFoundError(common::StrCat(
          "no domain for type ", type->ToString(), " (occurrence ",
          sequence.ShortLabel(i), ")"));
    }
    inference->domains_[static_cast<size_t>(cls)] = domain->values();
  }
  inference->candidates_ = inference->domains_;

  // --- Axiom 1 singletons ---
  auto restrict_to = [&](int id, const Value& v) {
    ValueSet& cand =
        inference->candidates_[static_cast<size_t>(inference->ClassOf(id))];
    cand = Intersect(cand, {v});
  };
  for (int i = 1; i <= n; ++i) {
    const Node* node = sequence.node(i);
    if (node->kind == NodeKind::kConstant) {
      restrict_to(i, node->constant);
    }
  }
  for (const unfold::Binder& binder : sequence.binders()) {
    if (!binder.is_root_arg) continue;
    for (const Node* occurrence : binder.occurrences) {
      restrict_to(occurrence->id,
                  execution.values[static_cast<size_t>(occurrence->id)]);
    }
  }
  for (const unfold::Root& root : sequence.roots()) {
    restrict_to(root.body->id,
                execution.values[static_cast<size_t>(root.body->id)]);
  }

  // --- Basic-call constraints (axiom 1's function relations) ---
  for (int i = 1; i <= n; ++i) {
    const Node* node = sequence.node(i);
    if (node->kind != NodeKind::kBasicCall) continue;
    Constraint constraint;
    constraint.fn = node->basic;
    for (const Node* child : node->children) {
      constraint.vars.push_back(inference->ClassOf(child->id));
    }
    constraint.vars.push_back(inference->ClassOf(node->id));
    inference->constraints_.push_back(std::move(constraint));
  }

  inference->Solve();
  return inference;
}

void SemanticInference::Solve() {
  projections_.assign(candidates_.size(), {});

  // Variables that participate in no constraint keep their candidate
  // sets as projections; only constrained variables are enumerated.
  std::vector<bool> constrained(candidates_.size(), false);
  for (const Constraint& constraint : constraints_) {
    for (int var : constraint.vars) {
      constrained[static_cast<size_t>(var)] = true;
    }
  }
  std::vector<int> order;
  for (size_t i = 0; i < candidates_.size(); ++i) {
    if (constrained[i]) {
      order.push_back(static_cast<int>(i));
    } else {
      projections_[i] = candidates_[i];
    }
  }
  // Most-constrained-first ordering keeps the search small.
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return candidates_[static_cast<size_t>(a)].size() <
           candidates_[static_cast<size_t>(b)].size();
  });

  std::vector<int> choice(candidates_.size(), -1);
  Enumerate(0, choice, order);
}

bool SemanticInference::Consistent(const Constraint& constraint,
                                   const std::vector<int>& choice,
                                   const std::vector<int>&) const {
  types::ValueSet args;
  args.reserve(constraint.vars.size() - 1);
  for (size_t i = 0; i + 1 < constraint.vars.size(); ++i) {
    int var = constraint.vars[i];
    int pick = choice[static_cast<size_t>(var)];
    if (pick < 0) return true;  // not yet assigned
    args.push_back(candidates_[static_cast<size_t>(var)]
                              [static_cast<size_t>(pick)]);
  }
  int result_var = constraint.vars.back();
  int result_pick = choice[static_cast<size_t>(result_var)];
  if (result_pick < 0) return true;
  return constraint.fn->Eval(args) ==
         candidates_[static_cast<size_t>(result_var)]
                    [static_cast<size_t>(result_pick)];
}

void SemanticInference::Enumerate(size_t index, std::vector<int>& choice,
                                  const std::vector<int>& order) {
  if (index == order.size()) {
    for (int var : order) {
      ValueSet& projection = projections_[static_cast<size_t>(var)];
      const Value& v = candidates_[static_cast<size_t>(var)]
                                  [static_cast<size_t>(
                                      choice[static_cast<size_t>(var)])];
      if (std::find(projection.begin(), projection.end(), v) ==
          projection.end()) {
        projection.push_back(v);
      }
    }
    return;
  }
  int var = order[index];
  const ValueSet& cand = candidates_[static_cast<size_t>(var)];
  for (size_t pick = 0; pick < cand.size(); ++pick) {
    choice[static_cast<size_t>(var)] = static_cast<int>(pick);
    bool ok = true;
    for (const Constraint& constraint : constraints_) {
      bool involves = false;
      bool complete = true;
      for (int v : constraint.vars) {
        if (v == var) involves = true;
        if (choice[static_cast<size_t>(v)] < 0) complete = false;
      }
      if (involves && complete && !Consistent(constraint, choice, order)) {
        ok = false;
        break;
      }
    }
    if (ok) Enumerate(index + 1, choice, order);
  }
  choice[static_cast<size_t>(var)] = -1;
}

const ValueSet& SemanticInference::InferredSet(int id) const {
  return projections_[static_cast<size_t>(ClassOf(id))];
}

bool SemanticInference::InfersTotal(int id) const {
  return InferredSet(id).size() == 1;
}

bool SemanticInference::InfersPartial(int id) const {
  size_t cls = static_cast<size_t>(ClassOf(id));
  return !projections_[cls].empty() &&
         projections_[cls].size() < domains_[cls].size();
}

}  // namespace oodbsec::semantics
