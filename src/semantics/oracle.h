// The small-scope brute-force oracle for the paper's semantic
// definitions (Definitions 2–5, §3.3).
//
// Can(D, L, c, ᵏe) quantifies over all function sequences L available to
// the user and all executions; that is undecidable in general, so the
// oracle decides it *within a bound*: sequences over the capability list
// up to a maximum length, argument values from finite domains, database
// states from a supplied candidate list. Any capability the oracle
// confirms is genuinely achievable (every witness is real); the oracle
// may miss capabilities that need longer sequences or larger domains.
//
// This directional guarantee is what the soundness experiment (S1)
// needs: whenever the oracle says "achievable", the static analyzer
// F(F) must have derived the corresponding term (paper Theorem 1).
//
//   * ta / pa (Definitions 2–3): enumerate executions, collect the
//     values the target occurrence reaches; total = the whole domain,
//     partial = at least two values.
//   * ti / pi (Definitions 4–5): for some execution, I(E) (the exact
//     projection solver in inference.h) pins the target to a singleton /
//     a proper subset.
//
// Targets are named portably across sequences as (function, local
// occurrence id), where local ids number the occurrences of one
// function's own unfolding starting at 1.
#ifndef OODBSEC_SEMANTICS_ORACLE_H_
#define OODBSEC_SEMANTICS_ORACLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/capability.h"
#include "schema/schema.h"
#include "semantics/inference.h"
#include "store/database.h"
#include "types/domain.h"

namespace oodbsec::semantics {

struct OracleOptions {
  // Maximum function-sequence length (paper sequences are unbounded).
  int max_sequence_length = 2;
  // Domains used (a) to enumerate the argument values the user injects
  // and (b) as the coverage reference for total alterability. When
  // unset, the inference domains are used for both. Separating them
  // keeps the execution enumeration small while the inference domains
  // stay closed under the workload's arithmetic (an inference domain
  // that cannot hold a reachable value would make I(E) over-infer).
  std::optional<types::DomainMap> argument_domains;
  // The paper's §3.3 definitional variant: "Another considerable way of
  // the definitions is to use ∀D instead of ∃D". When true, a
  // capability counts as achievable only if some sequence achieves it
  // from EVERY candidate initial database (the user need not get lucky
  // with the state); the default existential reading accepts a single
  // witnessing state.
  bool universal_database = false;
};

// A subexpression occurrence identified relative to one function's own
// unfolding (root at local ids 1..k).
struct Target {
  std::string function;
  int local_id = 0;
};

class Oracle {
 public:
  // `capability_list` are the functions the user may invoke;
  // `initial_databases` the candidate initial states (Definition 1
  // quantifies the state existentially); `base_domains` must cover the
  // basic types (class-type domains are derived from each database's
  // extents).
  Oracle(const schema::Schema& schema,
         std::vector<std::string> capability_list,
         std::vector<store::Database> initial_databases,
         types::DomainMap base_domains, OracleOptions options = {});

  // Decides Can(·) within the bound.
  common::Result<bool> Can(core::Capability capability,
                           const Target& target) const;

  // Maps occurrence `id` of a single-function unfolding (or any
  // unfolded set) to a portable target.
  static Target TargetFor(const unfold::UnfoldedSet& set, int id);

 private:
  // Enumerates sequences (with repetition) over the capability list that
  // contain target.function, invoking `body` with each unfolded set and
  // the target's occurrence ids in it. Stops early when `body` returns
  // true.
  bool ForEachSequence(
      const Target& target,
      const std::function<bool(const unfold::UnfoldedSet&,
                               const std::vector<int>&)>& body) const;

  types::DomainMap DomainsFor(const store::Database& db) const;

  const schema::Schema& schema_;
  std::vector<std::string> capability_list_;
  std::vector<store::Database> initial_databases_;
  types::DomainMap base_domains_;
  OracleOptions options_;
};

}  // namespace oodbsec::semantics

#endif  // OODBSEC_SEMANTICS_ORACLE_H_
