#include "semantics/oracle.h"

#include <functional>
#include <set>

#include "common/strings.h"
#include "semantics/execution.h"

namespace oodbsec::semantics {

using common::Result;
using types::Value;
using types::ValueSet;

Oracle::Oracle(const schema::Schema& schema,
               std::vector<std::string> capability_list,
               std::vector<store::Database> initial_databases,
               types::DomainMap base_domains, OracleOptions options)
    : schema_(schema),
      capability_list_(std::move(capability_list)),
      initial_databases_(std::move(initial_databases)),
      base_domains_(std::move(base_domains)),
      options_(options) {}

Target Oracle::TargetFor(const unfold::UnfoldedSet& set, int id) {
  Target target;
  int base = 0;
  for (const unfold::Root& root : set.roots()) {
    int end = root.body->id;
    if (id > base && id <= end) {
      target.function = root.function_name;
      target.local_id = id - base;
      return target;
    }
    base = end;
  }
  return target;
}

types::DomainMap Oracle::DomainsFor(const store::Database& db) const {
  types::DomainMap domains = base_domains_;
  const types::TypePool& pool = schema_.pool();
  domains.Set(pool.Null(), types::Domain::NullOnly(pool.Null()));
  for (const auto& cls : schema_.classes()) {
    domains.Set(cls->type(),
                types::Domain::Objects(cls->type(), db.Extent(cls->name())));
  }
  return domains;
}

bool Oracle::ForEachSequence(
    const Target& target,
    const std::function<bool(const unfold::UnfoldedSet&,
                             const std::vector<int>&)>& body) const {
  for (int length = 1; length <= options_.max_sequence_length; ++length) {
    std::vector<size_t> picks(static_cast<size_t>(length), 0);
    while (true) {
      std::vector<std::string> names;
      bool contains_target = false;
      for (size_t pick : picks) {
        names.push_back(capability_list_[pick]);
        if (names.back() == target.function) contains_target = true;
      }
      if (contains_target) {
        auto set = unfold::UnfoldedSet::Build(schema_, names);
        if (set.ok()) {
          std::vector<int> target_ids;
          int base = 0;
          for (const unfold::Root& root : set.value()->roots()) {
            int end = root.body->id;
            if (root.function_name == target.function &&
                base + target.local_id <= end) {
              target_ids.push_back(base + target.local_id);
            }
            base = end;
          }
          if (!target_ids.empty() && body(*set.value(), target_ids)) {
            return true;
          }
        }
      }
      // Next tuple.
      size_t i = 0;
      while (i < picks.size() && ++picks[i] == capability_list_.size()) {
        picks[i] = 0;
        ++i;
      }
      if (i == picks.size()) break;
    }
  }
  return false;
}

Result<bool> Oracle::Can(core::Capability capability,
                         const Target& target) const {
  if (target.function.empty() || target.local_id <= 0) {
    return common::InvalidArgumentError("bad oracle target");
  }
  bool is_alterability = core::IsAlterability(capability);
  bool total = capability == core::Capability::kTotalAlterability ||
               capability == core::Capability::kTotalInferability;

  // Decides the capability for one (sequence, initial database) pair.
  auto achievable_from = [&](const unfold::UnfoldedSet& set,
                             const std::vector<int>& target_ids,
                             const store::Database& initial) {
    {
      types::DomainMap domains = DomainsFor(initial);
      // Injection domains: what the user can pass as arguments, and the
      // coverage reference for total alterability.
      types::DomainMap injection = domains;
      if (options_.argument_domains.has_value()) {
        injection = *options_.argument_domains;
        const types::TypePool& pool = schema_.pool();
        injection.Set(pool.Null(), types::Domain::NullOnly(pool.Null()));
        for (const auto& cls : schema_.classes()) {
          injection.Set(cls->type(),
                        types::Domain::Objects(cls->type(),
                                               initial.Extent(cls->name())));
        }
      }

      // Argument domains, flattened across roots.
      std::vector<const types::Domain*> arg_domains;
      std::vector<size_t> args_per_root;
      bool missing_domain = false;
      for (const unfold::Root& root : set.roots()) {
        args_per_root.push_back(root.callable.param_types.size());
        for (const types::Type* type : root.callable.param_types) {
          const types::Domain* domain = injection.Find(type);
          if (domain == nullptr) missing_domain = true;
          arg_domains.push_back(domain);
        }
      }
      if (missing_domain) return false;

      // Reached values per target id (for ta/pa).
      std::map<int, std::set<Value>> reached;

      for (types::ProductIterator it(arg_domains); it.has_value();
           it.Next()) {
        // Slice the flat assignment back into per-root argument lists.
        std::vector<ValueSet> root_args;
        size_t cursor = 0;
        for (size_t count : args_per_root) {
          root_args.emplace_back(it.assignment().begin() + cursor,
                                 it.assignment().begin() + cursor + count);
          cursor += count;
        }
        store::Database db = initial.Clone();
        auto execution = Execute(set, db, root_args);
        if (!execution.ok()) continue;  // invalid execution (e.g. null read)

        if (is_alterability) {
          for (int id : target_ids) {
            reached[id].insert(
                execution->values[static_cast<size_t>(id)]);
          }
        } else {
          auto inference =
              SemanticInference::Build(set, *execution, domains);
          if (!inference.ok()) continue;
          for (int id : target_ids) {
            if (total ? inference.value()->InfersTotal(id)
                      : inference.value()->InfersPartial(id)) {
              return true;
            }
          }
        }
      }

      if (is_alterability) {
        for (int id : target_ids) {
          const types::Domain* domain = injection.Find(set.node(id)->type);
          size_t domain_size =
              domain != nullptr
                  ? domain->size()
                  : (set.node(id)->type->kind() == types::TypeKind::kNull
                         ? 1
                         : 0);
          if (total) {
            if (domain_size > 0 && reached[id].size() == domain_size) {
              return true;
            }
          } else if (reached[id].size() >= 2) {
            return true;
          }
        }
      }
    }
    return false;
  };

  bool achieved = ForEachSequence(target, [&](const unfold::UnfoldedSet& set,
                                              const std::vector<int>&
                                                  target_ids) {
    if (options_.universal_database) {
      // ∀D: this sequence must succeed from every candidate state.
      for (const store::Database& initial : initial_databases_) {
        if (!achievable_from(set, target_ids, initial)) return false;
      }
      return !initial_databases_.empty();
    }
    // ∃D: one witnessing state suffices.
    for (const store::Database& initial : initial_databases_) {
      if (achievable_from(set, target_ids, initial)) return true;
    }
    return false;
  });
  return achieved;
}

}  // namespace oodbsec::semantics
