// SnapshotStore: the persistence API behind the L2 closure-cache tier.
//
// Before this interface every layer (SessionOptions, ServiceOptions,
// ShardOptions, ClosureCache) plumbed a raw `snapshot_dir` string and
// the cache composed file paths inline. The store abstracts the four
// operations the cache actually needs — probe by capability signature,
// persist an entry, sweep stale generations, report stats — so the
// same call sites drive either backend:
//
//   * DirectoryStore — one versioned, checksummed file per capability
//     signature (the PR-4 layout, src/snapshot/snapshot.h). Kept for
//     migration and debugging: files are individually inspectable and
//     trivially rsync-able.
//   * PackedStore — a single packed segment with an on-disk index,
//     an LRU page cache, and mmap in-place replay
//     (src/snapshot/packed_store.h). The production default.
//
// A store is shared: one object serves the session's recheck cache,
// the service's closure cache, and every sharded worker (ForkWorker /
// MergeWorkers give multi-process stores a fork-safe protocol).
// Thread-safety: Find/Save/Sweep/Stats may be called from any thread;
// implementations synchronize internally. ForkWorker/MergeWorkers
// follow the sharded-audit fork discipline (see shard.h): ForkWorker
// is called in the freshly forked child, MergeWorkers in the
// coordinator after every worker exited.
#ifndef OODBSEC_SNAPSHOT_SNAPSHOT_STORE_H_
#define OODBSEC_SNAPSHOT_SNAPSHOT_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/closure_cache.h"
#include "obs/obs.h"
#include "schema/schema.h"

namespace oodbsec::snapshot {

// Value snapshot of a store's state and lifetime counters. Byte sizes
// are as-on-disk; the stale split is relative to the schema
// fingerprint the store last observed in a Save/Find/Sweep (stores are
// generation-stamped by fingerprint, not by wall clock).
struct StoreStats {
  std::string description;  // e.g. "packed:/var/oodb/cache.pack"
  uint64_t entries = 0;     // live records
  uint64_t file_bytes = 0;  // total on-disk footprint
  uint64_t live_bytes = 0;  // record bytes in the observed generation
  uint64_t stale_bytes = 0; // record bytes a Sweep would reclaim
  // Lifetime operation counters (this store object, not the file).
  uint64_t finds = 0;
  uint64_t saves = 0;
  uint64_t sweeps = 0;
  // Page-cache accounting; all zero for stores without one.
  uint64_t page_cache_hits = 0;
  uint64_t page_cache_misses = 0;
  uint64_t page_cache_evictions = 0;
};

// What one retention sweep did.
struct StoreSweepStats {
  uint64_t records_kept = 0;
  uint64_t records_swept = 0;
  uint64_t bytes_reclaimed = 0;  // on-disk footprint shrink
};

class SnapshotStore {
 public:
  virtual ~SnapshotStore() = default;

  // Probes the store for a closure over `roots` built under
  // (schema, options). Returns the replayed, digest-verified entry;
  // kNotFound when no record exists for the signature (an L2 miss);
  // kFailedPrecondition when a record exists but failed validation
  // (stale fingerprint, checksum, structural or digest mismatch — the
  // message says which). Never crashes on hostile bytes.
  virtual common::Result<std::shared_ptr<const core::CachedAnalysis>> Find(
      const schema::Schema& schema, const core::ClosureOptions& options,
      const std::vector<std::string>& roots,
      obs::Observability* obs = nullptr) = 0;

  // Persists `entry` (built under (schema, options)) durably and
  // atomically; concurrent savers of the same signature race benignly.
  virtual common::Status Save(const schema::Schema& schema,
                              const core::ClosureOptions& options,
                              const core::CachedAnalysis& entry) = 0;

  // Retention sweep: drops every record whose schema fingerprint
  // differs from `live_fingerprint` (see SchemaFingerprint) and
  // reclaims its bytes. Packed stores compact online: live records are
  // rewritten into a fresh segment swapped in atomically.
  virtual common::Result<StoreSweepStats> Sweep(uint64_t live_fingerprint) = 0;

  virtual StoreStats Stats() const = 0;

  // Bulk warm start: loads up to `limit` valid entries, in a
  // deterministic order, replaying each. Records that fail validation
  // are skipped and counted into *invalid (when non-null).
  virtual std::vector<std::shared_ptr<const core::CachedAnalysis>> LoadAll(
      const schema::Schema& schema, const core::ClosureOptions& options,
      size_t limit, size_t* invalid = nullptr,
      obs::Observability* obs = nullptr) = 0;

  // Multi-process protocol for the sharded audit. ForkWorker is called
  // in a freshly forked worker and returns the store that worker should
  // use: reads see everything the parent store held at fork time,
  // writes go to a private side location that never races siblings.
  // MergeWorkers is called by the coordinator after all workers exited
  // and folds their side writes back into this store.
  virtual common::Result<std::shared_ptr<SnapshotStore>> ForkWorker(
      int worker_id) = 0;
  virtual common::Status MergeWorkers() { return common::Status::Ok(); }
};

// A store over the one-file-per-signature directory layout. Never
// fails to open: the directory is created on first Save, and a missing
// directory reads as empty.
std::shared_ptr<SnapshotStore> OpenDirectoryStore(std::string dir);

// The migration shim behind the deprecated `snapshot_dir` options
// fields: `store` when set, else a DirectoryStore over `deprecated_dir`
// when non-empty, else nullptr (persistence disabled).
std::shared_ptr<SnapshotStore> ResolveStore(
    std::shared_ptr<SnapshotStore> store, const std::string& deprecated_dir);

}  // namespace oodbsec::snapshot

#endif  // OODBSEC_SNAPSHOT_SNAPSHOT_STORE_H_
