#include "snapshot/snapshot_store.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <utility>

#include "common/strings.h"
#include "snapshot/binio.h"
#include "snapshot/snapshot.h"

namespace oodbsec::snapshot {

namespace {

// Parses the fixed 32-byte header of one snapshot file. Returns false
// when the file is unreadable or not a snapshot; a foreign-endian
// header is decoded (the store must recognize its own records whatever
// machine wrote them).
bool ReadSnapshotHeader(const std::string& path, uint64_t* fingerprint_out,
                        uint64_t* size_out) {
  std::ifstream in(path, std::ios::binary);
  char buf[32];
  if (!in.read(buf, sizeof buf)) return false;
  std::string_view head(buf, sizeof buf);
  if (head.substr(0, kMagic.size()) != kMagic) return false;
  ByteReader reader(head.substr(kMagic.size()));
  uint32_t version = reader.GetU32();
  uint32_t marker = reader.GetU32();
  bool foreign = marker == Bswap32(kByteOrderMark);
  if (!foreign && marker != kByteOrderMark) return false;
  reader.set_byte_swap(foreign);
  if (foreign) version = Bswap32(version);
  if (version != kFormatVersion) return false;
  *fingerprint_out = reader.GetU64();
  std::error_code ec;
  *size_out = std::filesystem::file_size(path, ec);
  if (ec) *size_out = 0;
  return reader.ok();
}

// The PR-4 one-file-per-signature layout behind the store interface.
// Every operation maps onto the free functions in snapshot.h; the store
// adds the sweep, the stats scan, and the operation counters.
class DirectoryStore final : public SnapshotStore {
 public:
  explicit DirectoryStore(std::string dir) : dir_(std::move(dir)) {}

  common::Result<std::shared_ptr<const core::CachedAnalysis>> Find(
      const schema::Schema& schema, const core::ClosureOptions& options,
      const std::vector<std::string>& roots, obs::Observability* obs) override {
    Observe(schema, options, &finds_);
    std::string path =
        common::StrCat(dir_, "/", SnapshotFileName(options, roots));
    auto loaded = LoadSnapshot(schema, options, path, obs);
    if (!loaded.ok()) return loaded;
    // File names hash (options, roots); on the vanishingly unlikely
    // collision the stored root list differs — report a miss.
    if (loaded.value()->roots != roots) {
      return common::NotFoundError(
          common::StrCat("snapshot ", path, ": signature collision"));
    }
    return loaded;
  }

  common::Status Save(const schema::Schema& schema,
                      const core::ClosureOptions& options,
                      const core::CachedAnalysis& entry) override {
    Observe(schema, options, &saves_);
    std::string path =
        common::StrCat(dir_, "/", SnapshotFileName(options, entry.roots));
    return SaveSnapshot(schema, options, entry, path);
  }

  common::Result<StoreSweepStats> Sweep(uint64_t live_fingerprint) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++sweeps_;
      last_fingerprint_ = live_fingerprint;
      has_fingerprint_ = true;
    }
    StoreSweepStats swept;
    for (const std::string& path : ListSnapshots()) {
      uint64_t fingerprint = 0;
      uint64_t size = 0;
      // A file whose header no longer parses can never load — sweep it
      // along with the stale generations.
      if (ReadSnapshotHeader(path, &fingerprint, &size) &&
          fingerprint == live_fingerprint) {
        ++swept.records_kept;
        continue;
      }
      std::error_code ec;
      if (std::filesystem::remove(path, ec) && !ec) {
        ++swept.records_swept;
        swept.bytes_reclaimed += size;
      }
    }
    return swept;
  }

  StoreStats Stats() const override {
    StoreStats stats;
    stats.description = common::StrCat("directory:", dir_);
    uint64_t last_fingerprint;
    bool has_fingerprint;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats.finds = finds_;
      stats.saves = saves_;
      stats.sweeps = sweeps_;
      last_fingerprint = last_fingerprint_;
      has_fingerprint = has_fingerprint_;
    }
    for (const std::string& path : ListSnapshots()) {
      uint64_t fingerprint = 0;
      uint64_t size = 0;
      bool parsed = ReadSnapshotHeader(path, &fingerprint, &size);
      ++stats.entries;
      stats.file_bytes += size;
      if (parsed && (!has_fingerprint || fingerprint == last_fingerprint)) {
        stats.live_bytes += size;
      } else {
        stats.stale_bytes += size;
      }
    }
    return stats;
  }

  std::vector<std::shared_ptr<const core::CachedAnalysis>> LoadAll(
      const schema::Schema& schema, const core::ClosureOptions& options,
      size_t limit, size_t* invalid, obs::Observability* obs) override {
    Observe(schema, options, nullptr);
    std::vector<std::shared_ptr<const core::CachedAnalysis>> entries;
    for (const std::string& path : ListSnapshots()) {
      if (entries.size() >= limit) break;
      auto entry = LoadSnapshot(schema, options, path, obs);
      if (!entry.ok()) {
        if (invalid != nullptr) ++*invalid;
        continue;
      }
      entries.push_back(std::move(entry).value());
    }
    return entries;
  }

  common::Result<std::shared_ptr<SnapshotStore>> ForkWorker(
      int /*worker_id*/) override {
    // Directory writes are already fork-safe — each file lands via its
    // own tmp+rename, and racing savers of one signature write
    // identical bytes — so a worker gets a fresh store over the same
    // directory (fresh counters, no shared mutex across the fork).
    return std::shared_ptr<SnapshotStore>(new DirectoryStore(dir_));
  }

 private:
  // Snapshot files sorted by path: directory iteration order is
  // unspecified, and LoadAll's population order must be deterministic.
  std::vector<std::string> ListSnapshots() const {
    std::error_code ec;
    std::vector<std::string> paths;
    for (const auto& dirent : std::filesystem::directory_iterator(dir_, ec)) {
      if (dirent.path().extension() == ".snap") {
        paths.push_back(dirent.path().string());
      }
    }
    std::sort(paths.begin(), paths.end());
    return paths;
  }

  // Stamps the generation the store last served and bumps `counter`
  // (when given) under the lock.
  void Observe(const schema::Schema& schema,
               const core::ClosureOptions& options, uint64_t* counter) {
    uint64_t fingerprint = SchemaFingerprint(schema, options);
    std::lock_guard<std::mutex> lock(mu_);
    if (counter != nullptr) ++*counter;
    last_fingerprint_ = fingerprint;
    has_fingerprint_ = true;
  }

  const std::string dir_;
  mutable std::mutex mu_;
  uint64_t finds_ = 0;
  uint64_t saves_ = 0;
  uint64_t sweeps_ = 0;
  // The generation the stats scan splits live/stale against: the
  // fingerprint of the last (schema, options) this store served.
  uint64_t last_fingerprint_ = 0;
  bool has_fingerprint_ = false;
};

}  // namespace

std::shared_ptr<SnapshotStore> OpenDirectoryStore(std::string dir) {
  return std::make_shared<DirectoryStore>(std::move(dir));
}

std::shared_ptr<SnapshotStore> ResolveStore(
    std::shared_ptr<SnapshotStore> store, const std::string& deprecated_dir) {
  if (store != nullptr) return store;
  if (!deprecated_dir.empty()) return OpenDirectoryStore(deprecated_dir);
  return nullptr;
}

}  // namespace oodbsec::snapshot
