#include "snapshot/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <unistd.h>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/strings.h"
#include "lang/printer.h"
#include "obs/trace.h"
#include "snapshot/binio.h"
#include "unfold/unfolded.h"

namespace oodbsec::snapshot {

namespace {

// Fixed header: magic, format version, byte-order marker, schema
// fingerprint, payload checksum. Everything after byte kHeaderSize is
// the checksummed payload.
constexpr size_t kHeaderSize =
    8 + 2 * sizeof(uint32_t) + 2 * sizeof(uint64_t);

std::string OptionBits(const core::ClosureOptions& o) {
  std::string bits;
  bits.push_back(o.same_type_argument_equality ? '1' : '0');
  bits.push_back(o.pi_join_to_ti ? '1' : '0');
  bits.push_back(o.basic_function_rules ? '1' : '0');
  bits.push_back(o.write_read_equality ? '1' : '0');
  bits.push_back(o.read_object_total_alterability ? '1' : '0');
  return bits;
}

common::Status Invalid(std::string_view path, std::string_view what) {
  return common::FailedPreconditionError(
      common::StrCat("snapshot ", path, ": ", what));
}

}  // namespace

std::string_view InternRuleLabel(std::string_view label) {
  static std::mutex mu;
  // Leaked deliberately: interned labels back string_views inside
  // closures that may outlive any scope we could tie the pool to.
  // unordered_set gives stable element references across rehash.
  static auto* pool = new std::unordered_set<std::string>();
  std::lock_guard<std::mutex> lock(mu);
  return *pool->emplace(label).first;
}

uint64_t SchemaFingerprint(const schema::Schema& schema,
                           const core::ClosureOptions& options) {
  uint64_t hash = Fnv1a64("oodbsec-snapshot-schema");
  // Every field is hashed with a separator so concatenations can't
  // collide ("ab"+"c" vs "a"+"bc").
  auto mix = [&hash](std::string_view piece) {
    hash = Fnv1a64(piece, hash);
    hash = Fnv1a64(std::string_view("\x1f", 1), hash);
  };
  for (const auto& cls : schema.classes()) {
    mix("class");
    mix(cls->name());
    for (const schema::AttributeDef& attr : cls->attributes()) {
      mix(attr.name);
      mix(attr.type->ToString());
    }
  }
  for (const auto& fn : schema.functions()) {
    mix("function");
    mix(fn->SignatureToString());
    mix(lang::PrintExpr(fn->body()));
  }
  for (const schema::FunctionDecl* constraint : schema.constraints()) {
    mix("constraint");
    mix(constraint->name());
  }
  mix("options");
  mix(OptionBits(options));
  return hash;
}

uint64_t SnapshotKeyHash(const core::ClosureOptions& options,
                         const std::vector<std::string>& roots) {
  uint64_t hash = Fnv1a64(OptionBits(options));
  for (const std::string& root : roots) {
    hash = Fnv1a64("|", hash);
    hash = Fnv1a64(root, hash);
  }
  return hash;
}

std::string SnapshotFileName(const core::ClosureOptions& options,
                             const std::vector<std::string>& roots) {
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.snap",
                static_cast<unsigned long long>(SnapshotKeyHash(options,
                                                                roots)));
  return name;
}

std::string EncodeSnapshot(const schema::Schema& schema,
                           const core::ClosureOptions& options,
                           const core::CachedAnalysis& entry) {
  if (entry.closure == nullptr || entry.set == nullptr) return {};

  ByteWriter payload;
  payload.PutU32(static_cast<uint32_t>(entry.roots.size()));
  for (const std::string& root : entry.roots) payload.PutString(root);
  payload.PutString(entry.closure->FactSetDigest());

  // Rule labels are deduplicated into a table; steps reference it by
  // index (the label set is small — one entry per rule, not per fact).
  const std::vector<core::DerivationStep>& steps = entry.closure->steps();
  std::vector<std::string_view> rules;
  std::unordered_map<std::string_view, uint32_t> rule_index;
  for (const core::DerivationStep& step : steps) {
    if (rule_index.emplace(step.rule, rules.size()).second) {
      rules.push_back(step.rule);
    }
  }
  payload.PutU32(static_cast<uint32_t>(rules.size()));
  for (std::string_view rule : rules) payload.PutString(rule);

  payload.PutU32(static_cast<uint32_t>(steps.size()));
  for (const core::DerivationStep& step : steps) {
    payload.PutU8(static_cast<uint8_t>(step.fact.kind));
    payload.PutI32(step.fact.a);
    payload.PutI32(step.fact.b);
    payload.PutI32(step.fact.origin.num);
    payload.PutU8(static_cast<uint8_t>(step.fact.origin.dir));
    payload.PutU32(rule_index.at(step.rule));
    payload.PutU32(step.premise_offset);
    payload.PutU32(step.premise_count);
  }
  // The premise arena is append-only in step order (Closure::Log), so
  // concatenating each step's premises reproduces it exactly and the
  // stored offsets stay valid.
  uint32_t arena_size = 0;
  for (size_t i = 0; i < steps.size(); ++i) {
    arena_size += steps[i].premise_count;
  }
  payload.PutU32(arena_size);
  for (size_t i = 0; i < steps.size(); ++i) {
    for (core::FactId premise :
         entry.closure->premises(static_cast<core::FactId>(i))) {
      payload.PutI32(premise);
    }
  }

  ByteWriter file;
  file.PutFixedString(kMagic);
  file.PutU32(kFormatVersion);
  file.PutU32(kByteOrderMark);
  file.PutU64(SchemaFingerprint(schema, options));
  file.PutU64(Fnv1a64(payload.buffer()));
  return file.Release() + payload.buffer();
}

common::Status SaveSnapshot(const schema::Schema& schema,
                            const core::ClosureOptions& options,
                            const core::CachedAnalysis& entry,
                            const std::string& path) {
  std::string bytes = EncodeSnapshot(schema, options, entry);
  if (bytes.empty()) {
    return common::InvalidArgumentError("snapshot: entry has no closure");
  }

  std::error_code ec;
  std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path(), ec);
  }
  // Write-to-temp + rename: concurrent shard workers saving the same
  // signature race benignly (both write identical bytes; rename is
  // atomic), and readers never observe a torn file.
  std::string tmp = common::StrCat(path, ".tmp.", ::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()))) {
      std::filesystem::remove(tmp, ec);
      return common::InternalError(
          common::StrCat("snapshot: cannot write ", tmp));
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return common::InternalError(
        common::StrCat("snapshot: cannot rename into ", path));
  }
  return common::Status::Ok();
}

common::Result<std::shared_ptr<const core::CachedAnalysis>> DecodeSnapshot(
    const schema::Schema& schema, const core::ClosureOptions& options,
    std::string_view bytes, std::string_view name, obs::Observability* obs) {
  std::string_view data = bytes;
  std::string_view path = name;  // label for diagnostics only

  if (data.size() < kHeaderSize ||
      data.substr(0, kMagic.size()) != kMagic) {
    return Invalid(path, "not a snapshot file");
  }
  ByteReader header(data.substr(kMagic.size(), kHeaderSize - kMagic.size()));
  uint32_t version = header.GetU32();
  uint32_t byte_order = header.GetU32();
  // The marker decides how to read everything else — including the
  // version field already consumed raw above — so it is interpreted
  // first. A swapped marker arms foreign-endian decoding; anything that
  // is neither spelling is corruption, diagnosed as such.
  bool foreign = byte_order == Bswap32(kByteOrderMark);
  if (!foreign && byte_order != kByteOrderMark) {
    return Invalid(path, "corrupt byte-order marker");
  }
  header.set_byte_swap(foreign);
  if (foreign) version = Bswap32(version);
  uint64_t fingerprint = header.GetU64();
  uint64_t checksum = header.GetU64();
  if (version != kFormatVersion) {
    return Invalid(path, common::StrCat("format version ", version,
                                        " (expected ", kFormatVersion, ")"));
  }
  if (fingerprint != SchemaFingerprint(schema, options)) {
    return Invalid(path, "schema fingerprint mismatch (schema or options "
                         "changed since save)");
  }
  // The checksum is FNV over the writer's raw payload bytes — the same
  // bytes we hold, whatever their endianness — so a foreign file only
  // needed its stored checksum field swapped (done by GetU64 above).
  std::string_view payload = std::string_view(data).substr(kHeaderSize);
  if (Fnv1a64(payload) != checksum) {
    return Invalid(path, "payload checksum mismatch (truncated or corrupt)");
  }

  ByteReader reader(payload);
  reader.set_byte_swap(foreign);
  std::vector<std::string> roots;
  uint32_t root_count = reader.GetU32();
  for (uint32_t i = 0; i < root_count && reader.ok(); ++i) {
    roots.push_back(reader.GetString());
  }
  std::string digest = reader.GetString();

  std::vector<std::string_view> rules;
  uint32_t rule_count = reader.GetU32();
  for (uint32_t i = 0; i < rule_count && reader.ok(); ++i) {
    rules.push_back(InternRuleLabel(reader.GetString()));
  }

  core::ReplayLog log;
  uint32_t step_count = reader.GetU32();
  if (reader.ok()) log.steps.reserve(step_count);
  for (uint32_t i = 0; i < step_count && reader.ok(); ++i) {
    core::DerivationStep step;
    uint8_t kind = reader.GetU8();
    step.fact.a = reader.GetI32();
    step.fact.b = reader.GetI32();
    step.fact.origin.num = reader.GetI32();
    step.fact.origin.dir = static_cast<char>(reader.GetU8());
    uint32_t rule = reader.GetU32();
    step.premise_offset = reader.GetU32();
    step.premise_count = reader.GetU32();
    if (!reader.ok()) break;
    if (kind > static_cast<uint8_t>(core::Fact::Kind::kEq)) {
      return Invalid(path, "invalid fact kind");
    }
    step.fact.kind = static_cast<core::Fact::Kind>(kind);
    if (rule >= rules.size()) {
      return Invalid(path, "rule index out of range");
    }
    step.rule = rules[rule];
    log.steps.push_back(step);
  }
  uint32_t arena_count = reader.GetU32();
  if (reader.ok()) log.premise_arena.reserve(arena_count);
  for (uint32_t i = 0; i < arena_count && reader.ok(); ++i) {
    log.premise_arena.push_back(reader.GetI32());
  }
  if (!reader.exhausted()) {
    return Invalid(path, "truncated payload or trailing bytes");
  }

  // Re-unfold the stored root list; a root the schema no longer resolves
  // means the snapshot is stale (the fingerprint covers declared
  // functions, but be defensive anyway).
  auto set_or = unfold::UnfoldedSet::Build(schema, roots, obs);
  if (!set_or.ok()) {
    return Invalid(path, common::StrCat("stale root list: ",
                                        set_or.status().message()));
  }
  std::unique_ptr<unfold::UnfoldedSet> set = std::move(set_or).value();

  // Structural validation: every id must be an occurrence of this
  // unfold, every premise must reference an earlier step. After this
  // the ReplayLog constructor's precondition holds and replay is safe.
  const int n = set->node_count();
  auto valid_id = [n](int id) { return id >= 1 && id <= n; };
  for (size_t i = 0; i < log.steps.size(); ++i) {
    const core::DerivationStep& step = log.steps[i];
    const core::Fact& fact = step.fact;
    if (!valid_id(fact.a)) return Invalid(path, "occurrence id out of range");
    if ((fact.kind == core::Fact::Kind::kPiStar ||
         fact.kind == core::Fact::Kind::kEq) &&
        !valid_id(fact.b)) {
      return Invalid(path, "occurrence id out of range");
    }
    if (fact.origin.num < 0 || fact.origin.num > n) {
      return Invalid(path, "origin occurrence out of range");
    }
    if (fact.origin.dir != '+' && fact.origin.dir != '-') {
      return Invalid(path, "invalid origin direction");
    }
    uint64_t premise_end =
        static_cast<uint64_t>(step.premise_offset) + step.premise_count;
    if (premise_end > log.premise_arena.size()) {
      return Invalid(path, "premise range out of arena bounds");
    }
    for (uint32_t p = 0; p < step.premise_count; ++p) {
      core::FactId premise = log.premise_arena[step.premise_offset + p];
      if (premise < 0 || static_cast<size_t>(premise) >= i) {
        return Invalid(path, "premise references a later step");
      }
    }
  }

  auto entry = std::make_shared<core::CachedAnalysis>();
  entry->roots = roots;
  entry->sorted_roots = std::move(roots);
  std::sort(entry->sorted_roots.begin(), entry->sorted_roots.end());
  entry->sorted_roots.erase(
      std::unique(entry->sorted_roots.begin(), entry->sorted_roots.end()),
      entry->sorted_roots.end());
  entry->closure = std::make_unique<core::Closure>(*set, options, obs, log);
  entry->set = std::move(set);

  // Defence in depth: the replayed closure must reproduce the saved
  // fact set bit for bit. A mismatch means the inference rules changed
  // without a format-version bump — refuse rather than serve stale
  // capabilities.
  if (entry->closure->FactSetDigest() != digest) {
    return Invalid(path, "fact-set digest mismatch (stale derivation log)");
  }
  if (obs != nullptr) {
    obs->metrics.counter("snapshot.load.facts")
        ->Increment(entry->closure->fact_count());
  }
  return std::shared_ptr<const core::CachedAnalysis>(std::move(entry));
}

common::Result<std::shared_ptr<const core::CachedAnalysis>> LoadSnapshot(
    const schema::Schema& schema, const core::ClosureOptions& options,
    const std::string& path, obs::Observability* obs) {
  obs::ScopedSpan span(obs != nullptr ? &obs->tracer : nullptr,
                       "snapshot.load");

  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return common::NotFoundError(
          common::StrCat("snapshot ", path, ": no such file"));
    }
    data.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  return DecodeSnapshot(schema, options, data, path, obs);
}

}  // namespace oodbsec::snapshot
