#include "snapshot/binio.h"

#include <unistd.h>

#include <cerrno>

namespace oodbsec::snapshot {

bool ReadFull(int fd, void* buf, size_t n) {
  char* out = static_cast<char*>(buf);
  size_t off = 0;
  while (off < n) {
    ssize_t got = ::read(fd, out + off, n - off);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // EOF mid-object
    off += static_cast<size_t>(got);
  }
  return true;
}

bool WriteFull(int fd, const void* buf, size_t n) {
  const char* in = static_cast<const char*>(buf);
  size_t off = 0;
  while (off < n) {
    ssize_t put = ::write(fd, in + off, n - off);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(put);
  }
  return true;
}

std::string ReadToEof(int fd) {
  std::string data;
  char buf[64 << 10];
  for (;;) {
    ssize_t got = ::read(fd, buf, sizeof buf);
    if (got < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (got == 0) break;
    data.append(buf, static_cast<size_t>(got));
  }
  return data;
}

}  // namespace oodbsec::snapshot
