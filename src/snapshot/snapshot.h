// Persistent closure snapshots: the disk tier under core::ClosureCache.
//
// The paper's A(R) pipeline is deterministic end to end — unfolding a
// root list depends only on the schema, and the F(F) fixpoint depends
// only on the unfold and the ClosureOptions — so a closure's entire
// identity is (schema, options, root list). That makes the derivation
// log a perfect persistence format: a restarted process rebuilds the
// unfold (cheap), replays the saved log through the warm-start path
// (core::Closure's ReplayLog constructor), and lands on a closure
// byte-identical to the one that was saved, without re-running the
// fixpoint. This is what turns a nightly-audit restart from a cold
// population-wide fixpoint into file reads.
//
// File layout (versioned, checksummed; all integers written
// host-endian). The header carries an explicit byte-order marker — a
// u32 written as 0x01020304 by the saver — so a snapshot read on a
// machine of the opposite endianness is *detected*: the loader arms
// ByteReader::set_byte_swap and decodes the file anyway (every
// multi-byte integer, including the header's fingerprint and checksum,
// is byte-swapped on read). A marker that matches neither the native
// nor the swapped spelling means corruption and is refused with a
// specific diagnosis. This is what lets a heterogeneous fleet share a
// networked snapshot tier (see ROADMAP).
//
//   header   "OODBSNAP" | format version u32 | byte-order marker u32
//            | schema fingerprint u64 | payload checksum u64 (FNV-1a)
//   payload  roots (count + strings, unfold order)
//            | fact-set digest (Closure::FactSetDigest of the saved run)
//            | rule-label table (count + strings)
//            | steps (count; kind u8, a i32, b i32, origin num i32,
//              origin dir u8, rule index u32, premise offset u32,
//              premise count u32)
//            | premise arena (count + i32 ids)
//
// Invalidation is fail-safe, never fail-wrong. A load refuses (and the
// caller falls back to a cold build) when ANY of these trips:
//   * magic/version mismatch — format evolved;
//   * corrupt byte-order marker — neither the native nor the swapped
//     spelling of 0x01020304 (a recognized swapped marker decodes
//     instead, see above);
//   * schema fingerprint mismatch — any class, attribute, function
//     body, constraint, or closure option changed since the save;
//   * checksum mismatch or truncation — torn/corrupted file;
//   * structural validation — every id must be a valid occurrence of
//     the re-unfolded root list, every premise must reference an
//     earlier step;
//   * digest mismatch — the replayed closure must reproduce the saved
//     fact set exactly (defence in depth: this catches rule-semantics
//     drift the fingerprint cannot see, e.g. a rewritten closure.cc).
//
// Rule labels are interned into a process-lifetime pool on load, so a
// snapshot-loaded closure satisfies Closure's "rule strings outlive
// everything" contract and can itself serve as a warm-start base.
#ifndef OODBSEC_SNAPSHOT_SNAPSHOT_H_
#define OODBSEC_SNAPSHOT_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/closure.h"
#include "core/closure_cache.h"
#include "obs/obs.h"
#include "schema/schema.h"

namespace oodbsec::snapshot {

// Bump on any change to the header or payload layout above.
// v2: byte-order marker inserted after the format version.
inline constexpr uint32_t kFormatVersion = 2;
inline constexpr std::string_view kMagic = "OODBSNAP";

// Written host-endian after the version; reads back as 0x04030201 on a
// machine of the opposite endianness, which arms byte-swapped decoding
// in LoadSnapshot. The value is asymmetric under byte swap on purpose.
inline constexpr uint32_t kByteOrderMark = 0x01020304;

// The capability-signature key a snapshot of `roots` is stored under:
// FNV-1a over (options bits, root list). This is the identity shared by
// the directory tier (hex file names, SnapshotFileName) and the packed
// store's on-disk index. Collisions are tolerated — both tiers store
// the root list and re-check it against the request.
uint64_t SnapshotKeyHash(const core::ClosureOptions& options,
                         const std::vector<std::string>& roots);

// Copies `label` into a never-freed process-wide pool and returns a
// view with effectively static storage. Idempotent; thread-safe. The
// pool is bounded by the set of distinct rule labels in the system
// (a few dozen), so "never freed" is a contract, not a leak.
std::string_view InternRuleLabel(std::string_view label);

// Order-sensitive FNV-1a fingerprint of everything that determines a
// closure besides the root list: every class (name, attributes, types),
// every function (signature + printed body), the constraint list, and
// the ClosureOptions bits. Two processes over the same workspace text
// compute the same fingerprint; any semantic edit changes it.
uint64_t SchemaFingerprint(const schema::Schema& schema,
                           const core::ClosureOptions& options);

// The file name (no directory) a snapshot of `roots` lives under:
// 16 hex digits of the hash of (options bits, root list), ".snap".
// Name collisions are tolerated — LoadSnapshot returns the stored root
// list, and the cache re-checks it against the request.
std::string SnapshotFileName(const core::ClosureOptions& options,
                             const std::vector<std::string>& roots);

// Serializes `entry` (roots + digest + derivation log) into the full
// snapshot byte string — header and checksummed payload, exactly the
// bytes SaveSnapshot writes to disk. The byte-level half of the codec,
// shared by the file tier and the networked snapshot tier (a remote
// store ships these bytes over a frame; the record's own byte-order
// marker keeps it decodable on a foreign-endian peer). Empty string
// when the entry has no closure.
std::string EncodeSnapshot(const schema::Schema& schema,
                           const core::ClosureOptions& options,
                           const core::CachedAnalysis& entry);

// Validates, re-unfolds, and replays snapshot bytes (the inverse of
// EncodeSnapshot; the decode half of LoadSnapshot). `name` labels
// diagnostics — a path for file loads, an endpoint for remote loads.
// Same error contract as LoadSnapshot, minus the file read.
common::Result<std::shared_ptr<const core::CachedAnalysis>> DecodeSnapshot(
    const schema::Schema& schema, const core::ClosureOptions& options,
    std::string_view bytes, std::string_view name,
    obs::Observability* obs = nullptr);

// Serializes `entry` (roots + digest + derivation log) to `path`,
// atomically (temp file + rename), creating parent directories as
// needed. `options` must be the options the closure was built under.
common::Status SaveSnapshot(const schema::Schema& schema,
                            const core::ClosureOptions& options,
                            const core::CachedAnalysis& entry,
                            const std::string& path);

// Loads, validates, re-unfolds, and replays a snapshot. Returns
// kNotFound when the file does not exist, kFailedPrecondition for every
// flavour of invalid (wrong version, wrong fingerprint, checksum,
// truncation, structural or digest mismatch — the message says which).
// Never crashes on hostile bytes. `obs` (optional) observes the unfold
// and replay spans, plus "snapshot.load.*" counters.
common::Result<std::shared_ptr<const core::CachedAnalysis>> LoadSnapshot(
    const schema::Schema& schema, const core::ClosureOptions& options,
    const std::string& path, obs::Observability* obs = nullptr);

}  // namespace oodbsec::snapshot

#endif  // OODBSEC_SNAPSHOT_SNAPSHOT_H_
