#include "snapshot/remote_store.h"

#include <utility>

#include "common/strings.h"
#include "net/frame.h"
#include "snapshot/binio.h"
#include "snapshot/snapshot.h"

namespace oodbsec::snapshot {

namespace {

using net::Frame;
using net::FrameType;

// Encodes a non-ok status into a kStoreFail / kStoreSaveAck payload.
std::string EncodeStatusPayload(const common::Status& status) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(status.code()));
  w.PutString(status.message());
  return w.Release();
}

common::Status DecodeStatusPayload(std::string_view payload,
                                   std::string_view what) {
  ByteReader r(payload);
  auto code = static_cast<common::StatusCode>(r.GetU8());
  std::string message = r.GetString();
  if (!r.ok() || !r.exhausted()) {
    return common::InternalError(
        common::StrCat("remote store: malformed ", what, " payload"));
  }
  if (code == common::StatusCode::kOk) return common::Status::Ok();
  return common::Status(code, std::move(message));
}

// --- client ----------------------------------------------------------

class RemoteSnapshotStore : public SnapshotStore {
 public:
  RemoteSnapshotStore(std::string host_port, RemoteStoreOptions options)
      : host_port_(std::move(host_port)), options_(options) {}

  common::Result<std::shared_ptr<const core::CachedAnalysis>> Find(
      const schema::Schema& schema, const core::ClosureOptions& options,
      const std::vector<std::string>& roots, obs::Observability* obs) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++finds_;
    ByteWriter request;
    request.PutU32(static_cast<uint32_t>(roots.size()));
    for (const std::string& root : roots) request.PutString(root);
    Frame reply;
    OODBSEC_RETURN_IF_ERROR(RoundTrip(schema, options, FrameType::kStoreFind,
                                      request.buffer(), &reply));
    switch (reply.type) {
      case FrameType::kStoreFound:
        return DecodeSnapshot(schema, options, reply.payload,
                              common::StrCat("remote:", host_port_), obs);
      case FrameType::kStoreMiss:
        return common::NotFoundError(reply.payload);
      case FrameType::kStoreFail:
        return DecodeStatusPayload(reply.payload, "find");
      default:
        Drop();
        return common::InternalError(
            "remote store: unexpected reply to find");
    }
  }

  common::Status Save(const schema::Schema& schema,
                      const core::ClosureOptions& options,
                      const core::CachedAnalysis& entry) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++saves_;
    std::string bytes = EncodeSnapshot(schema, options, entry);
    if (bytes.empty()) {
      return common::InvalidArgumentError("snapshot: entry has no closure");
    }
    Frame reply;
    OODBSEC_RETURN_IF_ERROR(
        RoundTrip(schema, options, FrameType::kStoreSave, bytes, &reply));
    if (reply.type != FrameType::kStoreSaveAck) {
      Drop();
      return common::InternalError("remote store: unexpected reply to save");
    }
    return DecodeStatusPayload(reply.payload, "save ack");
  }

  common::Result<StoreSweepStats> Sweep(uint64_t) override {
    return common::FailedPreconditionError(
        "remote store: sweep runs server-side (sweep the backing store)");
  }

  StoreStats Stats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    StoreStats stats = server_stats_;
    stats.description = common::StrCat("remote:", host_port_);
    stats.finds = finds_;
    stats.saves = saves_;
    stats.sweeps = 0;
    // Refresh sizing fields from the server when a helloed connection
    // is at hand; otherwise serve the last observation (never dial from
    // Stats — it is a diagnostics call, not an operation).
    if (conn_.valid()) {
      auto self = const_cast<RemoteSnapshotStore*>(this);
      Frame reply;
      if (net::WriteFrame(conn_.fd(), FrameType::kStoreStats, {},
                          options_.io_timeout_ms)
              .ok() &&
          net::ReadFrame(conn_.fd(), &reply, options_.io_timeout_ms).ok() &&
          reply.type == FrameType::kStoreStatsReply) {
        ByteReader r(reply.payload);
        StoreStats server;
        server.description = r.GetString();
        server.entries = r.GetU64();
        server.file_bytes = r.GetU64();
        server.live_bytes = r.GetU64();
        server.stale_bytes = r.GetU64();
        server.finds = r.GetU64();
        server.saves = r.GetU64();
        server.sweeps = r.GetU64();
        server.page_cache_hits = r.GetU64();
        server.page_cache_misses = r.GetU64();
        server.page_cache_evictions = r.GetU64();
        if (r.exhausted()) {
          self->server_stats_ = server;
          stats = server;
          stats.description =
              common::StrCat("remote:", host_port_, " -> ",
                             server.description);
          stats.finds = finds_;
          stats.saves = saves_;
        }
      } else {
        self->Drop();
      }
    }
    return stats;
  }

  std::vector<std::shared_ptr<const core::CachedAnalysis>> LoadAll(
      const schema::Schema&, const core::ClosureOptions&, size_t,
      size_t* invalid, obs::Observability*) override {
    if (invalid != nullptr) *invalid = 0;
    return {};
  }

  common::Result<std::shared_ptr<SnapshotStore>> ForkWorker(int) override {
    // A forked child must not reuse the parent's connection (two
    // processes interleaving frames on one socket); it gets a fresh
    // lazy client to the same address.
    return std::shared_ptr<SnapshotStore>(
        std::make_shared<RemoteSnapshotStore>(host_port_, options_));
  }

 private:
  // Dial + hello if needed, send `request`, read one reply into *reply.
  // One bounded reconnect: an operation fails only when the retry also
  // fails. Caller holds mu_.
  common::Status RoundTrip(const schema::Schema& schema,
                           const core::ClosureOptions& options,
                           FrameType type, std::string_view request,
                           Frame* reply) {
    common::Status last =
        common::InternalError("remote store: no attempt made");
    for (int attempt = 0; attempt < 2; ++attempt) {
      common::Status connected = EnsureConnected(schema, options);
      if (!connected.ok()) {
        // A refused hello is terminal (version/endianness/fingerprint
        // mismatch); a failed dial may be transient.
        if (connected.code() == common::StatusCode::kFailedPrecondition) {
          return connected;
        }
        last = std::move(connected);
        continue;
      }
      if (!net::WriteFrame(conn_.fd(), type, request, options_.io_timeout_ms)
               .ok()) {
        Drop();
        last = common::InternalError("remote store: request write failed");
        continue;
      }
      common::Status read =
          net::ReadFrame(conn_.fd(), reply, options_.io_timeout_ms);
      if (!read.ok()) {
        Drop();
        last = common::InternalError(common::StrCat(
            "remote store: reply read failed: ", read.message()));
        continue;
      }
      return common::Status::Ok();
    }
    return last;
  }

  common::Status EnsureConnected(const schema::Schema& schema,
                                 const core::ClosureOptions& options) {
    if (!refused_.ok()) return refused_;
    if (conn_.valid()) return common::Status::Ok();
    auto dialed = net::Dial(host_port_, options_.dial);
    if (!dialed.ok()) return dialed.status();
    net::Socket conn = std::move(dialed).value();

    ByteWriter hello;
    hello.PutU32(net::kProtocolVersion);
    hello.PutU32(kByteOrderMark);
    hello.PutU64(SchemaFingerprint(schema, options));
    if (!net::WriteFrame(conn.fd(), FrameType::kStoreHello, hello.buffer(),
                         options_.io_timeout_ms)
             .ok()) {
      return common::InternalError("remote store: hello write failed");
    }
    Frame ack;
    common::Status read =
        net::ReadFrame(conn.fd(), &ack, options_.io_timeout_ms);
    if (!read.ok() || ack.type != FrameType::kStoreHelloAck) {
      return common::InternalError("remote store: hello ack not received");
    }
    ByteReader r(ack.payload);
    uint8_t accepted = r.GetU8();
    std::string message = r.GetString();
    if (!r.ok() || !r.exhausted()) {
      return common::InternalError("remote store: malformed hello ack");
    }
    if (accepted == 0) {
      refused_ = common::FailedPreconditionError(
          common::StrCat("remote store ", host_port_, " refused: ", message));
      return refused_;
    }
    conn_ = std::move(conn);
    return common::Status::Ok();
  }

  void Drop() { conn_.Close(); }

  const std::string host_port_;
  const RemoteStoreOptions options_;
  mutable std::mutex mu_;
  mutable net::Socket conn_;
  common::Status refused_ = common::Status::Ok();
  uint64_t finds_ = 0;
  uint64_t saves_ = 0;
  StoreStats server_stats_;
};

}  // namespace

std::shared_ptr<SnapshotStore> OpenRemoteStore(
    std::string host_port, const RemoteStoreOptions& options) {
  return std::make_shared<RemoteSnapshotStore>(std::move(host_port), options);
}

// --- server ----------------------------------------------------------

StoreServer::~StoreServer() { Stop(); }

common::Status StoreServer::Start(const schema::Schema& schema,
                                  const core::ClosureOptions& options,
                                  std::shared_ptr<SnapshotStore> backing,
                                  uint16_t port, bool loopback_only) {
  if (backing == nullptr) {
    return common::InvalidArgumentError("store server: no backing store");
  }
  if (running()) {
    return common::FailedPreconditionError("store server: already running");
  }
  auto bound = net::Listener::Bind(port, loopback_only);
  if (!bound.ok()) return bound.status();
  schema_ = &schema;
  options_ = options;
  backing_ = std::move(backing);
  fingerprint_ = SchemaFingerprint(schema, options);
  listener_ = std::move(bound).value();
  port_ = listener_.port();
  stop_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return common::Status::Ok();
}

void StoreServer::Stop() {
  if (!running()) return;
  stop_.store(true);
  accept_thread_.join();
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections.swap(connections_);
  }
  for (std::thread& t : connections) t.join();
}

void StoreServer::AcceptLoop() {
  while (!stop_.load()) {
    auto accepted = listener_.Accept(/*timeout_ms=*/200);
    if (!accepted.ok()) continue;  // timeout: re-check the stop flag
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.emplace_back(
        [this, conn = std::move(accepted).value()]() mutable {
          ServeConnection(std::move(conn));
        });
  }
}

void StoreServer::ServeConnection(net::Socket conn) {
  bool helloed = false;
  while (!stop_.load()) {
    int ready = net::WaitReadable(conn.fd(), 200);
    if (ready < 0) return;
    if (ready == 0) continue;
    Frame frame;
    if (!net::ReadFrame(conn.fd(), &frame, io_timeout_ms_).ok()) return;

    if (frame.type == FrameType::kStoreHello) {
      ByteReader r(frame.payload);
      uint32_t version = r.GetU32();
      uint32_t byte_order = r.GetU32();
      uint64_t fingerprint = r.GetU64();
      std::string refuse;
      if (!r.ok() || !r.exhausted()) {
        refuse = "malformed hello";
      } else if (version != net::kProtocolVersion) {
        refuse = common::StrCat("protocol version mismatch (client ",
                                version, ", server ",
                                net::kProtocolVersion, ")");
      } else if (byte_order != kByteOrderMark) {
        refuse = "byte-order mismatch (foreign-endian peer)";
      } else if (fingerprint != fingerprint_) {
        refuse = "schema fingerprint mismatch (different schema or options)";
      }
      ByteWriter ack;
      ack.PutU8(refuse.empty() ? 1 : 0);
      ack.PutString(refuse);
      if (!net::WriteFrame(conn.fd(), FrameType::kStoreHelloAck, ack.buffer(),
                           io_timeout_ms_)
               .ok() ||
          !refuse.empty()) {
        return;
      }
      helloed = true;
      continue;
    }
    if (!helloed) return;  // protocol error: operations before hello

    switch (frame.type) {
      case FrameType::kStoreFind: {
        ByteReader r(frame.payload);
        std::vector<std::string> roots;
        uint32_t count = r.GetU32();
        for (uint32_t i = 0; i < count && r.ok(); ++i) {
          roots.push_back(r.GetString());
        }
        if (!r.ok() || !r.exhausted()) return;
        auto found = backing_->Find(*schema_, options_, roots);
        common::Status write = common::Status::Ok();
        if (found.ok()) {
          // Re-encode the replayed, digest-verified entry as a
          // directory-format record; the client re-validates on its
          // side of the wire.
          write = net::WriteFrame(conn.fd(), FrameType::kStoreFound,
                                  EncodeSnapshot(*schema_, options_,
                                                 *found.value()),
                                  io_timeout_ms_);
        } else if (found.status().code() == common::StatusCode::kNotFound) {
          write = net::WriteFrame(conn.fd(), FrameType::kStoreMiss,
                                  found.status().message(), io_timeout_ms_);
        } else {
          write = net::WriteFrame(conn.fd(), FrameType::kStoreFail,
                                  EncodeStatusPayload(found.status()),
                                  io_timeout_ms_);
        }
        if (!write.ok()) return;
        break;
      }
      case FrameType::kStoreSave: {
        // Validate before touching the backing store: DecodeSnapshot
        // replays and digest-checks, so hostile or stale bytes are
        // refused here with the specific diagnosis.
        common::Status outcome = common::Status::Ok();
        auto decoded = DecodeSnapshot(*schema_, options_, frame.payload,
                                      "store-server save");
        if (decoded.ok()) {
          outcome = backing_->Save(*schema_, options_, *decoded.value());
        } else {
          outcome = decoded.status();
        }
        if (!net::WriteFrame(conn.fd(), FrameType::kStoreSaveAck,
                             EncodeStatusPayload(outcome), io_timeout_ms_)
                 .ok()) {
          return;
        }
        break;
      }
      case FrameType::kStoreStats: {
        StoreStats stats = backing_->Stats();
        ByteWriter w;
        w.PutString(stats.description);
        w.PutU64(stats.entries);
        w.PutU64(stats.file_bytes);
        w.PutU64(stats.live_bytes);
        w.PutU64(stats.stale_bytes);
        w.PutU64(stats.finds);
        w.PutU64(stats.saves);
        w.PutU64(stats.sweeps);
        w.PutU64(stats.page_cache_hits);
        w.PutU64(stats.page_cache_misses);
        w.PutU64(stats.page_cache_evictions);
        if (!net::WriteFrame(conn.fd(), FrameType::kStoreStatsReply,
                             w.buffer(), io_timeout_ms_)
                 .ok()) {
          return;
        }
        break;
      }
      default:
        return;  // unknown request: drop the connection
    }
  }
}

}  // namespace oodbsec::snapshot
