#include "snapshot/packed_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <list>
#include <map>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "core/closure.h"
#include "obs/trace.h"
#include "snapshot/binio.h"
#include "snapshot/snapshot.h"
#include "unfold/unfolded.h"

namespace oodbsec::snapshot {

namespace {

constexpr uint64_t kPackHeaderSize = 32;
constexpr uint64_t kEntryHeaderSize = 32;   // "OODBSNAP" + 2 u32 + 2 u64
constexpr uint64_t kRecordHeaderSize = 16;  // key u64 + entry length u64
constexpr uint64_t kIndexEntrySize = 40;
constexpr uint64_t kTrailerSize = 32;

uint64_t AlignUp8(uint64_t v) { return (v + 7) & ~uint64_t{7}; }

common::Status PackError(std::string_view path, std::string_view what) {
  return common::FailedPreconditionError(
      common::StrCat("pack ", path, ": ", what));
}

uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

// A live record as the in-memory index sees it: the far pointer
// (segment offset + entry length) plus the header fields Find needs
// before touching the record bytes.
struct IndexEntry {
  uint64_t offset = 0;       // of the record header (the key u64)
  uint64_t length = 0;       // entry bytes, excl. record header and pad
  uint64_t fingerprint = 0;  // schema generation stamp
  uint64_t checksum = 0;     // FNV-1a of the entry payload

  // On-disk footprint of the whole record including header and pad.
  uint64_t Footprint() const {
    return AlignUp8(kRecordHeaderSize + length);
  }
};

using PackIndex = std::map<uint64_t, IndexEntry>;  // key-sorted

// ---- v3 entry codec ----------------------------------------------------

// Serializes one cache entry into a v3 record: the v2-style header over
// the packed in-place payload (see packed_store.h for the layout).
std::string BuildEntryBytes(const schema::Schema& schema,
                            const core::ClosureOptions& options,
                            const core::CachedAnalysis& entry) {
  const std::vector<core::DerivationStep>& steps = entry.closure->steps();

  ByteWriter payload;
  payload.PutU32(static_cast<uint32_t>(entry.roots.size()));
  for (const std::string& root : entry.roots) payload.PutString(root);
  payload.PutString(entry.closure->FactSetDigest());

  // Rule labels dedup into a table; steps reference it by index.
  std::vector<std::string_view> rules;
  std::unordered_map<std::string_view, uint32_t> rule_index;
  for (const core::DerivationStep& step : steps) {
    if (rule_index.emplace(step.rule, rules.size()).second) {
      rules.push_back(step.rule);
    }
  }
  payload.PutU32(static_cast<uint32_t>(rules.size()));
  for (std::string_view rule : rules) payload.PutString(rule);

  uint32_t arena_size = 0;
  for (const core::DerivationStep& step : steps) {
    arena_size += step.premise_count;
  }
  payload.PutU32(static_cast<uint32_t>(steps.size()));
  payload.PutU32(arena_size);
  // The steps offset is payload-relative; records land at 8-aligned
  // segment offsets and the payload starts 48 bytes in, so padding the
  // offset to 8 here 8-aligns the step array in the file (and in the
  // mapping) — the precondition for aliasing it as PackedStep[].
  uint64_t prefix = payload.buffer().size() + sizeof(uint32_t);
  uint32_t steps_rel = static_cast<uint32_t>(AlignUp8(prefix));
  payload.PutU32(steps_rel);
  payload.PutFixedString(std::string(steps_rel - prefix, '\0'));
  for (const core::DerivationStep& step : steps) {
    core::PackedStep packed;
    packed.a = step.fact.a;
    packed.b = step.fact.b;
    packed.origin_num = step.fact.origin.num;
    packed.rule = rule_index.at(step.rule);
    packed.premise_offset = step.premise_offset;
    packed.premise_count = step.premise_count;
    packed.kind = static_cast<uint8_t>(step.fact.kind);
    packed.origin_dir = static_cast<uint8_t>(step.fact.origin.dir);
    payload.PutFixedString(std::string_view(
        reinterpret_cast<const char*>(&packed), sizeof packed));
  }
  // The arena is append-only in step order (Closure::Log), so stored
  // premise offsets stay valid over the concatenation.
  for (size_t i = 0; i < steps.size(); ++i) {
    for (core::FactId premise :
         entry.closure->premises(static_cast<core::FactId>(i))) {
      payload.PutI32(premise);
    }
  }

  ByteWriter file;
  file.PutFixedString(kMagic);
  file.PutU32(kPackedEntryVersion);
  file.PutU32(kByteOrderMark);
  file.PutU64(SchemaFingerprint(schema, options));
  file.PutU64(Fnv1a64(payload.buffer()));
  return file.Release() + payload.buffer();
}

// Validates and replays one mapped v3 record. `bytes` aliases the
// segment mapping; nothing in the returned entry borrows from it (the
// ReplayView constructor copies). The invalidation ladder mirrors
// LoadSnapshot: magic/version → byte order → fingerprint → checksum →
// structural validation → digest equality.
common::Result<std::shared_ptr<const core::CachedAnalysis>> DecodeEntry(
    const schema::Schema& schema, const core::ClosureOptions& options,
    std::string_view label, std::string_view bytes, obs::Observability* obs) {
  obs::ScopedSpan span(obs != nullptr ? &obs->tracer : nullptr,
                       "snapshot.load");
  if (bytes.size() < kEntryHeaderSize ||
      bytes.substr(0, kMagic.size()) != kMagic) {
    return PackError(label, "not a snapshot record");
  }
  uint32_t version = LoadU32(bytes.data() + 8);
  uint32_t marker = LoadU32(bytes.data() + 12);
  if (marker == Bswap32(kByteOrderMark)) {
    // Unlike directory snapshots, packs alias raw structs out of the
    // mapping — a foreign-endian record cannot be replayed in place.
    return PackError(label, "foreign-endian record (packs are machine-local)");
  }
  if (marker != kByteOrderMark) {
    return PackError(label, "corrupt byte-order marker");
  }
  if (version != kPackedEntryVersion) {
    return PackError(label, common::StrCat("record version ", version,
                                           " (expected ", kPackedEntryVersion,
                                           ")"));
  }
  uint64_t fingerprint = LoadU64(bytes.data() + 16);
  uint64_t checksum = LoadU64(bytes.data() + 24);
  if (fingerprint != SchemaFingerprint(schema, options)) {
    return PackError(label, "schema fingerprint mismatch (stale generation)");
  }
  std::string_view payload = bytes.substr(kEntryHeaderSize);
  if (Fnv1a64(payload) != checksum) {
    return PackError(label, "payload checksum mismatch (torn or corrupt)");
  }

  ByteReader reader(payload);
  std::vector<std::string> roots;
  uint32_t root_count = reader.GetU32();
  for (uint32_t i = 0; i < root_count && reader.ok(); ++i) {
    roots.push_back(reader.GetString());
  }
  std::string digest = reader.GetString();
  std::vector<std::string_view> rules;
  uint32_t rule_count = reader.GetU32();
  for (uint32_t i = 0; i < rule_count && reader.ok(); ++i) {
    rules.push_back(InternRuleLabel(reader.GetString()));
  }
  uint32_t step_count = reader.GetU32();
  uint32_t arena_count = reader.GetU32();
  uint32_t steps_rel = reader.GetU32();
  if (!reader.ok()) return PackError(label, "truncated record prefix");

  uint64_t prefix_end = payload.size() - reader.remaining();
  uint64_t steps_end =
      steps_rel + uint64_t{step_count} * sizeof(core::PackedStep);
  uint64_t payload_end = steps_end + uint64_t{arena_count} * sizeof(int32_t);
  if (steps_rel < prefix_end || payload_end != payload.size()) {
    return PackError(label, "record geometry out of bounds");
  }
  const char* steps_ptr = payload.data() + steps_rel;
  if (reinterpret_cast<uintptr_t>(steps_ptr) % alignof(core::PackedStep) !=
      0) {
    return PackError(label, "misaligned step array");
  }
  core::ReplayView view;
  view.steps = {reinterpret_cast<const core::PackedStep*>(steps_ptr),
                step_count};
  view.premise_arena = {
      reinterpret_cast<const core::FactId*>(payload.data() + steps_end),
      arena_count};
  view.rules = rules;

  auto set_or = unfold::UnfoldedSet::Build(schema, roots, obs);
  if (!set_or.ok()) {
    return PackError(label, common::StrCat("stale root list: ",
                                           set_or.status().message()));
  }
  std::unique_ptr<unfold::UnfoldedSet> set = std::move(set_or).value();

  // Structural validation: after this the ReplayView constructor's
  // precondition holds and in-place replay is safe on hostile bytes.
  const int n = set->node_count();
  auto valid_id = [n](int id) { return id >= 1 && id <= n; };
  for (uint32_t i = 0; i < step_count; ++i) {
    const core::PackedStep& step = view.steps[i];
    if (step.kind > static_cast<uint8_t>(core::Fact::Kind::kEq)) {
      return PackError(label, "invalid fact kind");
    }
    auto kind = static_cast<core::Fact::Kind>(step.kind);
    if (!valid_id(step.a)) {
      return PackError(label, "occurrence id out of range");
    }
    if ((kind == core::Fact::Kind::kPiStar ||
         kind == core::Fact::Kind::kEq) &&
        !valid_id(step.b)) {
      return PackError(label, "occurrence id out of range");
    }
    if (step.origin_num < 0 || step.origin_num > n) {
      return PackError(label, "origin occurrence out of range");
    }
    if (step.origin_dir != '+' && step.origin_dir != '-') {
      return PackError(label, "invalid origin direction");
    }
    if (step.rule >= rules.size()) {
      return PackError(label, "rule index out of range");
    }
    uint64_t premise_end =
        uint64_t{step.premise_offset} + step.premise_count;
    if (premise_end > arena_count) {
      return PackError(label, "premise range out of arena bounds");
    }
    for (uint32_t p = 0; p < step.premise_count; ++p) {
      core::FactId premise = view.premise_arena[step.premise_offset + p];
      if (premise < 0 || static_cast<uint32_t>(premise) >= i) {
        return PackError(label, "premise references a later step");
      }
    }
  }

  auto entry = std::make_shared<core::CachedAnalysis>();
  entry->roots = roots;
  entry->sorted_roots = std::move(roots);
  std::sort(entry->sorted_roots.begin(), entry->sorted_roots.end());
  entry->sorted_roots.erase(
      std::unique(entry->sorted_roots.begin(), entry->sorted_roots.end()),
      entry->sorted_roots.end());
  entry->closure = std::make_unique<core::Closure>(*set, options, obs, view);
  entry->set = std::move(set);

  if (entry->closure->FactSetDigest() != digest) {
    return PackError(label, "fact-set digest mismatch (stale derivation log)");
  }
  if (obs != nullptr) {
    obs->metrics.counter("snapshot.load.facts")
        ->Increment(entry->closure->fact_count());
  }
  return std::shared_ptr<const core::CachedAnalysis>(std::move(entry));
}

// ---- segment parsing ---------------------------------------------------

// Validates one record header + entry at `offset` of `file`. Fills
// `out` and returns true when the record is intact (magic, version,
// byte order, checksum); the scan recovery path stops at the first
// false.
bool ParseRecordAt(std::string_view file, uint64_t offset, uint64_t* key_out,
                   IndexEntry* out) {
  if (offset + kRecordHeaderSize > file.size()) return false;
  uint64_t key = LoadU64(file.data() + offset);
  uint64_t length = LoadU64(file.data() + offset + 8);
  if (length < kEntryHeaderSize ||
      length > file.size() - offset - kRecordHeaderSize) {
    return false;
  }
  std::string_view entry = file.substr(offset + kRecordHeaderSize, length);
  if (entry.substr(0, kMagic.size()) != kMagic) return false;
  if (LoadU32(entry.data() + 8) != kPackedEntryVersion) return false;
  if (LoadU32(entry.data() + 12) != kByteOrderMark) return false;
  uint64_t checksum = LoadU64(entry.data() + 24);
  if (Fnv1a64(entry.substr(kEntryHeaderSize)) != checksum) return false;
  *key_out = key;
  out->offset = offset;
  out->length = length;
  out->fingerprint = LoadU64(entry.data() + 16);
  out->checksum = checksum;
  return true;
}

// Rebuilds the index by scanning self-delimiting records from the top,
// stopping at the first record that fails validation — the recovery
// path for truncated segments and torn footers. Later records win for
// a duplicated key (appends supersede).
void ScanRecords(std::string_view file, PackIndex* index,
                 uint64_t* records_end) {
  index->clear();
  uint64_t offset = kPackHeaderSize;
  while (true) {
    uint64_t key = 0;
    IndexEntry entry;
    if (!ParseRecordAt(file, offset, &key, &entry)) break;
    (*index)[key] = entry;
    offset = AlignUp8(offset + kRecordHeaderSize + entry.length);
  }
  *records_end = offset;
}

// Loads the footer index when the trailer is intact and internally
// consistent; falls back to the record scan otherwise. Returns whether
// the trailer was used (informational).
bool LoadIndex(std::string_view file, PackIndex* index,
               uint64_t* records_end) {
  if (file.size() >= kPackHeaderSize + kTrailerSize) {
    std::string_view trailer = file.substr(file.size() - kTrailerSize);
    if (trailer.substr(24) == kPackIndexMagic) {
      uint64_t index_offset = LoadU64(trailer.data());
      uint64_t count = LoadU64(trailer.data() + 8);
      uint64_t index_checksum = LoadU64(trailer.data() + 16);
      uint64_t index_bytes = count * kIndexEntrySize;
      if (index_offset >= kPackHeaderSize && index_offset % 8 == 0 &&
          index_offset + index_bytes + kTrailerSize == file.size() &&
          Fnv1a64(file.substr(index_offset, index_bytes)) == index_checksum) {
        PackIndex loaded;
        bool consistent = true;
        for (uint64_t i = 0; i < count; ++i) {
          const char* p = file.data() + index_offset + i * kIndexEntrySize;
          uint64_t key = LoadU64(p);
          IndexEntry entry;
          entry.offset = LoadU64(p + 8);
          entry.length = LoadU64(p + 16);
          entry.fingerprint = LoadU64(p + 24);
          entry.checksum = LoadU64(p + 32);
          // Far pointers must land on an intact record inside the
          // record region; a stale trailer surviving a torn append is
          // caught here (or by the checksum above) and falls back.
          if (entry.offset % 8 != 0 || entry.offset < kPackHeaderSize ||
              entry.length < kEntryHeaderSize ||
              entry.offset + kRecordHeaderSize + entry.length >
                  index_offset ||
              file.substr(entry.offset + kRecordHeaderSize, kMagic.size()) !=
                  kMagic) {
            consistent = false;
            break;
          }
          loaded[key] = entry;
        }
        if (consistent) {
          *index = std::move(loaded);
          *records_end = index_offset;
          return true;
        }
      }
    }
  }
  ScanRecords(file, index, records_end);
  return false;
}

// ---- the store ---------------------------------------------------------

class PackedStore final : public SnapshotStore,
                          public std::enable_shared_from_this<PackedStore> {
 public:
  PackedStore(std::string path, size_t page_cache_capacity)
      : path_(std::move(path)),
        page_cache_capacity_(page_cache_capacity == 0 ? 1
                                                      : page_cache_capacity) {}

  ~PackedStore() override { CloseFile(); }

  // Opens or creates the segment; recovers from torn footers. Called
  // once by the factory before the store is shared.
  common::Status OpenFile() {
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0) {
      return common::InternalError(
          common::StrCat("pack ", path_, ": cannot open"));
    }
    uint64_t size = FileSize();
    if (size == 0) {
      ByteWriter header;
      header.PutFixedString(kPackMagic);
      header.PutU32(kPackVersion);
      header.PutU32(kByteOrderMark);
      header.PutU64(0);  // reserved
      header.PutU64(0);  // reserved (pads the header to kPackHeaderSize)
      if (!PwriteAll(header.buffer(), 0)) {
        return common::InternalError(
            common::StrCat("pack ", path_, ": cannot write header"));
      }
      records_end_ = kPackHeaderSize;
      common::Status status = WriteFooterLocked();
      if (!status.ok()) return status;
      return Remap();
    }
    common::Status status = Remap();
    if (!status.ok()) return status;
    std::string_view file(map_, map_len_);
    if (file.size() < kPackHeaderSize ||
        file.substr(0, kPackMagic.size()) != kPackMagic) {
      return PackError(path_, "not a pack file");
    }
    uint32_t version = LoadU32(file.data() + 8);
    uint32_t marker = LoadU32(file.data() + 12);
    if (marker == Bswap32(kByteOrderMark)) {
      return PackError(path_,
                       "foreign-endian pack (packs are machine-local; "
                       "regenerate or migrate on this machine)");
    }
    if (marker != kByteOrderMark) {
      return PackError(path_, "corrupt byte-order marker");
    }
    if (version != kPackVersion) {
      return PackError(path_, common::StrCat("pack version ", version,
                                             " (expected ", kPackVersion,
                                             ")"));
    }
    LoadIndex(file, &index_, &records_end_);
    // Rewrite a clean footer: after a recovery this truncates the torn
    // tail; after a clean open it rewrites identical bytes.
    status = WriteFooterLocked();
    if (!status.ok()) return status;
    return Remap();
  }

  common::Result<std::shared_ptr<const core::CachedAnalysis>> Find(
      const schema::Schema& schema, const core::ClosureOptions& options,
      const std::vector<std::string>& roots, obs::Observability* obs) override {
    uint64_t fingerprint = SchemaFingerprint(schema, options);
    uint64_t key = SnapshotKeyHash(options, roots);
    std::unique_lock<std::mutex> lock(mu_);
    ++finds_;
    last_fingerprint_ = fingerprint;
    has_fingerprint_ = true;
    auto it = index_.find(key);
    if (it == index_.end()) {
      lock.unlock();
      // Worker overlay: reads fall through to the parent segment.
      if (base_ != nullptr) return base_->Find(schema, options, roots, obs);
      return common::NotFoundError(
          common::StrCat("pack ", path_, ": no record for signature"));
    }
    if (it->second.fingerprint != fingerprint) {
      return PackError(path_, "schema fingerprint mismatch (stale generation)");
    }
    if (std::shared_ptr<const core::CachedAnalysis> hot =
            PageLookupLocked(key, fingerprint, roots)) {
      ++page_hits_;
      return hot;
    }
    ++page_misses_;
    auto decoded = DecodeLocked(it->second, schema, options, obs);
    if (!decoded.ok()) return decoded;
    if (decoded.value()->roots != roots) {
      // Keys hash (options, roots); on the vanishingly unlikely
      // collision the stored root list differs — report a miss.
      return common::NotFoundError(
          common::StrCat("pack ", path_, ": signature collision"));
    }
    PageInsertLocked(key, fingerprint, decoded.value());
    return decoded;
  }

  common::Status Save(const schema::Schema& schema,
                      const core::ClosureOptions& options,
                      const core::CachedAnalysis& entry) override {
    if (entry.closure == nullptr || entry.set == nullptr) {
      return common::InvalidArgumentError("pack: entry has no closure");
    }
    uint64_t key = SnapshotKeyHash(options, entry.roots);
    std::string bytes = BuildEntryBytes(schema, options, entry);
    uint64_t fingerprint = LoadU64(bytes.data() + 16);
    uint64_t checksum = LoadU64(bytes.data() + 24);
    std::lock_guard<std::mutex> lock(mu_);
    ++saves_;
    last_fingerprint_ = fingerprint;
    has_fingerprint_ = true;
    auto it = index_.find(key);
    if (it != index_.end() && it->second.fingerprint == fingerprint &&
        it->second.checksum == checksum && it->second.length == bytes.size()) {
      // Identical record already live: warm re-saves (every restarted
      // fleet run ends with a bulk save) must not grow the segment.
      return common::Status::Ok();
    }
    common::Status status = AppendRawLocked(key, bytes, fingerprint, checksum);
    if (!status.ok()) return status;
    status = WriteFooterLocked();
    if (!status.ok()) return status;
    return Remap();
  }

  common::Result<StoreSweepStats> Sweep(uint64_t live_fingerprint) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++sweeps_;
    last_fingerprint_ = live_fingerprint;
    has_fingerprint_ = true;
    StoreSweepStats out;
    uint64_t live_footprint = kPackHeaderSize;
    for (const auto& [key, entry] : index_) {
      if (entry.fingerprint == live_fingerprint) {
        ++out.records_kept;
        live_footprint += entry.Footprint();
      } else {
        ++out.records_swept;
      }
    }
    // Dead bytes: superseded duplicates not reachable from the index.
    bool has_dead =
        SumFootprintLocked() + kPackHeaderSize != records_end_;
    if (out.records_swept == 0 && !has_dead) return out;  // nothing to do

    // Online compaction: rewrite the live generation into a fresh
    // segment, key order, and swap it in atomically.
    uint64_t old_size = FileSize();
    std::string fresh;
    fresh.reserve(live_footprint + index_.size() * kIndexEntrySize +
                  kTrailerSize);
    {
      ByteWriter header;
      header.PutFixedString(kPackMagic);
      header.PutU32(kPackVersion);
      header.PutU32(kByteOrderMark);
      header.PutU64(0);  // reserved
      header.PutU64(0);  // reserved (pads the header to kPackHeaderSize)
      fresh = header.Release();
    }
    PackIndex compacted;
    for (const auto& [key, entry] : index_) {
      if (entry.fingerprint != live_fingerprint) continue;
      IndexEntry moved = entry;
      moved.offset = fresh.size();
      ByteWriter record_header;
      record_header.PutU64(key);
      record_header.PutU64(entry.length);
      fresh += record_header.buffer();
      fresh.append(map_ + entry.offset + kRecordHeaderSize, entry.length);
      fresh.resize(AlignUp8(fresh.size()), '\0');
      compacted[key] = moved;
    }
    uint64_t new_records_end = fresh.size();
    ByteWriter index_writer;
    for (const auto& [key, entry] : compacted) {
      index_writer.PutU64(key);
      index_writer.PutU64(entry.offset);
      index_writer.PutU64(entry.length);
      index_writer.PutU64(entry.fingerprint);
      index_writer.PutU64(entry.checksum);
    }
    ByteWriter trailer;
    trailer.PutU64(new_records_end);
    trailer.PutU64(compacted.size());
    trailer.PutU64(Fnv1a64(index_writer.buffer()));
    trailer.PutFixedString(kPackIndexMagic);
    fresh += index_writer.buffer();
    fresh += trailer.buffer();

    std::string tmp = common::StrCat(path_, ".compact.tmp.", ::getpid());
    {
      int tmp_fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (tmp_fd < 0) {
        return common::InternalError(
            common::StrCat("pack ", path_, ": cannot open compaction temp"));
      }
      size_t written = 0;
      while (written < fresh.size()) {
        ssize_t n = ::write(tmp_fd, fresh.data() + written,
                            fresh.size() - written);
        if (n <= 0) {
          ::close(tmp_fd);
          ::unlink(tmp.c_str());
          return common::InternalError(
              common::StrCat("pack ", path_, ": compaction write failed"));
        }
        written += static_cast<size_t>(n);
      }
      ::fsync(tmp_fd);
      ::close(tmp_fd);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path_, ec);
    if (ec) {
      std::filesystem::remove(tmp, ec);
      return common::InternalError(
          common::StrCat("pack ", path_, ": compaction rename failed"));
    }
    CloseFile();
    fd_ = ::open(path_.c_str(), O_RDWR | O_CLOEXEC);
    if (fd_ < 0) {
      return common::InternalError(
          common::StrCat("pack ", path_, ": cannot reopen after compaction"));
    }
    index_ = std::move(compacted);
    records_end_ = new_records_end;
    common::Status status = Remap();
    if (!status.ok()) return status;
    out.bytes_reclaimed = old_size - fresh.size();
    // Swept generations also leave the page cache.
    for (auto it = pages_.begin(); it != pages_.end();) {
      if (it->second.fingerprint != live_fingerprint) {
        page_lru_.erase(it->second.lru_it);
        it = pages_.erase(it);
      } else {
        ++it;
      }
    }
    return out;
  }

  StoreStats Stats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    StoreStats stats;
    stats.description = common::StrCat("packed:", path_);
    stats.entries = index_.size();
    stats.file_bytes = FileSize();
    uint64_t indexed = 0;
    for (const auto& [key, entry] : index_) {
      indexed += entry.Footprint();
      if (!has_fingerprint_ || entry.fingerprint == last_fingerprint_) {
        stats.live_bytes += entry.Footprint();
      }
    }
    // Stale = dead record bytes (superseded appends) plus live-index
    // records from a swept-out generation.
    stats.stale_bytes =
        (records_end_ - kPackHeaderSize - indexed) +
        (indexed - stats.live_bytes);
    stats.finds = finds_;
    stats.saves = saves_;
    stats.sweeps = sweeps_;
    stats.page_cache_hits = page_hits_;
    stats.page_cache_misses = page_misses_;
    stats.page_cache_evictions = page_evictions_;
    return stats;
  }

  std::vector<std::shared_ptr<const core::CachedAnalysis>> LoadAll(
      const schema::Schema& schema, const core::ClosureOptions& options,
      size_t limit, size_t* invalid, obs::Observability* obs) override {
    uint64_t fingerprint = SchemaFingerprint(schema, options);
    std::vector<std::shared_ptr<const core::CachedAnalysis>> entries;
    {
      std::lock_guard<std::mutex> lock(mu_);
      last_fingerprint_ = fingerprint;
      has_fingerprint_ = true;
      for (const auto& [key, meta] : index_) {  // key order: deterministic
        if (entries.size() >= limit) break;
        if (meta.fingerprint != fingerprint) {
          if (invalid != nullptr) ++*invalid;
          continue;
        }
        auto decoded = DecodeLocked(meta, schema, options, obs);
        if (!decoded.ok()) {
          if (invalid != nullptr) ++*invalid;
          continue;
        }
        PageInsertLocked(key, fingerprint, decoded.value());
        entries.push_back(std::move(decoded).value());
      }
    }
    if (base_ != nullptr && entries.size() < limit) {
      // Worker overlay: surface the parent's entries too, own side
      // segment winning on a shared signature.
      std::vector<std::shared_ptr<const core::CachedAnalysis>> below =
          base_->LoadAll(schema, options, limit - entries.size(), invalid,
                         obs);
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& entry : below) {
        if (index_.count(SnapshotKeyHash(options, entry->roots)) != 0) {
          continue;
        }
        entries.push_back(std::move(entry));
      }
    }
    return entries;
  }

  common::Result<std::shared_ptr<SnapshotStore>> ForkWorker(
      int worker_id) override {
    std::string side_path = common::StrCat(path_, ".worker.", worker_id);
    // A side segment surviving a killed fleet belongs to a dead worker;
    // its records were either merged or are stale. Start clean.
    std::error_code ec;
    std::filesystem::remove(side_path, ec);
    auto side = std::make_shared<PackedStore>(std::move(side_path),
                                              page_cache_capacity_);
    common::Status status = side->OpenFile();
    if (!status.ok()) return status;
    side->base_ = shared_from_this();
    return std::shared_ptr<SnapshotStore>(std::move(side));
  }

  common::Status MergeWorkers() override {
    std::lock_guard<std::mutex> lock(mu_);
    std::filesystem::path self(path_);
    std::filesystem::path dir = self.parent_path();
    if (dir.empty()) dir = ".";
    std::string prefix = self.filename().string() + ".worker.";
    std::vector<std::pair<long, std::string>> sides;
    std::error_code ec;
    for (const auto& dirent : std::filesystem::directory_iterator(dir, ec)) {
      std::string name = dirent.path().filename().string();
      if (name.size() <= prefix.size() ||
          name.compare(0, prefix.size(), prefix) != 0) {
        continue;
      }
      std::string suffix = name.substr(prefix.size());
      if (suffix.find_first_not_of("0123456789") != std::string::npos) {
        continue;  // tmp files and other debris
      }
      sides.emplace_back(std::stol(suffix), dirent.path().string());
    }
    if (sides.empty()) return common::Status::Ok();
    std::sort(sides.begin(), sides.end());  // worker order: deterministic

    common::Status first_error;
    bool appended = false;
    for (const auto& [worker_id, side_path] : sides) {
      std::string file;
      {
        std::ifstream in(side_path, std::ios::binary);
        if (!in) {
          if (first_error.ok()) {
            first_error = common::InternalError(
                common::StrCat("pack ", side_path, ": cannot read"));
          }
          continue;
        }
        file.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
      }
      if (file.size() < kPackHeaderSize ||
          std::string_view(file).substr(0, kPackMagic.size()) != kPackMagic ||
          LoadU32(file.data() + 8) != kPackVersion ||
          LoadU32(file.data() + 12) != kByteOrderMark) {
        if (first_error.ok()) {
          first_error = PackError(side_path, "not a pack segment");
        }
        continue;
      }
      // Salvage whatever validates, even from a worker killed mid-save.
      PackIndex side_index;
      uint64_t side_end = 0;
      LoadIndex(file, &side_index, &side_end);
      common::Status fold = common::Status::Ok();
      for (const auto& [key, meta] : side_index) {
        auto it = index_.find(key);
        if (it != index_.end() && it->second.fingerprint == meta.fingerprint &&
            it->second.checksum == meta.checksum &&
            it->second.length == meta.length) {
          continue;  // already live — identical bytes by checksum
        }
        std::string_view bytes = std::string_view(file).substr(
            meta.offset + kRecordHeaderSize, meta.length);
        fold = AppendRawLocked(key, bytes, meta.fingerprint, meta.checksum);
        if (!fold.ok()) break;
        appended = true;
      }
      if (!fold.ok()) {
        if (first_error.ok()) first_error = fold;
        continue;  // leave the side segment for inspection
      }
      std::filesystem::remove(side_path, ec);
    }
    if (appended || first_error.ok()) {
      common::Status status = WriteFooterLocked();
      if (status.ok()) status = Remap();
      if (!status.ok() && first_error.ok()) first_error = status;
    }
    return first_error;
  }

 private:
  struct PageSlot {
    uint64_t fingerprint = 0;
    std::shared_ptr<const core::CachedAnalysis> entry;
    std::list<uint64_t>::iterator lru_it;
  };

  uint64_t FileSize() const {
    struct stat st;
    if (::fstat(fd_, &st) != 0) return 0;
    return static_cast<uint64_t>(st.st_size);
  }

  bool PwriteAll(std::string_view bytes, uint64_t offset) {
    size_t written = 0;
    while (written < bytes.size()) {
      ssize_t n = ::pwrite(fd_, bytes.data() + written,
                           bytes.size() - written,
                           static_cast<off_t>(offset + written));
      if (n <= 0) return false;
      written += static_cast<size_t>(n);
    }
    return true;
  }

  void CloseFile() {
    if (map_ != nullptr) {
      ::munmap(map_, map_len_);
      map_ = nullptr;
      map_len_ = 0;
    }
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  common::Status Remap() {
    if (map_ != nullptr) {
      ::munmap(map_, map_len_);
      map_ = nullptr;
      map_len_ = 0;
    }
    uint64_t size = FileSize();
    if (size == 0) return common::Status::Ok();
    void* mapped =
        ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd_, /*offset=*/0);
    if (mapped == MAP_FAILED) {
      return common::InternalError(
          common::StrCat("pack ", path_, ": mmap failed"));
    }
    map_ = static_cast<char*>(mapped);
    map_len_ = size;
    return common::Status::Ok();
  }

  // Appends one record at records_end_ (overwriting the old footer);
  // the caller rewrites the footer and remaps afterwards. Record
  // first, footer second: a torn append loses only this record.
  common::Status AppendRawLocked(uint64_t key, std::string_view entry_bytes,
                                 uint64_t fingerprint, uint64_t checksum) {
    uint64_t offset = records_end_;
    uint64_t footprint = AlignUp8(kRecordHeaderSize + entry_bytes.size());
    std::string record(footprint, '\0');
    uint64_t length = entry_bytes.size();
    std::memcpy(record.data(), &key, sizeof key);
    std::memcpy(record.data() + 8, &length, sizeof length);
    std::memcpy(record.data() + kRecordHeaderSize, entry_bytes.data(),
                entry_bytes.size());
    if (!PwriteAll(record, offset)) {
      return common::InternalError(
          common::StrCat("pack ", path_, ": append failed"));
    }
    records_end_ = offset + footprint;
    index_[key] = IndexEntry{offset, length, fingerprint, checksum};
    return common::Status::Ok();
  }

  common::Status WriteFooterLocked() {
    ByteWriter index_writer;
    for (const auto& [key, entry] : index_) {
      index_writer.PutU64(key);
      index_writer.PutU64(entry.offset);
      index_writer.PutU64(entry.length);
      index_writer.PutU64(entry.fingerprint);
      index_writer.PutU64(entry.checksum);
    }
    ByteWriter trailer;
    trailer.PutU64(records_end_);
    trailer.PutU64(index_.size());
    trailer.PutU64(Fnv1a64(index_writer.buffer()));
    trailer.PutFixedString(kPackIndexMagic);
    std::string footer = index_writer.Release() + trailer.buffer();
    if (!PwriteAll(footer, records_end_)) {
      return common::InternalError(
          common::StrCat("pack ", path_, ": footer write failed"));
    }
    // Drop stale tail bytes (an older, larger footer) so the trailer
    // is exactly at EOF, where LoadIndex looks for it.
    if (::ftruncate(fd_, static_cast<off_t>(records_end_ + footer.size())) !=
        0) {
      return common::InternalError(
          common::StrCat("pack ", path_, ": truncate failed"));
    }
    return common::Status::Ok();
  }

  uint64_t SumFootprintLocked() const {
    uint64_t sum = 0;
    for (const auto& [key, entry] : index_) sum += entry.Footprint();
    return sum;
  }

  common::Result<std::shared_ptr<const core::CachedAnalysis>> DecodeLocked(
      const IndexEntry& meta, const schema::Schema& schema,
      const core::ClosureOptions& options, obs::Observability* obs) {
    if (meta.offset + kRecordHeaderSize + meta.length > map_len_) {
      return common::InternalError(
          common::StrCat("pack ", path_, ": mapping out of date"));
    }
    std::string_view bytes(map_ + meta.offset + kRecordHeaderSize,
                           meta.length);
    return DecodeEntry(schema, options, path_, bytes, obs);
  }

  std::shared_ptr<const core::CachedAnalysis> PageLookupLocked(
      uint64_t key, uint64_t fingerprint,
      const std::vector<std::string>& roots) {
    auto it = pages_.find(key);
    if (it == pages_.end()) return nullptr;
    if (it->second.fingerprint != fingerprint ||
        it->second.entry->roots != roots) {
      return nullptr;  // stale generation or key collision: re-decode
    }
    page_lru_.splice(page_lru_.begin(), page_lru_, it->second.lru_it);
    return it->second.entry;
  }

  void PageInsertLocked(uint64_t key, uint64_t fingerprint,
                        std::shared_ptr<const core::CachedAnalysis> entry) {
    auto it = pages_.find(key);
    if (it != pages_.end()) {
      it->second.fingerprint = fingerprint;
      it->second.entry = std::move(entry);
      page_lru_.splice(page_lru_.begin(), page_lru_, it->second.lru_it);
      return;
    }
    if (pages_.size() >= page_cache_capacity_) {
      ++page_evictions_;
      pages_.erase(page_lru_.back());
      page_lru_.pop_back();
    }
    page_lru_.push_front(key);
    pages_.emplace(key,
                   PageSlot{fingerprint, std::move(entry), page_lru_.begin()});
  }

  const std::string path_;
  const size_t page_cache_capacity_;
  // Worker overlay: non-null on stores returned by ForkWorker; Find
  // and LoadAll fall through to it on a local miss.
  std::shared_ptr<SnapshotStore> base_;

  mutable std::mutex mu_;
  int fd_ = -1;
  char* map_ = nullptr;
  size_t map_len_ = 0;
  uint64_t records_end_ = kPackHeaderSize;
  PackIndex index_;

  // Decoded-closure LRU ("page cache"), keyed by signature.
  std::unordered_map<uint64_t, PageSlot> pages_;
  std::list<uint64_t> page_lru_;  // most recent at the front

  uint64_t finds_ = 0;
  uint64_t saves_ = 0;
  uint64_t sweeps_ = 0;
  uint64_t page_hits_ = 0;
  uint64_t page_misses_ = 0;
  uint64_t page_evictions_ = 0;
  // The generation Stats splits live/stale against: the fingerprint of
  // the last (schema, options) this store served.
  uint64_t last_fingerprint_ = 0;
  bool has_fingerprint_ = false;
};

}  // namespace

common::Result<std::shared_ptr<SnapshotStore>> OpenPackedStore(
    std::string path, size_t page_cache_capacity) {
  auto store =
      std::make_shared<PackedStore>(std::move(path), page_cache_capacity);
  common::Status status = store->OpenFile();
  if (!status.ok()) return status;
  return std::shared_ptr<SnapshotStore>(std::move(store));
}

common::Result<MigrateStats> MigrateDirectoryToPack(
    const schema::Schema& schema, const core::ClosureOptions& options,
    const std::string& dir, const std::string& pack_path,
    obs::Observability* obs) {
  std::shared_ptr<SnapshotStore> source = OpenDirectoryStore(dir);
  OODBSEC_ASSIGN_OR_RETURN(std::shared_ptr<SnapshotStore> pack,
                           OpenPackedStore(pack_path));
  MigrateStats stats;
  std::vector<std::shared_ptr<const core::CachedAnalysis>> entries =
      source->LoadAll(schema, options, /*limit=*/SIZE_MAX, &stats.invalid,
                      obs);
  for (const auto& entry : entries) {
    common::Status status = pack->Save(schema, options, *entry);
    if (!status.ok()) return status;
    // Read the migrated record back and hold it to the directory copy:
    // digest equality per entry, or the migration fails.
    auto back = pack->Find(schema, options, entry->roots, obs);
    if (!back.ok()) return back.status();
    if (back.value()->closure->FactSetDigest() !=
        entry->closure->FactSetDigest()) {
      return common::InternalError(
          common::StrCat("pack ", pack_path,
                         ": migrated record digest diverges from ", dir));
    }
    ++stats.migrated;
  }
  return stats;
}

}  // namespace oodbsec::snapshot
