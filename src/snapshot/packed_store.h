// PackedStore: the single-file snapshot storage engine (the production
// SnapshotStore).
//
// The directory tier (one file per capability signature) pays a file
// open per probe, scatters the cache across thousands of inodes at
// production scale, and never reclaims stale generations. PackedStore
// keeps every cached closure in ONE segment file with an on-disk index
// of far pointers (segment offset + length) keyed by the capability
// signature hash — the same key the directory tier spells as a hex
// file name — following the page/far-pointer idiom of Tokyo Cabinet's
// B-tree pager (see ROADMAP).
//
// File layout (all integers host-endian; a pack never crosses machines
// of different endianness — the mmap replay path aliases raw structs,
// so unlike directory snapshots a foreign pack is refused, not
// swapped):
//
//   header   "OODBPACK" | pack version u32 | byte-order marker u32
//            | reserved u64 x2                               (32 bytes)
//   records  at 8-aligned offsets, each:
//              key u64 | entry length u64 | entry | zero pad to 8
//   footer   index: per live record
//              key u64 | offset u64 | length u64
//              | fingerprint u64 | checksum u64              (40 bytes)
//            sorted by key, then trailer:
//              index offset u64 | entry count u64
//              | index checksum u64 (FNV-1a) | "OODBPIDX"    (32 bytes)
//
// Each entry is a format-v3 snapshot record: the v2 per-entry header
// ("OODBSNAP" | version 3 | byte-order marker | schema fingerprint |
// FNV-1a payload checksum) followed by a payload laid out for in-place
// replay:
//
//   roots (count + strings) | fact-set digest | rule-label table
//   | step count u32 | arena count u32 | steps offset u32
//   | zero pad to 8 | core::PackedStep[steps] | premise arena i32[]
//
// The step array and premise arena are aliased straight out of the
// mmap'd segment (core::ReplayView) — replay reads facts in place, no
// intermediate buffers. The fail-safe invalidation ladder is the same
// as the directory tier's: magic/version → byte order → fingerprint →
// checksum → structural validation → digest equality.
//
// Durability: appends go record-first, footer-second, so a torn write
// loses at most the record being appended; Open falls back from an
// invalid trailer to scanning self-delimiting records from the top and
// keeps every record that validates (this covers both a truncated
// segment and a torn index). Retention sweeps compact online: live
// records of the current schema generation are rewritten into a fresh
// segment and swapped in by atomic tmp+rename.
//
// An LRU page cache keyed by signature holds hot decoded closures, so
// repeated Finds of one signature (e.g. the session cache and the
// service cache sharing a store) pay one replay.
//
// Sharded audits: ForkWorker (called in the forked child) opens a
// private side segment "<path>.worker.<id>" layered over the parent
// segment — reads fall through, writes append locally, so sibling
// workers never contend. MergeWorkers folds the side segments back
// into the main one, copying record bytes verbatim (replay is
// deterministic, so merged records reproduce byte-identical reports).
#ifndef OODBSEC_SNAPSHOT_PACKED_STORE_H_
#define OODBSEC_SNAPSHOT_PACKED_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "obs/obs.h"
#include "schema/schema.h"
#include "snapshot/snapshot_store.h"

namespace oodbsec::snapshot {

inline constexpr std::string_view kPackMagic = "OODBPACK";
inline constexpr std::string_view kPackIndexMagic = "OODBPIDX";
inline constexpr uint32_t kPackVersion = 1;
// The per-entry format inside packs: v3 = the v2 header over the
// packed in-place payload. Directory snapshots stay at v2.
inline constexpr uint32_t kPackedEntryVersion = 3;

// Opens (creating if absent) the packed segment at `path`. Fails when
// the file exists but is not a pack, is a newer pack version, or was
// written on a machine of the opposite endianness. A torn footer or
// truncated tail is NOT an error — recovery keeps every record that
// validates. `page_cache_capacity` bounds the decoded-closure LRU
// (min 1).
common::Result<std::shared_ptr<SnapshotStore>> OpenPackedStore(
    std::string path, size_t page_cache_capacity = 64);

// One-shot migration: loads every valid snapshot file in `dir` (sorted,
// invalid files skipped and counted) into the pack at `pack_path`, then
// reads each entry back and asserts fact-set digest equality against
// the directory copy. Fails on the first divergence — a failed
// migration leaves the directory untouched.
struct MigrateStats {
  size_t migrated = 0;
  size_t invalid = 0;
};
common::Result<MigrateStats> MigrateDirectoryToPack(
    const schema::Schema& schema, const core::ClosureOptions& options,
    const std::string& dir, const std::string& pack_path,
    obs::Observability* obs = nullptr);

}  // namespace oodbsec::snapshot

#endif  // OODBSEC_SNAPSHOT_PACKED_STORE_H_
