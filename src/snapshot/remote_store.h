// The networked snapshot tier: a SnapshotStore client and the server
// that fronts a real store over TCP.
//
// A distributed audit fleet (service/tcp_shard.h) wants every worker
// warm, but the packed segment lives on the coordinator's disk. Rather
// than rsync pack files around, the coordinator runs a StoreServer in
// front of its store and each worker mounts a RemoteSnapshotStore —
// the same SnapshotStore interface the closure cache already speaks,
// so the L1/L2 tiering code does not know the L2 is remote.
//
// What crosses the wire is a *decoded directory-format record* (the
// EncodeSnapshot byte string: header + checksummed derivation log),
// never a pack page: packs stay server-local, and the record's own v2
// byte-order marker means a foreign-endian worker can still decode a
// snapshot record even though the shard protocol itself refuses
// foreign-endian peers. Both ends validate independently — the server
// replays and digest-checks before encoding, the client re-validates
// with DecodeSnapshot after the bytes arrive — so a lying peer or a
// corrupted frame degrades to a miss, never to a wrong closure.
//
// Protocol (net/frame.h kStore* frames, one request in flight per
// connection): hello carries the protocol version, the byte-order
// mark, and the schema fingerprint; a mismatch in any is refused with
// a message. Then Find(roots) -> Found(bytes) | Miss | Fail,
// Save(bytes) -> SaveAck, Stats -> StatsReply. The client reconnects
// (bounded) after an I/O failure and fails an operation only when the
// retry also fails; a hello *refusal* is cached and fails fast — a
// fingerprint mismatch will not fix itself mid-audit.
#ifndef OODBSEC_SNAPSHOT_REMOTE_STORE_H_
#define OODBSEC_SNAPSHOT_REMOTE_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/closure.h"
#include "net/socket.h"
#include "schema/schema.h"
#include "snapshot/snapshot_store.h"

namespace oodbsec::snapshot {

struct RemoteStoreOptions {
  // Per-operation stall bound (frame read/write).
  int io_timeout_ms = 30000;
  // Bounded-retry dialing (see net/socket.h).
  net::DialOptions dial;
};

// Opens a SnapshotStore speaking the store protocol to `host_port`.
// The connection is lazy (first Find/Save dials and hellos), so opening
// never blocks and ForkWorker can hand fresh instances to forked
// children. Sweep is server-side only and returns kFailedPrecondition;
// LoadAll over the wire is deliberately unsupported (returns empty) —
// remote warmth comes from per-signature Finds.
std::shared_ptr<SnapshotStore> OpenRemoteStore(
    std::string host_port, const RemoteStoreOptions& options = {});

// Serves a backing SnapshotStore to RemoteSnapshotStore clients.
// Thread-per-connection; Start binds (ephemeral when port == 0, check
// port() after) and returns immediately. `schema` and `backing` must
// outlive the server. Stop() (and the destructor) drains connections.
class StoreServer {
 public:
  StoreServer() = default;
  ~StoreServer();
  StoreServer(const StoreServer&) = delete;
  StoreServer& operator=(const StoreServer&) = delete;

  common::Status Start(const schema::Schema& schema,
                       const core::ClosureOptions& options,
                       std::shared_ptr<SnapshotStore> backing,
                       uint16_t port = 0, bool loopback_only = true);
  uint16_t port() const { return port_; }
  bool running() const { return accept_thread_.joinable(); }
  void Stop();

 private:
  void AcceptLoop();
  void ServeConnection(net::Socket conn);

  const schema::Schema* schema_ = nullptr;
  core::ClosureOptions options_;
  std::shared_ptr<SnapshotStore> backing_;
  uint64_t fingerprint_ = 0;
  int io_timeout_ms_ = 30000;
  net::Listener listener_;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
};

}  // namespace oodbsec::snapshot

#endif  // OODBSEC_SNAPSHOT_REMOTE_STORE_H_
