// Little byte-buffer codec for the snapshot tier and the shard wire
// protocol: append-only writer, bounds-checked reader.
//
// The format is deliberately dumb — fixed-width little-endian integers
// and length-prefixed strings, no varints, no alignment tricks — because
// every consumer is this repository on the same machine (snapshot files
// are a cache tier, not an interchange format, and the shard pipe
// connects two processes of one build). What matters is that a
// truncated or corrupted buffer NEVER crashes the reader: every Get*
// checks the remaining size first and latches a failure flag, so
// callers can decode an entire structure optimistically and test ok()
// once at the end (reads after a failure return zero values). The one
// concession to interchange is set_byte_swap(): the snapshot loader
// arms it when a file's byte-order marker reads back reversed, so
// foreign-endian snapshots decode instead of being refused.
#ifndef OODBSEC_SNAPSHOT_BINIO_H_
#define OODBSEC_SNAPSHOT_BINIO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace oodbsec::snapshot {

class ByteWriter {
 public:
  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutFixed(&v, sizeof v); }
  void PutU64(uint64_t v) { PutFixed(&v, sizeof v); }
  void PutI32(int32_t v) { PutFixed(&v, sizeof v); }
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buffer_.append(s);
  }
  // Raw bytes, no length prefix (fixed-size fields like magic strings).
  void PutFixedString(std::string_view s) { buffer_.append(s); }

  const std::string& buffer() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }

 private:
  void PutFixed(const void* v, size_t n) {
    // Host byte order: snapshots and shard pipes never cross machines
    // of different endianness (same-host cache / same-host fork).
    buffer_.append(reinterpret_cast<const char*>(v), n);
  }

  std::string buffer_;
};

// Byte-swap helpers for the foreign-endian snapshot reader: a snapshot
// saved on a machine of the opposite endianness has every multi-byte
// integer byte-swapped, and nothing else (strings and u8 fields are
// byte sequences). Swapping on read recovers the writer's values.
inline constexpr uint16_t Bswap16(uint16_t v) {
  return static_cast<uint16_t>((v >> 8) | (v << 8));
}
inline constexpr uint32_t Bswap32(uint32_t v) {
  return (v >> 24) | ((v >> 8) & 0x0000ff00u) | ((v << 8) & 0x00ff0000u) |
         (v << 24);
}
inline constexpr uint64_t Bswap64(uint64_t v) {
  return (static_cast<uint64_t>(Bswap32(static_cast<uint32_t>(v))) << 32) |
         Bswap32(static_cast<uint32_t>(v >> 32));
}

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  // Arms foreign-endian decoding: every subsequent multi-byte integer
  // (including string length prefixes) is byte-swapped after the read.
  // The caller decides from the header's byte-order marker.
  void set_byte_swap(bool swap) { swap_ = swap; }
  bool byte_swap() const { return swap_; }

  uint8_t GetU8() {
    uint8_t v = 0;
    GetFixed(&v, sizeof v);
    return v;
  }
  uint32_t GetU32() {
    uint32_t v = 0;
    GetFixed(&v, sizeof v);
    return swap_ ? Bswap32(v) : v;
  }
  uint64_t GetU64() {
    uint64_t v = 0;
    GetFixed(&v, sizeof v);
    return swap_ ? Bswap64(v) : v;
  }
  int32_t GetI32() {
    int32_t v = 0;
    GetFixed(&v, sizeof v);
    if (swap_) {
      uint32_t u = Bswap32(static_cast<uint32_t>(v));
      std::memcpy(&v, &u, sizeof v);
    }
    return v;
  }
  std::string GetString() {
    uint32_t n = GetU32();
    if (n > remaining()) {
      failed_ = true;
      return {};
    }
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  size_t remaining() const { return data_.size() - pos_; }
  // True while every read so far stayed in bounds.
  bool ok() const { return !failed_; }
  // True when the buffer was consumed exactly.
  bool exhausted() const { return ok() && remaining() == 0; }

 private:
  void GetFixed(void* v, size_t n) {
    if (failed_ || remaining() < n) {
      failed_ = true;
      return;
    }
    std::memcpy(v, data_.data() + pos_, n);
    pos_ += n;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
  bool swap_ = false;
};

// FNV-1a 64-bit: the checksum of snapshot payloads, the schema
// fingerprint accumulator, and the shard partitioner's signature hash.
// Stable across processes and runs by construction (no seeding).
inline uint64_t Fnv1a64(std::string_view data, uint64_t seed = 0xcbf29ce484222325ull) {
  uint64_t hash = seed;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

// --- stream-hardened fd I/O ------------------------------------------
//
// The ByteReader above decodes a buffer that is already complete; these
// helpers are how a complete buffer gets off a pipe or socket in the
// first place. Stream fds deliver *short* reads and writes routinely —
// a socket hands back whatever one TCP segment carried, a signal
// interrupts a pipe read with EINTR mid-transfer — so every network or
// pipe consumer must loop. These are the one shared loop (the fork
// shard pipes, the TCP shard frames, and the remote snapshot tier all
// sit on them), exercised by the dribbling-pipe test in net_test.
//
// Blocking fds only; the deadline-bounded variants for nonblocking
// sockets live in net/socket.h.

// Reads exactly `n` bytes, retrying short reads and EINTR. False on
// EOF-before-n or a real error (errno preserved from the failing call).
bool ReadFull(int fd, void* buf, size_t n);

// Writes exactly `n` bytes, retrying short writes and EINTR. False on a
// real error (errno preserved).
bool WriteFull(int fd, const void* buf, size_t n);
inline bool WriteFull(int fd, std::string_view data) {
  return WriteFull(fd, data.data(), data.size());
}

// Reads `fd` to EOF (growing the result), retrying EINTR. Used by the
// fork shard coordinator, whose worker messages are EOF-delimited.
std::string ReadToEof(int fd);

}  // namespace oodbsec::snapshot

#endif  // OODBSEC_SNAPSHOT_BINIO_H_
