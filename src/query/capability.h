// Capability enforcement for queries (paper §2): a user may invoke only
// the access functions and special functions on their capability list.
// Basic functions (comparisons, arithmetic) are not access controlled.
#ifndef OODBSEC_QUERY_CAPABILITY_H_
#define OODBSEC_QUERY_CAPABILITY_H_

#include <set>
#include <string>

#include "common/status.h"
#include "query/query.h"
#include "schema/user.h"

namespace oodbsec::query {

// Collects the names of all access/special functions a bound query
// invokes (anywhere: items, from-sources, where, nested queries).
std::set<std::string> CollectInvokedFunctions(const SelectQuery& query);

// PermissionDenied if the bound query invokes any function not granted
// to `user`.
common::Status CheckQueryCapabilities(const SelectQuery& query,
                                      const schema::User& user);

}  // namespace oodbsec::query

#endif  // OODBSEC_QUERY_CAPABILITY_H_
