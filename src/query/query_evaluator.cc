#include "query/query_evaluator.h"

#include "common/strings.h"
#include "query/capability.h"

namespace oodbsec::query {

using common::Result;
using common::Status;
using types::Value;

std::string QueryResult::ToString() const {
  std::string out;
  for (const std::vector<Value>& row : rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const Value& v : row) cells.push_back(v.ToString());
    out += "(";
    out += common::Join(cells, ", ");
    out += ")\n";
  }
  return out;
}

Result<QueryResult> QueryEvaluator::Run(const SelectQuery& query) {
  if (!query.bound) {
    return common::FailedPreconditionError("query is not bound");
  }
  if (user_ != nullptr) {
    OODBSEC_RETURN_IF_ERROR(CheckQueryCapabilities(query, *user_));
  }
  exec::Environment env;
  return RunWithEnv(query, env);
}

Result<QueryResult> QueryEvaluator::RunWithEnv(const SelectQuery& query,
                                               exec::Environment& env) {
  QueryResult result;
  OODBSEC_RETURN_IF_ERROR(EvalBindings(query, env, 0, result));
  return result;
}

Status QueryEvaluator::EvalBindings(const SelectQuery& query,
                                    exec::Environment& env,
                                    size_t binding_index,
                                    QueryResult& result) {
  if (binding_index == query.bindings.size()) {
    return EvalRow(query, env, result);
  }
  const FromBinding& binding = query.bindings[binding_index];

  if (!binding.class_name.empty()) {
    // Snapshot the extent: queries do not create objects, so iteration
    // over a copy matches iteration over the live extent; the copy keeps
    // the loop safe should that ever change.
    std::vector<types::Oid> extent = db_.Extent(binding.class_name);
    for (types::Oid oid : extent) {
      env.Push(binding.var, Value::Object(oid));
      Status status = EvalBindings(query, env, binding_index + 1, result);
      env.Pop();
      OODBSEC_RETURN_IF_ERROR(status);
    }
    return Status::Ok();
  }

  exec::Evaluator evaluator(db_);
  OODBSEC_ASSIGN_OR_RETURN(Value set_value,
                           evaluator.Eval(*binding.set_expr, env));
  if (set_value.is_null()) return Status::Ok();  // empty source
  if (!set_value.is_set()) {
    return common::TypeError(
        common::StrCat("from-source of '", binding.var,
                       "' evaluated to non-set ", set_value.ToString()));
  }
  for (const Value& element : set_value.set_value()) {
    env.Push(binding.var, element);
    Status status = EvalBindings(query, env, binding_index + 1, result);
    env.Pop();
    OODBSEC_RETURN_IF_ERROR(status);
  }
  return Status::Ok();
}

Status QueryEvaluator::EvalRow(const SelectQuery& query,
                               exec::Environment& env, QueryResult& result) {
  exec::Evaluator evaluator(db_);

  if (query.where != nullptr) {
    OODBSEC_ASSIGN_OR_RETURN(Value cond, evaluator.Eval(*query.where, env));
    if (!cond.is_bool() || !cond.bool_value()) return Status::Ok();
  }

  std::vector<Value> row;
  row.reserve(query.items.size());
  for (const SelectItem& item : query.items) {
    if (item.subquery != nullptr) {
      OODBSEC_ASSIGN_OR_RETURN(QueryResult sub,
                               RunWithEnv(*item.subquery, env));
      types::ValueSet elements;
      elements.reserve(sub.rows.size());
      for (std::vector<Value>& sub_row : sub.rows) {
        elements.push_back(std::move(sub_row[0]));
      }
      row.push_back(Value::Set(std::move(elements)));
    } else {
      OODBSEC_ASSIGN_OR_RETURN(Value value, evaluator.Eval(*item.expr, env));
      row.push_back(std::move(value));
    }
  }
  result.rows.push_back(std::move(row));
  return Status::Ok();
}

}  // namespace oodbsec::query
