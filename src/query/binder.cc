#include "query/binder.h"

#include <vector>

#include "common/strings.h"
#include "lang/type_checker.h"

namespace oodbsec::query {

namespace {

using common::Status;

Status BindImpl(SelectQuery& query, const schema::Schema& schema,
                std::vector<schema::Param>& outer_vars) {
  lang::TypeChecker checker(schema, schema.catalog());
  size_t outer_mark = outer_vars.size();

  // From clause, left to right; each binding sees the previous ones.
  for (FromBinding& binding : query.bindings) {
    // A bare identifier naming a class is an extent source.
    if (binding.set_expr->kind() == lang::ExprKind::kVarRef) {
      const std::string& name = binding.set_expr->AsVarRef().name();
      const schema::ClassDef* cls = schema.FindClass(name);
      if (cls != nullptr) {
        binding.class_name = name;
        binding.element_type = cls->type();
        outer_vars.push_back({binding.var, cls->type()});
        continue;
      }
    }
    // Otherwise: a set-valued expression over the variables bound so far.
    Status status =
        checker.CheckWithLocals(*binding.set_expr, outer_vars, nullptr);
    if (!status.ok()) {
      outer_vars.resize(outer_mark);
      return status.WithContext(
          common::StrCat("in from-source of '", binding.var, "'"));
    }
    const types::Type* type = binding.set_expr->type();
    if (!type->is_set()) {
      outer_vars.resize(outer_mark);
      return common::TypeError(common::StrCat(
          "from-source of '", binding.var, "' has type ", type->ToString(),
          "; expected a class name or a set-valued expression"));
    }
    binding.element_type = type->element();
    outer_vars.push_back({binding.var, type->element()});
  }

  // Items.
  for (size_t i = 0; i < query.items.size(); ++i) {
    SelectItem& item = query.items[i];
    if (item.subquery != nullptr) {
      if (item.subquery->items.size() != 1) {
        outer_vars.resize(outer_mark);
        return common::TypeError(
            "nested select must have exactly one item (it yields a set)");
      }
      Status status = BindImpl(*item.subquery, schema, outer_vars);
      if (!status.ok()) {
        outer_vars.resize(outer_mark);
        return status;
      }
    } else {
      Status status = checker.CheckWithLocals(*item.expr, outer_vars, nullptr);
      if (!status.ok()) {
        outer_vars.resize(outer_mark);
        return status.WithContext(common::StrCat("in select item ", i + 1));
      }
    }
  }

  // Where clause.
  if (query.where != nullptr) {
    Status status = checker.CheckWithLocals(
        *query.where, outer_vars, schema.pool().Bool());
    if (!status.ok()) {
      outer_vars.resize(outer_mark);
      return status.WithContext("in where clause");
    }
  }

  outer_vars.resize(outer_mark);
  query.bound = true;
  return Status::Ok();
}

}  // namespace

Status BindQuery(SelectQuery& query, const schema::Schema& schema) {
  std::vector<schema::Param> outer_vars;
  return BindImpl(query, schema, outer_vars);
}

}  // namespace oodbsec::query
