#include "query/query_parser.h"

#include "common/strings.h"
#include "lang/printer.h"

namespace oodbsec::query {

namespace {

using lang::TokenKind;

std::unique_ptr<SelectQuery> ParseQueryImpl(lang::TokenStream& stream,
                                            common::DiagnosticSink& sink) {
  if (!stream.Expect(TokenKind::kKwSelect, "'select'", sink)) return nullptr;
  auto query = std::make_unique<SelectQuery>();

  // Items.
  while (true) {
    SelectItem item;
    if (stream.Check(TokenKind::kKwSelect) ||
        (stream.Check(TokenKind::kLParen) &&
         stream.Peek(1).kind == TokenKind::kKwSelect)) {
      bool parenthesized = stream.Match(TokenKind::kLParen);
      item.subquery = ParseQueryImpl(stream, sink);
      if (item.subquery == nullptr) return nullptr;
      if (parenthesized &&
          !stream.Expect(TokenKind::kRParen, "')'", sink)) {
        return nullptr;
      }
    } else {
      item.expr = lang::ParseExpression(stream, sink);
      if (item.expr == nullptr) return nullptr;
    }
    query->items.push_back(std::move(item));
    if (!stream.Match(TokenKind::kComma)) break;
  }

  // From clause.
  if (!stream.Expect(TokenKind::kKwFrom, "'from'", sink)) return nullptr;
  while (true) {
    if (!stream.Check(TokenKind::kIdentifier)) {
      sink.Error(stream.location(), "expected from-clause variable");
      return nullptr;
    }
    FromBinding binding;
    binding.var = stream.Advance().text;
    if (!stream.Expect(TokenKind::kKwIn, "'in'", sink)) return nullptr;
    binding.set_expr = lang::ParseExpression(stream, sink);
    if (binding.set_expr == nullptr) return nullptr;
    query->bindings.push_back(std::move(binding));
    if (!stream.Match(TokenKind::kComma)) break;
  }

  // Optional where clause.
  if (stream.Match(TokenKind::kKwWhere)) {
    query->where = lang::ParseExpression(stream, sink);
    if (query->where == nullptr) return nullptr;
  }

  return query;
}

}  // namespace

std::string SelectQuery::ToString() const {
  std::string out = "select ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    if (items[i].subquery != nullptr) {
      out += "(";
      out += items[i].subquery->ToString();
      out += ")";
    } else {
      out += lang::PrintExpr(*items[i].expr);
    }
  }
  out += " from ";
  for (size_t i = 0; i < bindings.size(); ++i) {
    if (i > 0) out += ", ";
    out += bindings[i].var;
    out += " in ";
    if (!bindings[i].class_name.empty()) {
      out += bindings[i].class_name;
    } else {
      out += lang::PrintExpr(*bindings[i].set_expr);
    }
  }
  if (where != nullptr) {
    out += " where ";
    out += lang::PrintExpr(*where);
  }
  return out;
}

std::unique_ptr<SelectQuery> ParseQuery(lang::TokenStream& stream,
                                        common::DiagnosticSink& sink) {
  return ParseQueryImpl(stream, sink);
}

common::Result<std::unique_ptr<SelectQuery>> ParseQueryString(
    std::string_view source) {
  lang::TokenStream stream(source);
  common::DiagnosticSink sink;
  std::unique_ptr<SelectQuery> query = ParseQuery(stream, sink);
  if (query == nullptr) return sink.ToStatus();
  if (!stream.AtEnd()) {
    return common::ParseError(
        common::StrCat("trailing input at ", stream.location().ToString(),
                       ": ", DescribeToken(stream.Peek())));
  }
  return query;
}

}  // namespace oodbsec::query
