// The SQL-like query language (paper §2):
//
//   select item, … from A1 in C1, …, An in Cn where condition
//
// From-sources are class names (extents) or set-valued expressions over
// earlier from-variables (e.g. `child(p)`). Items are expressions —
// including side-effecting w_<att> calls, evaluated left to right — or
// nested select queries, which yield set values and must have exactly
// one item.
//
// A query must be bound (query/binder.h) before evaluation; binding
// resolves from-sources, type checks items and the condition, and
// annotates every expression.
#ifndef OODBSEC_QUERY_QUERY_H_
#define OODBSEC_QUERY_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "lang/ast.h"

namespace oodbsec::query {

class SelectQuery;

// One from-clause binding `var in source`.
struct FromBinding {
  std::string var;
  // The unbound source expression. After binding, either `class_name` is
  // set (the source was a class extent) or `set_expr` remains and is type
  // checked to a set type.
  std::unique_ptr<lang::Expr> set_expr;
  std::string class_name;
  const types::Type* element_type = nullptr;  // the type of `var`
};

// One select item: exactly one of `expr` / `subquery` is set.
struct SelectItem {
  std::unique_ptr<lang::Expr> expr;
  std::unique_ptr<SelectQuery> subquery;
};

class SelectQuery {
 public:
  std::vector<SelectItem> items;
  std::vector<FromBinding> bindings;
  std::unique_ptr<lang::Expr> where;  // may be null

  bool bound = false;  // set by BindQuery

  // Re-renders the query as source text.
  std::string ToString() const;
};

}  // namespace oodbsec::query

#endif  // OODBSEC_QUERY_QUERY_H_
