#include "query/capability.h"

#include "common/strings.h"

namespace oodbsec::query {

namespace {

void CollectFromExpr(const lang::Expr& expr, std::set<std::string>& names) {
  switch (expr.kind()) {
    case lang::ExprKind::kConstant:
    case lang::ExprKind::kVarRef:
      return;
    case lang::ExprKind::kCall: {
      const lang::CallExpr& call = expr.AsCall();
      if (call.target() == lang::CallTarget::kAccess ||
          call.target() == lang::CallTarget::kReadAttr ||
          call.target() == lang::CallTarget::kWriteAttr) {
        names.insert(call.name());
      }
      for (const auto& arg : call.args()) CollectFromExpr(*arg, names);
      return;
    }
    case lang::ExprKind::kLet: {
      const lang::LetExpr& let = expr.AsLet();
      for (const auto& binding : let.bindings()) {
        CollectFromExpr(*binding.init, names);
      }
      CollectFromExpr(let.body(), names);
      return;
    }
  }
}

void CollectFromQuery(const SelectQuery& query, std::set<std::string>& names) {
  for (const FromBinding& binding : query.bindings) {
    if (binding.class_name.empty()) {
      CollectFromExpr(*binding.set_expr, names);
    }
  }
  for (const SelectItem& item : query.items) {
    if (item.subquery != nullptr) {
      CollectFromQuery(*item.subquery, names);
    } else {
      CollectFromExpr(*item.expr, names);
    }
  }
  if (query.where != nullptr) CollectFromExpr(*query.where, names);
}

}  // namespace

std::set<std::string> CollectInvokedFunctions(const SelectQuery& query) {
  std::set<std::string> names;
  CollectFromQuery(query, names);
  return names;
}

common::Status CheckQueryCapabilities(const SelectQuery& query,
                                      const schema::User& user) {
  for (const std::string& name : CollectInvokedFunctions(query)) {
    if (!user.MayInvoke(name)) {
      return common::PermissionDeniedError(common::StrCat(
          "user '", user.name(), "' may not invoke '", name, "'"));
    }
  }
  return common::Status::Ok();
}

}  // namespace oodbsec::query
