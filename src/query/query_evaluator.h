// Query execution: nested-loop evaluation over class extents and set
// sources, where-filtering, and left-to-right item evaluation (so
// side-effecting items such as w_budget(b, 1) interleave exactly as in
// the paper's probing query, §3.1).
#ifndef OODBSEC_QUERY_QUERY_EVALUATOR_H_
#define OODBSEC_QUERY_QUERY_EVALUATOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "exec/evaluator.h"
#include "query/query.h"
#include "schema/user.h"
#include "store/database.h"
#include "types/value.h"

namespace oodbsec::query {

struct QueryResult {
  // One row per surviving from-clause assignment; one value per item.
  std::vector<std::vector<types::Value>> rows;

  std::string ToString() const;
};

class QueryEvaluator {
 public:
  // `user` restricts which functions the query may invoke; nullptr runs
  // with no restriction (administrator).
  QueryEvaluator(store::Database& db, const schema::User* user)
      : db_(db), user_(user) {}

  // Runs a bound query. Fails with PermissionDenied before touching the
  // database if the capability check fails.
  common::Result<QueryResult> Run(const SelectQuery& query);

 private:
  common::Result<QueryResult> RunWithEnv(const SelectQuery& query,
                                         exec::Environment& env);
  common::Status EvalBindings(const SelectQuery& query,
                              exec::Environment& env, size_t binding_index,
                              QueryResult& result);
  common::Status EvalRow(const SelectQuery& query, exec::Environment& env,
                         QueryResult& result);

  store::Database& db_;
  const schema::User* user_;
};

}  // namespace oodbsec::query

#endif  // OODBSEC_QUERY_QUERY_EVALUATOR_H_
