// Parser for the query language. Reuses the shared TokenStream/expression
// parser from src/lang.
#ifndef OODBSEC_QUERY_QUERY_PARSER_H_
#define OODBSEC_QUERY_QUERY_PARSER_H_

#include <memory>
#include <string_view>

#include "common/diagnostics.h"
#include "common/result.h"
#include "lang/parser.h"
#include "query/query.h"

namespace oodbsec::query {

// Parses one select query from `stream`; nullptr on error (reported into
// `sink`).
std::unique_ptr<SelectQuery> ParseQuery(lang::TokenStream& stream,
                                        common::DiagnosticSink& sink);

// Parses `source` as a complete query.
common::Result<std::unique_ptr<SelectQuery>> ParseQueryString(
    std::string_view source);

}  // namespace oodbsec::query

#endif  // OODBSEC_QUERY_QUERY_PARSER_H_
