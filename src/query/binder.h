// Binding and type checking for queries.
#ifndef OODBSEC_QUERY_BINDER_H_
#define OODBSEC_QUERY_BINDER_H_

#include "common/status.h"
#include "query/query.h"
#include "schema/schema.h"

namespace oodbsec::query {

// Resolves from-sources (class extent vs. set expression), type checks
// all items and the where condition, and marks the query bound. From
// variables scope left to right; nested subqueries see outer variables.
// Nested subqueries must have exactly one item (their value is a set).
common::Status BindQuery(SelectQuery& query, const schema::Schema& schema);

}  // namespace oodbsec::query

#endif  // OODBSEC_QUERY_BINDER_H_
