// Rule-level metrics: monotonic counters and log2 histograms behind a
// named registry.
//
// Counters answer "how much work of each kind did the pipeline do":
// facts derived per rule family, occurrences visited, union-find finds,
// closure-cache hits/misses, pool steal counts. Histograms capture
// distributions (queue depth at submit time, facts per fixpoint round).
//
// Usage pattern: resolve the handle once, increment forever —
//
//   obs::Counter* finds = registry.counter("closure.uf.finds");
//   ... hot loop ...  finds->Increment(n);
//
// counter()/histogram() take a lock and may allocate (first use);
// Increment()/Record() are single relaxed atomic RMWs, safe from any
// thread. Hot single-threaded code (the closure fixpoint) goes one step
// cheaper: it accumulates plain uint64_t locals and flushes one
// Increment(total) at the end, so the fixpoint itself never touches an
// atomic.
//
// Metric name conventions (see DESIGN.md §9): dotted lowercase paths,
// "<layer>.<what>[.<detail>]". Everything under "pool." is
// scheduling-dependent (steal counts, queue depths) and therefore
// nondeterministic; every other layer's metrics are deterministic
// functions of the analyzed workload — the service test asserts a
// 1-thread and an 8-thread run of the same batch agree on all of them.
#ifndef OODBSEC_OBS_METRICS_H_
#define OODBSEC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace oodbsec::obs {

// A monotonic counter. Increment-only by design: rates and deltas are a
// consumer concern (snapshot twice, subtract).
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A log2-bucketed histogram of non-negative samples: bucket 0 counts
// value 0, bucket i counts values in [2^(i-1), 2^i). 64 buckets cover
// the full uint64 range, so Record never clips.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

// A point-in-time reading of one metric, for sinks and tests.
struct MetricSnapshot {
  enum class Kind { kCounter, kHistogram };

  std::string name;
  Kind kind = Kind::kCounter;
  uint64_t value = 0;            // counter value, or histogram count
  uint64_t sum = 0;              // histogram only
  std::vector<uint64_t> buckets; // histogram only; trailing zeros trimmed

  friend bool operator==(const MetricSnapshot&,
                         const MetricSnapshot&) = default;
};

// Name -> metric. Handles returned by counter()/histogram() are stable
// for the registry's lifetime; metrics are never removed.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create. Registering the same name as both a counter and a
  // histogram is a programming error (the second registration wins a
  // distinct metric namespace-wise; don't do it).
  Counter* counter(std::string_view name);
  Histogram* histogram(std::string_view name);

  // Every metric, sorted by name. Relaxed reads: values written by
  // other threads are only guaranteed visible after an external
  // happens-before edge (e.g. ThreadPool::Wait).
  std::vector<MetricSnapshot> Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace oodbsec::obs

#endif  // OODBSEC_OBS_METRICS_H_
