#include "obs/sink.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/strings.h"

namespace oodbsec::obs {

void Emit(const Observability& obs, TraceSink& sink) {
  sink.BeginDump();
  for (const SpanRecord& span : obs.tracer.Snapshot()) {
    sink.WriteSpan(span);
  }
  for (const MetricSnapshot& metric : obs.metrics.Snapshot()) {
    sink.WriteMetric(metric);
  }
  sink.EndDump();
}

// ---------------------------------------------------------------------
// ConsoleTableSink

void ConsoleTableSink::BeginDump() {
  spans_.clear();
  metrics_.clear();
}

void ConsoleTableSink::WriteSpan(const SpanRecord& span) {
  spans_.push_back(span);
}

void ConsoleTableSink::WriteMetric(const MetricSnapshot& metric) {
  metrics_.push_back(metric);
}

void ConsoleTableSink::EndDump() {
  char line[256];
  if (!spans_.empty()) {
    // Total traced time: the sum of root-span durations (roots do not
    // overlap in practice — they are successive pipeline runs).
    int64_t total_ns = 0;
    for (const SpanRecord& span : spans_) {
      if (span.parent == kNoSpan && span.duration_ns > 0) {
        total_ns += span.duration_ns;
      }
    }
    // Root duration per span id, for the pct column.
    std::vector<int64_t> root_ns(spans_.size(), 0);
    for (const SpanRecord& span : spans_) {
      root_ns[span.id] = span.parent == kNoSpan
                             ? std::max<int64_t>(span.duration_ns, 0)
                             : root_ns[span.parent];
    }
    out_ << "span                                                "
            "start_ms      dur_ms    pct\n";
    for (const SpanRecord& span : spans_) {
      std::string name(static_cast<size_t>(span.depth) * 2, ' ');
      name += span.name;
      if (name.size() > 48) name.resize(48);
      int64_t base =
          span.parent == kNoSpan ? total_ns : root_ns[span.id];
      double pct = base > 0 && span.duration_ns >= 0
                       ? 100.0 * static_cast<double>(span.duration_ns) /
                             static_cast<double>(base)
                       : 0.0;
      std::snprintf(line, sizeof line, "%-48s %11.3f %11.3f %5.1f%%\n",
                    name.c_str(), static_cast<double>(span.start_ns) / 1e6,
                    static_cast<double>(span.duration_ns) / 1e6, pct);
      out_ << line;
    }
  }
  if (!metrics_.empty()) {
    if (!spans_.empty()) out_ << "\n";
    out_ << "metric                                               "
            "      value\n";
    for (const MetricSnapshot& metric : metrics_) {
      if (metric.kind == MetricSnapshot::Kind::kCounter) {
        std::snprintf(line, sizeof line, "%-48s %15" PRIu64 "\n",
                      metric.name.c_str(), metric.value);
        out_ << line;
      } else {
        double mean = metric.value == 0
                          ? 0.0
                          : static_cast<double>(metric.sum) /
                                static_cast<double>(metric.value);
        std::snprintf(line, sizeof line,
                      "%-48s count=%" PRIu64 " sum=%" PRIu64 " mean=%.1f\n",
                      metric.name.c_str(), metric.value, metric.sum, mean);
        out_ << line;
      }
    }
  }
  out_.flush();
}

// ---------------------------------------------------------------------
// JsonLinesSink

void JsonLinesSink::WriteSpan(const SpanRecord& span) {
  out_ << "{\"type\":\"span\",\"name\":" << common::QuoteString(span.name)
       << ",\"id\":" << span.id << ",\"parent\":" << span.parent
       << ",\"depth\":" << span.depth << ",\"start_ns\":" << span.start_ns
       << ",\"duration_ns\":" << span.duration_ns << "}\n";
}

void JsonLinesSink::WriteMetric(const MetricSnapshot& metric) {
  if (metric.kind == MetricSnapshot::Kind::kCounter) {
    out_ << "{\"type\":\"counter\",\"name\":"
         << common::QuoteString(metric.name) << ",\"value\":" << metric.value
         << "}\n";
    return;
  }
  out_ << "{\"type\":\"histogram\",\"name\":"
       << common::QuoteString(metric.name) << ",\"count\":" << metric.value
       << ",\"sum\":" << metric.sum << ",\"buckets\":[";
  for (size_t i = 0; i < metric.buckets.size(); ++i) {
    if (i > 0) out_ << ",";
    out_ << metric.buckets[i];
  }
  out_ << "]}\n";
}

}  // namespace oodbsec::obs
