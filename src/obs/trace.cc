#include "obs/trace.h"

namespace oodbsec::obs {

namespace {

// The calling thread's innermost open span, per tracer. Tracked as a
// (tracer, span) pair so a span opened against one tracer never becomes
// the parent of a span on another.
thread_local Tracer* tl_tracer = nullptr;
thread_local SpanId tl_current = kNoSpan;

}  // namespace

Tracer::Tracer(bool enabled)
    : enabled_(enabled), epoch_(std::chrono::steady_clock::now()) {}

void Tracer::set_enabled(bool enabled) {
  if (enabled) Clear();
  enabled_.store(enabled, std::memory_order_relaxed);
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

int64_t Tracer::ElapsedNs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

SpanId Tracer::Begin(std::string_view name, SpanId parent) {
  if (!enabled()) return kNoSpan;
  auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord record;
  record.name.assign(name);
  record.id = static_cast<SpanId>(spans_.size());
  record.parent = parent;
  if (parent != kNoSpan && parent < record.id) {
    record.depth = spans_[parent].depth + 1;
  }
  record.start_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
          .count();
  spans_.push_back(std::move(record));
  return static_cast<SpanId>(spans_.size() - 1);
}

void Tracer::End(SpanId id) {
  if (id == kNoSpan) return;
  auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<SpanId>(spans_.size())) return;
  SpanRecord& record = spans_[id];
  record.duration_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
          .count() -
      record.start_ns;
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string_view name) {
  if (tracer == nullptr || !tracer->enabled()) return;
  Open(tracer, name, tl_tracer == tracer ? tl_current : kNoSpan);
}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string_view name, SpanId parent) {
  if (tracer == nullptr || !tracer->enabled()) return;
  if (parent == kNoSpan && tl_tracer == tracer) parent = tl_current;
  Open(tracer, name, parent);
}

void ScopedSpan::Open(Tracer* tracer, std::string_view name, SpanId parent) {
  tracer_ = tracer;
  id_ = tracer->Begin(name, parent);
  prev_tracer_ = tl_tracer;
  prev_span_ = tl_current;
  tl_tracer = tracer;
  tl_current = id_;
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  tl_tracer = prev_tracer_;
  tl_current = prev_span_;
  tracer_->End(id_);
}

}  // namespace oodbsec::obs
