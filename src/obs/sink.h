// TraceSink: renderers for a finished trace + metrics snapshot.
//
// A sink receives the spans in start order followed by the metrics in
// name order; Emit() drives that protocol from an Observability bundle.
// Two implementations ship:
//
//   * ConsoleTableSink — an indented, human-readable tree with
//     durations and percent-of-root columns, plus a metrics table.
//     This is what the shell's `trace dump` prints.
//   * JsonLinesSink — one JSON object per line ("span", "counter",
//     "histogram" records), the machine-readable artifact the bench
//     harness writes next to BENCH_*.json.
#ifndef OODBSEC_OBS_SINK_H_
#define OODBSEC_OBS_SINK_H_

#include <ostream>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace oodbsec::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void BeginDump() {}
  virtual void WriteSpan(const SpanRecord& span) = 0;
  virtual void WriteMetric(const MetricSnapshot& metric) = 0;
  virtual void EndDump() {}
};

// Streams the whole bundle through `sink`: BeginDump, every span in
// start order, every metric in name order, EndDump.
void Emit(const Observability& obs, TraceSink& sink);

// Human-readable tables on an ostream. Span rows are indented by
// nesting depth; the pct column is the span's share of its root span's
// duration (root rows show their share of the whole trace).
class ConsoleTableSink : public TraceSink {
 public:
  explicit ConsoleTableSink(std::ostream& out) : out_(out) {}

  void BeginDump() override;
  void WriteSpan(const SpanRecord& span) override;
  void WriteMetric(const MetricSnapshot& metric) override;
  void EndDump() override;

 private:
  std::ostream& out_;
  // Spans buffer until EndDump so root totals are known before
  // rendering; metrics stream directly.
  std::vector<SpanRecord> spans_;
  std::vector<MetricSnapshot> metrics_;
};

// One JSON object per line; keys in fixed order, so output is
// byte-deterministic given the records (the golden-file test relies on
// this). Durations of still-open spans render as -1.
class JsonLinesSink : public TraceSink {
 public:
  explicit JsonLinesSink(std::ostream& out) : out_(out) {}

  void WriteSpan(const SpanRecord& span) override;
  void WriteMetric(const MetricSnapshot& metric) override;

 private:
  std::ostream& out_;
};

}  // namespace oodbsec::obs

#endif  // OODBSEC_OBS_SINK_H_
