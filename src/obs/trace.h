// Hierarchical timed spans for pipeline phase tracing.
//
// The tracer answers "where does analysis wall time go": parse, unfold,
// fixpoint (and its worklist rounds), site enumeration — every phase
// opens a span, spans nest, and a finished trace renders as a tree
// (sink.h has console-table and JSON-lines renderers).
//
// Design constraints, in priority order:
//
//   * Near-zero overhead when disabled. A ScopedSpan over a disabled
//     (or null) tracer is two pointer-sized loads and a predictable
//     branch — no clock read, no lock, no allocation. Hot paths may
//     therefore keep their spans unconditionally.
//   * Thread-friendly. Spans may open and close on any thread; the
//     record table sits behind one mutex (spans are coarse — phases,
//     not facts — so contention is nil). Parentage follows a
//     thread-local current-span stack, so nested scopes on one thread
//     link up automatically; work handed to a pool passes the parent
//     SpanId into the task explicitly (ScopedSpan's three-argument
//     form) and nesting resumes on the worker.
//   * Explainable after the fact. Records keep (parent, depth, start,
//     duration), so a sink can reconstruct the tree and account for
//     self vs. child time without any global registry.
#ifndef OODBSEC_OBS_TRACE_H_
#define OODBSEC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace oodbsec::obs {

using SpanId = int32_t;
inline constexpr SpanId kNoSpan = -1;

// One completed (or still-open) span. Times are nanoseconds on the
// steady clock, relative to the tracer's epoch (construction or the
// last Clear()/set_enabled(true)).
struct SpanRecord {
  std::string name;
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  int depth = 0;            // root spans are depth 0
  int64_t start_ns = 0;
  int64_t duration_ns = -1; // -1 while the span is open
};

class Tracer {
 public:
  explicit Tracer(bool enabled = false);

  // Arming the tracer starts a fresh recording (previous spans are
  // dropped and the epoch resets); disarming keeps what was recorded
  // so it can still be dumped.
  void set_enabled(bool enabled);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Drops all recorded spans and resets the epoch.
  void Clear();

  // Opens a span; returns its id (callers normally use ScopedSpan
  // instead). No-op returning kNoSpan when disabled.
  SpanId Begin(std::string_view name, SpanId parent);
  // Closes an open span; ignores kNoSpan.
  void End(SpanId id);

  // Copy of every record, in Begin() order (which is start order).
  std::vector<SpanRecord> Snapshot() const;
  size_t span_count() const;
  // Nanoseconds since the epoch, on the same clock the spans use.
  int64_t ElapsedNs() const;

 private:
  std::atomic<bool> enabled_;
  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<SpanRecord> spans_;
};

// RAII span. The default-constructed and disabled-tracer forms are
// inert. Construction pushes this span onto the calling thread's
// current-span stack; destruction pops it, so sibling scopes on the
// same thread chain correctly.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  // Parent is the calling thread's current span (if it belongs to the
  // same tracer).
  ScopedSpan(Tracer* tracer, std::string_view name);
  // Explicit parent, for work that crossed a thread boundary: the
  // submitting side captures its span id, the worker passes it here.
  // kNoSpan falls back to the calling thread's current span, so call
  // sites that only sometimes run on a worker need no branching.
  ScopedSpan(Tracer* tracer, std::string_view name, SpanId parent);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // The span's id (kNoSpan when inert) — pass this into pool tasks as
  // their explicit parent.
  SpanId id() const { return id_; }

 private:
  void Open(Tracer* tracer, std::string_view name, SpanId parent);

  Tracer* tracer_ = nullptr;
  SpanId id_ = kNoSpan;
  // Saved thread-local state, restored on destruction.
  Tracer* prev_tracer_ = nullptr;
  SpanId prev_span_ = kNoSpan;
};

}  // namespace oodbsec::obs

#endif  // OODBSEC_OBS_TRACE_H_
