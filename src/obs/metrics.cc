#include "obs/metrics.h"

#include <algorithm>
#include <bit>

namespace oodbsec::obs {

void Histogram::Record(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // bucket 0 <- 0; bucket i <- [2^(i-1), 2^i).
  size_t bucket = value == 0 ? 0 : static_cast<size_t>(std::bit_width(value));
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSnapshot snapshot;
    snapshot.name = name;
    snapshot.kind = MetricSnapshot::Kind::kCounter;
    snapshot.value = counter->value();
    out.push_back(std::move(snapshot));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricSnapshot snapshot;
    snapshot.name = name;
    snapshot.kind = MetricSnapshot::Kind::kHistogram;
    snapshot.value = histogram->count();
    snapshot.sum = histogram->sum();
    size_t top = Histogram::kBuckets;
    while (top > 0 && histogram->bucket(top - 1) == 0) --top;
    snapshot.buckets.reserve(top);
    for (size_t i = 0; i < top; ++i) {
      snapshot.buckets.push_back(histogram->bucket(i));
    }
    out.push_back(std::move(snapshot));
  }
  // Both maps are name-sorted; merge into one name-sorted list.
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace oodbsec::obs
