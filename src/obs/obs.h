// The observability bundle every pipeline layer threads through.
//
// An Observability pairs one Tracer (phase spans) with one
// MetricsRegistry (rule-level counters and histograms). Layers accept
// an `obs::Observability*` where nullptr means "fully disabled" — the
// pointer-null check is the entire disabled-mode cost for metrics, and
// the tracer additionally carries its own enabled flag so metrics can
// stay on while span recording is off.
//
// Ownership: core::AnalysisSession owns the bundle and hands the
// pointer down (unfold -> closure -> check, service -> pool). Nothing
// below the session ever owns or reconfigures it.
#ifndef OODBSEC_OBS_OBS_H_
#define OODBSEC_OBS_OBS_H_

#include "obs/metrics.h"
#include "obs/trace.h"

namespace oodbsec::obs {

struct Observability {
  Tracer tracer;
  MetricsRegistry metrics;
};

}  // namespace oodbsec::obs

#endif  // OODBSEC_OBS_OBS_H_
