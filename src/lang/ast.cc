#include "lang/ast.h"

#include <cassert>

namespace oodbsec::lang {

const ConstantExpr& Expr::AsConstant() const {
  assert(kind() == ExprKind::kConstant);
  return static_cast<const ConstantExpr&>(*this);
}
const VarRefExpr& Expr::AsVarRef() const {
  assert(kind() == ExprKind::kVarRef);
  return static_cast<const VarRefExpr&>(*this);
}
const CallExpr& Expr::AsCall() const {
  assert(kind() == ExprKind::kCall);
  return static_cast<const CallExpr&>(*this);
}
const LetExpr& Expr::AsLet() const {
  assert(kind() == ExprKind::kLet);
  return static_cast<const LetExpr&>(*this);
}
ConstantExpr& Expr::AsConstant() {
  assert(kind() == ExprKind::kConstant);
  return static_cast<ConstantExpr&>(*this);
}
VarRefExpr& Expr::AsVarRef() {
  assert(kind() == ExprKind::kVarRef);
  return static_cast<VarRefExpr&>(*this);
}
CallExpr& Expr::AsCall() {
  assert(kind() == ExprKind::kCall);
  return static_cast<CallExpr&>(*this);
}
LetExpr& Expr::AsLet() {
  assert(kind() == ExprKind::kLet);
  return static_cast<LetExpr&>(*this);
}

std::unique_ptr<Expr> ConstantExpr::Clone() const {
  auto clone = std::make_unique<ConstantExpr>(value_);
  clone->range = range;
  clone->set_type(type());
  return clone;
}

std::unique_ptr<Expr> VarRefExpr::Clone() const {
  auto clone = std::make_unique<VarRefExpr>(name_);
  clone->range = range;
  clone->set_type(type());
  clone->set_origin(origin_);
  return clone;
}

std::unique_ptr<Expr> CallExpr::Clone() const {
  std::vector<std::unique_ptr<Expr>> args;
  args.reserve(args_.size());
  for (const auto& arg : args_) args.push_back(arg->Clone());
  auto clone = std::make_unique<CallExpr>(name_, std::move(args));
  clone->range = range;
  clone->set_type(type());
  clone->set_target(target_);
  clone->set_attribute(attribute_);
  clone->set_basic(basic_);
  return clone;
}

std::unique_ptr<Expr> LetExpr::Clone() const {
  std::vector<Binding> bindings;
  bindings.reserve(bindings_.size());
  for (const Binding& binding : bindings_) {
    bindings.push_back({binding.name, binding.init->Clone()});
  }
  auto clone = std::make_unique<LetExpr>(std::move(bindings), body_->Clone());
  clone->range = range;
  clone->set_type(type());
  return clone;
}

std::unique_ptr<Expr> MakeInt(int64_t v) {
  return std::make_unique<ConstantExpr>(types::Value::Int(v));
}
std::unique_ptr<Expr> MakeBool(bool v) {
  return std::make_unique<ConstantExpr>(types::Value::Bool(v));
}
std::unique_ptr<Expr> MakeString(std::string v) {
  return std::make_unique<ConstantExpr>(types::Value::String(std::move(v)));
}
std::unique_ptr<Expr> MakeNull() {
  return std::make_unique<ConstantExpr>(types::Value::Null());
}
std::unique_ptr<Expr> MakeVar(std::string name) {
  return std::make_unique<VarRefExpr>(std::move(name));
}
std::unique_ptr<Expr> MakeCall(std::string name,
                               std::vector<std::unique_ptr<Expr>> args) {
  return std::make_unique<CallExpr>(std::move(name), std::move(args));
}

}  // namespace oodbsec::lang
