#include "lang/printer.h"

#include "common/strings.h"

namespace oodbsec::lang {

namespace {

bool IsBinaryOperatorName(const std::string& name) {
  return name == "+" || name == "-" || name == "*" || name == "/" ||
         name == "%" || name == "<" || name == ">" || name == "<=" ||
         name == ">=" || name == "==" || name == "!=" || name == "and" ||
         name == "or";
}

bool IsUnaryOperatorName(const std::string& name) { return name == "not"; }

void Print(const Expr& expr, PrintStyle style, std::string& out) {
  switch (expr.kind()) {
    case ExprKind::kConstant:
      out += expr.AsConstant().value().ToString();
      return;
    case ExprKind::kVarRef:
      out += expr.AsVarRef().name();
      return;
    case ExprKind::kCall: {
      const CallExpr& call = expr.AsCall();
      if (style == PrintStyle::kInfix && call.args().size() == 2 &&
          IsBinaryOperatorName(call.name())) {
        out += '(';
        Print(*call.args()[0], style, out);
        out += ' ';
        out += call.name();
        out += ' ';
        Print(*call.args()[1], style, out);
        out += ')';
        return;
      }
      if (style == PrintStyle::kInfix && call.args().size() == 1 &&
          IsUnaryOperatorName(call.name())) {
        out += '(';
        out += call.name();
        out += ' ';
        Print(*call.args()[0], style, out);
        out += ')';
        return;
      }
      out += call.name();
      out += '(';
      for (size_t i = 0; i < call.args().size(); ++i) {
        if (i > 0) out += ", ";
        Print(*call.args()[i], style, out);
      }
      out += ')';
      return;
    }
    case ExprKind::kLet: {
      const LetExpr& let = expr.AsLet();
      out += "let ";
      for (size_t i = 0; i < let.bindings().size(); ++i) {
        if (i > 0) out += ", ";
        out += let.bindings()[i].name;
        out += " = ";
        Print(*let.bindings()[i].init, style, out);
      }
      out += " in ";
      Print(let.body(), style, out);
      out += " end";
      return;
    }
  }
}

}  // namespace

std::string PrintExpr(const Expr& expr, PrintStyle style) {
  std::string out;
  Print(expr, style, out);
  return out;
}

}  // namespace oodbsec::lang
