// Abstract syntax of the function definition language (paper §2):
//
//   e ::= c | a | f_b(e,…,e) | f_a(e,…,e) | r_att(e) | w_att(e,e)
//       | let x = e, … in e end
//
// Constants, argument/local variable references, basic function calls,
// access function calls, attribute reads/writes, and let bindings. The
// paper's published grammar omits `let` but its complete version includes
// it (§2), and the unfolding step (§3.3) introduces `let(f)` forms.
//
// Call targets start out unresolved (just a name); the type checker
// (type_checker.h) classifies each call as a basic function, an access
// function, or a special r_<att>/w_<att> operation and annotates types.
#ifndef OODBSEC_LANG_AST_H_
#define OODBSEC_LANG_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/source_location.h"
#include "types/type.h"
#include "types/value.h"

namespace oodbsec::exec {
class BasicFunction;  // exec/basic_functions.h
}  // namespace oodbsec::exec

namespace oodbsec::lang {

enum class ExprKind {
  kConstant,
  kVarRef,
  kCall,
  kLet,
};

// How the type checker resolved a call's name.
enum class CallTarget {
  kUnresolved,
  kBasic,      // built-in on basic types, e.g. >=, +, and
  kAccess,     // user-defined access function from the schema
  kReadAttr,   // special function r_<att>
  kWriteAttr,  // special function w_<att>
};

// How the type checker resolved a variable reference.
enum class VarOrigin {
  kUnresolved,
  kArgument,  // parameter of the enclosing function definition
  kLocal,     // bound by an enclosing let (or a query from-variable)
};

class ConstantExpr;
class VarRefExpr;
class CallExpr;
class LetExpr;

// Base expression node. Nodes are exclusively owned by their parents via
// unique_ptr; the root is owned by a FunctionDecl or query.
class Expr {
 public:
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  ExprKind kind() const { return kind_; }

  // Type annotation; nullptr before type checking.
  const types::Type* type() const { return type_; }
  void set_type(const types::Type* type) { type_ = type; }

  common::SourceRange range;

  // Deep copy, including resolution and type annotations.
  virtual std::unique_ptr<Expr> Clone() const = 0;

  // Checked downcasts (by kind tag; no RTTI).
  const ConstantExpr& AsConstant() const;
  const VarRefExpr& AsVarRef() const;
  const CallExpr& AsCall() const;
  const LetExpr& AsLet() const;
  ConstantExpr& AsConstant();
  VarRefExpr& AsVarRef();
  CallExpr& AsCall();
  LetExpr& AsLet();

 protected:
  explicit Expr(ExprKind kind) : kind_(kind) {}

 private:
  ExprKind kind_;
  const types::Type* type_ = nullptr;
};

// A literal: integer, string, boolean, or null.
class ConstantExpr : public Expr {
 public:
  explicit ConstantExpr(types::Value value)
      : Expr(ExprKind::kConstant), value_(std::move(value)) {}

  const types::Value& value() const { return value_; }
  std::unique_ptr<Expr> Clone() const override;

 private:
  types::Value value_;
};

// A reference to a function argument or let-bound variable.
class VarRefExpr : public Expr {
 public:
  explicit VarRefExpr(std::string name)
      : Expr(ExprKind::kVarRef), name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  VarOrigin origin() const { return origin_; }
  void set_origin(VarOrigin origin) { origin_ = origin; }

  std::unique_ptr<Expr> Clone() const override;

 private:
  std::string name_;
  VarOrigin origin_ = VarOrigin::kUnresolved;
};

// A call f(e1, …, en). `name` is the surface name; infix operators are
// desugared to calls with operator names ("+", ">=", "and", …).
class CallExpr : public Expr {
 public:
  CallExpr(std::string name, std::vector<std::unique_ptr<Expr>> args)
      : Expr(ExprKind::kCall), name_(std::move(name)), args_(std::move(args)) {}

  const std::string& name() const { return name_; }
  const std::vector<std::unique_ptr<Expr>>& args() const { return args_; }
  std::vector<std::unique_ptr<Expr>>& mutable_args() { return args_; }

  CallTarget target() const { return target_; }
  void set_target(CallTarget target) { target_ = target; }

  // For kReadAttr/kWriteAttr: the attribute name (name without the
  // r_/w_ prefix).
  const std::string& attribute() const { return attribute_; }
  void set_attribute(std::string attribute) {
    attribute_ = std::move(attribute);
  }

  // For kBasic: the resolved built-in (owned by the catalog).
  const exec::BasicFunction* basic() const { return basic_; }
  void set_basic(const exec::BasicFunction* basic) { basic_ = basic; }

  std::unique_ptr<Expr> Clone() const override;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Expr>> args_;
  CallTarget target_ = CallTarget::kUnresolved;
  std::string attribute_;
  const exec::BasicFunction* basic_ = nullptr;
};

// let x1 = e1, …, xn = en in body end
class LetExpr : public Expr {
 public:
  struct Binding {
    std::string name;
    std::unique_ptr<Expr> init;
  };

  LetExpr(std::vector<Binding> bindings, std::unique_ptr<Expr> body)
      : Expr(ExprKind::kLet),
        bindings_(std::move(bindings)),
        body_(std::move(body)) {}

  const std::vector<Binding>& bindings() const { return bindings_; }
  const Expr& body() const { return *body_; }
  Expr& mutable_body() { return *body_; }

  std::unique_ptr<Expr> Clone() const override;

 private:
  std::vector<Binding> bindings_;
  std::unique_ptr<Expr> body_;
};

// Convenience constructors for programmatic AST building.
std::unique_ptr<Expr> MakeInt(int64_t v);
std::unique_ptr<Expr> MakeBool(bool v);
std::unique_ptr<Expr> MakeString(std::string v);
std::unique_ptr<Expr> MakeNull();
std::unique_ptr<Expr> MakeVar(std::string name);
std::unique_ptr<Expr> MakeCall(std::string name,
                               std::vector<std::unique_ptr<Expr>> args);

}  // namespace oodbsec::lang

#endif  // OODBSEC_LANG_AST_H_
