// Tokens shared by the function-definition language, the query language,
// the requirement syntax, and the workspace file format.
#ifndef OODBSEC_LANG_TOKEN_H_
#define OODBSEC_LANG_TOKEN_H_

#include <cstdint>
#include <string>

#include "common/source_location.h"

namespace oodbsec::lang {

enum class TokenKind {
  kEnd,          // end of input
  kError,        // lexer error; text holds the message
  kIdentifier,
  kIntLiteral,   // int_value holds the value
  kStringLiteral,  // text holds the decoded contents
  // Keywords.
  kKwLet,
  kKwIn,
  kKwEnd,
  kKwNull,
  kKwTrue,
  kKwFalse,
  kKwAnd,
  kKwOr,
  kKwNot,
  kKwClass,
  kKwFunction,
  kKwUser,
  kKwCan,
  kKwRequire,
  kKwSelect,
  kKwFrom,
  kKwWhere,
  kKwObject,
  kKwConstraint,
  // Punctuation and operators.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kColon,
  kSemicolon,
  kAssign,    // =
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kLess,
  kGreater,
  kLessEq,
  kGreaterEq,
  kEqEq,
  kNotEq,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       // identifier name, string contents, or raw lexeme
  int64_t int_value = 0;  // for kIntLiteral
  common::SourceLocation location;
};

// Human-readable token description for diagnostics, e.g. "identifier
// 'foo'" or "'>='".
std::string DescribeToken(const Token& token);

}  // namespace oodbsec::lang

#endif  // OODBSEC_LANG_TOKEN_H_
