#include "lang/type_checker.h"

#include "common/strings.h"
#include "lang/printer.h"

namespace oodbsec::lang {

using common::Result;
using common::Status;
using types::Type;

bool IsAssignable(const Type* target, const Type* source) {
  if (target == source) return true;
  // `null` fits any class- or set-typed position.
  if (source != nullptr && source->kind() == types::TypeKind::kNull &&
      target != nullptr && (target->is_class() || target->is_set())) {
    return true;
  }
  return false;
}

Status TypeChecker::CheckFunctionBody(Expr& expr,
                                      const std::vector<schema::Param>& params,
                                      const Type* expected) {
  scopes_.clear();
  for (const schema::Param& param : params) {
    scopes_.push_back({param.name, param.type, VarOrigin::kArgument});
  }
  return CheckTopLevel(expr, expected);
}

Status TypeChecker::CheckWithLocals(Expr& expr,
                                    const std::vector<schema::Param>& locals,
                                    const Type* expected) {
  scopes_.clear();
  for (const schema::Param& local : locals) {
    scopes_.push_back({local.name, local.type, VarOrigin::kLocal});
  }
  return CheckTopLevel(expr, expected);
}

Status TypeChecker::CheckTopLevel(Expr& expr, const Type* expected) {
  OODBSEC_ASSIGN_OR_RETURN(const Type* type, Check(expr));
  if (expected != nullptr && !IsAssignable(expected, type)) {
    return common::TypeError(common::StrCat(
        "expression '", PrintExpr(expr), "' has type ", type->ToString(),
        ", expected ", expected->ToString()));
  }
  return Status::Ok();
}

Result<const Type*> TypeChecker::Check(Expr& expr) {
  switch (expr.kind()) {
    case ExprKind::kConstant: {
      const types::Value& v = expr.AsConstant().value();
      const Type* type = nullptr;
      if (v.is_int()) {
        type = schema_.pool().Int();
      } else if (v.is_bool()) {
        type = schema_.pool().Bool();
      } else if (v.is_string()) {
        type = schema_.pool().String();
      } else if (v.is_null()) {
        type = schema_.pool().Null();
      } else {
        return common::TypeError(
            common::StrCat("unsupported constant ", v.ToString()));
      }
      expr.set_type(type);
      return type;
    }

    case ExprKind::kVarRef: {
      VarRefExpr& var = expr.AsVarRef();
      for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
        if (it->name == var.name()) {
          var.set_origin(it->origin);
          var.set_type(it->type);
          return it->type;
        }
      }
      return common::TypeError(
          common::StrCat("unbound variable '", var.name(), "'"));
    }

    case ExprKind::kCall:
      return CheckCall(expr.AsCall());

    case ExprKind::kLet: {
      LetExpr& let = expr.AsLet();
      size_t scope_mark = scopes_.size();
      for (const LetExpr::Binding& binding : let.bindings()) {
        OODBSEC_ASSIGN_OR_RETURN(const Type* init_type,
                                 Check(*binding.init));
        scopes_.push_back({binding.name, init_type, VarOrigin::kLocal});
      }
      Result<const Type*> body_type = Check(let.mutable_body());
      scopes_.resize(scope_mark);
      if (!body_type.ok()) return body_type;
      let.set_type(body_type.value());
      return body_type;
    }
  }
  return common::InternalError("unknown expression kind");
}

Result<const Type*> TypeChecker::CheckCall(CallExpr& call) {
  // Check argument expressions first; their types drive overload
  // resolution for basic functions.
  std::vector<const Type*> arg_types;
  arg_types.reserve(call.args().size());
  for (const auto& arg : call.mutable_args()) {
    OODBSEC_ASSIGN_OR_RETURN(const Type* type, Check(*arg));
    arg_types.push_back(type);
  }

  schema::Callable callable = schema_.ResolveCallable(call.name());
  if (callable.ok()) {
    if (arg_types.size() != callable.param_types.size()) {
      return common::TypeError(common::StrCat(
          "'", call.name(), "' expects ", callable.param_types.size(),
          " argument(s), got ", arg_types.size()));
    }
    for (size_t i = 0; i < arg_types.size(); ++i) {
      if (!IsAssignable(callable.param_types[i], arg_types[i])) {
        return common::TypeError(common::StrCat(
            "argument ", i + 1, " of '", call.name(), "' has type ",
            arg_types[i]->ToString(), ", expected ",
            callable.param_types[i]->ToString()));
      }
    }
    switch (callable.kind) {
      case schema::Callable::Kind::kAccess:
        call.set_target(CallTarget::kAccess);
        break;
      case schema::Callable::Kind::kReadAttr:
        call.set_target(CallTarget::kReadAttr);
        call.set_attribute(callable.attribute->name);
        break;
      case schema::Callable::Kind::kWriteAttr:
        call.set_target(CallTarget::kWriteAttr);
        call.set_attribute(callable.attribute->name);
        break;
      case schema::Callable::Kind::kNone:
        return common::InternalError("resolved callable without kind");
    }
    call.set_type(callable.return_type);
    return callable.return_type;
  }

  const exec::BasicFunction* basic = catalog_.Find(call.name(), arg_types);
  if (basic != nullptr) {
    call.set_target(CallTarget::kBasic);
    call.set_basic(basic);
    call.set_type(basic->result());
    return basic->result();
  }
  if (catalog_.HasName(call.name())) {
    std::vector<std::string> rendered;
    rendered.reserve(arg_types.size());
    for (const Type* t : arg_types) rendered.push_back(t->ToString());
    return common::TypeError(common::StrCat(
        "no overload of '", call.name(), "' accepts (",
        common::Join(rendered, ", "), ")"));
  }
  return common::TypeError(
      common::StrCat("unknown function '", call.name(), "'"));
}

}  // namespace oodbsec::lang
