#include "lang/lexer.h"

#include <map>

#include "common/strings.h"

namespace oodbsec::lang {

namespace {

const std::map<std::string_view, TokenKind>& KeywordTable() {
  static const auto& table = *new std::map<std::string_view, TokenKind>{
      {"let", TokenKind::kKwLet},         {"in", TokenKind::kKwIn},
      {"end", TokenKind::kKwEnd},         {"null", TokenKind::kKwNull},
      {"true", TokenKind::kKwTrue},       {"false", TokenKind::kKwFalse},
      {"and", TokenKind::kKwAnd},         {"or", TokenKind::kKwOr},
      {"not", TokenKind::kKwNot},         {"class", TokenKind::kKwClass},
      {"function", TokenKind::kKwFunction}, {"user", TokenKind::kKwUser},
      {"can", TokenKind::kKwCan},         {"require", TokenKind::kKwRequire},
      {"select", TokenKind::kKwSelect},   {"from", TokenKind::kKwFrom},
      {"where", TokenKind::kKwWhere},     {"object", TokenKind::kKwObject},
      {"constraint", TokenKind::kKwConstraint},
  };
  return table;
}

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool IsIdentChar(char c) { return IsIdentStart(c) || (c >= '0' && c <= '9'); }
bool IsDigit(char c) { return c >= '0' && c <= '9'; }

}  // namespace

std::string DescribeToken(const Token& token) {
  switch (token.kind) {
    case TokenKind::kEnd:
      return "end of input";
    case TokenKind::kError:
      return common::StrCat("lexical error (", token.text, ")");
    case TokenKind::kIdentifier:
      return common::StrCat("identifier '", token.text, "'");
    case TokenKind::kIntLiteral:
      return common::StrCat("integer ", token.int_value);
    case TokenKind::kStringLiteral:
      return common::StrCat("string ", common::QuoteString(token.text));
    default:
      return common::StrCat("'", token.text, "'");
  }
}

Lexer::Lexer(std::string_view source) : source_(source) {}

char Lexer::Peek(int ahead) const {
  size_t index = pos_ + static_cast<size_t>(ahead);
  return index < source_.size() ? source_[index] : '\0';
}

char Lexer::Advance() {
  char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

void Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = Peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      Advance();
    } else if (c == '#' || (c == '/' && Peek(1) == '/')) {
      while (!AtEnd() && Peek() != '\n') Advance();
    } else {
      return;
    }
  }
}

Token Lexer::Make(TokenKind kind, common::SourceLocation loc,
                  std::string text) const {
  Token token;
  token.kind = kind;
  token.text = std::move(text);
  token.location = loc;
  return token;
}

Token Lexer::Next() {
  SkipWhitespaceAndComments();
  common::SourceLocation loc = Here();
  if (AtEnd()) return Make(TokenKind::kEnd, loc);

  char c = Advance();

  if (IsIdentStart(c)) {
    std::string text(1, c);
    while (IsIdentChar(Peek())) text.push_back(Advance());
    auto it = KeywordTable().find(text);
    if (it != KeywordTable().end()) {
      return Make(it->second, loc, std::move(text));
    }
    return Make(TokenKind::kIdentifier, loc, std::move(text));
  }

  if (IsDigit(c)) {
    int64_t value = c - '0';
    while (IsDigit(Peek())) value = value * 10 + (Advance() - '0');
    Token token = Make(TokenKind::kIntLiteral, loc);
    token.int_value = value;
    return token;
  }

  if (c == '"') {
    std::string text;
    while (true) {
      if (AtEnd()) {
        return Make(TokenKind::kError, loc, "unterminated string literal");
      }
      char d = Advance();
      if (d == '"') break;
      if (d == '\n') {
        return Make(TokenKind::kError, loc, "newline in string literal");
      }
      if (d == '\\') {
        if (AtEnd()) {
          return Make(TokenKind::kError, loc, "unterminated escape");
        }
        char e = Advance();
        switch (e) {
          case '"': text.push_back('"'); break;
          case '\\': text.push_back('\\'); break;
          case 'n': text.push_back('\n'); break;
          case 't': text.push_back('\t'); break;
          default:
            return Make(TokenKind::kError, loc,
                        common::StrCat("bad escape '\\", e, "'"));
        }
      } else {
        text.push_back(d);
      }
    }
    return Make(TokenKind::kStringLiteral, loc, std::move(text));
  }

  auto two = [&](char second, TokenKind long_kind, TokenKind short_kind,
                 const char* long_text, const char* short_text) {
    if (Peek() == second) {
      Advance();
      return Make(long_kind, loc, long_text);
    }
    return Make(short_kind, loc, short_text);
  };

  switch (c) {
    case '(':
      return Make(TokenKind::kLParen, loc, "(");
    case ')':
      return Make(TokenKind::kRParen, loc, ")");
    case '{':
      return Make(TokenKind::kLBrace, loc, "{");
    case '}':
      return Make(TokenKind::kRBrace, loc, "}");
    case ',':
      return Make(TokenKind::kComma, loc, ",");
    case ':':
      return Make(TokenKind::kColon, loc, ":");
    case ';':
      return Make(TokenKind::kSemicolon, loc, ";");
    case '+':
      return Make(TokenKind::kPlus, loc, "+");
    case '-':
      return Make(TokenKind::kMinus, loc, "-");
    case '*':
      return Make(TokenKind::kStar, loc, "*");
    case '/':
      return Make(TokenKind::kSlash, loc, "/");
    case '%':
      return Make(TokenKind::kPercent, loc, "%");
    case '<':
      return two('=', TokenKind::kLessEq, TokenKind::kLess, "<=", "<");
    case '>':
      return two('=', TokenKind::kGreaterEq, TokenKind::kGreater, ">=", ">");
    case '=':
      return two('=', TokenKind::kEqEq, TokenKind::kAssign, "==", "=");
    case '!':
      if (Peek() == '=') {
        Advance();
        return Make(TokenKind::kNotEq, loc, "!=");
      }
      return Make(TokenKind::kError, loc, "stray '!'");
    default:
      return Make(TokenKind::kError, loc,
                  common::StrCat("unexpected character '", c, "'"));
  }
}

std::vector<Token> Lexer::TokenizeAll(std::string_view source) {
  Lexer lexer(source);
  std::vector<Token> tokens;
  while (true) {
    tokens.push_back(lexer.Next());
    if (tokens.back().kind == TokenKind::kEnd) return tokens;
  }
}

}  // namespace oodbsec::lang
