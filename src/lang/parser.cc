#include "lang/parser.h"

#include <utility>

#include "common/strings.h"

namespace oodbsec::lang {

namespace {

// Operator name for a token, or nullptr if the token is not an operator.
const char* OperatorName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kPlus:
      return "+";
    case TokenKind::kMinus:
      return "-";
    case TokenKind::kStar:
      return "*";
    case TokenKind::kSlash:
      return "/";
    case TokenKind::kPercent:
      return "%";
    case TokenKind::kLess:
      return "<";
    case TokenKind::kGreater:
      return ">";
    case TokenKind::kLessEq:
      return "<=";
    case TokenKind::kGreaterEq:
      return ">=";
    case TokenKind::kEqEq:
      return "==";
    case TokenKind::kNotEq:
      return "!=";
    case TokenKind::kKwAnd:
      return "and";
    case TokenKind::kKwOr:
      return "or";
    case TokenKind::kKwNot:
      return "not";
    default:
      return nullptr;
  }
}

bool IsComparison(TokenKind kind) {
  return kind == TokenKind::kLess || kind == TokenKind::kGreater ||
         kind == TokenKind::kLessEq || kind == TokenKind::kGreaterEq ||
         kind == TokenKind::kEqEq || kind == TokenKind::kNotEq;
}

class ExprParser {
 public:
  ExprParser(TokenStream& stream, common::DiagnosticSink& sink)
      : stream_(stream), sink_(sink) {}

  std::unique_ptr<Expr> Parse() { return ParseOr(); }

 private:
  using ExprPtr = std::unique_ptr<Expr>;

  ExprPtr ParseOr() {
    ExprPtr lhs = ParseAnd();
    while (lhs != nullptr && stream_.Check(TokenKind::kKwOr)) {
      common::SourceLocation loc = stream_.location();
      stream_.Advance();
      ExprPtr rhs = ParseAnd();
      if (rhs == nullptr) return nullptr;
      lhs = Binary("or", std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  ExprPtr ParseAnd() {
    ExprPtr lhs = ParseNot();
    while (lhs != nullptr && stream_.Check(TokenKind::kKwAnd)) {
      common::SourceLocation loc = stream_.location();
      stream_.Advance();
      ExprPtr rhs = ParseNot();
      if (rhs == nullptr) return nullptr;
      lhs = Binary("and", std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  ExprPtr ParseNot() {
    if (stream_.Check(TokenKind::kKwNot)) {
      common::SourceLocation loc = stream_.location();
      stream_.Advance();
      ExprPtr operand = ParseNot();
      if (operand == nullptr) return nullptr;
      return Unary("not", std::move(operand), loc);
    }
    return ParseComparison();
  }

  ExprPtr ParseComparison() {
    ExprPtr lhs = ParseAdditive();
    if (lhs == nullptr) return nullptr;
    if (IsComparison(stream_.Peek().kind)) {
      common::SourceLocation loc = stream_.location();
      const char* op = OperatorName(stream_.Advance().kind);
      ExprPtr rhs = ParseAdditive();
      if (rhs == nullptr) return nullptr;
      // Comparisons are non-associative: a < b < c is a parse error.
      if (IsComparison(stream_.Peek().kind)) {
        sink_.Error(stream_.location(),
                    "comparison operators cannot be chained");
        return nullptr;
      }
      return Binary(op, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  ExprPtr ParseAdditive() {
    ExprPtr lhs = ParseMultiplicative();
    while (lhs != nullptr &&
           (stream_.Check(TokenKind::kPlus) ||
            stream_.Check(TokenKind::kMinus))) {
      common::SourceLocation loc = stream_.location();
      const char* op = OperatorName(stream_.Advance().kind);
      ExprPtr rhs = ParseMultiplicative();
      if (rhs == nullptr) return nullptr;
      lhs = Binary(op, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  ExprPtr ParseMultiplicative() {
    ExprPtr lhs = ParseUnary();
    while (lhs != nullptr &&
           (stream_.Check(TokenKind::kStar) ||
            stream_.Check(TokenKind::kSlash) ||
            stream_.Check(TokenKind::kPercent))) {
      common::SourceLocation loc = stream_.location();
      const char* op = OperatorName(stream_.Advance().kind);
      ExprPtr rhs = ParseUnary();
      if (rhs == nullptr) return nullptr;
      lhs = Binary(op, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  ExprPtr ParseUnary() {
    if (stream_.Check(TokenKind::kMinus)) {
      common::SourceLocation loc = stream_.location();
      stream_.Advance();
      // Fold -<int literal> into a constant.
      if (stream_.Check(TokenKind::kIntLiteral)) {
        Token token = stream_.Advance();
        return WithLoc(MakeInt(-token.int_value), loc);
      }
      // "-(" is ambiguous: unary minus of a parenthesized expression, or
      // the paper's prefix call "-(a, b)". A comma after the first inner
      // expression disambiguates.
      if (stream_.Check(TokenKind::kLParen)) {
        stream_.Advance();
        ExprPtr first = Parse();
        if (first == nullptr) return nullptr;
        if (stream_.Match(TokenKind::kComma)) {
          ExprPtr second = Parse();
          if (second == nullptr) return nullptr;
          if (!stream_.Expect(TokenKind::kRParen, "')'", sink_)) {
            return nullptr;
          }
          return Binary("-", std::move(first), std::move(second), loc);
        }
        if (!stream_.Expect(TokenKind::kRParen, "')'", sink_)) {
          return nullptr;
        }
        return Unary("neg", std::move(first), loc);
      }
      ExprPtr operand = ParseUnary();
      if (operand == nullptr) return nullptr;
      return Unary("neg", std::move(operand), loc);
    }
    return ParsePrimary();
  }

  ExprPtr ParsePrimary() {
    const Token& token = stream_.Peek();
    common::SourceLocation loc = token.location;
    switch (token.kind) {
      case TokenKind::kIntLiteral: {
        Token t = stream_.Advance();
        return WithLoc(MakeInt(t.int_value), loc);
      }
      case TokenKind::kStringLiteral: {
        Token t = stream_.Advance();
        return WithLoc(MakeString(t.text), loc);
      }
      case TokenKind::kKwTrue:
        stream_.Advance();
        return WithLoc(MakeBool(true), loc);
      case TokenKind::kKwFalse:
        stream_.Advance();
        return WithLoc(MakeBool(false), loc);
      case TokenKind::kKwNull:
        stream_.Advance();
        return WithLoc(MakeNull(), loc);
      case TokenKind::kLParen: {
        stream_.Advance();
        ExprPtr inner = Parse();
        if (inner == nullptr) return nullptr;
        if (!stream_.Expect(TokenKind::kRParen, "')'", sink_)) return nullptr;
        return inner;
      }
      case TokenKind::kKwLet:
        return ParseLet();
      case TokenKind::kIdentifier: {
        Token t = stream_.Advance();
        if (stream_.Check(TokenKind::kLParen)) {
          return ParseCallArgs(t.text, loc);
        }
        return WithLoc(MakeVar(t.text), loc);
      }
      default: {
        // Paper-style prefix operator call: >=(a, b), *(10, x), not(p).
        const char* op = OperatorName(token.kind);
        if (op != nullptr && stream_.Peek(1).kind == TokenKind::kLParen) {
          stream_.Advance();
          return ParseCallArgs(op, loc);
        }
        sink_.Error(loc, common::StrCat("expected expression, found ",
                                        DescribeToken(token)));
        return nullptr;
      }
    }
  }

  ExprPtr ParseCallArgs(const std::string& name, common::SourceLocation loc) {
    if (!stream_.Expect(TokenKind::kLParen, "'('", sink_)) return nullptr;
    std::vector<ExprPtr> args;
    if (!stream_.Check(TokenKind::kRParen)) {
      while (true) {
        ExprPtr arg = Parse();
        if (arg == nullptr) return nullptr;
        args.push_back(std::move(arg));
        if (!stream_.Match(TokenKind::kComma)) break;
      }
    }
    if (!stream_.Expect(TokenKind::kRParen, "')'", sink_)) return nullptr;
    return WithLoc(MakeCall(name, std::move(args)), loc);
  }

  ExprPtr ParseLet() {
    common::SourceLocation loc = stream_.location();
    stream_.Advance();  // 'let'
    std::vector<LetExpr::Binding> bindings;
    while (true) {
      if (!stream_.Check(TokenKind::kIdentifier)) {
        sink_.Error(stream_.location(), "expected variable name in let");
        return nullptr;
      }
      std::string name = stream_.Advance().text;
      if (!stream_.Expect(TokenKind::kAssign, "'='", sink_)) return nullptr;
      ExprPtr init = Parse();
      if (init == nullptr) return nullptr;
      bindings.push_back({std::move(name), std::move(init)});
      if (!stream_.Match(TokenKind::kComma)) break;
    }
    if (!stream_.Expect(TokenKind::kKwIn, "'in'", sink_)) return nullptr;
    ExprPtr body = Parse();
    if (body == nullptr) return nullptr;
    if (!stream_.Expect(TokenKind::kKwEnd, "'end'", sink_)) return nullptr;
    auto let =
        std::make_unique<LetExpr>(std::move(bindings), std::move(body));
    let->range.begin = loc;
    return let;
  }

  // Note on the paper's prefix syntax: an operator token heads a prefix
  // call (e.g. ">=(a, b)") only at expression-start position, which is
  // handled in ParsePrimary. Once a left operand is pending the operator
  // is always infix, so "a >= (b)" parses conventionally.

  ExprPtr Binary(const char* op, ExprPtr lhs, ExprPtr rhs,
                 common::SourceLocation loc) {
    std::vector<ExprPtr> args;
    args.push_back(std::move(lhs));
    args.push_back(std::move(rhs));
    return WithLoc(MakeCall(op, std::move(args)), loc);
  }

  ExprPtr Unary(const char* op, ExprPtr operand, common::SourceLocation loc) {
    std::vector<ExprPtr> args;
    args.push_back(std::move(operand));
    return WithLoc(MakeCall(op, std::move(args)), loc);
  }

  static ExprPtr WithLoc(ExprPtr expr, common::SourceLocation loc) {
    expr->range.begin = loc;
    return expr;
  }

  TokenStream& stream_;
  common::DiagnosticSink& sink_;
};

}  // namespace

TokenStream::TokenStream(std::string_view source)
    : tokens_(Lexer::TokenizeAll(source)) {}

const Token& TokenStream::Peek(int ahead) const {
  size_t index = pos_ + static_cast<size_t>(ahead);
  if (index >= tokens_.size()) index = tokens_.size() - 1;  // kEnd
  return tokens_[index];
}

Token TokenStream::Advance() {
  Token token = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return token;
}

bool TokenStream::Match(TokenKind kind) {
  if (!Check(kind)) return false;
  Advance();
  return true;
}

bool TokenStream::Expect(TokenKind kind, const char* what,
                         common::DiagnosticSink& sink) {
  if (Match(kind)) return true;
  sink.Error(location(), common::StrCat("expected ", what, ", found ",
                                        DescribeToken(Peek())));
  return false;
}

std::unique_ptr<Expr> ParseExpression(TokenStream& stream,
                                      common::DiagnosticSink& sink) {
  return ExprParser(stream, sink).Parse();
}

common::Result<std::unique_ptr<Expr>> ParseExpressionString(
    std::string_view source) {
  TokenStream stream(source);
  common::DiagnosticSink sink;
  std::unique_ptr<Expr> expr = ParseExpression(stream, sink);
  if (expr == nullptr) return sink.ToStatus();
  if (!stream.AtEnd()) {
    return common::ParseError(common::StrCat(
        "trailing input at ", stream.location().ToString(), ": ",
        DescribeToken(stream.Peek())));
  }
  return expr;
}

}  // namespace oodbsec::lang
