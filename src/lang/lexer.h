// Hand-written lexer for all textual inputs of the library.
//
// Comments run from '#' or '//' to end of line. String literals use
// double quotes with \" \\ \n \t escapes. Identifiers are
// [A-Za-z_][A-Za-z0-9_]*; a reserved word lexes as its keyword token.
#ifndef OODBSEC_LANG_LEXER_H_
#define OODBSEC_LANG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "lang/token.h"

namespace oodbsec::lang {

class Lexer {
 public:
  explicit Lexer(std::string_view source);

  // Returns the next token, advancing. After the end of input, keeps
  // returning kEnd. Lexical errors produce a kError token whose text is
  // the message; the lexer then skips the offending character.
  Token Next();

  // Tokenizes everything up to and including the kEnd token.
  static std::vector<Token> TokenizeAll(std::string_view source);

 private:
  char Peek(int ahead = 0) const;
  char Advance();
  bool AtEnd() const { return pos_ >= source_.size(); }
  void SkipWhitespaceAndComments();
  common::SourceLocation Here() const { return {line_, column_}; }
  Token Make(TokenKind kind, common::SourceLocation loc,
             std::string text = std::string()) const;

  std::string_view source_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace oodbsec::lang

#endif  // OODBSEC_LANG_LEXER_H_
