// Name resolution and type checking for the function definition language.
//
// Resolution order for a call f(…):
//   1. an access function named f in the schema,
//   2. the special functions r_<att> / w_<att> when <att> is a declared
//      attribute,
//   3. a basic function overload matching the argument types.
//
// Types use pointer identity (TypePool interning); there is no subtyping.
// The `null` literal is assignable to class- and set-typed positions.
#ifndef OODBSEC_LANG_TYPE_CHECKER_H_
#define OODBSEC_LANG_TYPE_CHECKER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "exec/basic_functions.h"
#include "lang/ast.h"
#include "schema/schema.h"

namespace oodbsec::lang {

// True when a value of `source` type may appear where `target` is
// expected.
bool IsAssignable(const types::Type* target, const types::Type* source);

class TypeChecker {
 public:
  TypeChecker(const schema::Schema& schema,
              const exec::BasicFunctionCatalog& catalog)
      : schema_(schema), catalog_(catalog) {}

  // Type checks `expr` as the body of a function with `params` bound as
  // argument variables. If `expected` is non-null the body's type must be
  // assignable to it. Annotates every node with its type and resolves
  // variable origins and call targets.
  common::Status CheckFunctionBody(Expr& expr,
                                   const std::vector<schema::Param>& params,
                                   const types::Type* expected);

  // Type checks `expr` with `locals` bound as local variables (used for
  // query items/conditions, where from-clause variables are in scope).
  common::Status CheckWithLocals(Expr& expr,
                                 const std::vector<schema::Param>& locals,
                                 const types::Type* expected);

 private:
  struct Scope {
    std::string name;
    const types::Type* type;
    VarOrigin origin;
  };

  common::Result<const types::Type*> Check(Expr& expr);
  common::Result<const types::Type*> CheckCall(CallExpr& call);
  common::Status CheckTopLevel(Expr& expr, const types::Type* expected);

  const schema::Schema& schema_;
  const exec::BasicFunctionCatalog& catalog_;
  std::vector<Scope> scopes_;
};

}  // namespace oodbsec::lang

#endif  // OODBSEC_LANG_TYPE_CHECKER_H_
