// Recursive-descent parsing for the function definition language.
//
// Two surface syntaxes produce the same AST:
//   * the paper's prefix form:   >=(r_budget(b), *(10, r_salary(b)))
//   * conventional infix sugar:  r_budget(b) >= 10 * r_salary(b)
// Infix operators desugar to calls named after the operator ("+", ">=",
// "and", …); unary minus desugars to "neg".
//
// The TokenStream is shared with the query parser (src/query) and the
// workspace format parser (src/text).
#ifndef OODBSEC_LANG_PARSER_H_
#define OODBSEC_LANG_PARSER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/diagnostics.h"
#include "common/result.h"
#include "lang/ast.h"
#include "lang/lexer.h"
#include "lang/token.h"

namespace oodbsec::lang {

// A fully buffered token stream with lookahead.
class TokenStream {
 public:
  explicit TokenStream(std::string_view source);

  const Token& Peek(int ahead = 0) const;
  Token Advance();
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  // Consumes the next token if it has `kind`.
  bool Match(TokenKind kind);
  // Consumes a token of `kind` or reports "expected <what>" into `sink`.
  bool Expect(TokenKind kind, const char* what, common::DiagnosticSink& sink);
  bool AtEnd() const { return Check(TokenKind::kEnd); }
  common::SourceLocation location() const { return Peek().location; }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

// Parses one expression from `stream`. Returns nullptr after reporting
// into `sink` on error; the stream is left at the offending token.
std::unique_ptr<Expr> ParseExpression(TokenStream& stream,
                                      common::DiagnosticSink& sink);

// Parses `source` as a complete expression (trailing input is an error).
common::Result<std::unique_ptr<Expr>> ParseExpressionString(
    std::string_view source);

}  // namespace oodbsec::lang

#endif  // OODBSEC_LANG_PARSER_H_
