// Rendering expressions back to source text.
#ifndef OODBSEC_LANG_PRINTER_H_
#define OODBSEC_LANG_PRINTER_H_

#include <string>

#include "lang/ast.h"

namespace oodbsec::lang {

// Which surface syntax to emit.
enum class PrintStyle {
  kPrefix,  // the paper's style: >=(r_budget(b), *(10, r_salary(b)))
  kInfix,   // fully parenthesized infix: (r_budget(b) >= (10 * r_salary(b)))
};

// Renders `expr`. Output re-parses to an equivalent AST.
std::string PrintExpr(const Expr& expr, PrintStyle style = PrintStyle::kInfix);

}  // namespace oodbsec::lang

#endif  // OODBSEC_LANG_PRINTER_H_
