// The metarule engine (paper §4.1).
//
// The rules for basic functions "depend on the semantics of each basic
// function"; the paper therefore gives METARULES of the form "if the
// semantics of fb satisfies this condition, then this rule must be
// added", e.g.
//
//   if  ∃v2. ∀r ∈ Dom(fb). ∃v1. fb(v1,v2) = r   then  ta[e1] -> ta[fb(e1,e2)]
//   if  ∃r. ∃v1. ∀v2. fb(v1,v2) = r             then  ti[e1] -> ti[fb(e1,e2)]
//
// This engine makes those quantified side conditions executable: it
// tabulates fb extensionally over finite sample domains and
//   * validates a given BasicRule (does the condition corresponding to
//     the rule's shape hold?), used to machine-check every rule shipped
//     in core/basic_rules.cc;
//   * synthesizes the rule set for a function from the templates.
//
// Sample domains stand in for the (conceptually unbounded) int domain;
// a condition that holds on the sample is taken to hold in the paper's
// may-semantics (pessimistic direction: extra rules cost precision,
// never soundness of flaw *detection*).
#ifndef OODBSEC_BASICFUN_METARULES_H_
#define OODBSEC_BASICFUN_METARULES_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "core/basic_rules.h"
#include "exec/basic_functions.h"
#include "types/domain.h"

namespace oodbsec::basicfun {

// int: -4..4, bool: {false,true}, string: {"", "a", "b", "ab"}.
types::DomainMap DefaultSampleDomains(const types::TypePool& pool);

class MetaruleEngine {
 public:
  // Fails if a parameter or result type has no sample domain.
  static common::Result<std::unique_ptr<MetaruleEngine>> Create(
      const exec::BasicFunction& fn, const types::DomainMap& domains);

  const exec::BasicFunction& function() const { return *fn_; }

  // True when the metarule condition for `rule`'s shape holds over the
  // sample domains; an error if the shape matches no known template.
  common::Result<bool> ValidateRule(const core::BasicRule& rule) const;

  // All rules whose template conditions hold. Labels carry the template
  // name, e.g. "+: MT-invert(1)".
  std::vector<core::BasicRule> Synthesize() const;

 private:
  MetaruleEngine() = default;

  size_t arity() const { return fn_->arity(); }
  const types::ValueSet& ArgDomain(int i) const {
    return arg_domains_[static_cast<size_t>(i)];
  }

  // --- template conditions (binary: i is the swept argument, j the
  // other; unary: i = 0) ---
  bool TaSweep(int i) const;        // ∃ fix. arg i covers Dom(result)
  bool PaToTaResult(int i) const;   // ∃ fix, two values covering Dom(result)
  bool PaPerturb(int i) const;      // ∃ fix, two values with different results
  bool TiAbsorb(int i) const;       // ∃ value of i forcing a constant result
  bool PiRestrict(int i) const;     // ∃ value of i with image ⊊ Dom(result)
  bool ResultBounds(int i) const;   // ∃ r with preimage_i ⊊ Dom(i)
  // ∃ r and a fixed other argument with 0 < |{v_i : f = r}| < |Dom(i)|.
  bool ResultGivenOtherBounds(int i) const;
  bool Invertible(int i) const;     // ∃ r, fix with unique preimage in i
  bool InvertibleAlways(int i) const;  // ∀ r, fix: preimage in i ≤ 1
  bool Probe(int target) const;     // sweeping the other arg separates target
  bool ResultPairs() const;         // ∃ r: preimage ⊊ Dom(0) x Dom(1)
  bool ImageProper() const;         // image(f) ⊊ Dom(result)
  bool ArgTiesPair(int i) const;    // ∃ v_i: {(v_j, f)} ⊊ Dom(j) x Dom(res)
  bool CornerPins(int i, int target) const;  // small pi-sets pin `target`
  bool PairPins(int i, int target) const;    // small pi* set pins `target`

  const exec::BasicFunction* fn_ = nullptr;
  std::vector<types::ValueSet> arg_domains_;
  types::ValueSet result_domain_;
  // rows_[k] = argument tuple; results_[k] = fn(rows_[k]).
  std::vector<types::ValueSet> rows_;
  types::ValueSet results_;
};

}  // namespace oodbsec::basicfun

#endif  // OODBSEC_BASICFUN_METARULES_H_
