#include "basicfun/metarules.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace oodbsec::basicfun {

using core::BasicRule;
using core::kResultPos;
using core::RuleAtom;
using types::Value;
using types::ValueSet;

types::DomainMap DefaultSampleDomains(const types::TypePool& pool) {
  types::DomainMap map;
  map.Set(pool.Int(), types::Domain::IntRange(pool.Int(), -4, 4));
  map.Set(pool.Bool(), types::Domain::Bools(pool.Bool()));
  map.Set(pool.String(),
          types::Domain::Strings(pool.String(), {"", "a", "b", "ab"}));
  return map;
}

common::Result<std::unique_ptr<MetaruleEngine>> MetaruleEngine::Create(
    const exec::BasicFunction& fn, const types::DomainMap& domains) {
  std::unique_ptr<MetaruleEngine> engine(new MetaruleEngine());
  engine->fn_ = &fn;
  std::vector<const types::Domain*> arg_domains;
  for (const types::Type* type : fn.params()) {
    const types::Domain* domain = domains.Find(type);
    if (domain == nullptr) {
      return common::NotFoundError(common::StrCat(
          "no sample domain for parameter type ", type->ToString(), " of ",
          fn.SignatureToString()));
    }
    engine->arg_domains_.push_back(domain->values());
    arg_domains.push_back(domain);
  }
  const types::Domain* result_domain = domains.Find(fn.result());
  if (result_domain == nullptr) {
    return common::NotFoundError(common::StrCat(
        "no sample domain for result type of ", fn.SignatureToString()));
  }
  engine->result_domain_ = result_domain->values();

  for (types::ProductIterator it(arg_domains); it.has_value(); it.Next()) {
    engine->rows_.push_back(it.assignment());
    engine->results_.push_back(fn.Eval(it.assignment()));
  }
  return engine;
}

// ---------------------------------------------------------------------
// Template conditions. Binary helpers treat `i` as the varied argument
// and the single remaining argument as the fix; arity is 1 or 2 for
// everything in the default catalog.

namespace {
int OtherArg(int i) { return 1 - i; }
}  // namespace

bool MetaruleEngine::TaSweep(int i) const {
  if (arity() == 1) {
    std::set<Value> covered(results_.begin(), results_.end());
    return covered.size() == result_domain_.size();
  }
  int j = OtherArg(i);
  for (const Value& vj : ArgDomain(j)) {
    std::set<Value> covered;
    for (size_t k = 0; k < rows_.size(); ++k) {
      if (rows_[k][static_cast<size_t>(j)] == vj) covered.insert(results_[k]);
    }
    if (covered.size() == result_domain_.size()) return true;
  }
  return false;
}

bool MetaruleEngine::PaToTaResult(int i) const {
  if (result_domain_.size() > 2) return false;
  if (arity() == 1) {
    std::set<Value> covered(results_.begin(), results_.end());
    return covered.size() == result_domain_.size();
  }
  int j = OtherArg(i);
  for (const Value& vj : ArgDomain(j)) {
    std::set<Value> covered;
    for (size_t k = 0; k < rows_.size(); ++k) {
      if (rows_[k][static_cast<size_t>(j)] == vj) covered.insert(results_[k]);
    }
    if (covered.size() == result_domain_.size()) return true;
  }
  return false;
}

bool MetaruleEngine::PaPerturb(int i) const {
  if (arity() == 1) {
    std::set<Value> covered(results_.begin(), results_.end());
    return covered.size() >= 2;
  }
  int j = OtherArg(i);
  for (const Value& vj : ArgDomain(j)) {
    std::set<Value> covered;
    for (size_t k = 0; k < rows_.size(); ++k) {
      if (rows_[k][static_cast<size_t>(j)] == vj) covered.insert(results_[k]);
    }
    if (covered.size() >= 2) return true;
  }
  return false;
}

bool MetaruleEngine::TiAbsorb(int i) const {
  if (arity() == 1) return true;  // determinism
  for (const Value& vi : ArgDomain(i)) {
    std::set<Value> image;
    for (size_t k = 0; k < rows_.size(); ++k) {
      if (rows_[k][static_cast<size_t>(i)] == vi) image.insert(results_[k]);
    }
    if (image.size() == 1) return true;
  }
  return false;
}

bool MetaruleEngine::PiRestrict(int i) const {
  for (const Value& vi : ArgDomain(i)) {
    std::set<Value> image;
    for (size_t k = 0; k < rows_.size(); ++k) {
      if (rows_[k][static_cast<size_t>(i)] == vi) image.insert(results_[k]);
    }
    if (image.size() < result_domain_.size()) return true;
  }
  return false;
}

bool MetaruleEngine::ResultBounds(int i) const {
  for (const Value& r : result_domain_) {
    std::set<Value> preimage;
    for (size_t k = 0; k < rows_.size(); ++k) {
      if (results_[k] == r) preimage.insert(rows_[k][static_cast<size_t>(i)]);
    }
    if (!preimage.empty() && preimage.size() < ArgDomain(i).size()) {
      return true;
    }
  }
  return false;
}

bool MetaruleEngine::ResultGivenOtherBounds(int i) const {
  if (arity() == 1) return ResultBounds(i);
  int j = OtherArg(i);
  for (const Value& vj : ArgDomain(j)) {
    std::map<Value, size_t> counts;
    for (size_t k = 0; k < rows_.size(); ++k) {
      if (rows_[k][static_cast<size_t>(j)] == vj) ++counts[results_[k]];
    }
    for (const auto& [r, count] : counts) {
      if (count < ArgDomain(i).size()) return true;
    }
  }
  return false;
}

bool MetaruleEngine::Invertible(int i) const {
  if (arity() == 1) {
    for (const Value& r : result_domain_) {
      size_t count = 0;
      for (size_t k = 0; k < rows_.size(); ++k) {
        if (results_[k] == r) ++count;
      }
      if (count == 1) return true;
    }
    return false;
  }
  int j = OtherArg(i);
  for (const Value& vj : ArgDomain(j)) {
    std::map<Value, int> counts;
    for (size_t k = 0; k < rows_.size(); ++k) {
      if (rows_[k][static_cast<size_t>(j)] == vj) ++counts[results_[k]];
    }
    for (const auto& [r, count] : counts) {
      if (count == 1) return true;
    }
  }
  return false;
}

bool MetaruleEngine::InvertibleAlways(int i) const {
  if (arity() == 1) {
    std::set<Value> seen;
    for (const Value& r : results_) {
      if (!seen.insert(r).second) return false;
    }
    return true;
  }
  int j = OtherArg(i);
  std::map<std::pair<Value, Value>, int> counts;  // (vj, r) -> count
  for (size_t k = 0; k < rows_.size(); ++k) {
    if (++counts[{rows_[k][static_cast<size_t>(j)], results_[k]}] > 1) {
      return false;
    }
  }
  return true;
}

bool MetaruleEngine::Probe(int target) const {
  if (arity() != 2) return false;
  int sweep = OtherArg(target);
  const ValueSet& targets = ArgDomain(target);
  for (size_t a = 0; a < targets.size(); ++a) {
    for (size_t b = a + 1; b < targets.size(); ++b) {
      bool separated = false;
      for (const Value& vs : ArgDomain(sweep)) {
        ValueSet args_a(2), args_b(2);
        args_a[static_cast<size_t>(sweep)] = vs;
        args_b[static_cast<size_t>(sweep)] = vs;
        args_a[static_cast<size_t>(target)] = targets[a];
        args_b[static_cast<size_t>(target)] = targets[b];
        if (!(fn_->Eval(args_a) == fn_->Eval(args_b))) {
          separated = true;
          break;
        }
      }
      if (!separated) return false;
    }
  }
  return true;
}

bool MetaruleEngine::ResultPairs() const {
  std::set<Value> distinct(results_.begin(), results_.end());
  return distinct.size() >= 2;  // any result's preimage is then proper
}

bool MetaruleEngine::ImageProper() const {
  std::set<Value> image(results_.begin(), results_.end());
  return image.size() < result_domain_.size();
}

bool MetaruleEngine::ArgTiesPair(int i) const {
  if (arity() != 2) return false;
  int j = OtherArg(i);
  // Fixing v_i, the reachable (v_j, result) pairs number |Dom(j)|, which
  // is proper in Dom(j) x Dom(result) as soon as the result domain has
  // two values.
  (void)j;
  return result_domain_.size() >= 2;
}

bool MetaruleEngine::CornerPins(int i, int target) const {
  if (arity() != 2) return false;
  const ValueSet& di = ArgDomain(i);
  const ValueSet& dr = result_domain_;
  const ValueSet& dt = ArgDomain(target);
  auto consistent_count = [&](const std::vector<Value>& si,
                              const std::vector<Value>& sr) {
    int count = 0;
    for (const Value& vt : dt) {
      bool possible = false;
      for (const Value& vi : si) {
        ValueSet args(2);
        args[static_cast<size_t>(i)] = vi;
        args[static_cast<size_t>(target)] = vt;
        Value r = fn_->Eval(args);
        if (std::find(sr.begin(), sr.end(), r) != sr.end()) {
          possible = true;
          break;
        }
      }
      if (possible) ++count;
    }
    return count;
  };
  // Candidate sets of size <= 2 (the paper's {2,3} x {4,5} example).
  for (size_t a = 0; a < di.size(); ++a) {
    for (size_t b = a; b < di.size(); ++b) {
      std::vector<Value> si = {di[a]};
      if (b != a) si.push_back(di[b]);
      if (si.size() >= di.size()) continue;  // must be a proper subset
      for (size_t c = 0; c < dr.size(); ++c) {
        for (size_t d = c; d < dr.size(); ++d) {
          std::vector<Value> sr = {dr[c]};
          if (d != c) sr.push_back(dr[d]);
          if (sr.size() >= dr.size()) continue;
          if (consistent_count(si, sr) == 1) return true;
        }
      }
    }
  }
  return false;
}

bool MetaruleEngine::PairPins(int i, int target) const {
  if (arity() != 2) return false;
  const ValueSet& di = ArgDomain(i);
  const ValueSet& dr = result_domain_;
  const ValueSet& dt = ArgDomain(target);
  // Candidate pair sets S of size 1 (singleton (v_i, r) already pins the
  // target for e.g. multiplication).
  for (const Value& vi : di) {
    for (const Value& r : dr) {
      int count = 0;
      for (const Value& vt : dt) {
        ValueSet args(2);
        args[static_cast<size_t>(i)] = vi;
        args[static_cast<size_t>(target)] = vt;
        if (fn_->Eval(args) == r) ++count;
      }
      if (count == 1) return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------
// Rule validation: recognize the rule's shape, check the corresponding
// condition.

common::Result<bool> MetaruleEngine::ValidateRule(
    const BasicRule& rule) const {
  auto premise_is = [&](size_t index, RuleAtom::Pred pred, int pos) {
    return index < rule.premises.size() &&
           rule.premises[index].pred == pred &&
           rule.premises[index].pos == pos;
  };
  const RuleAtom& c = rule.conclusion;
  const auto& p = rule.premises;

  // {} -> pi[R].
  if (p.empty() && c.pred == RuleAtom::Pred::kPi && c.pos == kResultPos) {
    return ImageProper();
  }

  if (p.size() == 1) {
    const RuleAtom& a = p[0];
    bool a_is_arg = a.pos != kResultPos;
    bool c_is_result = c.pos == kResultPos;
    if (a.pred == RuleAtom::Pred::kTa && a_is_arg && c_is_result &&
        c.pred == RuleAtom::Pred::kTa) {
      return TaSweep(a.pos);
    }
    if (a.pred == RuleAtom::Pred::kPa && a_is_arg && c_is_result &&
        c.pred == RuleAtom::Pred::kTa) {
      return PaToTaResult(a.pos);
    }
    if (a.pred == RuleAtom::Pred::kPa && a_is_arg && c_is_result &&
        c.pred == RuleAtom::Pred::kPa) {
      return PaPerturb(a.pos);
    }
    if (a.pred == RuleAtom::Pred::kTi && a_is_arg && c_is_result &&
        c.pred == RuleAtom::Pred::kTi) {
      return arity() == 1 ? true : TiAbsorb(a.pos);
    }
    if (a.pred == RuleAtom::Pred::kPi && a_is_arg && c_is_result &&
        c.pred == RuleAtom::Pred::kPi) {
      return PiRestrict(a.pos);
    }
    if (a.pred == RuleAtom::Pred::kTi && !a_is_arg &&
        c.pred == RuleAtom::Pred::kPi && c.pos != kResultPos) {
      return ResultBounds(c.pos);
    }
    if (a.pred == RuleAtom::Pred::kPi && !a_is_arg &&
        c.pred == RuleAtom::Pred::kPi && c.pos != kResultPos) {
      return ResultBounds(c.pos);
    }
    if (a.pred == RuleAtom::Pred::kTi && !a_is_arg &&
        c.pred == RuleAtom::Pred::kTi && c.pos != kResultPos) {
      return InvertibleAlways(c.pos);
    }
    if (a.pred == RuleAtom::Pred::kTi && !a_is_arg &&
        c.pred == RuleAtom::Pred::kPiStar && c.pos != kResultPos &&
        c.pos2 != kResultPos) {
      return ResultPairs();
    }
    if (a.pred == RuleAtom::Pred::kPi && !a_is_arg &&
        c.pred == RuleAtom::Pred::kPiStar && c.pos != kResultPos &&
        c.pos2 != kResultPos) {
      return ResultPairs();
    }
    if (a.pred == RuleAtom::Pred::kPi && a_is_arg &&
        c.pred == RuleAtom::Pred::kPiStar) {
      return ArgTiesPair(a.pos);
    }
    if (a.pred == RuleAtom::Pred::kPiStar && c.pred == RuleAtom::Pred::kTi &&
        c.pos == kResultPos) {
      return true;  // the pair set may be a singleton; determinism
    }
    if (a.pred == RuleAtom::Pred::kPiStar &&
        (a.pos == kResultPos || a.pos2 == kResultPos) &&
        c.pred == RuleAtom::Pred::kTi && c.pos != kResultPos) {
      int other = a.pos == kResultPos ? a.pos2 : a.pos;
      return PairPins(other, c.pos);
    }
  }

  if (p.size() == 2) {
    // {ti[0], ti[1]} -> ti[R] (determinism).
    if (premise_is(0, RuleAtom::Pred::kTi, 0) &&
        premise_is(1, RuleAtom::Pred::kTi, 1) &&
        c.pred == RuleAtom::Pred::kTi && c.pos == kResultPos) {
      return true;
    }
    // {pi[0], pi[1]} -> ti[R] or pi[R] (singleton candidate sets +
    // determinism).
    if (premise_is(0, RuleAtom::Pred::kPi, 0) &&
        premise_is(1, RuleAtom::Pred::kPi, 1) && c.pos == kResultPos &&
        (c.pred == RuleAtom::Pred::kTi || c.pred == RuleAtom::Pred::kPi)) {
      return true;
    }
    // {ti[R], ti[j]} -> ti[i] / pi[i].
    auto two_with_result = [&](RuleAtom::Pred arg_pred) -> const RuleAtom* {
      const RuleAtom* arg_atom = nullptr;
      bool has_result = false;
      for (const RuleAtom& atom : p) {
        if (atom.pos == kResultPos && atom.pred == RuleAtom::Pred::kTi) {
          has_result = true;
        } else if (atom.pos != kResultPos && atom.pred == arg_pred) {
          arg_atom = &atom;
        }
      }
      return has_result ? arg_atom : nullptr;
    };
    if (const RuleAtom* arg = two_with_result(RuleAtom::Pred::kTi);
        arg != nullptr && c.pos != kResultPos && c.pos != arg->pos) {
      if (c.pred == RuleAtom::Pred::kTi) return Invertible(c.pos);
      if (c.pred == RuleAtom::Pred::kPi) return ResultBounds(c.pos);
    }
    // {pi[i], ti[R]} -> pi[j]: a singleton candidate for i plus the
    // observed result may bound j (e.g. == pins it exactly).
    if (const RuleAtom* arg = two_with_result(RuleAtom::Pred::kPi);
        arg != nullptr && c.pos != kResultPos && c.pos != arg->pos &&
        c.pred == RuleAtom::Pred::kPi) {
      return ResultGivenOtherBounds(c.pos);
    }
    // {pi[R], ti[j]} -> pi[i]: a bounded result plus a known other
    // argument bounds the remaining argument.
    {
      const RuleAtom* ti_arg = nullptr;
      bool has_pi_result_atom = false;
      for (const RuleAtom& atom : p) {
        if (atom.pos == kResultPos && atom.pred == RuleAtom::Pred::kPi) {
          has_pi_result_atom = true;
        } else if (atom.pos != kResultPos &&
                   atom.pred == RuleAtom::Pred::kTi) {
          ti_arg = &atom;
        }
      }
      if (has_pi_result_atom && ti_arg != nullptr &&
          c.pred == RuleAtom::Pred::kPi && c.pos != kResultPos &&
          c.pos != ti_arg->pos) {
        return ResultGivenOtherBounds(c.pos);
      }
    }
    // {pi[i]/pa[i], pi[R]} -> ti[j] (the corner template).
    const RuleAtom* arg_atom = nullptr;
    bool has_pi_result = false;
    for (const RuleAtom& atom : p) {
      if (atom.pos == kResultPos && atom.pred == RuleAtom::Pred::kPi) {
        has_pi_result = true;
      } else if (atom.pos != kResultPos &&
                 (atom.pred == RuleAtom::Pred::kPi ||
                  atom.pred == RuleAtom::Pred::kPa)) {
        arg_atom = &atom;
      }
    }
    if (has_pi_result && arg_atom != nullptr &&
        c.pred == RuleAtom::Pred::kTi && c.pos != kResultPos &&
        c.pos != arg_atom->pos) {
      return CornerPins(arg_atom->pos, c.pos);
    }
  }

  if (p.size() == 3) {
    // {ti[i], pa[i], ti[R]} -> ti[j] (the probe template).
    int swept = -2;
    bool has_ti_arg = false, has_pa_arg = false, has_ti_result = false;
    for (const RuleAtom& atom : p) {
      if (atom.pos == kResultPos) {
        if (atom.pred == RuleAtom::Pred::kTi) has_ti_result = true;
      } else {
        if (atom.pred == RuleAtom::Pred::kTi) {
          has_ti_arg = true;
          swept = atom.pos;
        }
        if (atom.pred == RuleAtom::Pred::kPa) has_pa_arg = true;
      }
    }
    if (has_ti_arg && has_pa_arg && has_ti_result &&
        c.pred == RuleAtom::Pred::kTi && c.pos != kResultPos &&
        c.pos != swept) {
      return Probe(c.pos);
    }
  }

  return common::UnimplementedError(common::StrCat(
      "no metarule template matches rule: ", rule.ToString()));
}

// ---------------------------------------------------------------------
// Synthesis.

std::vector<BasicRule> MetaruleEngine::Synthesize() const {
  using core::Pa;
  using core::Pi;
  using core::PiStar;
  using core::Ta;
  using core::Ti;
  std::vector<BasicRule> rules;
  const std::string& op = fn_->name();
  auto add = [&](const char* tmpl, std::vector<RuleAtom> premises,
                 RuleAtom conclusion) {
    rules.push_back({common::StrCat(op, ": MT-", tmpl),
                     std::move(premises), conclusion});
  };

  int n = static_cast<int>(arity());
  for (int i = 0; i < n; ++i) {
    if (TaSweep(i)) add("sweep", {Ta(i)}, Ta(kResultPos));
    if (PaToTaResult(i)) {
      add("flip", {Pa(i)}, Ta(kResultPos));
    } else if (PaPerturb(i)) {
      add("perturb", {Pa(i)}, Pa(kResultPos));
    }
    if (arity() == 1 || TiAbsorb(i)) add("absorb", {Ti(i)}, Ti(kResultPos));
    if (PiRestrict(i)) add("restrict", {Pi(i)}, Pi(kResultPos));
    if (ResultBounds(i)) add("bound", {Ti(kResultPos)}, Pi(i));
    if (arity() == 1 && InvertibleAlways(i)) {
      add("invert", {Ti(kResultPos)}, Ti(i));
    }
    if (arity() == 2) {
      int j = OtherArg(i);
      if (Invertible(i)) add("invert", {Ti(kResultPos), Ti(j)}, Ti(i));
      if (Probe(i)) add("probe", {Ti(j), Pa(j), Ti(kResultPos)}, Ti(i));
      if (ArgTiesPair(i)) add("tie", {Pi(i)}, PiStar(j, kResultPos));
      if (CornerPins(j, i)) add("corner", {Pi(j), Pi(kResultPos)}, Ti(i));
      if (PairPins(j, i)) add("pair-pin", {PiStar(j, kResultPos)}, Ti(i));
    }
  }
  if (arity() == 2) {
    add("known-args", {Ti(0), Ti(1)}, Ti(kResultPos));
    if (ResultPairs()) add("pairs", {Ti(kResultPos)}, PiStar(0, 1));
  }
  if (ImageProper()) add("image", {}, Pi(kResultPos));
  return rules;
}

}  // namespace oodbsec::basicfun
