#include "unfold/unfolded.h"

#include "common/strings.h"
#include "lang/ast.h"

namespace oodbsec::unfold {

using common::Result;
using common::Status;

namespace {

// Lexical scope used during unfolding: variable name -> binder id.
struct Scope {
  const Scope* parent = nullptr;
  std::vector<std::pair<std::string, int>> entries;

  int Find(const std::string& name) const {
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
      if (it->first == name) return it->second;
    }
    return parent == nullptr ? -1 : parent->Find(name);
  }
};

}  // namespace

class Builder {
 public:
  Builder(UnfoldedSet& set, const schema::Schema& schema)
      : set_(set), schema_(schema) {}

  Status BuildRoots(const std::vector<std::string>& root_names) {
    for (const std::string& name : root_names) {
      schema::Callable callable = schema_.ResolveCallable(name);
      if (!callable.ok()) {
        return common::NotFoundError(
            common::StrCat("cannot unfold '", name,
                           "': no such access function or special function"));
      }
      Root root;
      root.function_name = name;
      root.callable = callable;
      root.first_node_id = static_cast<int>(set_.nodes_by_id_.size()) + 1;
      int root_index = static_cast<int>(set_.roots_.size());

      Scope scope;
      switch (callable.kind) {
        case schema::Callable::Kind::kAccess: {
          const schema::FunctionDecl& fn = *callable.access;
          for (size_t i = 0; i < fn.params().size(); ++i) {
            int binder = NewRootArgBinder(fn.params()[i].name,
                                          fn.params()[i].type, root_index,
                                          static_cast<int>(i));
            root.arg_binder_ids.push_back(binder);
            scope.entries.emplace_back(fn.params()[i].name, binder);
          }
          OODBSEC_ASSIGN_OR_RETURN(root.body, Unfold(fn.body(), scope));
          break;
        }
        case schema::Callable::Kind::kReadAttr: {
          int binder = NewRootArgBinder("x", callable.param_types[0],
                                        root_index, 0);
          root.arg_binder_ids.push_back(binder);
          Node* var = NewNode(NodeKind::kVarRef, callable.param_types[0]);
          BindOccurrence(var, binder, "x");
          Number(var);
          Node* read = NewNode(NodeKind::kReadAttr, callable.return_type);
          read->attribute = callable.attribute->name;
          read->attr_class = callable.cls;
          Attach(read, {var});
          Number(read);
          set_.reads_[read->attribute].push_back(read);
          root.body = read;
          break;
        }
        case schema::Callable::Kind::kWriteAttr: {
          int obj_binder = NewRootArgBinder("o", callable.param_types[0],
                                            root_index, 0);
          int val_binder = NewRootArgBinder("v", callable.param_types[1],
                                            root_index, 1);
          root.arg_binder_ids = {obj_binder, val_binder};
          Node* obj = NewNode(NodeKind::kVarRef, callable.param_types[0]);
          BindOccurrence(obj, obj_binder, "o");
          Number(obj);
          Node* val = NewNode(NodeKind::kVarRef, callable.param_types[1]);
          BindOccurrence(val, val_binder, "v");
          Number(val);
          Node* write = NewNode(NodeKind::kWriteAttr, callable.return_type);
          write->attribute = callable.attribute->name;
          write->attr_class = callable.cls;
          Attach(write, {obj, val});
          Number(write);
          set_.writes_[write->attribute].push_back(write);
          root.body = write;
          break;
        }
        case schema::Callable::Kind::kNone:
          return common::InternalError("unreachable");
      }
      set_.roots_.push_back(std::move(root));
    }
    return Status::Ok();
  }

 private:
  Node* NewNode(NodeKind kind, const types::Type* type) {
    set_.arena_.push_back(std::make_unique<Node>());
    Node* node = set_.arena_.back().get();
    node->kind = kind;
    node->type = type;
    return node;
  }

  // Assigns the next evaluation-order number. Called for every node
  // *after* its children (and for leaves on creation), which yields the
  // paper's ordering.
  void Number(Node* node) {
    set_.nodes_by_id_.push_back(node);
    node->id = static_cast<int>(set_.nodes_by_id_.size());
  }

  void Attach(Node* parent, std::vector<Node*> children) {
    for (size_t i = 0; i < children.size(); ++i) {
      children[i]->parent = parent;
      children[i]->child_index = static_cast<int>(i);
    }
    parent->children = std::move(children);
  }

  int NewRootArgBinder(const std::string& name, const types::Type* type,
                       int root_index, int arg_index) {
    Binder binder;
    binder.id = static_cast<int>(set_.binders_.size());
    binder.name = name;
    binder.type = type;
    binder.is_root_arg = true;
    binder.root_index = root_index;
    binder.arg_index = arg_index;
    set_.binders_.push_back(std::move(binder));
    return set_.binders_.back().id;
  }

  int NewLetBinder(const std::string& name, const types::Type* type,
                   const Node* bound_expr) {
    Binder binder;
    binder.id = static_cast<int>(set_.binders_.size());
    binder.name = name;
    binder.type = type;
    binder.bound_expr = bound_expr;
    set_.binders_.push_back(std::move(binder));
    return set_.binders_.back().id;
  }

  void BindOccurrence(Node* node, int binder_id, std::string name) {
    node->binder_id = binder_id;
    node->var_name = std::move(name);
    set_.binders_[binder_id].occurrences.push_back(node);
  }

  Result<Node*> Unfold(const lang::Expr& expr, const Scope& scope) {
    switch (expr.kind()) {
      case lang::ExprKind::kConstant: {
        Node* node = NewNode(NodeKind::kConstant, expr.type());
        node->constant = expr.AsConstant().value();
        Number(node);
        return node;
      }

      case lang::ExprKind::kVarRef: {
        const lang::VarRefExpr& var = expr.AsVarRef();
        int binder_id = scope.Find(var.name());
        if (binder_id < 0) {
          return common::InternalError(common::StrCat(
              "unbound variable '", var.name(), "' during unfolding"));
        }
        Node* node = NewNode(NodeKind::kVarRef, expr.type());
        BindOccurrence(node, binder_id, var.name());
        Number(node);
        return node;
      }

      case lang::ExprKind::kCall: {
        const lang::CallExpr& call = expr.AsCall();
        std::vector<Node*> args;
        args.reserve(call.args().size());
        for (const auto& arg : call.args()) {
          OODBSEC_ASSIGN_OR_RETURN(Node* node, Unfold(*arg, scope));
          args.push_back(node);
        }
        switch (call.target()) {
          case lang::CallTarget::kBasic: {
            Node* node = NewNode(NodeKind::kBasicCall, expr.type());
            node->basic = call.basic();
            Attach(node, std::move(args));
            Number(node);
            return node;
          }
          case lang::CallTarget::kReadAttr: {
            Node* node = NewNode(NodeKind::kReadAttr, expr.type());
            node->attribute = call.attribute();
            node->attr_class =
                schema_.FindClassByAttribute(call.attribute());
            Attach(node, std::move(args));
            Number(node);
            set_.reads_[node->attribute].push_back(node);
            return node;
          }
          case lang::CallTarget::kWriteAttr: {
            Node* node = NewNode(NodeKind::kWriteAttr, expr.type());
            node->attribute = call.attribute();
            node->attr_class =
                schema_.FindClassByAttribute(call.attribute());
            Attach(node, std::move(args));
            Number(node);
            set_.writes_[node->attribute].push_back(node);
            return node;
          }
          case lang::CallTarget::kAccess: {
            // Replace f(e1,…,en) with let(f) x1=e1,… in body end.
            const schema::FunctionDecl* fn =
                schema_.FindFunction(call.name());
            if (fn == nullptr) {
              return common::InternalError(
                  common::StrCat("missing function '", call.name(), "'"));
            }
            Node* let = NewNode(NodeKind::kLet, expr.type());
            let->origin_function = fn->name();
            Scope inner;  // function bodies see only their own parameters
            std::vector<Node*> children = std::move(args);
            for (size_t i = 0; i < children.size(); ++i) {
              int binder = NewLetBinder(fn->params()[i].name,
                                        fn->params()[i].type, children[i]);
              let->binder_ids.push_back(binder);
              let->binder_names.push_back(fn->params()[i].name);
              inner.entries.emplace_back(fn->params()[i].name, binder);
            }
            OODBSEC_ASSIGN_OR_RETURN(Node* body, Unfold(fn->body(), inner));
            children.push_back(body);
            Attach(let, std::move(children));
            Number(let);
            // Binder back-references for let binders.
            for (size_t i = 0; i < let->binder_ids.size(); ++i) {
              set_.binders_[let->binder_ids[i]].let_node = let;
              set_.binders_[let->binder_ids[i]].let_pos = static_cast<int>(i);
            }
            return let;
          }
          case lang::CallTarget::kUnresolved:
            return common::InternalError(common::StrCat(
                "unresolved call '", call.name(), "' during unfolding"));
        }
        return common::InternalError("unreachable");
      }

      case lang::ExprKind::kLet: {
        // Source-level let: same node shape, empty origin_function.
        const lang::LetExpr& source_let = expr.AsLet();
        Node* let = NewNode(NodeKind::kLet, expr.type());
        Scope inner;
        inner.parent = &scope;
        std::vector<Node*> children;
        for (const lang::LetExpr::Binding& binding : source_let.bindings()) {
          OODBSEC_ASSIGN_OR_RETURN(Node* init, Unfold(*binding.init, inner));
          int binder = NewLetBinder(binding.name, init->type, init);
          let->binder_ids.push_back(binder);
          let->binder_names.push_back(binding.name);
          inner.entries.emplace_back(binding.name, binder);
          children.push_back(init);
        }
        OODBSEC_ASSIGN_OR_RETURN(Node* body,
                                 Unfold(source_let.body(), inner));
        children.push_back(body);
        Attach(let, std::move(children));
        Number(let);
        for (size_t i = 0; i < let->binder_ids.size(); ++i) {
          set_.binders_[let->binder_ids[i]].let_node = let;
          set_.binders_[let->binder_ids[i]].let_pos = static_cast<int>(i);
        }
        return let;
      }
    }
    return common::InternalError("unknown expression kind");
  }

  UnfoldedSet& set_;
  const schema::Schema& schema_;
};

Result<std::unique_ptr<UnfoldedSet>> UnfoldedSet::Build(
    const schema::Schema& schema, const std::vector<std::string>& root_names,
    obs::Observability* obs) {
  obs::ScopedSpan span(obs != nullptr ? &obs->tracer : nullptr, "unfold");
  std::unique_ptr<UnfoldedSet> set(new UnfoldedSet());
  set->schema_ = &schema;
  Builder builder(*set, schema);
  OODBSEC_RETURN_IF_ERROR(builder.BuildRoots(root_names));
  if (obs != nullptr) {
    obs->metrics.counter("unfold.builds")->Increment();
    obs->metrics.counter("unfold.roots")->Increment(set->roots_.size());
    obs->metrics.counter("unfold.occurrences")
        ->Increment(static_cast<uint64_t>(set->node_count()));
  }
  return set;
}

const std::vector<const Node*>& UnfoldedSet::reads(
    const std::string& attribute) const {
  static const std::vector<const Node*>& empty =
      *new std::vector<const Node*>();
  auto it = reads_.find(attribute);
  return it == reads_.end() ? empty : it->second;
}

const std::vector<const Node*>& UnfoldedSet::writes(
    const std::string& attribute) const {
  static const std::vector<const Node*>& empty =
      *new std::vector<const Node*>();
  auto it = writes_.find(attribute);
  return it == writes_.end() ? empty : it->second;
}

std::vector<std::string> UnfoldedSet::touched_attributes() const {
  std::vector<std::string> out;
  for (const auto& [attribute, _] : reads_) out.push_back(attribute);
  for (const auto& [attribute, _] : writes_) {
    if (reads_.find(attribute) == reads_.end()) out.push_back(attribute);
  }
  return out;
}

bool UnfoldedSet::IsRootArgVar(const Node* node) const {
  return node->kind == NodeKind::kVarRef &&
         binders_[node->binder_id].is_root_arg;
}

bool UnfoldedSet::IsRootBody(const Node* node) const {
  if (node->parent != nullptr) return false;
  for (const Root& root : roots_) {
    if (root.body == node) return true;
  }
  return false;
}

namespace {

void RenderNode(const Node* node, bool with_ids, std::string& out) {
  if (with_ids) {
    out += std::to_string(node->id);
    out += ':';
  }
  switch (node->kind) {
    case NodeKind::kConstant:
      out += node->constant.ToString();
      return;
    case NodeKind::kVarRef:
      out += node->var_name;
      return;
    case NodeKind::kBasicCall: {
      out += node->basic->name();
      out += '(';
      for (size_t i = 0; i < node->children.size(); ++i) {
        if (i > 0) out += ", ";
        RenderNode(node->children[i], with_ids, out);
      }
      out += ')';
      return;
    }
    case NodeKind::kReadAttr:
    case NodeKind::kWriteAttr: {
      out += node->kind == NodeKind::kReadAttr ? "r_" : "w_";
      out += node->attribute;
      out += '(';
      for (size_t i = 0; i < node->children.size(); ++i) {
        if (i > 0) out += ", ";
        RenderNode(node->children[i], with_ids, out);
      }
      out += ')';
      return;
    }
    case NodeKind::kLet: {
      out += "let";
      if (!node->origin_function.empty()) {
        out += '(';
        out += node->origin_function;
        out += ')';
      }
      out += ' ';
      for (size_t i = 0; i + 1 < node->children.size(); ++i) {
        if (i > 0) out += ", ";
        out += node->binder_names[i];
        out += " = ";
        RenderNode(node->children[i], with_ids, out);
      }
      out += " in ";
      RenderNode(node->children.back(), with_ids, out);
      out += " end";
      return;
    }
  }
}

}  // namespace

std::string UnfoldedSet::NodeLabel(const Node* node) const {
  std::string out;
  RenderNode(node, /*with_ids=*/true, out);
  return out;
}

std::string UnfoldedSet::ShortLabel(const Node* node) const {
  std::string out;
  out += std::to_string(node->id);
  out += ':';
  switch (node->kind) {
    case NodeKind::kConstant:
      out += node->constant.ToString();
      break;
    case NodeKind::kVarRef:
      out += node->var_name;
      break;
    case NodeKind::kBasicCall:
    case NodeKind::kReadAttr:
    case NodeKind::kWriteAttr:
    case NodeKind::kLet: {
      std::string full;
      RenderNode(node, /*with_ids=*/false, full);
      out += full;
      break;
    }
  }
  return out;
}

}  // namespace oodbsec::unfold
