// Unfolding and numbering (paper §3.3 / §4.1).
//
// Given a set of directly invocable functions F (a user's capability
// list), every access-function invocation f(e1,…,en) is recursively
// replaced by
//
//   let(f) x1 = e1, …, xn = en in body end
//
// and every subexpression occurrence is numbered in evaluation order:
// call arguments before the call, let-bound expressions before the body
// before the let node itself. This reproduces the paper's numbering, e.g.
// checkBudget unfolds to
//
//   7>=( 2r_budget(1broker), 6*( 3:10, 5r_salary(4broker) ) )
//
// with the argument variable `broker` occurring at 1 and 4. The special
// functions r_att / w_att can themselves be roots (w_budget(8o, 9v) in
// the paper's §4.2 example).
//
// The same machinery builds numbered function *sequences* for the
// semantic side (src/semantics): a sequence is just a root list with
// duplicates allowed.
#ifndef OODBSEC_UNFOLD_UNFOLDED_H_
#define OODBSEC_UNFOLD_UNFOLDED_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/basic_functions.h"
#include "obs/obs.h"
#include "schema/schema.h"
#include "types/type.h"
#include "types/value.h"

namespace oodbsec::unfold {

enum class NodeKind {
  kConstant,
  kVarRef,     // occurrence of a root argument or let-bound variable
  kBasicCall,
  kReadAttr,   // r_<att>(obj)
  kWriteAttr,  // w_<att>(obj, value)
  kLet,        // let(f) from unfolding, or a source-level let
};

// One numbered subexpression occurrence (the paper's ᵏe). Nodes are owned
// by the UnfoldedSet arena; all pointers are stable.
struct Node {
  int id = 0;  // 1-based evaluation-order number, unique across the set
  NodeKind kind = NodeKind::kConstant;
  const types::Type* type = nullptr;
  Node* parent = nullptr;  // null for root bodies
  int child_index = -1;    // position within parent->children

  // Children in evaluation order. For kLet: the bound expressions
  // followed by the body (children.back()).
  std::vector<Node*> children;

  types::Value constant;  // kConstant

  int binder_id = -1;     // kVarRef: which binder this occurrence refers to
  std::string var_name;   // kVarRef

  const exec::BasicFunction* basic = nullptr;  // kBasicCall

  std::string attribute;                        // kReadAttr / kWriteAttr
  const schema::ClassDef* attr_class = nullptr; // class declaring it

  // kLet: the unfolded access function's name, or "" for source lets.
  std::string origin_function;
  std::vector<int> binder_ids;          // kLet: one per bound expression
  std::vector<std::string> binder_names;  // kLet: parallel to binder_ids

  const Node* body() const { return children.back(); }           // kLet
  const Node* object_child() const { return children[0]; }       // r/w
  const Node* value_child() const { return children[1]; }        // w only
  bool is_let() const { return kind == NodeKind::kLet; }
};

// A variable binder: a root argument or a let binding position.
struct Binder {
  int id = -1;
  std::string name;
  const types::Type* type = nullptr;
  bool is_root_arg = false;
  int root_index = -1;  // for root args
  int arg_index = -1;   // for root args
  const Node* let_node = nullptr;  // for let binders
  int let_pos = -1;                // position within the let
  // The bound expression (for let binders); null for root args.
  const Node* bound_expr = nullptr;
  // All kVarRef occurrences of this binder.
  std::vector<const Node*> occurrences;
};

// One directly invocable function from the root list.
//
// Site-id stability: unfolding one function is deterministic and
// self-contained — it consults only the schema, never the other roots —
// so the root's subtree always occupies the contiguous id range
// [first_node_id, body->id] and has the same shape (and the same
// id-minus-first_node_id offsets) no matter which root list it appears
// in or at which position. Warm-start closure seeding
// (core::Closure's warm_base) relies on this invariant to translate
// fact node ids between two unfolds that share root functions.
struct Root {
  std::string function_name;
  schema::Callable callable;
  std::vector<int> arg_binder_ids;
  Node* body = nullptr;
  // First occurrence id of this root's subtree; the last is body->id
  // (the body is numbered after all of its descendants).
  int first_node_id = 0;
};

// The unfolded, numbered set S(F) with cross-reference tables.
class UnfoldedSet {
 public:
  // `root_names` may contain duplicates (function sequences). Every name
  // must resolve to an access function or special function. When `obs`
  // is given, the build runs under an "unfold" span and reports node /
  // root counts to the metrics registry.
  static common::Result<std::unique_ptr<UnfoldedSet>> Build(
      const schema::Schema& schema, const std::vector<std::string>& root_names,
      obs::Observability* obs = nullptr);

  UnfoldedSet(const UnfoldedSet&) = delete;
  UnfoldedSet& operator=(const UnfoldedSet&) = delete;

  const schema::Schema& schema() const { return *schema_; }
  const std::vector<Root>& roots() const { return roots_; }
  const std::vector<Binder>& binders() const { return binders_; }

  int node_count() const { return static_cast<int>(nodes_by_id_.size()); }
  // 1-based lookup; id must be in [1, node_count()].
  const Node* node(int id) const { return nodes_by_id_[id - 1]; }
  const Binder& binder(int id) const { return binders_[id]; }

  // All kReadAttr / kWriteAttr occurrences on `attribute`.
  const std::vector<const Node*>& reads(const std::string& attribute) const;
  const std::vector<const Node*>& writes(const std::string& attribute) const;
  // Attributes with at least one read or write occurrence.
  std::vector<std::string> touched_attributes() const;

  // Role predicates (paper: "argument variable of an outer-most
  // function" / "entire body of an outer-most function").
  bool IsRootArgVar(const Node* node) const;
  bool IsRootBody(const Node* node) const;

  // Paper-style rendering with occurrence numbers, e.g.
  // "7:>=(2:r_budget(1:broker), 6:*(3:10, 5:r_salary(4:broker)))".
  std::string NodeLabel(const Node* node) const;
  std::string NodeLabel(int id) const { return NodeLabel(node(id)); }
  // Short form without nested numbering, e.g. "5:r_salary(broker)".
  std::string ShortLabel(const Node* node) const;
  std::string ShortLabel(int id) const { return ShortLabel(node(id)); }

 private:
  UnfoldedSet() = default;

  friend class Builder;

  const schema::Schema* schema_ = nullptr;
  std::vector<std::unique_ptr<Node>> arena_;
  std::vector<Node*> nodes_by_id_;
  std::vector<Root> roots_;
  std::vector<Binder> binders_;
  std::map<std::string, std::vector<const Node*>> reads_;
  std::map<std::string, std::vector<const Node*>> writes_;
};

}  // namespace oodbsec::unfold

#endif  // OODBSEC_UNFOLD_UNFOLDED_H_
