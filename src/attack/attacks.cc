#include "attack/attacks.h"

#include "common/strings.h"
#include "query/binder.h"
#include "query/query_evaluator.h"
#include "query/query_parser.h"

namespace oodbsec::attack {

using common::Result;
using types::Value;

namespace {

std::string Selector(const std::string& var, const std::string& select_attr,
                     const Value& select_value) {
  if (select_attr.empty()) return "";
  return common::StrCat(" where r_", select_attr, "(", var,
                        ") == ", select_value.ToString());
}

// Runs one query text for `user`, returning the result rows.
Result<query::QueryResult> RunQuery(store::Database& db,
                                    const schema::User& user,
                                    const std::string& text) {
  OODBSEC_ASSIGN_OR_RETURN(std::unique_ptr<query::SelectQuery> parsed,
                           query::ParseQueryString(text));
  OODBSEC_RETURN_IF_ERROR(query::BindQuery(*parsed, db.schema()));
  query::QueryEvaluator evaluator(db, &user);
  return evaluator.Run(*parsed);
}

}  // namespace

Result<ProbeTranscript> ExtractHiddenValue(store::Database& db,
                                           const schema::User& user,
                                           const BinarySearchConfig& config) {
  ProbeTranscript transcript;
  std::string selector =
      Selector("b", config.select_attr, config.select_value);

  // One probe: write `value` through write_fn, then invoke compare_fn;
  // both happen inside one query, items evaluated left to right.
  auto probe = [&](int64_t value) -> Result<bool> {
    std::string text = common::StrCat(
        "select ", config.write_fn, "(b, ", value, "), ", config.compare_fn,
        "(b) from b in ", config.class_name, selector);
    transcript.queries.push_back(text);
    ++transcript.probes;
    OODBSEC_ASSIGN_OR_RETURN(query::QueryResult result,
                             RunQuery(db, user, text));
    if (result.rows.size() != 1 || !result.rows[0][1].is_bool()) {
      return common::FailedPreconditionError(common::StrCat(
          "probe expected one boolean row, got:\n", result.ToString()));
    }
    return result.rows[0][1].bool_value();
  };

  if (config.increasing) {
    // compare(p) == (p >= factor*h): find the smallest true probe; then
    // h = p / factor.
    OODBSEC_ASSIGN_OR_RETURN(bool at_hi, probe(config.hi));
    if (!at_hi) {
      return common::OutOfRangeError(
          "comparator is false at the top of the search range; the hidden "
          "value lies outside [lo, hi]");
    }
    OODBSEC_ASSIGN_OR_RETURN(bool at_lo, probe(config.lo));
    int64_t lo = config.lo;
    int64_t hi = config.hi;
    if (at_lo) {
      if (config.lo != 0) {
        return common::OutOfRangeError(
            "comparator is already true at the bottom of the search range; "
            "the hidden value lies below lo");
      }
      hi = lo;  // the threshold is exactly the bottom of the range
    }
    while (lo < hi) {
      int64_t mid = lo + (hi - lo) / 2;
      OODBSEC_ASSIGN_OR_RETURN(bool at_mid, probe(mid));
      if (at_mid) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    transcript.inferred = Value::Int(hi / config.factor);
    return transcript;
  }

  // compare(p) == (h >= p / factor-ish): find the largest true probe;
  // then h = p / factor.
  OODBSEC_ASSIGN_OR_RETURN(bool at_lo, probe(config.lo));
  if (!at_lo) {
    return common::OutOfRangeError(
        "comparator is false at the bottom of the search range; the hidden "
        "value lies outside [lo, hi]");
  }
  OODBSEC_ASSIGN_OR_RETURN(bool at_hi, probe(config.hi));
  int64_t lo = config.lo;
  int64_t hi = config.hi;
  if (at_hi) {
    lo = hi;
  }
  while (lo < hi) {
    int64_t mid = lo + (hi - lo + 1) / 2;  // upper mid: find the last true
    OODBSEC_ASSIGN_OR_RETURN(bool at_mid, probe(mid));
    if (at_mid) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  transcript.inferred = Value::Int(lo / config.factor);
  return transcript;
}

Result<ProbeTranscript> ExtractByArgumentProbing(
    store::Database& db, const schema::User& user,
    const ArgumentProbeConfig& config) {
  ProbeTranscript transcript;
  std::string selector =
      Selector("b", config.select_attr, config.select_value);

  auto probe = [&](int64_t threshold) -> Result<bool> {
    std::string text =
        common::StrCat("select ", config.compare_fn, "(b, ", threshold,
                       ") from b in ", config.class_name, selector);
    transcript.queries.push_back(text);
    ++transcript.probes;
    OODBSEC_ASSIGN_OR_RETURN(query::QueryResult result,
                             RunQuery(db, user, text));
    if (result.rows.size() != 1 || !result.rows[0][0].is_bool()) {
      return common::FailedPreconditionError(common::StrCat(
          "probe expected one boolean row, got:\n", result.ToString()));
    }
    bool outcome = result.rows[0][0].bool_value();
    return config.ascending ? outcome : !outcome;
  };

  // probe(t) == (hidden >= t): the largest t with probe(t) true is the
  // hidden value itself.
  OODBSEC_ASSIGN_OR_RETURN(bool at_lo, probe(config.lo));
  if (!at_lo) {
    return common::OutOfRangeError(
        "comparator is false at the bottom of the search range");
  }
  OODBSEC_ASSIGN_OR_RETURN(bool at_hi, probe(config.hi));
  int64_t lo = config.lo;
  int64_t hi = config.hi;
  if (at_hi) {
    lo = hi;
  }
  while (lo < hi) {
    int64_t mid = lo + (hi - lo + 1) / 2;  // upper mid: find the last true
    OODBSEC_ASSIGN_OR_RETURN(bool at_mid, probe(mid));
    if (at_mid) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  transcript.inferred = Value::Int(lo);
  return transcript;
}

Result<ProbeTranscript> ForgeWrittenValue(store::Database& db,
                                          const schema::User& user,
                                          const ForgeConfig& config) {
  ProbeTranscript transcript;
  std::string selector =
      Selector("b", config.select_attr, config.select_value);

  std::string items;
  for (const auto& [write_fn, value] : config.setup_writes) {
    items += common::StrCat(write_fn, "(b, ", value.ToString(), "), ");
  }
  items += common::StrCat(config.trigger_fn, "(b)");
  std::string text = common::StrCat("select ", items, " from b in ",
                                    config.class_name, selector);
  transcript.queries.push_back(text);
  ++transcript.probes;
  OODBSEC_ASSIGN_OR_RETURN(query::QueryResult result,
                           RunQuery(db, user, text));
  if (result.rows.size() != 1) {
    return common::FailedPreconditionError(
        common::StrCat("forge query matched ", result.rows.size(),
                       " row(s); expected exactly one victim"));
  }
  return transcript;
}

}  // namespace oodbsec::attack
