// Concrete attack strategies that *realize* the flaws A(R) detects, by
// issuing ordinary queries under a user's capability list (so every
// probe passes the same access control a real client would).
//
// The paper's §3.1 inference attack: "if that user can change the amount
// of the budget to any value he wants, he can infer the exact amount of
// the salary by repeatedly changing the budget to several values and
// invoking the testing function". ExtractHiddenValue implements it as a
// binary search over the probe attribute, driving queries of the form
//
//   select w_budget(b, <probe>), checkBudget(b)
//   from b in Broker where r_name(b) == "John"
//
// The §3.1 alteration attack: a user who can alter the inputs of an
// audited update (updateSalary) writes an arbitrary salary.
// ForgeWrittenValue implements it by setting up the inputs and
// triggering the update.
#ifndef OODBSEC_ATTACK_ATTACKS_H_
#define OODBSEC_ATTACK_ATTACKS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "schema/user.h"
#include "store/database.h"
#include "types/value.h"

namespace oodbsec::attack {

struct ProbeTranscript {
  types::Value inferred;             // the extracted value
  int probes = 0;                    // number of probing queries issued
  std::vector<std::string> queries;  // every query issued, in order
};

struct BinarySearchConfig {
  std::string class_name;     // e.g. "Broker"
  // Optional victim selector: where r_<select_attr>(b) == select_value.
  std::string select_attr;    // empty = first/only object
  types::Value select_value;

  std::string write_fn;       // e.g. "w_budget" — the controllable input
  std::string compare_fn;     // e.g. "checkBudget" — the boolean monotone
                              // test: compare(obj) == (input >= factor*h)
                              // when `increasing`, or == (h >= input)
                              // when not.
  bool increasing = true;
  int64_t factor = 1;         // h = threshold / factor
  int64_t lo = 0;             // inclusive search range for factor*h
  int64_t hi = 1 << 20;
};

// Extracts the hidden value h via O(log(hi-lo)) probing queries, using
// only functions on `user`'s capability list (PermissionDenied if any
// probe would need more). The database is mutated by the probes, as a
// real attack would.
common::Result<ProbeTranscript> ExtractHiddenValue(
    store::Database& db, const schema::User& user,
    const BinarySearchConfig& config);

struct ArgumentProbeConfig {
  std::string class_name;
  std::string select_attr;  // optional victim selector (as above)
  types::Value select_value;

  // A granted boolean function compare_fn(obj, threshold) that tests
  // hidden >= threshold (or <=, see `ascending`).
  std::string compare_fn;
  bool ascending = true;  // true: compare == (hidden >= threshold)
  int64_t lo = 0;
  int64_t hi = 1 << 20;
};

// Extracts a hidden value through a threshold function that takes the
// probe as an *argument* (no writes needed): the paper's observation
// that controllability of a comparison operand suffices.
common::Result<ProbeTranscript> ExtractByArgumentProbing(
    store::Database& db, const schema::User& user,
    const ArgumentProbeConfig& config);

struct ForgeConfig {
  std::string class_name;
  std::string select_attr;  // optional victim selector (as above)
  types::Value select_value;

  // Input writes performed before the trigger, e.g.
  // {("w_profit", 0), ("w_budget", 10*target)}.
  std::vector<std::pair<std::string, types::Value>> setup_writes;
  std::string trigger_fn;  // e.g. "updateSalary"
};

// Performs the setup writes and the trigger in one query. Returns the
// query transcript; the caller verifies the effect (the attacker need
// not be able to read it back).
common::Result<ProbeTranscript> ForgeWrittenValue(store::Database& db,
                                                  const schema::User& user,
                                                  const ForgeConfig& config);

}  // namespace oodbsec::attack

#endif  // OODBSEC_ATTACK_ATTACKS_H_
