// The interpreter for the function definition language, evaluating
// type-checked expressions against a database state.
//
// An optional trace hook observes every subexpression evaluation in
// evaluation order (arguments before application, let inits before the
// body); the unfolding machinery uses it to build execution instances
// (paper §3.3).
#ifndef OODBSEC_EXEC_EVALUATOR_H_
#define OODBSEC_EXEC_EVALUATOR_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "lang/ast.h"
#include "schema/schema.h"
#include "store/database.h"
#include "types/value.h"

namespace oodbsec::exec {

// A lexical environment: name -> value, innermost binding wins.
class Environment {
 public:
  void Push(std::string name, types::Value value);
  // Removes the innermost `count` bindings (clamped to size()).
  void Pop(size_t count = 1);
  size_t size() const { return bindings_.size(); }
  // nullptr when unbound.
  const types::Value* Find(std::string_view name) const;

 private:
  std::vector<std::pair<std::string, types::Value>> bindings_;
};

class Evaluator {
 public:
  using TraceHook =
      std::function<void(const lang::Expr&, const types::Value&)>;

  explicit Evaluator(store::Database& db) : db_(db) {}

  // Calls an access function with the given argument values.
  common::Result<types::Value> CallFunction(
      const schema::FunctionDecl& fn, const std::vector<types::Value>& args);

  // Calls any callable (access function or special r_/w_) by name.
  common::Result<types::Value> CallByName(
      std::string_view name, const std::vector<types::Value>& args);

  // Evaluates `expr` under `env`. The expression must be type checked.
  common::Result<types::Value> Eval(const lang::Expr& expr, Environment& env);

  void set_trace_hook(TraceHook hook) { trace_ = std::move(hook); }

  store::Database& database() { return db_; }

 private:
  store::Database& db_;
  TraceHook trace_;
};

}  // namespace oodbsec::exec

#endif  // OODBSEC_EXEC_EVALUATOR_H_
