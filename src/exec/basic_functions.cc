#include "exec/basic_functions.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"

namespace oodbsec::exec {

types::Value BasicFunction::Eval(const std::vector<types::Value>& args) const {
  assert(args.size() == params_.size());
  return eval_(args);
}

std::string BasicFunction::SignatureToString() const {
  std::vector<std::string> parts;
  parts.reserve(params_.size());
  for (const types::Type* t : params_) parts.push_back(t->ToString());
  return common::StrCat(name_, "(", common::Join(parts, ", "), ") : ",
                        result_->ToString());
}

const BasicFunction* BasicFunctionCatalog::Add(BasicFunction function) {
  functions_.push_back(std::make_unique<BasicFunction>(std::move(function)));
  const BasicFunction* entry = functions_.back().get();
  by_name_.emplace(entry->name(), entry);
  return entry;
}

const BasicFunction* BasicFunctionCatalog::Find(
    std::string_view name,
    const std::vector<const types::Type*>& arg_types) const {
  auto [begin, end] = by_name_.equal_range(name);
  for (auto it = begin; it != end; ++it) {
    if (it->second->params() == arg_types) return it->second;
  }
  return nullptr;
}

bool BasicFunctionCatalog::HasName(std::string_view name) const {
  return by_name_.find(name) != by_name_.end();
}

namespace {

using types::Value;

int64_t I(const Value& v) { return v.int_value(); }
bool B(const Value& v) { return v.bool_value(); }
const std::string& S(const Value& v) { return v.string_value(); }

}  // namespace

std::unique_ptr<BasicFunctionCatalog> BasicFunctionCatalog::MakeDefault(
    types::TypePool& pool) {
  auto catalog = std::make_unique<BasicFunctionCatalog>();
  const types::Type* i = pool.Int();
  const types::Type* b = pool.Bool();
  const types::Type* s = pool.String();

  auto int2int = [&](const char* name, auto fn) {
    catalog->Add(BasicFunction(
        name, {i, i}, i, [fn](const std::vector<Value>& a) {
          return Value::Int(fn(I(a[0]), I(a[1])));
        }));
  };
  auto int1int = [&](const char* name, auto fn) {
    catalog->Add(BasicFunction(
        name, {i}, i,
        [fn](const std::vector<Value>& a) { return Value::Int(fn(I(a[0]))); }));
  };
  auto int2bool = [&](const char* name, auto fn) {
    catalog->Add(BasicFunction(
        name, {i, i}, b, [fn](const std::vector<Value>& a) {
          return Value::Bool(fn(I(a[0]), I(a[1])));
        }));
  };

  int2int("+", [](int64_t x, int64_t y) { return x + y; });
  int2int("-", [](int64_t x, int64_t y) { return x - y; });
  int2int("*", [](int64_t x, int64_t y) { return x * y; });
  // Division and remainder are made total: a zero divisor yields 0.
  int2int("/", [](int64_t x, int64_t y) { return y == 0 ? 0 : x / y; });
  int2int("%", [](int64_t x, int64_t y) { return y == 0 ? 0 : x % y; });
  int2int("min", [](int64_t x, int64_t y) { return std::min(x, y); });
  int2int("max", [](int64_t x, int64_t y) { return std::max(x, y); });
  int1int("neg", [](int64_t x) { return -x; });
  int1int("abs", [](int64_t x) { return x < 0 ? -x : x; });

  int2bool("<", [](int64_t x, int64_t y) { return x < y; });
  int2bool(">", [](int64_t x, int64_t y) { return x > y; });
  int2bool("<=", [](int64_t x, int64_t y) { return x <= y; });
  int2bool(">=", [](int64_t x, int64_t y) { return x >= y; });
  int2bool("==", [](int64_t x, int64_t y) { return x == y; });
  int2bool("!=", [](int64_t x, int64_t y) { return x != y; });

  catalog->Add(BasicFunction("==", {s, s}, b, [](const std::vector<Value>& a) {
    return Value::Bool(S(a[0]) == S(a[1]));
  }));
  catalog->Add(BasicFunction("!=", {s, s}, b, [](const std::vector<Value>& a) {
    return Value::Bool(S(a[0]) != S(a[1]));
  }));
  catalog->Add(
      BasicFunction("concat", {s, s}, s, [](const std::vector<Value>& a) {
        return Value::String(S(a[0]) + S(a[1]));
      }));

  catalog->Add(BasicFunction("and", {b, b}, b, [](const std::vector<Value>& a) {
    return Value::Bool(B(a[0]) && B(a[1]));
  }));
  catalog->Add(BasicFunction("or", {b, b}, b, [](const std::vector<Value>& a) {
    return Value::Bool(B(a[0]) || B(a[1]));
  }));
  catalog->Add(BasicFunction("==", {b, b}, b, [](const std::vector<Value>& a) {
    return Value::Bool(B(a[0]) == B(a[1]));
  }));
  catalog->Add(BasicFunction("!=", {b, b}, b, [](const std::vector<Value>& a) {
    return Value::Bool(B(a[0]) != B(a[1]));
  }));
  catalog->Add(BasicFunction("not", {b}, b, [](const std::vector<Value>& a) {
    return Value::Bool(!B(a[0]));
  }));

  return catalog;
}

}  // namespace oodbsec::exec
