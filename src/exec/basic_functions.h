// The catalog of basic functions: primitive, total operations on basic
// types (paper §2: "Basic functions are primitive operations on basic
// types, such as addition on integers").
//
// Each BasicFunction is monomorphic: overloaded surface names such as
// "==" resolve, by argument types, to distinct catalog entries. All
// functions are total — integer division and remainder by zero yield 0 —
// so the metarule engine (src/basicfun) can quantify over full domains.
#ifndef OODBSEC_EXEC_BASIC_FUNCTIONS_H_
#define OODBSEC_EXEC_BASIC_FUNCTIONS_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "types/type.h"
#include "types/value.h"

namespace oodbsec::exec {

class BasicFunction {
 public:
  using EvalFn = std::function<types::Value(const std::vector<types::Value>&)>;

  BasicFunction(std::string name, std::vector<const types::Type*> params,
                const types::Type* result, EvalFn eval)
      : name_(std::move(name)),
        params_(std::move(params)),
        result_(result),
        eval_(std::move(eval)) {}

  const std::string& name() const { return name_; }
  const std::vector<const types::Type*>& params() const { return params_; }
  size_t arity() const { return params_.size(); }
  const types::Type* result() const { return result_; }

  // Applies the function. `args` must match params() in count and types;
  // violations are programming errors (assert).
  types::Value Eval(const std::vector<types::Value>& args) const;

  // "name(t, t) : t", e.g. ">=(int, int) : bool".
  std::string SignatureToString() const;

 private:
  std::string name_;
  std::vector<const types::Type*> params_;
  const types::Type* result_;
  EvalFn eval_;
};

// Owns a set of basic functions and resolves (name, argument types).
//
// The default catalog (over a given TypePool) provides:
//   int  x int  -> int  : +  -  *  /  %  min  max
//   int         -> int  : neg  abs
//   int  x int  -> bool : <  >  <=  >=  ==  !=
//   str  x str  -> bool : ==  !=
//   str  x str  -> str  : concat
//   bool x bool -> bool : and  or  ==  !=
//   bool        -> bool : not
class BasicFunctionCatalog {
 public:
  BasicFunctionCatalog() = default;
  BasicFunctionCatalog(const BasicFunctionCatalog&) = delete;
  BasicFunctionCatalog& operator=(const BasicFunctionCatalog&) = delete;

  // Builds the default catalog with types interned in `pool`.
  static std::unique_ptr<BasicFunctionCatalog> MakeDefault(
      types::TypePool& pool);

  // Registers a function; returns the stable catalog entry.
  const BasicFunction* Add(BasicFunction function);

  // Exact-overload resolution; nullptr if absent.
  const BasicFunction* Find(
      std::string_view name,
      const std::vector<const types::Type*>& arg_types) const;

  // True if any overload exists under `name`.
  bool HasName(std::string_view name) const;

  // All catalog entries, in registration order.
  const std::vector<std::unique_ptr<BasicFunction>>& functions() const {
    return functions_;
  }

 private:
  std::vector<std::unique_ptr<BasicFunction>> functions_;
  std::multimap<std::string, const BasicFunction*, std::less<>> by_name_;
};

}  // namespace oodbsec::exec

#endif  // OODBSEC_EXEC_BASIC_FUNCTIONS_H_
