#include "exec/evaluator.h"

#include <algorithm>

#include "common/strings.h"
#include "lang/printer.h"

namespace oodbsec::exec {

using common::Result;
using types::Value;

void Environment::Push(std::string name, Value value) {
  bindings_.emplace_back(std::move(name), std::move(value));
}

void Environment::Pop(size_t count) {
  bindings_.resize(bindings_.size() - std::min(count, bindings_.size()));
}

const Value* Environment::Find(std::string_view name) const {
  for (auto it = bindings_.rbegin(); it != bindings_.rend(); ++it) {
    if (it->first == name) return &it->second;
  }
  return nullptr;
}

Result<Value> Evaluator::CallFunction(const schema::FunctionDecl& fn,
                                      const std::vector<Value>& args) {
  if (args.size() != fn.params().size()) {
    return common::InvalidArgumentError(
        common::StrCat("'", fn.name(), "' expects ", fn.params().size(),
                       " argument(s), got ", args.size()));
  }
  Environment env;
  for (size_t i = 0; i < args.size(); ++i) {
    env.Push(fn.params()[i].name, args[i]);
  }
  return Eval(fn.body(), env);
}

Result<Value> Evaluator::CallByName(std::string_view name,
                                    const std::vector<Value>& args) {
  schema::Callable callable = db_.schema().ResolveCallable(name);
  switch (callable.kind) {
    case schema::Callable::Kind::kAccess:
      return CallFunction(*callable.access, args);
    case schema::Callable::Kind::kReadAttr: {
      if (args.size() != 1 || !args[0].is_object()) {
        return common::InvalidArgumentError(
            common::StrCat("'", name, "' expects one object argument"));
      }
      return db_.ReadAttribute(args[0].oid(), callable.attribute->name);
    }
    case schema::Callable::Kind::kWriteAttr: {
      if (args.size() != 2 || !args[0].is_object()) {
        return common::InvalidArgumentError(
            common::StrCat("'", name, "' expects (object, value) arguments"));
      }
      OODBSEC_RETURN_IF_ERROR(
          db_.WriteAttribute(args[0].oid(), callable.attribute->name,
                             args[1]));
      return Value::Null();
    }
    case schema::Callable::Kind::kNone:
      return common::NotFoundError(
          common::StrCat("unknown callable '", name, "'"));
  }
  return common::InternalError("unreachable");
}

Result<Value> Evaluator::Eval(const lang::Expr& expr, Environment& env) {
  Value result;
  switch (expr.kind()) {
    case lang::ExprKind::kConstant:
      result = expr.AsConstant().value();
      break;

    case lang::ExprKind::kVarRef: {
      const Value* value = env.Find(expr.AsVarRef().name());
      if (value == nullptr) {
        return common::InternalError(common::StrCat(
            "unbound variable '", expr.AsVarRef().name(),
            "' at evaluation time (missing type check?)"));
      }
      result = *value;
      break;
    }

    case lang::ExprKind::kCall: {
      const lang::CallExpr& call = expr.AsCall();
      std::vector<Value> args;
      args.reserve(call.args().size());
      for (const auto& arg : call.args()) {
        OODBSEC_ASSIGN_OR_RETURN(Value value, Eval(*arg, env));
        args.push_back(std::move(value));
      }
      switch (call.target()) {
        case lang::CallTarget::kBasic:
          result = call.basic()->Eval(args);
          break;
        case lang::CallTarget::kAccess: {
          const schema::FunctionDecl* fn =
              db_.schema().FindFunction(call.name());
          if (fn == nullptr) {
            return common::InternalError(
                common::StrCat("missing function '", call.name(), "'"));
          }
          OODBSEC_ASSIGN_OR_RETURN(result, CallFunction(*fn, args));
          break;
        }
        case lang::CallTarget::kReadAttr: {
          if (!args[0].is_object()) {
            return common::FailedPreconditionError(common::StrCat(
                "attribute read '", call.name(), "' on ", args[0].ToString()));
          }
          OODBSEC_ASSIGN_OR_RETURN(
              result, db_.ReadAttribute(args[0].oid(), call.attribute()));
          break;
        }
        case lang::CallTarget::kWriteAttr: {
          if (!args[0].is_object()) {
            return common::FailedPreconditionError(common::StrCat(
                "attribute write '", call.name(), "' on ",
                args[0].ToString()));
          }
          OODBSEC_RETURN_IF_ERROR(
              db_.WriteAttribute(args[0].oid(), call.attribute(), args[1]));
          result = Value::Null();
          break;
        }
        case lang::CallTarget::kUnresolved:
          return common::InternalError(common::StrCat(
              "unresolved call '", call.name(), "' (missing type check?)"));
      }
      break;
    }

    case lang::ExprKind::kLet: {
      const lang::LetExpr& let = expr.AsLet();
      size_t pushed = 0;
      for (const lang::LetExpr::Binding& binding : let.bindings()) {
        Result<Value> init = Eval(*binding.init, env);
        if (!init.ok()) {
          env.Pop(pushed);
          return init;
        }
        env.Push(binding.name, std::move(init).value());
        ++pushed;
      }
      Result<Value> body = Eval(let.body(), env);
      env.Pop(pushed);
      if (!body.ok()) return body;
      result = std::move(body).value();
      break;
    }
  }

  if (trace_) trace_(expr, result);
  return result;
}

}  // namespace oodbsec::exec
