#include "common/status.h"

namespace oodbsec::common {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kPermissionDenied:
      return "permission_denied";
    case StatusCode::kTypeError:
      return "type_error";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string message(context);
  message += ": ";
  message += message_;
  return Status(code_, std::move(message));
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status InvalidArgumentError(std::string_view message) {
  return Status(StatusCode::kInvalidArgument, std::string(message));
}
Status NotFoundError(std::string_view message) {
  return Status(StatusCode::kNotFound, std::string(message));
}
Status AlreadyExistsError(std::string_view message) {
  return Status(StatusCode::kAlreadyExists, std::string(message));
}
Status FailedPreconditionError(std::string_view message) {
  return Status(StatusCode::kFailedPrecondition, std::string(message));
}
Status PermissionDeniedError(std::string_view message) {
  return Status(StatusCode::kPermissionDenied, std::string(message));
}
Status TypeError(std::string_view message) {
  return Status(StatusCode::kTypeError, std::string(message));
}
Status ParseError(std::string_view message) {
  return Status(StatusCode::kParseError, std::string(message));
}
Status OutOfRangeError(std::string_view message) {
  return Status(StatusCode::kOutOfRange, std::string(message));
}
Status UnimplementedError(std::string_view message) {
  return Status(StatusCode::kUnimplemented, std::string(message));
}
Status InternalError(std::string_view message) {
  return Status(StatusCode::kInternal, std::string(message));
}

}  // namespace oodbsec::common
