// Positions and ranges in source text, used by both language front ends
// (the function definition language and the query language) for
// diagnostics.
#ifndef OODBSEC_COMMON_SOURCE_LOCATION_H_
#define OODBSEC_COMMON_SOURCE_LOCATION_H_

#include <string>

namespace oodbsec::common {

// 1-based line and column. A default-constructed location (0,0) means
// "unknown", e.g. for programmatically built ASTs.
struct SourceLocation {
  int line = 0;
  int column = 0;

  bool known() const { return line > 0; }
  std::string ToString() const {
    if (!known()) return "<unknown>";
    return std::to_string(line) + ":" + std::to_string(column);
  }

  friend bool operator==(const SourceLocation&, const SourceLocation&) =
      default;
};

// Half-open [begin, end) range of source text.
struct SourceRange {
  SourceLocation begin;
  SourceLocation end;

  bool known() const { return begin.known(); }
  std::string ToString() const { return begin.ToString(); }

  friend bool operator==(const SourceRange&, const SourceRange&) = default;
};

}  // namespace oodbsec::common

#endif  // OODBSEC_COMMON_SOURCE_LOCATION_H_
