// Small string utilities (concatenation, join, split, escaping) used
// throughout the library. Deliberately minimal; no locale handling.
#ifndef OODBSEC_COMMON_STRINGS_H_
#define OODBSEC_COMMON_STRINGS_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace oodbsec::common {

namespace internal_strings {
inline void AppendPiece(std::string& out, std::string_view piece) {
  out.append(piece);
}
inline void AppendPiece(std::string& out, const std::string& piece) {
  out.append(piece);
}
inline void AppendPiece(std::string& out, const char* piece) {
  out.append(piece);
}
inline void AppendPiece(std::string& out, char piece) { out.push_back(piece); }
inline void AppendPiece(std::string& out, bool piece) {
  out.append(piece ? "true" : "false");
}
template <typename T>
  requires std::is_arithmetic_v<T>
void AppendPiece(std::string& out, T piece) {
  out.append(std::to_string(piece));
}
}  // namespace internal_strings

// Concatenates all arguments into one string. Numbers are rendered with
// std::to_string; bools as "true"/"false".
template <typename... Pieces>
std::string StrCat(const Pieces&... pieces) {
  std::string out;
  (internal_strings::AppendPiece(out, pieces), ...);
  return out;
}

// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

// Splits `text` on `delimiter`; keeps empty pieces.
std::vector<std::string> Split(std::string_view text, char delimiter);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// Renders `text` as a double-quoted string literal with \", \\, \n, \t
// escapes.
std::string QuoteString(std::string_view text);

}  // namespace oodbsec::common

#endif  // OODBSEC_COMMON_STRINGS_H_
