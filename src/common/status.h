// Error handling primitives for oodbsec.
//
// The library does not use exceptions. Fallible operations return a
// `Status` (or a `Result<T>`, see result.h) that carries an error code and
// a human-readable message. `Status` is cheap to copy in the OK case.
#ifndef OODBSEC_COMMON_STATUS_H_
#define OODBSEC_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace oodbsec::common {

// Canonical error space. Kept deliberately small; the message carries the
// detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kPermissionDenied,
  kTypeError,
  kParseError,
  kOutOfRange,
  kUnimplemented,
  kInternal,
};

// Returns the canonical lower_snake name of `code`, e.g. "invalid_argument".
std::string_view StatusCodeName(StatusCode code);

// A success-or-error value. Default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "ok" or "<code>: <message>".
  std::string ToString() const;

  // Prepends `context` to the message, keeping the code. No-op when OK.
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Factory helpers, mirroring the codes above.
Status InvalidArgumentError(std::string_view message);
Status NotFoundError(std::string_view message);
Status AlreadyExistsError(std::string_view message);
Status FailedPreconditionError(std::string_view message);
Status PermissionDeniedError(std::string_view message);
Status TypeError(std::string_view message);
Status ParseError(std::string_view message);
Status OutOfRangeError(std::string_view message);
Status UnimplementedError(std::string_view message);
Status InternalError(std::string_view message);

}  // namespace oodbsec::common

// Evaluates `expr` (a Status expression); returns it from the enclosing
// function if it is not OK.
#define OODBSEC_RETURN_IF_ERROR(expr)                        \
  do {                                                       \
    ::oodbsec::common::Status _oodbsec_status_ = (expr);     \
    if (!_oodbsec_status_.ok()) return _oodbsec_status_;     \
  } while (false)

#endif  // OODBSEC_COMMON_STATUS_H_
