// Diagnostic collection for the language front ends. Parsers and type
// checkers report into a DiagnosticSink so a single pass can surface
// multiple errors with source locations.
#ifndef OODBSEC_COMMON_DIAGNOSTICS_H_
#define OODBSEC_COMMON_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "common/source_location.h"
#include "common/status.h"

namespace oodbsec::common {

enum class Severity { kError, kWarning, kNote };

struct Diagnostic {
  Severity severity = Severity::kError;
  SourceLocation location;
  std::string message;

  // Renders "<line>:<col>: error: <message>".
  std::string ToString() const;
};

// Accumulates diagnostics emitted during a front-end pass.
class DiagnosticSink {
 public:
  void Error(SourceLocation location, std::string message);
  void Warning(SourceLocation location, std::string message);
  void Note(SourceLocation location, std::string message);

  bool has_errors() const { return error_count_ > 0; }
  int error_count() const { return error_count_; }
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  // One diagnostic per line; empty string when nothing was reported.
  std::string ToString() const;

  // ParseError status summarizing the first error, or OK when clean.
  Status ToStatus() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  int error_count_ = 0;
};

}  // namespace oodbsec::common

#endif  // OODBSEC_COMMON_DIAGNOSTICS_H_
