#include "common/strings.h"

namespace oodbsec::common {

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\n' ||
          text[begin] == '\r')) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\n' || text[end - 1] == '\r')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string QuoteString(std::string_view text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace oodbsec::common
