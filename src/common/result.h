// Result<T>: a value-or-Status union, the return type of fallible
// operations that produce a value. See status.h for the error space.
#ifndef OODBSEC_COMMON_RESULT_H_
#define OODBSEC_COMMON_RESULT_H_

#include <cassert>
#include <cstdlib>
#include <utility>
#include <variant>

#include "common/status.h"

namespace oodbsec::common {

// Holds either a `T` or a non-OK `Status`. Constructing a Result from an
// OK status is a programming error and aborts.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return SomeError(...)`
  // both work, mirroring absl::StatusOr.
  Result(T value) : rep_(std::move(value)) {}         // NOLINT
  Result(Status status) : rep_(std::move(status)) {}  // NOLINT
  Result(StatusCode code, std::string message)
      : rep_(Status(code, std::move(message))) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  // Returns the error; OK when the Result holds a value.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace oodbsec::common

// Assigns the value of `rexpr` (a Result<T> expression) to `lhs`, or
// returns its Status from the enclosing function.
#define OODBSEC_ASSIGN_OR_RETURN(lhs, rexpr)                \
  OODBSEC_ASSIGN_OR_RETURN_IMPL_(                           \
      OODBSEC_RESULT_CONCAT_(_oodbsec_result_, __LINE__), lhs, rexpr)

#define OODBSEC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define OODBSEC_RESULT_CONCAT_(a, b) OODBSEC_RESULT_CONCAT_IMPL_(a, b)
#define OODBSEC_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // OODBSEC_COMMON_RESULT_H_
