#include "common/diagnostics.h"

#include "common/strings.h"

namespace oodbsec::common {

namespace {
std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "unknown";
}
}  // namespace

std::string Diagnostic::ToString() const {
  return StrCat(location.ToString(), ": ", SeverityName(severity), ": ",
                message);
}

void DiagnosticSink::Error(SourceLocation location, std::string message) {
  diagnostics_.push_back(
      {Severity::kError, location, std::move(message)});
  ++error_count_;
}

void DiagnosticSink::Warning(SourceLocation location, std::string message) {
  diagnostics_.push_back(
      {Severity::kWarning, location, std::move(message)});
}

void DiagnosticSink::Note(SourceLocation location, std::string message) {
  diagnostics_.push_back({Severity::kNote, location, std::move(message)});
}

std::string DiagnosticSink::ToString() const {
  std::vector<std::string> lines;
  lines.reserve(diagnostics_.size());
  for (const Diagnostic& d : diagnostics_) lines.push_back(d.ToString());
  return Join(lines, "\n");
}

Status DiagnosticSink::ToStatus() const {
  if (!has_errors()) return Status::Ok();
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::kError) return ParseError(d.ToString());
  }
  return ParseError("unknown parse error");
}

}  // namespace oodbsec::common
