#include "types/domain.h"

#include <algorithm>

namespace oodbsec::types {

Domain::Domain(const Type* type, ValueSet values)
    : type_(type), values_(std::move(values)) {
  std::sort(values_.begin(), values_.end(),
            [](const Value& a, const Value& b) { return a < b; });
  values_.erase(std::unique(values_.begin(), values_.end()), values_.end());
}

Domain Domain::IntRange(const Type* int_type, int64_t low, int64_t high) {
  ValueSet values;
  for (int64_t v = low; v <= high; ++v) values.push_back(Value::Int(v));
  return Domain(int_type, std::move(values));
}

Domain Domain::Bools(const Type* bool_type) {
  return Domain(bool_type, {Value::Bool(false), Value::Bool(true)});
}

Domain Domain::Strings(const Type* string_type,
                       std::vector<std::string> values) {
  ValueSet set;
  set.reserve(values.size());
  for (std::string& s : values) set.push_back(Value::String(std::move(s)));
  return Domain(string_type, std::move(set));
}

Domain Domain::NullOnly(const Type* null_type) {
  return Domain(null_type, {Value::Null()});
}

Domain Domain::Objects(const Type* class_type, std::vector<Oid> oids) {
  ValueSet set;
  set.reserve(oids.size());
  for (Oid oid : oids) set.push_back(Value::Object(oid));
  return Domain(class_type, std::move(set));
}

bool Domain::Contains(const Value& v) const {
  return std::binary_search(
      values_.begin(), values_.end(), v,
      [](const Value& a, const Value& b) { return a < b; });
}

void DomainMap::Set(const Type* type, Domain domain) {
  domains_[type] = std::move(domain);
}

const Domain* DomainMap::Find(const Type* type) const {
  auto it = domains_.find(type);
  return it == domains_.end() ? nullptr : &it->second;
}

ProductIterator::ProductIterator(std::vector<const Domain*> domains)
    : domains_(std::move(domains)),
      indices_(domains_.size(), 0),
      has_value_(true) {
  assignment_.reserve(domains_.size());
  for (const Domain* domain : domains_) {
    if (domain == nullptr || domain->empty()) {
      has_value_ = false;
      return;
    }
    assignment_.push_back(domain->values()[0]);
  }
}

void ProductIterator::Next() {
  if (!has_value_) return;
  for (size_t i = domains_.size(); i-- > 0;) {
    if (++indices_[i] < domains_[i]->size()) {
      assignment_[i] = domains_[i]->values()[indices_[i]];
      return;
    }
    indices_[i] = 0;
    assignment_[i] = domains_[i]->values()[0];
  }
  has_value_ = false;  // wrapped around
}

uint64_t ProductIterator::TotalCount() const {
  uint64_t total = 1;
  for (const Domain* domain : domains_) {
    total *= domain == nullptr ? 0 : domain->size();
  }
  return total;
}

}  // namespace oodbsec::types
