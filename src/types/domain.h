// Finite value domains.
//
// The paper's semantic definitions (Dom(ᵏe) in §3.3) and its metarules for
// basic functions (§4.1) quantify over the domain of an expression's type.
// Real int/string domains are unbounded, so two uses need *finite*
// domains:
//   1. the metarule engine (src/basicfun) checks the quantified metarule
//      conditions over small sample domains;
//   2. the brute-force semantic oracle (src/semantics) enumerates
//      databases, arguments and executions over small-scope domains.
//
// A DomainMap assigns a finite Domain to each Type.
#ifndef OODBSEC_TYPES_DOMAIN_H_
#define OODBSEC_TYPES_DOMAIN_H_

#include <map>
#include <string>
#include <vector>

#include "types/type.h"
#include "types/value.h"

namespace oodbsec::types {

// A finite, duplicate-free, ordered list of values of one type.
class Domain {
 public:
  Domain() = default;
  Domain(const Type* type, ValueSet values);

  // Integers low..high inclusive.
  static Domain IntRange(const Type* int_type, int64_t low, int64_t high);
  // {false, true}.
  static Domain Bools(const Type* bool_type);
  // The given string literals.
  static Domain Strings(const Type* string_type,
                        std::vector<std::string> values);
  // {null}.
  static Domain NullOnly(const Type* null_type);
  // The given object identifiers (an extent).
  static Domain Objects(const Type* class_type, std::vector<Oid> oids);

  const Type* type() const { return type_; }
  const ValueSet& values() const { return values_; }
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  bool Contains(const Value& v) const;

 private:
  const Type* type_ = nullptr;
  ValueSet values_;
};

// Maps types to finite domains. Lookup of an unmapped type fails softly
// (returns nullptr) so callers can decide whether that is an error.
class DomainMap {
 public:
  void Set(const Type* type, Domain domain);
  const Domain* Find(const Type* type) const;

 private:
  std::map<const Type*, Domain> domains_;
};

// Iterates over the cartesian product of a list of domains, yielding one
// assignment (vector of values, one per domain) at a time.
//
//   ProductIterator it(domains);
//   while (it.has_value()) { use(it.assignment()); it.Next(); }
//
// An empty domain list yields exactly one empty assignment; any empty
// domain yields none.
class ProductIterator {
 public:
  explicit ProductIterator(std::vector<const Domain*> domains);

  bool has_value() const { return has_value_; }
  const ValueSet& assignment() const { return assignment_; }
  void Next();

  // Total number of assignments (product of sizes).
  uint64_t TotalCount() const;

 private:
  std::vector<const Domain*> domains_;
  std::vector<size_t> indices_;
  ValueSet assignment_;
  bool has_value_;
};

}  // namespace oodbsec::types

#endif  // OODBSEC_TYPES_DOMAIN_H_
