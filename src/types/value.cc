#include "types/value.h"

#include <algorithm>
#include <functional>

#include "common/strings.h"

namespace oodbsec::types {

Value Value::Set(ValueSet elements) {
  std::sort(elements.begin(), elements.end(),
            [](const Value& a, const Value& b) { return a < b; });
  elements.erase(std::unique(elements.begin(), elements.end()),
                 elements.end());
  return Value(Rep(std::make_shared<const ValueSet>(std::move(elements))));
}

bool operator==(const Value& a, const Value& b) {
  if (a.rep_.index() != b.rep_.index()) return false;
  if (a.is_set()) return a.set_value() == b.set_value();
  return a.rep_ == b.rep_;
}

bool operator<(const Value& a, const Value& b) {
  if (a.rep_.index() != b.rep_.index()) {
    return a.rep_.index() < b.rep_.index();
  }
  if (a.is_null()) return false;
  if (a.is_int()) return a.int_value() < b.int_value();
  if (a.is_bool()) return a.bool_value() < b.bool_value();
  if (a.is_string()) return a.string_value() < b.string_value();
  if (a.is_object()) return a.oid() < b.oid();
  const ValueSet& sa = a.set_value();
  const ValueSet& sb = b.set_value();
  return std::lexicographical_compare(
      sa.begin(), sa.end(), sb.begin(), sb.end(),
      [](const Value& x, const Value& y) { return x < y; });
}

std::string Value::ToString() const {
  if (is_null()) return "null";
  if (is_int()) return std::to_string(int_value());
  if (is_bool()) return bool_value() ? "true" : "false";
  if (is_string()) return common::QuoteString(string_value());
  if (is_object()) return "(a object)";
  std::vector<std::string> parts;
  for (const Value& element : set_value()) {
    parts.push_back(element.ToString());
  }
  return common::StrCat("{", common::Join(parts, ", "), "}");
}

size_t Value::Hash() const {
  auto mix = [](size_t seed, size_t piece) {
    return seed ^ (piece + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
  };
  size_t seed = rep_.index();
  if (is_int()) return mix(seed, std::hash<int64_t>()(int_value()));
  if (is_bool()) return mix(seed, std::hash<bool>()(bool_value()));
  if (is_string()) return mix(seed, std::hash<std::string>()(string_value()));
  if (is_object()) return mix(seed, std::hash<uint64_t>()(oid().raw()));
  if (is_set()) {
    for (const Value& element : set_value()) seed = mix(seed, element.Hash());
  }
  return seed;
}

}  // namespace oodbsec::types
