// The type system of the paper's data model (SIGMOD'96 §2):
//
//   t ::= b | c_name | {t}
//
// where b ranges over basic types (int, bool, string), c_name over class
// names, and {t} is a set type. We additionally model `null`, the return
// type of write operations w_att, and treat it as a basic type with the
// single value null.
//
// Types are interned in a TypePool: equal types are the same pointer, so
// type equality is pointer equality everywhere else in the library.
#ifndef OODBSEC_TYPES_TYPE_H_
#define OODBSEC_TYPES_TYPE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace oodbsec::types {

enum class TypeKind {
  kInt,
  kBool,
  kString,
  kNull,    // unit type; the value of w_att(...) expressions
  kClass,   // instances of a named class
  kSet,     // {t}
};

// An immutable, pool-interned type. Compare with pointer equality.
class Type {
 public:
  TypeKind kind() const { return kind_; }
  bool is_basic() const {
    return kind_ == TypeKind::kInt || kind_ == TypeKind::kBool ||
           kind_ == TypeKind::kString || kind_ == TypeKind::kNull;
  }
  bool is_class() const { return kind_ == TypeKind::kClass; }
  bool is_set() const { return kind_ == TypeKind::kSet; }

  // Class name; empty unless is_class().
  const std::string& class_name() const { return class_name_; }

  // Element type; nullptr unless is_set().
  const Type* element() const { return element_; }

  // "int", "bool", "string", "null", the class name, or "{t}".
  std::string ToString() const;

 private:
  friend class TypePool;
  Type(TypeKind kind, std::string class_name, const Type* element)
      : kind_(kind), class_name_(std::move(class_name)), element_(element) {}

  TypeKind kind_;
  std::string class_name_;
  const Type* element_;
};

// Owns and interns types. A TypePool must outlive all Type pointers it
// hands out; the usual arrangement is one pool per Schema.
class TypePool {
 public:
  TypePool();
  TypePool(const TypePool&) = delete;
  TypePool& operator=(const TypePool&) = delete;

  const Type* Int() const { return int_; }
  const Type* Bool() const { return bool_; }
  const Type* String() const { return string_; }
  const Type* Null() const { return null_; }
  const Type* Class(std::string_view name);
  const Type* Set(const Type* element);

  // Parses "int", "bool", "string", "null", "{<type>}", or a class name.
  // Unknown identifiers are interned as class types; the schema builder
  // validates that every class type names a declared class.
  const Type* Parse(std::string_view text);

 private:
  std::vector<std::unique_ptr<Type>> owned_;
  const Type* int_;
  const Type* bool_;
  const Type* string_;
  const Type* null_;
  std::map<std::string, const Type*, std::less<>> classes_;
  std::map<const Type*, const Type*> sets_;
};

}  // namespace oodbsec::types

#endif  // OODBSEC_TYPES_TYPE_H_
