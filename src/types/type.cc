#include "types/type.h"

#include "common/strings.h"

namespace oodbsec::types {

std::string Type::ToString() const {
  switch (kind_) {
    case TypeKind::kInt:
      return "int";
    case TypeKind::kBool:
      return "bool";
    case TypeKind::kString:
      return "string";
    case TypeKind::kNull:
      return "null";
    case TypeKind::kClass:
      return class_name_;
    case TypeKind::kSet:
      return common::StrCat("{", element_->ToString(), "}");
  }
  return "<bad-type>";
}

TypePool::TypePool() {
  auto make = [this](TypeKind kind) {
    owned_.push_back(
        std::unique_ptr<Type>(new Type(kind, std::string(), nullptr)));
    return owned_.back().get();
  };
  int_ = make(TypeKind::kInt);
  bool_ = make(TypeKind::kBool);
  string_ = make(TypeKind::kString);
  null_ = make(TypeKind::kNull);
}

const Type* TypePool::Class(std::string_view name) {
  auto it = classes_.find(name);
  if (it != classes_.end()) return it->second;
  owned_.push_back(std::unique_ptr<Type>(
      new Type(TypeKind::kClass, std::string(name), nullptr)));
  const Type* type = owned_.back().get();
  classes_.emplace(std::string(name), type);
  return type;
}

const Type* TypePool::Set(const Type* element) {
  auto it = sets_.find(element);
  if (it != sets_.end()) return it->second;
  owned_.push_back(
      std::unique_ptr<Type>(new Type(TypeKind::kSet, std::string(), element)));
  const Type* type = owned_.back().get();
  sets_.emplace(element, type);
  return type;
}

const Type* TypePool::Parse(std::string_view text) {
  text = common::StripWhitespace(text);
  if (text.empty()) return nullptr;
  if (text.front() == '{') {
    if (text.back() != '}') return nullptr;
    const Type* element = Parse(text.substr(1, text.size() - 2));
    if (element == nullptr) return nullptr;
    return Set(element);
  }
  if (text == "int") return Int();
  if (text == "bool") return Bool();
  if (text == "string") return String();
  if (text == "null") return Null();
  return Class(text);
}

}  // namespace oodbsec::types
