// Runtime values of the data model: null, integers, booleans, strings,
// object identifiers, and sets of values.
//
// Following the paper (§3.2, "we assume object identifiers do not have
// any printable form"), OIDs are opaque: they support equality (needed to
// recognize "the same object" in queries) but their rendering is the
// non-informative "(a <Class> object)" used by the paper.
#ifndef OODBSEC_TYPES_VALUE_H_
#define OODBSEC_TYPES_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace oodbsec::types {

// Opaque object identifier. 0 is reserved as "invalid".
class Oid {
 public:
  Oid() : raw_(0) {}
  explicit Oid(uint64_t raw) : raw_(raw) {}

  bool valid() const { return raw_ != 0; }
  uint64_t raw() const { return raw_; }

  friend bool operator==(Oid, Oid) = default;
  friend auto operator<=>(Oid, Oid) = default;

 private:
  uint64_t raw_;
};

class Value;
using ValueSet = std::vector<Value>;  // order preserved; duplicates removed

// A dynamically typed value. Cheap to copy for scalars; sets share their
// representation.
class Value {
 public:
  // The null value.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Bool(bool v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }
  static Value Object(Oid oid) { return Value(Rep(oid)); }
  static Value Set(ValueSet elements);

  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }
  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_bool() const { return std::holds_alternative<bool>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }
  bool is_object() const { return std::holds_alternative<Oid>(rep_); }
  bool is_set() const {
    return std::holds_alternative<std::shared_ptr<const ValueSet>>(rep_);
  }

  int64_t int_value() const { return std::get<int64_t>(rep_); }
  bool bool_value() const { return std::get<bool>(rep_); }
  const std::string& string_value() const { return std::get<std::string>(rep_); }
  Oid oid() const { return std::get<Oid>(rep_); }
  const ValueSet& set_value() const {
    return *std::get<std::shared_ptr<const ValueSet>>(rep_);
  }

  // Deep structural equality; OIDs compare by identity.
  friend bool operator==(const Value& a, const Value& b);
  // Total order across all values (by alternative index, then content);
  // used for canonical set representations and map keys.
  friend bool operator<(const Value& a, const Value& b);

  // Printable form: null, 42, true, "text", (a object), {v1, v2}.
  std::string ToString() const;

  // Stable hash for unordered containers.
  size_t Hash() const;

 private:
  using Rep = std::variant<std::monostate, int64_t, bool, std::string, Oid,
                           std::shared_ptr<const ValueSet>>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace oodbsec::types

#endif  // OODBSEC_TYPES_VALUE_H_
