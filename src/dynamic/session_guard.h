// Dynamic flaw detection (the paper's §5 future-work alternative:
// "develop a mechanism to dynamically detect security flaws during
// execution of queries").
//
// The static algorithm A(R) must assume the user will eventually combine
// *everything* on their capability list, so a grant set whose closure
// violates a requirement is condemned outright. The dynamic guard
// instead tracks the functions each session has actually invoked and
// checks, per incoming query,
//
//   closure( invoked-so-far  ∪  functions(query) )  |=  requirements?
//
// A query is DENIED exactly when executing it would, for the first
// time, let the session's accumulated function set derive a forbidden
// capability. The paper's trade-off is therefore observable: the clerk
// who only ever calls checkBudget keeps working under a grant set the
// static analyzer must reject, and the guard steps in precisely at the
// first query that mixes w_budget probes with checkBudget.
//
// Soundness note: once a session has invoked a set S, the user may
// already have learned/planted everything S's closure derives, so the
// guard checks the *union* before execution — detection can never lag
// one query behind.
//
// Serving-path architecture (DESIGN.md §14). The naive guard rebuilt a
// cold closure per distinct function set; this one serves decisions in
// three tiers, cheapest first:
//
//   1. Trigger pre-filter fast path: each session carries a *relevance
//      cone* — seeded from the user's requirement functions and grown
//      with the session — collecting every channel through which a new
//      root could feed facts into a requirement-relevant derivation:
//      shared attributes (the write/read equality rules), calls into
//      cone functions (let(f) sites), and — when the same-type argument
//      equality axiom is on — shared root-argument types. A query whose
//      new functions all fall outside the cone cannot fire any
//      alter/infer/pistar trigger reaching a requirement site, so it is
//      allowed without touching any closure: a set difference and a few
//      probes against precomputed per-function footprints. Inert
//      functions never enter the session's closure; when a later query
//      widens the cone (say, a write special bridging argument types),
//      previously-inert committed functions are re-scanned and pulled
//      into the recheck target, keeping the invariant that the checked
//      set is exactly the cone-closed slice of the committed set.
//   2. Signature-keyed cache: closures are keyed by their root list
//      (core::AnalysisRoots over the session's relevant subset) in a
//      shared core::ClosureCache — no collision-prone string memo. An
//      armed snapshot store doubles as the L2 tier, so a restarted
//      guard warms its sessions from disk instead of rebuilding.
//   3. Session-delta recheck: on a miss, the session's live closure is
//      the warm base — the query's new relevant functions are seeded as
//      a delta frontier into the semi-naive fixpoint via the premise
//      trigger index (core::Closure warm_base ctor), deriving only the
//      delta at O(delta) cost. Warm verdicts are digest-equal to cold
//      (Closure::FactSetDigest); dynamic_test asserts this across
//      randomized churn.
//
// Concurrency: sessions live in a sharded map with per-session mutexes,
// so decisions for different users proceed in parallel; the shared
// cache is guarded by its own mutex (builds run outside it through the
// const BuildDetached), and stats are atomics. One guard can therefore
// serve a thread pool of query frontends.
#ifndef OODBSEC_DYNAMIC_SESSION_GUARD_H_
#define OODBSEC_DYNAMIC_SESSION_GUARD_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/analyzer.h"
#include "core/closure_cache.h"
#include "core/requirement.h"
#include "obs/obs.h"
#include "query/query.h"
#include "query/query_evaluator.h"
#include "schema/user.h"
#include "store/database.h"
#include "types/type.h"

namespace oodbsec::snapshot {
class SnapshotStore;  // snapshot/snapshot_store.h
}  // namespace oodbsec::snapshot

namespace oodbsec::dynamic {

// The outcome of guarding one query.
struct GuardDecision {
  bool allowed = true;
  // When denied: which requirement would become violated, and the
  // offending derivation (Figure-1 style).
  std::string violated_requirement;
  std::string derivation;
};

// Guard-wide configuration. The closure options must match whatever
// produced any snapshot store contents (the store validates).
struct GuardOptions {
  core::ClosureOptions closure;
  size_t cache_capacity = core::ClosureCache::kDefaultCapacity;
  // Arms the signature cache's L2 tier: session closures persist
  // through the store and warm a restarted guard (see SaveCacheSnapshot
  // / LoadCacheSnapshot). May be shared with analysis sessions.
  std::shared_ptr<snapshot::SnapshotStore> snapshot_store;
  // Optional: "guard.*" counters and "guard.recheck" spans.
  obs::Observability* obs = nullptr;
};

// Value snapshot of the guard's counters (atomically maintained; the
// cache block is copied under the cache lock).
struct GuardStats {
  uint64_t decisions = 0;
  uint64_t fastpath_allows = 0;  // trigger pre-filter: no closure touched
  uint64_t session_hits = 0;     // query ⊆ session's exercised set
  uint64_t exact_hits = 0;       // signature cache / snapshot tier hit
  uint64_t delta_rechecks = 0;   // warm delta-frontier builds
  uint64_t cold_builds = 0;      // full fixpoints
  uint64_t denials = 0;
  core::ClosureCache::Stats cache;
};

// Per-user session state and enforcement. One guard serves many users;
// each user accumulates an invoked-function set. Decide/Run/
// CheckFunctions are safe to call from many threads.
class SessionGuard {
 public:
  SessionGuard(const schema::Schema& schema,
               const schema::UserRegistry& users,
               std::vector<core::Requirement> requirements,
               core::ClosureOptions options = {});
  SessionGuard(const schema::Schema& schema,
               const schema::UserRegistry& users,
               std::vector<core::Requirement> requirements,
               GuardOptions options);

  // Decides whether `user` may run the bound `query` now. Does not
  // execute anything and does not yet commit the query's functions to
  // the session (shared closures may still be cached).
  common::Result<GuardDecision> Decide(const schema::User& user,
                                       const query::SelectQuery& query);

  // Decides whether `user`'s session may add `functions` — the same
  // verdict Decide reaches for a query invoking exactly that set.
  // Commits nothing.
  common::Result<GuardDecision> CheckFunctions(
      const std::string& user, const std::set<std::string>& functions);

  // Convenience: decide, then (if allowed) execute through a
  // capability-checked QueryEvaluator and commit the query's functions
  // to the session. A denied query returns PermissionDenied carrying
  // the violated requirement.
  common::Result<query::QueryResult> Run(store::Database& db,
                                         const schema::User& user,
                                         const query::SelectQuery& query);

  // Functions `user` has successfully invoked so far in this guard.
  // The reference stays valid for the guard's lifetime; callers that
  // race against concurrent Run commits should quiesce first.
  const std::set<std::string>& SessionFunctions(
      const std::string& user) const;

  // Whether `function` can affect any requirement of `user` against a
  // fresh session (the trigger pre-filter's relevance test over the
  // requirement seed cone; a live session's cone may have grown wider).
  // An irrelevant function is allowed — and skipped — without a
  // closure.
  bool IsRelevant(const std::string& user, const std::string& function);

  // Introspection for tests and tooling: the session's committed set
  // and the root list / fact-set digest of its live incremental
  // closure (empty strings/lists when none was built yet).
  struct SessionProbe {
    bool exists = false;
    std::set<std::string> committed;
    std::set<std::string> checked;  // relevant subset the closure covers
    std::vector<std::string> roots;
    std::string digest;
  };
  SessionProbe Probe(const std::string& user) const;

  // Users with an open session, sorted.
  std::vector<std::string> SessionUsers() const;

  GuardStats Stats() const;

  // Number of closure computations performed (for the D1 experiment):
  // delta rechecks plus cold builds; cache hits and fast-path allows
  // do not count.
  int closure_evaluations() const {
    return static_cast<int>(delta_rechecks_.load() + cold_builds_.load());
  }

  // Snapshot-tier passthroughs (no-ops / errors when no store is
  // armed): persist the signature cache, or warm it from the store so
  // a restarted guard's first decisions skip the fixpoint entirely.
  common::Status SaveCacheSnapshot() const;
  size_t LoadCacheSnapshot();

  // The pre-incremental reference path: a cold UserAnalysis over
  // exactly `functions` (plus constraints), checked against every
  // requirement naming `user`. The incremental guard's verdicts are
  // asserted equal to this across randomized churn (dynamic_test) and
  // it is the baseline the guard benches compare against.
  static common::Result<GuardDecision> ColdDecision(
      const schema::Schema& schema,
      const std::vector<core::Requirement>& requirements,
      const std::string& user, const std::set<std::string>& functions,
      core::ClosureOptions options = {});

 private:
  // What one root function's unfolded program can touch: the channels
  // through which it could feed facts into another root's derivation.
  struct Footprint {
    bool resolved = false;             // unresolvable names stay relevant
    std::set<std::string> attributes;  // read or written anywhere inside
    std::set<std::string> callees;     // transitively unfolded functions
    std::set<const types::Type*> arg_types;  // root argument types
  };
  // A relevance cone: the functions whose facts can reach a requirement
  // site, closed under attribute sharing, calls, and
  // (same_type_argument_equality) root-argument types. The per-user
  // seed cone absorbs only the requirement functions; each session then
  // grows a copy of it alongside its checked set.
  struct Cone {
    bool any_requirements = false;
    std::set<std::string> functions;
    std::set<std::string> attributes;
    std::set<const types::Type*> types;
  };

  struct Session {
    mutable std::mutex mu;
    // Functions successfully exercised (committed by Run).
    std::set<std::string> committed;
    // The cone-closed slice of `committed` the live closure ranges
    // over; inert functions never enter it.
    std::set<std::string> checked;
    // The session's relevance cone: the seed cone plus the channels of
    // everything in `checked`. Empty until the first decision.
    Cone cone;
    bool cone_init = false;
    // Verdict over `checked` is known allowed (set once a recheck of
    // exactly this set passes) — the fast path's precondition.
    bool base_allowed = false;
    // The session's live incremental closure: the warm base for the
    // next delta recheck.
    std::shared_ptr<const core::CachedAnalysis> analysis;
  };
  struct SessionShard {
    mutable std::mutex mu;
    std::map<std::string, std::shared_ptr<Session>, std::less<>> sessions;
  };

  static constexpr size_t kSessionShards = 16;

  SessionShard& ShardFor(const std::string& user) const;
  std::shared_ptr<Session> SessionFor(const std::string& user);
  std::shared_ptr<Session> FindSession(const std::string& user) const;

  // Relevance machinery; all take relevance_mu_ (AbsorbLocked and
  // ChannelsHitLocked expect it held by the caller).
  const Footprint& FootprintLocked(const std::string& function);
  const Cone& SeedConeFor(const std::string& user);
  void AbsorbLocked(Cone& cone, const std::string& function);
  bool ChannelsHitLocked(const Cone& cone, const std::string& function);
  // Expands `cone` with every function from `candidates` that hits one
  // of its channels, cascading until fixpoint; appends the absorbed
  // functions to `absorbed`. Takes relevance_mu_.
  void GrowCone(Cone& cone, const std::set<std::string>& candidates,
                std::set<std::string>& absorbed);

  // The decision core; `session.mu` must be held. With `commit`, an
  // allowed decision records the query's functions (and the refreshed
  // closure) into the session before returning.
  common::Result<GuardDecision> DecideSet(
      const std::string& user, Session& session,
      const std::set<std::string>& query_functions, bool commit);

  // Tier 2/3: serve the closure for `roots` from the cache (L1 then
  // snapshot), else delta-build it warm from `session_base` / the
  // largest cached subset. Inserts what it builds.
  common::Result<std::shared_ptr<const core::CachedAnalysis>> LookupOrBuild(
      const std::vector<std::string>& roots,
      const std::shared_ptr<const core::CachedAnalysis>& session_base);

  // Runs every requirement of `user` against one closure entry; first
  // violation wins (requirement declaration order).
  common::Result<GuardDecision> CheckEntry(
      const std::string& user, const core::CachedAnalysis& entry);

  void Count(std::atomic<uint64_t>& counter, obs::Counter* mirror);

  const schema::Schema& schema_;
  const schema::UserRegistry& users_;
  std::vector<core::Requirement> requirements_;
  GuardOptions options_;

  // Signature-keyed closure store shared by all sessions (and, through
  // the snapshot tier, across guard restarts). Guarded by cache_mu_;
  // builds run outside the lock via the const BuildDetached.
  mutable std::mutex cache_mu_;
  core::ClosureCache cache_;

  // Relevance tables, built lazily: per-function footprints and the
  // per-user requirement seed cones sessions start from.
  mutable std::mutex relevance_mu_;
  std::map<std::string, Footprint> footprints_;
  std::map<std::string, Cone> seed_cones_;

  mutable std::array<SessionShard, kSessionShards> shards_;

  std::atomic<uint64_t> decisions_{0};
  std::atomic<uint64_t> fastpath_allows_{0};
  std::atomic<uint64_t> session_hits_{0};
  std::atomic<uint64_t> exact_hits_{0};
  std::atomic<uint64_t> delta_rechecks_{0};
  std::atomic<uint64_t> cold_builds_{0};
  std::atomic<uint64_t> denials_{0};

  // Registry mirrors (null without obs).
  obs::Counter* ctr_decisions_ = nullptr;
  obs::Counter* ctr_fastpath_ = nullptr;
  obs::Counter* ctr_session_hits_ = nullptr;
  obs::Counter* ctr_exact_hits_ = nullptr;
  obs::Counter* ctr_delta_ = nullptr;
  obs::Counter* ctr_cold_ = nullptr;
  obs::Counter* ctr_denials_ = nullptr;
};

}  // namespace oodbsec::dynamic

#endif  // OODBSEC_DYNAMIC_SESSION_GUARD_H_
