// Dynamic flaw detection (the paper's §5 future-work alternative:
// "develop a mechanism to dynamically detect security flaws during
// execution of queries").
//
// The static algorithm A(R) must assume the user will eventually combine
// *everything* on their capability list, so a grant set whose closure
// violates a requirement is condemned outright. The dynamic guard
// instead tracks the functions each session has actually invoked and
// checks, per incoming query,
//
//   closure( invoked-so-far  ∪  functions(query) )  |=  requirements?
//
// A query is DENIED exactly when executing it would, for the first
// time, let the session's accumulated function set derive a forbidden
// capability. The paper's trade-off is therefore observable: the clerk
// who only ever calls checkBudget keeps working under a grant set the
// static analyzer must reject, and the guard steps in precisely at the
// first query that mixes w_budget probes with checkBudget.
//
// Soundness note: once a session has invoked a set S, the user may
// already have learned/planted everything S's closure derives, so the
// guard checks the *union* before execution — detection can never lag
// one query behind.
#ifndef OODBSEC_DYNAMIC_SESSION_GUARD_H_
#define OODBSEC_DYNAMIC_SESSION_GUARD_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/analyzer.h"
#include "core/requirement.h"
#include "query/query.h"
#include "query/query_evaluator.h"
#include "schema/user.h"
#include "store/database.h"

namespace oodbsec::dynamic {

// The outcome of guarding one query.
struct GuardDecision {
  bool allowed = true;
  // When denied: which requirement would become violated, and the
  // offending derivation (Figure-1 style).
  std::string violated_requirement;
  std::string derivation;
};

// Per-user session state and enforcement. One guard serves many users;
// each user accumulates an invoked-function set.
class SessionGuard {
 public:
  SessionGuard(const schema::Schema& schema,
               const schema::UserRegistry& users,
               std::vector<core::Requirement> requirements,
               core::ClosureOptions options = {});

  // Decides whether `user` may run the bound `query` now. Does not
  // execute anything and does not yet commit the query's functions to
  // the session.
  common::Result<GuardDecision> Decide(const schema::User& user,
                                       const query::SelectQuery& query);

  // Convenience: decide, then (if allowed) execute through a
  // capability-checked QueryEvaluator and commit the query's functions
  // to the session. A denied query returns PermissionDenied carrying
  // the violated requirement.
  common::Result<query::QueryResult> Run(store::Database& db,
                                         const schema::User& user,
                                         const query::SelectQuery& query);

  // Functions `user` has successfully invoked so far in this guard.
  const std::set<std::string>& SessionFunctions(
      const std::string& user) const;

  // Number of closure computations performed (for the D1 experiment).
  int closure_evaluations() const { return closure_evaluations_; }

 private:
  // Runs A(R) for every requirement of `user` against `functions`.
  // Returns the first violation found, or an allowed decision.
  common::Result<GuardDecision> CheckSet(
      const std::string& user, const std::set<std::string>& functions);

  const schema::Schema& schema_;
  const schema::UserRegistry& users_;
  std::vector<core::Requirement> requirements_;
  core::ClosureOptions options_;
  std::map<std::string, std::set<std::string>> sessions_;
  // Memo: function-set key -> decision (closures are deterministic).
  std::map<std::string, GuardDecision> memo_;
  int closure_evaluations_ = 0;
};

}  // namespace oodbsec::dynamic

#endif  // OODBSEC_DYNAMIC_SESSION_GUARD_H_
