#include "dynamic/session_guard.h"

#include "common/strings.h"
#include "query/capability.h"

namespace oodbsec::dynamic {

using common::Result;

SessionGuard::SessionGuard(const schema::Schema& schema,
                           const schema::UserRegistry& users,
                           std::vector<core::Requirement> requirements,
                           core::ClosureOptions options)
    : schema_(schema),
      users_(users),
      requirements_(std::move(requirements)),
      options_(options) {}

const std::set<std::string>& SessionGuard::SessionFunctions(
    const std::string& user) const {
  static const std::set<std::string>& empty = *new std::set<std::string>();
  auto it = sessions_.find(user);
  return it == sessions_.end() ? empty : it->second;
}

Result<GuardDecision> SessionGuard::CheckSet(
    const std::string& user, const std::set<std::string>& functions) {
  std::string key = user + "|";
  for (const std::string& fn : functions) {
    key += fn;
    key += ',';
  }
  auto memo_it = memo_.find(key);
  if (memo_it != memo_.end()) return memo_it->second;

  // A transient user carrying exactly the session's function set: the
  // closure then ranges over what was actually exercised, not the full
  // grant list.
  schema::User session_user(user);
  for (const std::string& fn : functions) session_user.Grant(fn);
  OODBSEC_ASSIGN_OR_RETURN(
      std::unique_ptr<core::UserAnalysis> analysis,
      core::UserAnalysis::Build(schema_, session_user, options_));
  ++closure_evaluations_;

  GuardDecision decision;
  for (const core::Requirement& requirement : requirements_) {
    if (requirement.user != user) continue;
    OODBSEC_ASSIGN_OR_RETURN(core::AnalysisReport report,
                             analysis->Check(requirement));
    if (!report.satisfied) {
      decision.allowed = false;
      decision.violated_requirement = requirement.ToString();
      decision.derivation = report.flaws[0].derivation;
      break;
    }
  }
  memo_.emplace(std::move(key), decision);
  return decision;
}

Result<GuardDecision> SessionGuard::Decide(const schema::User& user,
                                           const query::SelectQuery& query) {
  if (!query.bound) {
    return common::FailedPreconditionError("query is not bound");
  }
  std::set<std::string> functions = SessionFunctions(user.name());
  for (const std::string& fn : query::CollectInvokedFunctions(query)) {
    functions.insert(fn);
  }
  return CheckSet(user.name(), functions);
}

Result<query::QueryResult> SessionGuard::Run(store::Database& db,
                                             const schema::User& user,
                                             const query::SelectQuery& query) {
  OODBSEC_ASSIGN_OR_RETURN(GuardDecision decision, Decide(user, query));
  if (!decision.allowed) {
    return common::PermissionDeniedError(common::StrCat(
        "query denied: executing it would violate ",
        decision.violated_requirement));
  }
  // Commit BEFORE execution: a query that errors mid-way may already
  // have performed writes, so its functions count as exercised.
  std::set<std::string>& session = sessions_[user.name()];
  for (const std::string& fn : query::CollectInvokedFunctions(query)) {
    session.insert(fn);
  }
  query::QueryEvaluator evaluator(db, &user);
  return evaluator.Run(query);
}

}  // namespace oodbsec::dynamic
