#include "dynamic/session_guard.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <string_view>
#include <utility>

#include "common/strings.h"
#include "obs/trace.h"
#include "query/capability.h"
#include "unfold/unfolded.h"

namespace oodbsec::dynamic {

using common::Result;
using core::CachedAnalysis;

namespace {

template <typename T>
bool Intersects(const std::set<T>& a, const std::set<T>& b) {
  // Walk the smaller set, probe the larger.
  const std::set<T>& probe = a.size() <= b.size() ? a : b;
  const std::set<T>& table = a.size() <= b.size() ? b : a;
  for (const T& item : probe) {
    if (table.contains(item)) return true;
  }
  return false;
}

}  // namespace

SessionGuard::SessionGuard(const schema::Schema& schema,
                           const schema::UserRegistry& users,
                           std::vector<core::Requirement> requirements,
                           core::ClosureOptions options)
    : SessionGuard(schema, users, std::move(requirements),
                   GuardOptions{.closure = options}) {}

SessionGuard::SessionGuard(const schema::Schema& schema,
                           const schema::UserRegistry& users,
                           std::vector<core::Requirement> requirements,
                           GuardOptions options)
    : schema_(schema),
      users_(users),
      requirements_(std::move(requirements)),
      options_(std::move(options)),
      cache_(schema, options_.closure, options_.cache_capacity, options_.obs,
             options_.snapshot_store) {
  if (options_.obs != nullptr) {
    obs::MetricsRegistry& metrics = options_.obs->metrics;
    ctr_decisions_ = metrics.counter("guard.decisions");
    ctr_fastpath_ = metrics.counter("guard.fastpath_allows");
    ctr_session_hits_ = metrics.counter("guard.session_hits");
    ctr_exact_hits_ = metrics.counter("guard.exact_hits");
    ctr_delta_ = metrics.counter("guard.delta_rechecks");
    ctr_cold_ = metrics.counter("guard.cold_builds");
    ctr_denials_ = metrics.counter("guard.denials");
  }
}

void SessionGuard::Count(std::atomic<uint64_t>& counter,
                         obs::Counter* mirror) {
  counter.fetch_add(1, std::memory_order_relaxed);
  if (mirror != nullptr) mirror->Increment();
}

SessionGuard::SessionShard& SessionGuard::ShardFor(
    const std::string& user) const {
  return shards_[std::hash<std::string_view>{}(user) % kSessionShards];
}

std::shared_ptr<SessionGuard::Session> SessionGuard::SessionFor(
    const std::string& user) {
  SessionShard& shard = ShardFor(user);
  std::lock_guard<std::mutex> lock(shard.mu);
  std::shared_ptr<Session>& slot = shard.sessions[user];
  if (slot == nullptr) slot = std::make_shared<Session>();
  return slot;
}

std::shared_ptr<SessionGuard::Session> SessionGuard::FindSession(
    const std::string& user) const {
  SessionShard& shard = ShardFor(user);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.sessions.find(user);
  return it == shard.sessions.end() ? nullptr : it->second;
}

const std::set<std::string>& SessionGuard::SessionFunctions(
    const std::string& user) const {
  static const std::set<std::string> kEmpty;
  std::shared_ptr<Session> session = FindSession(user);
  if (session == nullptr) return kEmpty;
  std::lock_guard<std::mutex> lock(session->mu);
  return session->committed;
}

// ---------------------------------------------------------------------
// Relevance: the trigger pre-filter's sound over-approximation.
//
// Facts cross from one root's subtree into another's only through
//   (a) attribute occurrences: the write/read equality and alterability
//       rules connect all r_att/w_att occurrences of one attribute;
//   (b) invocation sites: a root whose unfold contains let(f) (or an
//       attribute occurrence, for special f) creates new sites of f;
//   (c) the pessimistic same-type axiom: outer-most argument variables
//       of equal type are equated across roots, merging their classes.
// Everything else (basic-function rules, let rules, pi* joins) is local
// to one call and so to one root. A cone closed under (a)-(c) over the
// requirement functions PLUS the session's checked set therefore
// contains every function whose addition could change a requirement
// verdict for that session; functions outside it are inert islands —
// their facts interact only among themselves — and are allowed without
// any fixpoint. The cone is session-local on purpose: channel (c)
// chains aggressively through shared primitive types (every write
// special carries its value type), so a static whole-schema fixpoint
// would condemn nearly everything, while a session that never commits
// the bridging function keeps its cone — and its closure — small.

const SessionGuard::Footprint& SessionGuard::FootprintLocked(
    const std::string& function) {
  auto it = footprints_.find(function);
  if (it != footprints_.end()) return it->second;
  Footprint fp;
  auto set = unfold::UnfoldedSet::Build(schema_, {function});
  if (set.ok()) {
    fp.resolved = true;
    const unfold::UnfoldedSet& program = *set.value();
    for (int id = 1; id <= program.node_count(); ++id) {
      const unfold::Node* node = program.node(id);
      if (node->kind == unfold::NodeKind::kReadAttr ||
          node->kind == unfold::NodeKind::kWriteAttr) {
        fp.attributes.insert(node->attribute);
      } else if (node->kind == unfold::NodeKind::kLet &&
                 !node->origin_function.empty()) {
        fp.callees.insert(node->origin_function);
      }
    }
    for (const unfold::Root& root : program.roots()) {
      for (int binder_id : root.arg_binder_ids) {
        fp.arg_types.insert(program.binder(binder_id).type);
      }
    }
  }
  return footprints_.emplace(function, std::move(fp)).first->second;
}

void SessionGuard::AbsorbLocked(Cone& cone, const std::string& function) {
  std::vector<std::string> worklist{function};
  while (!worklist.empty()) {
    std::string fn = std::move(worklist.back());
    worklist.pop_back();
    if (!cone.functions.insert(fn).second) continue;
    const Footprint& fp = FootprintLocked(fn);
    cone.attributes.insert(fp.attributes.begin(), fp.attributes.end());
    cone.types.insert(fp.arg_types.begin(), fp.arg_types.end());
    // Callees are absorbed in full: any of them may later be granted as
    // a root of its own, and its argument types then join the same-type
    // equality channel.
    for (const std::string& callee : fp.callees) worklist.push_back(callee);
  }
}

bool SessionGuard::ChannelsHitLocked(const Cone& cone,
                                     const std::string& function) {
  if (cone.functions.contains(function)) return true;
  const Footprint& fp = FootprintLocked(function);
  // Unresolvable names stay relevant: the recheck path surfaces the
  // resolution error properly instead of silently allowing.
  return !fp.resolved || Intersects(fp.attributes, cone.attributes) ||
         Intersects(fp.callees, cone.functions) ||
         (options_.closure.same_type_argument_equality &&
          Intersects(fp.arg_types, cone.types));
}

const SessionGuard::Cone& SessionGuard::SeedConeFor(const std::string& user) {
  std::lock_guard<std::mutex> lock(relevance_mu_);
  auto it = seed_cones_.find(user);
  if (it != seed_cones_.end()) return it->second;

  Cone cone;
  for (const core::Requirement& requirement : requirements_) {
    if (requirement.user != user) continue;
    cone.any_requirements = true;
    AbsorbLocked(cone, requirement.function);
  }
  return seed_cones_.emplace(user, std::move(cone)).first->second;
}

void SessionGuard::GrowCone(Cone& cone,
                            const std::set<std::string>& candidates,
                            std::set<std::string>& absorbed) {
  std::lock_guard<std::mutex> lock(relevance_mu_);
  // Absorbing one candidate can widen a channel another one needs, so
  // cascade to a fixpoint over the candidate set.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::string& fn : candidates) {
      if (cone.functions.contains(fn)) continue;
      if (ChannelsHitLocked(cone, fn)) {
        AbsorbLocked(cone, fn);
        absorbed.insert(fn);
        changed = true;
      }
    }
  }
}

bool SessionGuard::IsRelevant(const std::string& user,
                              const std::string& function) {
  const Cone& seed = SeedConeFor(user);
  if (!seed.any_requirements) return false;
  std::lock_guard<std::mutex> lock(relevance_mu_);
  return ChannelsHitLocked(seed, function);
}

// ---------------------------------------------------------------------
// The decision core.

Result<std::shared_ptr<const CachedAnalysis>> SessionGuard::LookupOrBuild(
    const std::vector<std::string>& roots,
    const std::shared_ptr<const CachedAnalysis>& session_base) {
  std::vector<std::string> sorted(roots);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  std::shared_ptr<const CachedAnalysis> base;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (std::shared_ptr<const CachedAnalysis> entry = cache_.FindExact(roots)) {
      Count(exact_hits_, ctr_exact_hits_);
      return entry;
    }
    // The session's live closure may cover exactly these roots even
    // when the LRU evicted the shared entry — republish it.
    if (session_base != nullptr && session_base->sorted_roots == sorted) {
      cache_.Insert(session_base);
      Count(exact_hits_, ctr_exact_hits_);
      return session_base;
    }
    // L2: a persisted session closure (possibly from a previous
    // process) replays in a fraction of even a warm fixpoint.
    if (std::shared_ptr<const CachedAnalysis> entry =
            cache_.FindSnapshot(roots)) {
      cache_.Insert(entry);
      Count(exact_hits_, ctr_exact_hits_);
      return entry;
    }
    base = cache_.FindLargestSubset(roots);
  }
  // Prefer the larger base: the smaller the delta frontier, the less
  // the semi-naive run re-derives. The session's own closure is always
  // a subset of the target (sessions only grow).
  if (session_base != nullptr &&
      (base == nullptr ||
       base->sorted_roots.size() < session_base->sorted_roots.size())) {
    base = session_base;
  }
  std::optional<obs::ScopedSpan> span;
  if (options_.obs != nullptr) {
    span.emplace(&options_.obs->tracer, "guard.recheck");
  }
  // BuildDetached is const and touches no cache state: concurrent
  // sessions may build in parallel, pinning their bases by shared_ptr.
  OODBSEC_ASSIGN_OR_RETURN(std::shared_ptr<const CachedAnalysis> entry,
                           cache_.BuildDetached(roots, base.get()));
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    cache_.Insert(entry);
  }
  if (entry->closure->warm_started()) {
    Count(delta_rechecks_, ctr_delta_);
  } else {
    Count(cold_builds_, ctr_cold_);
  }
  return entry;
}

Result<GuardDecision> SessionGuard::CheckEntry(const std::string& user,
                                               const CachedAnalysis& entry) {
  GuardDecision decision;
  for (const core::Requirement& requirement : requirements_) {
    if (requirement.user != user) continue;
    OODBSEC_ASSIGN_OR_RETURN(
        core::AnalysisReport report,
        core::CheckAgainstClosure(*entry.set, *entry.closure, requirement,
                                  options_.obs));
    if (!report.satisfied) {
      decision.allowed = false;
      decision.violated_requirement = requirement.ToString();
      decision.derivation = report.flaws[0].derivation;
      break;
    }
  }
  return decision;
}

Result<GuardDecision> SessionGuard::DecideSet(
    const std::string& user, Session& session,
    const std::set<std::string>& query_functions, bool commit) {
  Count(decisions_, ctr_decisions_);

  std::set<std::string> fresh;
  for (const std::string& fn : query_functions) {
    if (!session.committed.contains(fn)) fresh.insert(fn);
  }
  if (fresh.empty() && session.base_allowed) {
    // The union equals the already-validated session set.
    Count(session_hits_, ctr_session_hits_);
    return GuardDecision{};
  }

  const Cone& seed = SeedConeFor(user);
  if (!seed.any_requirements) {
    // No requirement names this user: every set is trivially allowed,
    // and no closure is ever built for the session.
    Count(fastpath_allows_, ctr_fastpath_);
    if (commit) {
      session.committed.insert(query_functions.begin(),
                               query_functions.end());
      session.base_allowed = true;
    }
    return GuardDecision{};
  }
  if (!session.cone_init) {
    session.cone = seed;
    session.cone_init = true;
  }

  // Trigger pre-filter: probe the new functions against the session's
  // cone. Invariant — everything in committed \ checked already missed
  // this cone (it only grows when a hit is absorbed), so only `fresh`
  // needs probing on the hot path.
  bool any_hit = false;
  {
    std::lock_guard<std::mutex> lock(relevance_mu_);
    for (const std::string& fn : fresh) {
      if (ChannelsHitLocked(session.cone, fn)) {
        any_hit = true;
        break;
      }
    }
  }
  if (!any_hit && session.base_allowed) {
    // Fast path: none of the new functions can fire a trigger reaching
    // a requirement site, so the verdict equals the session's already
    // validated one — allow at table-probe cost, closure untouched.
    Count(fastpath_allows_, ctr_fastpath_);
    if (commit) {
      session.committed.insert(query_functions.begin(),
                               query_functions.end());
    }
    return GuardDecision{};
  }

  // A hit widens the cone, and a wider cone can re-capture functions
  // that were inert when committed — cascade over both until fixpoint
  // so `checked` stays exactly the cone-closed slice of the session.
  Cone grown = session.cone;
  std::set<std::string> relevant_new;
  if (any_hit) {
    std::set<std::string> candidates = fresh;
    for (const std::string& fn : session.committed) {
      if (!session.checked.contains(fn)) candidates.insert(fn);
    }
    GrowCone(grown, candidates, relevant_new);
  }

  // Delta recheck: grow the session's relevant subset and serve its
  // closure from the signature cache, warm-started from the session's
  // live closure when a build is needed.
  std::set<std::string> target = session.checked;
  target.insert(relevant_new.begin(), relevant_new.end());
  std::vector<std::string> roots = core::AnalysisRoots(schema_, target);
  OODBSEC_ASSIGN_OR_RETURN(std::shared_ptr<const CachedAnalysis> entry,
                           LookupOrBuild(roots, session.analysis));
  OODBSEC_ASSIGN_OR_RETURN(GuardDecision decision, CheckEntry(user, *entry));
  if (!decision.allowed) {
    Count(denials_, ctr_denials_);
    return decision;
  }
  if (commit) {
    session.committed.insert(query_functions.begin(), query_functions.end());
    session.checked = std::move(target);
    session.cone = std::move(grown);
    session.analysis = std::move(entry);
    session.base_allowed = true;
  } else if (target == session.checked) {
    // No commitment needed to remember a fact about the set itself:
    // the session's current subset just re-validated as allowed.
    session.base_allowed = true;
    if (session.analysis == nullptr) session.analysis = std::move(entry);
  }
  return decision;
}

// ---------------------------------------------------------------------
// Public entry points.

Result<GuardDecision> SessionGuard::Decide(const schema::User& user,
                                           const query::SelectQuery& query) {
  if (!query.bound) {
    return common::FailedPreconditionError("query is not bound");
  }
  std::set<std::string> functions = query::CollectInvokedFunctions(query);
  std::shared_ptr<Session> session = SessionFor(user.name());
  std::lock_guard<std::mutex> lock(session->mu);
  return DecideSet(user.name(), *session, functions, /*commit=*/false);
}

Result<GuardDecision> SessionGuard::CheckFunctions(
    const std::string& user, const std::set<std::string>& functions) {
  std::shared_ptr<Session> session = SessionFor(user);
  std::lock_guard<std::mutex> lock(session->mu);
  return DecideSet(user, *session, functions, /*commit=*/false);
}

Result<query::QueryResult> SessionGuard::Run(store::Database& db,
                                             const schema::User& user,
                                             const query::SelectQuery& query) {
  if (!query.bound) {
    return common::FailedPreconditionError("query is not bound");
  }
  std::set<std::string> functions = query::CollectInvokedFunctions(query);
  GuardDecision decision;
  {
    std::shared_ptr<Session> session = SessionFor(user.name());
    std::lock_guard<std::mutex> lock(session->mu);
    // Commit BEFORE execution: a query that errors mid-way may already
    // have performed writes, so its functions count as exercised.
    OODBSEC_ASSIGN_OR_RETURN(
        decision, DecideSet(user.name(), *session, functions, /*commit=*/true));
  }
  if (!decision.allowed) {
    return common::PermissionDeniedError(common::StrCat(
        "query denied: executing it would violate ",
        decision.violated_requirement));
  }
  query::QueryEvaluator evaluator(db, &user);
  return evaluator.Run(query);
}

// ---------------------------------------------------------------------
// Introspection.

SessionGuard::SessionProbe SessionGuard::Probe(const std::string& user) const {
  SessionProbe probe;
  std::shared_ptr<Session> session = FindSession(user);
  if (session == nullptr) return probe;
  std::lock_guard<std::mutex> lock(session->mu);
  probe.exists = true;
  probe.committed = session->committed;
  probe.checked = session->checked;
  if (session->analysis != nullptr) {
    probe.roots = session->analysis->roots;
    probe.digest = session->analysis->closure->FactSetDigest();
  }
  return probe;
}

std::vector<std::string> SessionGuard::SessionUsers() const {
  std::vector<std::string> users;
  for (const SessionShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, session] : shard.sessions) {
      users.push_back(name);
    }
  }
  std::sort(users.begin(), users.end());
  return users;
}

GuardStats SessionGuard::Stats() const {
  GuardStats stats;
  stats.decisions = decisions_.load(std::memory_order_relaxed);
  stats.fastpath_allows = fastpath_allows_.load(std::memory_order_relaxed);
  stats.session_hits = session_hits_.load(std::memory_order_relaxed);
  stats.exact_hits = exact_hits_.load(std::memory_order_relaxed);
  stats.delta_rechecks = delta_rechecks_.load(std::memory_order_relaxed);
  stats.cold_builds = cold_builds_.load(std::memory_order_relaxed);
  stats.denials = denials_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(cache_mu_);
  stats.cache = cache_.stats();
  return stats;
}

common::Status SessionGuard::SaveCacheSnapshot() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_.SaveCacheSnapshot();
}

size_t SessionGuard::LoadCacheSnapshot() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_.LoadCacheSnapshot();
}

// ---------------------------------------------------------------------
// The cold reference path.

Result<GuardDecision> SessionGuard::ColdDecision(
    const schema::Schema& schema,
    const std::vector<core::Requirement>& requirements,
    const std::string& user, const std::set<std::string>& functions,
    core::ClosureOptions options) {
  // A transient user carrying exactly the session's function set: the
  // closure then ranges over what was actually exercised, not the full
  // grant list.
  schema::User session_user(user);
  for (const std::string& fn : functions) session_user.Grant(fn);
  OODBSEC_ASSIGN_OR_RETURN(
      std::unique_ptr<core::UserAnalysis> analysis,
      core::UserAnalysis::Build(schema, session_user, options));
  GuardDecision decision;
  for (const core::Requirement& requirement : requirements) {
    if (requirement.user != user) continue;
    OODBSEC_ASSIGN_OR_RETURN(core::AnalysisReport report,
                             analysis->Check(requirement));
    if (!report.satisfied) {
      decision.allowed = false;
      decision.violated_requirement = requirement.ToString();
      decision.derivation = report.flaws[0].derivation;
      break;
    }
  }
  return decision;
}

}  // namespace oodbsec::dynamic
