// The database schema of the paper's data model (§2):
//
//   scm = ({(c_name : [att : t, …])}, {f_name(arg : t, …) : t = body})
//
// Classes declare typed attributes; access functions are written in the
// function definition language. For every class attribute `att` the
// schema implicitly provides the special functions
//
//   r_att(o : C) : t          -- read the attribute
//   w_att(o : C, v : t) : null -- write the attribute
//
// Attribute names must be unique across the schema so r_<att>/w_<att>
// resolve unambiguously (the paper names specials by attribute only).
// Access functions must be recursion-free (§2: "We do not consider
// recursive functions"); the builder rejects cyclic call graphs.
#ifndef OODBSEC_SCHEMA_SCHEMA_H_
#define OODBSEC_SCHEMA_SCHEMA_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "exec/basic_functions.h"
#include "lang/ast.h"
#include "types/type.h"

namespace oodbsec::schema {

struct AttributeDef {
  std::string name;
  const types::Type* type = nullptr;
};

class ClassDef {
 public:
  ClassDef(std::string name, const types::Type* type,
           std::vector<AttributeDef> attributes)
      : name_(std::move(name)),
        type_(type),
        attributes_(std::move(attributes)) {}

  const std::string& name() const { return name_; }
  // The class type (instances' type), interned in the schema's pool.
  const types::Type* type() const { return type_; }
  const std::vector<AttributeDef>& attributes() const { return attributes_; }

  // Index of `name` in attributes(), or -1.
  int AttributeIndex(std::string_view name) const;
  const AttributeDef* FindAttribute(std::string_view name) const;

 private:
  std::string name_;
  const types::Type* type_;
  std::vector<AttributeDef> attributes_;
};

struct Param {
  std::string name;
  const types::Type* type = nullptr;
};

// A user-defined access function: signature plus a type-checked body.
class FunctionDecl {
 public:
  FunctionDecl(std::string name, std::vector<Param> params,
               const types::Type* return_type,
               std::unique_ptr<lang::Expr> body)
      : name_(std::move(name)),
        params_(std::move(params)),
        return_type_(return_type),
        body_(std::move(body)) {}

  const std::string& name() const { return name_; }
  const std::vector<Param>& params() const { return params_; }
  const types::Type* return_type() const { return return_type_; }
  const lang::Expr& body() const { return *body_; }
  lang::Expr& mutable_body() { return *body_; }

  int ParamIndex(std::string_view name) const;

  // "f(x : t, …) : t" without the body.
  std::string SignatureToString() const;

 private:
  std::string name_;
  std::vector<Param> params_;
  const types::Type* return_type_;
  std::unique_ptr<lang::Expr> body_;
};

// The result of resolving a callable name: an access function, a special
// read/write, or nothing. Uniform signature accessors cover all kinds.
struct Callable {
  enum class Kind { kNone, kAccess, kReadAttr, kWriteAttr };

  Kind kind = Kind::kNone;
  const FunctionDecl* access = nullptr;   // kAccess
  const ClassDef* cls = nullptr;          // kReadAttr / kWriteAttr
  const AttributeDef* attribute = nullptr;

  std::vector<const types::Type*> param_types;
  const types::Type* return_type = nullptr;

  bool ok() const { return kind != Kind::kNone; }
};

class Schema {
 public:
  Schema(const Schema&) = delete;
  Schema& operator=(const Schema&) = delete;

  const types::TypePool& pool() const { return *pool_; }
  types::TypePool& mutable_pool() { return *pool_; }

  // The basic-function catalog whose types are interned in pool().
  const exec::BasicFunctionCatalog& catalog() const { return *catalog_; }

  const std::vector<std::unique_ptr<ClassDef>>& classes() const {
    return classes_;
  }
  const std::vector<std::unique_ptr<FunctionDecl>>& functions() const {
    return functions_;
  }

  const ClassDef* FindClass(std::string_view name) const;
  const FunctionDecl* FindFunction(std::string_view name) const;

  // Integrity constraints (paper §1.1): boolean access functions the
  // database guarantees to hold for every argument instantiation. Every
  // user is assumed to know them (the analyzer folds their bodies into
  // each capability-list closure as known-true observations).
  const std::vector<const FunctionDecl*>& constraints() const {
    return constraints_;
  }
  // The unique class declaring attribute `name`, or nullptr.
  const ClassDef* FindClassByAttribute(std::string_view attribute) const;

  // Resolves `name` as an access function, "r_<att>", or "w_<att>".
  Callable ResolveCallable(std::string_view name) const;

 private:
  friend class SchemaBuilder;
  Schema();

  std::unique_ptr<types::TypePool> pool_;
  std::unique_ptr<exec::BasicFunctionCatalog> catalog_;
  std::vector<std::unique_ptr<ClassDef>> classes_;
  std::vector<std::unique_ptr<FunctionDecl>> functions_;
  std::vector<const FunctionDecl*> constraints_;
  std::map<std::string, const ClassDef*, std::less<>> class_index_;
  std::map<std::string, const FunctionDecl*, std::less<>> function_index_;
  std::map<std::string, const ClassDef*, std::less<>> attribute_index_;
};

// Incrementally declares classes and functions, then validates and type
// checks everything in Build().
class SchemaBuilder {
 public:
  struct AttributeSpec {
    std::string name;
    std::string type;  // textual, e.g. "int", "Broker", "{Person}"
  };
  struct ParamSpec {
    std::string name;
    std::string type;
  };

  SchemaBuilder();

  SchemaBuilder& AddClass(std::string name,
                          std::vector<AttributeSpec> attributes);

  // Body given as source text in the function definition language.
  SchemaBuilder& AddFunction(std::string name, std::vector<ParamSpec> params,
                             std::string return_type, std::string body);

  // Body given as a pre-built (unchecked) AST.
  SchemaBuilder& AddFunctionAst(std::string name, std::vector<ParamSpec> params,
                                std::string return_type,
                                std::unique_ptr<lang::Expr> body);

  // Declares an integrity constraint: a boolean function guaranteed
  // true for all argument instantiations. Also registered as a regular
  // access function (so it unfolds and can even be granted).
  SchemaBuilder& AddConstraint(std::string name, std::vector<ParamSpec> params,
                               std::string body);

  // Marks an already-added function (any Add* overload) as an integrity
  // constraint. Build() verifies it exists and returns bool.
  SchemaBuilder& MarkConstraint(std::string name);

  // Validates declarations, parses and type checks every function body,
  // checks the access-function call graph is acyclic, and returns the
  // finished schema. The builder is consumed.
  common::Result<std::unique_ptr<Schema>> Build() &&;

 private:
  struct PendingFunction {
    std::string name;
    std::vector<ParamSpec> params;
    std::string return_type;
    std::string body_source;               // either this...
    std::unique_ptr<lang::Expr> body_ast;  // ...or this
  };

  struct PendingClass {
    std::string name;
    std::vector<AttributeSpec> attributes;
  };

  std::vector<PendingClass> classes_;
  std::vector<PendingFunction> functions_;
  std::vector<std::string> constraint_names_;
};

}  // namespace oodbsec::schema

#endif  // OODBSEC_SCHEMA_SCHEMA_H_
