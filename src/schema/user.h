// Users and capability lists (paper §2): the database records, per user,
// the set of access-function and special-function names the user may
// invoke in queries. Access control is purely name based
// (name-dependent control, paper §5).
#ifndef OODBSEC_SCHEMA_USER_H_
#define OODBSEC_SCHEMA_USER_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "schema/schema.h"

namespace oodbsec::schema {

class User {
 public:
  explicit User(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::set<std::string>& capabilities() const { return capabilities_; }

  void Grant(std::string function_name) {
    capabilities_.insert(std::move(function_name));
  }
  void Revoke(std::string_view function_name) {
    capabilities_.erase(std::string(function_name));
  }
  bool MayInvoke(std::string_view function_name) const {
    return capabilities_.contains(std::string(function_name));
  }

 private:
  std::string name_;
  std::set<std::string> capabilities_;
};

// The user table of a database. Every capability must name a callable
// that resolves against the schema.
class UserRegistry {
 public:
  explicit UserRegistry(const Schema& schema) : schema_(schema) {}

  // Creates a user; fails on duplicates.
  common::Status AddUser(std::string name);

  // Grants `function_name` to `user`; fails if either is unknown or the
  // name resolves to nothing in the schema.
  common::Status Grant(std::string_view user, std::string function_name);

  const User* Find(std::string_view name) const;
  std::vector<const User*> users() const;

 private:
  const Schema& schema_;
  std::map<std::string, User, std::less<>> users_;
};

}  // namespace oodbsec::schema

#endif  // OODBSEC_SCHEMA_USER_H_
