#include "schema/schema.h"

#include <functional>
#include <set>

#include "common/strings.h"
#include "lang/parser.h"
#include "lang/type_checker.h"

namespace oodbsec::schema {

using common::Result;
using common::Status;
using types::Type;

int ClassDef::AttributeIndex(std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

const AttributeDef* ClassDef::FindAttribute(std::string_view name) const {
  int index = AttributeIndex(name);
  return index < 0 ? nullptr : &attributes_[index];
}

int FunctionDecl::ParamIndex(std::string_view name) const {
  for (size_t i = 0; i < params_.size(); ++i) {
    if (params_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string FunctionDecl::SignatureToString() const {
  std::vector<std::string> parts;
  parts.reserve(params_.size());
  for (const Param& p : params_) {
    parts.push_back(common::StrCat(p.name, " : ", p.type->ToString()));
  }
  return common::StrCat(name_, "(", common::Join(parts, ", "), ") : ",
                        return_type_->ToString());
}

Schema::Schema() : pool_(std::make_unique<types::TypePool>()) {
  catalog_ = exec::BasicFunctionCatalog::MakeDefault(*pool_);
}

const ClassDef* Schema::FindClass(std::string_view name) const {
  auto it = class_index_.find(name);
  return it == class_index_.end() ? nullptr : it->second;
}

const FunctionDecl* Schema::FindFunction(std::string_view name) const {
  auto it = function_index_.find(name);
  return it == function_index_.end() ? nullptr : it->second;
}

const ClassDef* Schema::FindClassByAttribute(std::string_view attribute) const {
  auto it = attribute_index_.find(attribute);
  return it == attribute_index_.end() ? nullptr : it->second;
}

Callable Schema::ResolveCallable(std::string_view name) const {
  Callable callable;
  if (const FunctionDecl* fn = FindFunction(name); fn != nullptr) {
    callable.kind = Callable::Kind::kAccess;
    callable.access = fn;
    for (const Param& p : fn->params()) callable.param_types.push_back(p.type);
    callable.return_type = fn->return_type();
    return callable;
  }
  bool is_read = name.size() > 2 && name.substr(0, 2) == "r_";
  bool is_write = name.size() > 2 && name.substr(0, 2) == "w_";
  if (is_read || is_write) {
    std::string_view attribute = name.substr(2);
    const ClassDef* cls = FindClassByAttribute(attribute);
    if (cls != nullptr) {
      const AttributeDef* attr = cls->FindAttribute(attribute);
      callable.kind =
          is_read ? Callable::Kind::kReadAttr : Callable::Kind::kWriteAttr;
      callable.cls = cls;
      callable.attribute = attr;
      callable.param_types.push_back(cls->type());
      if (is_read) {
        callable.return_type = attr->type;
      } else {
        callable.param_types.push_back(attr->type);
        callable.return_type = pool_->Null();
      }
      return callable;
    }
  }
  return callable;  // kNone
}

SchemaBuilder::SchemaBuilder() = default;

SchemaBuilder& SchemaBuilder::AddClass(std::string name,
                                       std::vector<AttributeSpec> attributes) {
  classes_.push_back({std::move(name), std::move(attributes)});
  return *this;
}

SchemaBuilder& SchemaBuilder::AddFunction(std::string name,
                                          std::vector<ParamSpec> params,
                                          std::string return_type,
                                          std::string body) {
  PendingFunction fn;
  fn.name = std::move(name);
  fn.params = std::move(params);
  fn.return_type = std::move(return_type);
  fn.body_source = std::move(body);
  functions_.push_back(std::move(fn));
  return *this;
}

SchemaBuilder& SchemaBuilder::AddConstraint(std::string name,
                                            std::vector<ParamSpec> params,
                                            std::string body) {
  constraint_names_.push_back(name);
  return AddFunction(std::move(name), std::move(params), "bool",
                     std::move(body));
}

SchemaBuilder& SchemaBuilder::MarkConstraint(std::string name) {
  constraint_names_.push_back(std::move(name));
  return *this;
}

SchemaBuilder& SchemaBuilder::AddFunctionAst(std::string name,
                                             std::vector<ParamSpec> params,
                                             std::string return_type,
                                             std::unique_ptr<lang::Expr> body) {
  PendingFunction fn;
  fn.name = std::move(name);
  fn.params = std::move(params);
  fn.return_type = std::move(return_type);
  fn.body_ast = std::move(body);
  functions_.push_back(std::move(fn));
  return *this;
}

namespace {

// Collects the names of access functions invoked anywhere in `expr`.
void CollectCalledNames(const lang::Expr& expr, std::set<std::string>& names) {
  switch (expr.kind()) {
    case lang::ExprKind::kConstant:
    case lang::ExprKind::kVarRef:
      return;
    case lang::ExprKind::kCall: {
      const lang::CallExpr& call = expr.AsCall();
      names.insert(call.name());
      for (const auto& arg : call.args()) CollectCalledNames(*arg, names);
      return;
    }
    case lang::ExprKind::kLet: {
      const lang::LetExpr& let = expr.AsLet();
      for (const auto& binding : let.bindings()) {
        CollectCalledNames(*binding.init, names);
      }
      CollectCalledNames(let.body(), names);
      return;
    }
  }
}

// Depth-first cycle check over the access-function call graph.
Status CheckAcyclic(const Schema& schema) {
  enum class Mark { kWhite, kGray, kBlack };
  std::map<const FunctionDecl*, Mark> marks;
  std::vector<std::string> stack;

  // Iterative DFS would be overkill; recursion depth is bounded by the
  // number of functions (the graph must be a DAG to pass).
  std::function<Status(const FunctionDecl*)> visit =
      [&](const FunctionDecl* fn) -> Status {
    Mark& mark = marks[fn];
    if (mark == Mark::kBlack) return Status::Ok();
    if (mark == Mark::kGray) {
      return common::FailedPreconditionError(common::StrCat(
          "recursive access functions are not allowed: cycle through '",
          fn->name(), "' (call chain: ", common::Join(stack, " -> "), ")"));
    }
    mark = Mark::kGray;
    stack.push_back(fn->name());
    std::set<std::string> called;
    CollectCalledNames(fn->body(), called);
    for (const std::string& name : called) {
      const FunctionDecl* callee = schema.FindFunction(name);
      if (callee != nullptr) OODBSEC_RETURN_IF_ERROR(visit(callee));
    }
    stack.pop_back();
    marks[fn] = Mark::kBlack;
    return Status::Ok();
  };

  for (const auto& fn : schema.functions()) {
    OODBSEC_RETURN_IF_ERROR(visit(fn.get()));
  }
  return Status::Ok();
}

}  // namespace

Result<std::unique_ptr<Schema>> SchemaBuilder::Build() && {
  std::unique_ptr<Schema> schema(new Schema());
  types::TypePool& pool = schema->mutable_pool();

  // Pass 1: declare class names so attribute types can reference any
  // class regardless of declaration order.
  std::set<std::string> class_names;
  for (const PendingClass& pending : classes_) {
    if (!class_names.insert(pending.name).second) {
      return common::AlreadyExistsError(
          common::StrCat("duplicate class '", pending.name, "'"));
    }
  }

  // Pass 2: build class definitions and the attribute index.
  for (const PendingClass& pending : classes_) {
    std::vector<AttributeDef> attributes;
    std::set<std::string> attribute_names;
    for (const AttributeSpec& spec : pending.attributes) {
      if (!attribute_names.insert(spec.name).second) {
        return common::AlreadyExistsError(
            common::StrCat("duplicate attribute '", spec.name, "' in class '",
                           pending.name, "'"));
      }
      const Type* type = pool.Parse(spec.type);
      if (type == nullptr) {
        return common::InvalidArgumentError(common::StrCat(
            "bad type '", spec.type, "' for attribute '", pending.name, ".",
            spec.name, "'"));
      }
      attributes.push_back({spec.name, type});
    }
    auto cls = std::make_unique<ClassDef>(
        pending.name, pool.Class(pending.name), std::move(attributes));
    const ClassDef* cls_ptr = cls.get();
    schema->classes_.push_back(std::move(cls));
    schema->class_index_.emplace(pending.name, cls_ptr);
    for (const AttributeDef& attr : cls_ptr->attributes()) {
      auto [it, inserted] = schema->attribute_index_.emplace(attr.name,
                                                             cls_ptr);
      if (!inserted) {
        return common::AlreadyExistsError(common::StrCat(
            "attribute '", attr.name, "' declared in both class '",
            it->second->name(), "' and class '", cls_ptr->name(),
            "'; attribute names must be schema-unique so r_/w_ specials "
            "resolve"));
      }
    }
  }

  // Validate that every class type mentioned anywhere is declared: any
  // type interned as a class must be in the class index.
  auto validate_type = [&](const Type* type,
                           const std::string& where) -> Status {
    const Type* t = type;
    while (t != nullptr && t->is_set()) t = t->element();
    if (t != nullptr && t->is_class() &&
        schema->FindClass(t->class_name()) == nullptr) {
      return common::NotFoundError(common::StrCat(
          "unknown class '", t->class_name(), "' referenced by ", where));
    }
    return Status::Ok();
  };
  for (const auto& cls : schema->classes_) {
    for (const AttributeDef& attr : cls->attributes()) {
      OODBSEC_RETURN_IF_ERROR(validate_type(
          attr.type, common::StrCat("attribute '", cls->name(), ".",
                                    attr.name, "'")));
    }
  }

  // Pass 3: declare function signatures (bodies checked afterwards so
  // functions may call functions declared later, as long as the call
  // graph stays acyclic).
  struct ParsedFunction {
    FunctionDecl* decl;
    std::unique_ptr<lang::Expr> body;
  };
  std::set<std::string> function_names;
  std::vector<std::unique_ptr<lang::Expr>> bodies;
  for (PendingFunction& pending : functions_) {
    if (!function_names.insert(pending.name).second) {
      return common::AlreadyExistsError(
          common::StrCat("duplicate function '", pending.name, "'"));
    }
    if (pending.name.starts_with("r_") || pending.name.starts_with("w_")) {
      std::string_view attribute = std::string_view(pending.name).substr(2);
      if (schema->FindClassByAttribute(attribute) != nullptr) {
        return common::AlreadyExistsError(common::StrCat(
            "function name '", pending.name,
            "' collides with the special function for attribute '", attribute,
            "'"));
      }
    }
    std::vector<Param> params;
    std::set<std::string> param_names;
    for (const ParamSpec& spec : pending.params) {
      if (!param_names.insert(spec.name).second) {
        return common::AlreadyExistsError(
            common::StrCat("duplicate parameter '", spec.name,
                           "' in function '", pending.name, "'"));
      }
      const Type* type = pool.Parse(spec.type);
      if (type == nullptr) {
        return common::InvalidArgumentError(
            common::StrCat("bad type '", spec.type, "' for parameter '",
                           pending.name, ".", spec.name, "'"));
      }
      OODBSEC_RETURN_IF_ERROR(validate_type(
          type, common::StrCat("parameter '", pending.name, ".", spec.name,
                               "'")));
      params.push_back({spec.name, type});
    }
    const Type* return_type = pool.Parse(pending.return_type);
    if (return_type == nullptr) {
      return common::InvalidArgumentError(
          common::StrCat("bad return type '", pending.return_type,
                         "' for function '", pending.name, "'"));
    }
    OODBSEC_RETURN_IF_ERROR(validate_type(
        return_type,
        common::StrCat("return type of '", pending.name, "'")));

    std::unique_ptr<lang::Expr> body;
    if (pending.body_ast != nullptr) {
      body = std::move(pending.body_ast);
    } else {
      auto parsed = lang::ParseExpressionString(pending.body_source);
      if (!parsed.ok()) {
        return parsed.status().WithContext(
            common::StrCat("in body of '", pending.name, "'"));
      }
      body = std::move(parsed).value();
    }
    auto decl = std::make_unique<FunctionDecl>(pending.name, std::move(params),
                                               return_type, std::move(body));
    schema->function_index_.emplace(pending.name, decl.get());
    schema->functions_.push_back(std::move(decl));
  }

  // Pass 4: type check every body against the now-complete schema.
  lang::TypeChecker checker(*schema, schema->catalog());
  for (const auto& fn : schema->functions_) {
    Status status = checker.CheckFunctionBody(fn->mutable_body(), fn->params(),
                                              fn->return_type());
    if (!status.ok()) {
      return status.WithContext(
          common::StrCat("in body of '", fn->name(), "'"));
    }
  }

  // Pass 5: recursion-freedom (paper §2).
  OODBSEC_RETURN_IF_ERROR(CheckAcyclic(*schema));

  // Pass 6: resolve constraint declarations.
  for (const std::string& name : constraint_names_) {
    const FunctionDecl* fn = schema->FindFunction(name);
    if (fn == nullptr) {
      return common::NotFoundError(common::StrCat(
          "constraint '", name, "' does not name a declared function"));
    }
    if (fn->return_type() != pool.Bool()) {
      return common::TypeError(common::StrCat(
          "constraint '", name, "' must return bool, returns ",
          fn->return_type()->ToString()));
    }
    schema->constraints_.push_back(fn);
  }

  return schema;
}

}  // namespace oodbsec::schema
