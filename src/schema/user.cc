#include "schema/user.h"

#include "common/strings.h"

namespace oodbsec::schema {

common::Status UserRegistry::AddUser(std::string name) {
  auto [it, inserted] = users_.emplace(name, User(name));
  if (!inserted) {
    return common::AlreadyExistsError(
        common::StrCat("duplicate user '", name, "'"));
  }
  return common::Status::Ok();
}

common::Status UserRegistry::Grant(std::string_view user,
                                   std::string function_name) {
  auto it = users_.find(user);
  if (it == users_.end()) {
    return common::NotFoundError(common::StrCat("unknown user '", user, "'"));
  }
  if (!schema_.ResolveCallable(function_name).ok()) {
    return common::NotFoundError(common::StrCat(
        "cannot grant '", function_name, "': no such access function or "
        "special function"));
  }
  it->second.Grant(std::move(function_name));
  return common::Status::Ok();
}

const User* UserRegistry::Find(std::string_view name) const {
  auto it = users_.find(name);
  return it == users_.end() ? nullptr : &it->second;
}

std::vector<const User*> UserRegistry::users() const {
  std::vector<const User*> out;
  out.reserve(users_.size());
  for (const auto& [_, user] : users_) out.push_back(&user);
  return out;
}

}  // namespace oodbsec::schema
