#include "store/database.h"

#include "common/strings.h"
#include "lang/type_checker.h"

namespace oodbsec::store {

using common::Result;
using common::Status;
using types::Oid;
using types::Value;

Database::Database(const schema::Schema& schema) : schema_(&schema) {}

Value Database::ZeroValue(const types::Type* type) {
  switch (type->kind()) {
    case types::TypeKind::kInt:
      return Value::Int(0);
    case types::TypeKind::kBool:
      return Value::Bool(false);
    case types::TypeKind::kString:
      return Value::String("");
    case types::TypeKind::kNull:
    case types::TypeKind::kClass:
      return Value::Null();
    case types::TypeKind::kSet:
      return Value::Set({});
  }
  return Value::Null();
}

Result<Oid> Database::CreateObject(std::string_view class_name) {
  const schema::ClassDef* cls = schema_->FindClass(class_name);
  if (cls == nullptr) {
    return common::NotFoundError(
        common::StrCat("unknown class '", class_name, "'"));
  }
  Oid oid(next_oid_++);
  ObjectRecord record;
  record.cls = cls;
  record.attributes.reserve(cls->attributes().size());
  for (const schema::AttributeDef& attr : cls->attributes()) {
    record.attributes.push_back(ZeroValue(attr.type));
  }
  objects_.emplace(oid.raw(), std::move(record));
  extents_[cls->name()].push_back(oid);
  return oid;
}

const std::vector<Oid>& Database::Extent(std::string_view class_name) const {
  static const std::vector<Oid>& empty = *new std::vector<Oid>();
  auto it = extents_.find(class_name);
  return it == extents_.end() ? empty : it->second;
}

const Database::ObjectRecord* Database::FindObject(Oid oid) const {
  auto it = objects_.find(oid.raw());
  return it == objects_.end() ? nullptr : &it->second;
}

const schema::ClassDef* Database::ClassOf(Oid oid) const {
  const ObjectRecord* record = FindObject(oid);
  return record == nullptr ? nullptr : record->cls;
}

Result<Value> Database::ReadAttribute(Oid oid,
                                      std::string_view attribute) const {
  const ObjectRecord* record = FindObject(oid);
  if (record == nullptr) {
    return common::NotFoundError("read of unknown object");
  }
  int index = record->cls->AttributeIndex(attribute);
  if (index < 0) {
    return common::NotFoundError(
        common::StrCat("class '", record->cls->name(),
                       "' has no attribute '", attribute, "'"));
  }
  return record->attributes[static_cast<size_t>(index)];
}

Status Database::WriteAttribute(Oid oid, std::string_view attribute,
                                Value value) {
  auto it = objects_.find(oid.raw());
  if (it == objects_.end()) {
    return common::NotFoundError("write to unknown object");
  }
  ObjectRecord& record = it->second;
  int index = record.cls->AttributeIndex(attribute);
  if (index < 0) {
    return common::NotFoundError(
        common::StrCat("class '", record.cls->name(), "' has no attribute '",
                       attribute, "'"));
  }
  const types::Type* declared =
      record.cls->attributes()[static_cast<size_t>(index)].type;
  // Dynamic type check: the stored value must fit the declared type.
  bool ok = false;
  switch (declared->kind()) {
    case types::TypeKind::kInt:
      ok = value.is_int();
      break;
    case types::TypeKind::kBool:
      ok = value.is_bool();
      break;
    case types::TypeKind::kString:
      ok = value.is_string();
      break;
    case types::TypeKind::kNull:
      ok = value.is_null();
      break;
    case types::TypeKind::kClass:
      ok = value.is_object() || value.is_null();
      break;
    case types::TypeKind::kSet:
      ok = value.is_set() || value.is_null();
      break;
  }
  if (!ok) {
    return common::TypeError(common::StrCat(
        "value ", value.ToString(), " does not fit attribute '", attribute,
        "' of type ", declared->ToString()));
  }
  record.attributes[static_cast<size_t>(index)] = std::move(value);
  return Status::Ok();
}

Database Database::Clone() const {
  Database copy(*schema_);
  copy.objects_ = objects_;
  copy.extents_ = extents_;
  copy.next_oid_ = next_oid_;
  return copy;
}

}  // namespace oodbsec::store
