// The mutable object store: a database state in the sense of the paper
// (§2): per-class extents of mutable objects with typed attribute slots.
//
// Objects are created with zero-values for their attributes (0, false,
// "", null for class types, {} for set types). Reads and writes are type
// checked against the schema. Clone() produces an independent snapshot,
// which the semantic oracle uses to enumerate initial database states.
#ifndef OODBSEC_STORE_DATABASE_H_
#define OODBSEC_STORE_DATABASE_H_

#include <cstdint>
#include <map>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "schema/schema.h"
#include "types/value.h"

namespace oodbsec::store {

class Database {
 public:
  explicit Database(const schema::Schema& schema);

  // Copyable only through Clone() to make snapshotting explicit.
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  const schema::Schema& schema() const { return *schema_; }

  // Creates an instance of `class_name` with zero-valued attributes and
  // appends it to the class extent.
  common::Result<types::Oid> CreateObject(std::string_view class_name);

  // The extent of `class_name` in creation order; empty for unknown
  // classes.
  const std::vector<types::Oid>& Extent(std::string_view class_name) const;

  // The class of `oid`, or nullptr for unknown oids.
  const schema::ClassDef* ClassOf(types::Oid oid) const;

  // Reads attribute `attribute` of `oid`.
  common::Result<types::Value> ReadAttribute(types::Oid oid,
                                             std::string_view attribute) const;

  // Writes attribute `attribute` of `oid`; the value must be assignable
  // to the attribute's declared type.
  common::Status WriteAttribute(types::Oid oid, std::string_view attribute,
                                types::Value value);

  // Deep snapshot sharing the same schema.
  Database Clone() const;

  // Total number of live objects.
  size_t object_count() const { return objects_.size(); }

  // The zero value of `type`: 0, false, "", null, or {}.
  static types::Value ZeroValue(const types::Type* type);

 private:
  struct ObjectRecord {
    const schema::ClassDef* cls;
    std::vector<types::Value> attributes;
  };

  const ObjectRecord* FindObject(types::Oid oid) const;

  const schema::Schema* schema_;
  std::unordered_map<uint64_t, ObjectRecord> objects_;
  std::map<std::string, std::vector<types::Oid>, std::less<>> extents_;
  uint64_t next_oid_ = 1;
};

}  // namespace oodbsec::store

#endif  // OODBSEC_STORE_DATABASE_H_
