// Experiment F1: reproduce the paper's Figure 1.
//
// F = {checkBudget(broker), w_budget(o, v)} must derive
// ti[5:r_salary(4:broker)], with the key intermediate conclusions of
// Figure 1 (=[8:o,1:broker], =[9:v,2:r_budget], ti/pa on the budget
// read, ti on the comparison, ti on the product). The report prints the
// machine-found derivation next to the expected conclusions; the timed
// section measures the closure.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "core/closure.h"
#include "unfold/unfolded.h"

namespace {

using namespace oodbsec;

void PrintReport() {
  auto schema = bench::BrokerSchema();
  auto set = unfold::UnfoldedSet::Build(*schema, {"checkBudget", "w_budget"});
  if (!set.ok()) std::abort();
  core::Closure closure(*set.value());

  std::printf("=== F1: Figure 1 derivation ===\n\n");
  std::printf("S(F): %s\n      %s\n\n",
              set.value()->NodeLabel(set.value()->roots()[0].body).c_str(),
              set.value()->NodeLabel(set.value()->roots()[1].body).c_str());

  struct Expected {
    const char* paper_conclusion;
    bool holds;
  };
  Expected expected[] = {
      {"=[8:o, 1:broker]            (axiom for =)", closure.AreEqual(8, 1)},
      {"=[9:v, 2:r_budget(broker)]  (rule for =)", closure.AreEqual(9, 2)},
      {"ti[2:r_budget(broker)]      (inferability based on =)",
       closure.HasTi(2)},
      {"pa[2:r_budget(broker)]      (alterability based on =)",
       closure.HasPa(2)},
      {"ti[7:>=(...)]               (axiom)", closure.HasTi(7)},
      {"ti[6:*(10, r_salary)]       (basic function)", closure.HasTi(6)},
      {"ti[5:r_salary(broker)]      (basic function)  <-- THE FLAW",
       closure.HasTi(5)},
  };
  std::printf("%-62s %s\n", "paper (Figure 1) conclusion", "reproduced");
  for (const Expected& e : expected) {
    std::printf("%-62s %s\n", e.paper_conclusion, e.holds ? "yes" : "NO");
  }

  std::printf("\nmachine derivation of ti[5:r_salary(broker)]:\n%s\n",
              closure.ExplainFact(closure.TiFact(5)).c_str());
  std::printf("closure facts: %zu over %d occurrences\n\n",
              closure.fact_count(), set.value()->node_count());
}

void BM_Figure1Closure(benchmark::State& state) {
  auto schema = bench::BrokerSchema();
  auto set = unfold::UnfoldedSet::Build(*schema, {"checkBudget", "w_budget"});
  if (!set.ok()) std::abort();
  for (auto _ : state) {
    core::Closure closure(*set.value());
    benchmark::DoNotOptimize(closure.HasTi(5));
  }
}
BENCHMARK(BM_Figure1Closure);

void BM_Figure1IncludingUnfold(benchmark::State& state) {
  auto schema = bench::BrokerSchema();
  for (auto _ : state) {
    auto set =
        unfold::UnfoldedSet::Build(*schema, {"checkBudget", "w_budget"});
    core::Closure closure(*set.value());
    benchmark::DoNotOptimize(closure.HasTi(5));
  }
}
BENCHMARK(BM_Figure1IncludingUnfold);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
