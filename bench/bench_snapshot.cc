// Snapshot-tier benchmark: replaying a persisted derivation log versus
// re-running the fixpoint.
//
// Workload: a fleet of capability lists over the scaled broker schema
// that share >= 80% of their roots — eight department grant bundles
// common to every list plus one list-specific bundle — the shape of a
// real role-drifted population, and the worst case for exact-match
// caching (no list is a subset of another, so every list needs its own
// closure). BM_SnapshotColdBuild pays the full fixpoint for each list;
// BM_SnapshotWarmStart serves the same lists from a pre-populated
// snapshot directory, where each closure is rebuilt by replaying its
// saved derivation log — no joins, no frontier, just bounds-checked
// union-find replay. The ratio between the two is the restart win the
// sharded audit banks on (the acceptance floor is 3x).
//
// BM_SnapshotSave prices the write side (serialize + checksum + atomic
// rename per entry), so the nightly "persist what you built" step can
// be budgeted against the fixpoints it saves.
//
// BM_PackedFind / BM_DirectoryFind race the two SnapshotStore
// implementations on the per-signature lookup (the packed store runs
// with a one-entry page cache so every find pays the mmap replay, not
// an LRU hit); BM_PackedSweep / BM_DirectorySweep price the
// steady-state nightly retention pass over an all-live store.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include "common/strings.h"
#include "core/closure.h"
#include "core/closure_cache.h"
#include "schema/schema.h"
#include "snapshot/packed_store.h"
#include "snapshot/snapshot.h"
#include "snapshot/snapshot_store.h"

namespace {

using namespace oodbsec;

constexpr int kBaseDepts = 8;  // departments every list is granted
constexpr int kLists = 3;      // capability lists in the fleet
constexpr int kScale = kBaseDepts + kLists;  // departments in the schema

std::unique_ptr<schema::Schema> ScaledBrokerSchema(int scale) {
  schema::SchemaBuilder builder;
  std::vector<schema::SchemaBuilder::AttributeSpec> attributes;
  attributes.push_back({"name", "string"});
  for (int i = 0; i < scale; ++i) {
    attributes.push_back({common::StrCat("salary", i), "int"});
    attributes.push_back({common::StrCat("budget", i), "int"});
    attributes.push_back({common::StrCat("profit", i), "int"});
  }
  builder.AddClass("Broker", std::move(attributes));
  for (int i = 0; i < scale; ++i) {
    builder.AddFunction(
        common::StrCat("checkBudget", i), {{"broker", "Broker"}}, "bool",
        common::StrCat("r_budget", i, "(broker) >= 10 * r_salary", i,
                       "(broker)"));
    builder.AddFunction(common::StrCat("calcSalary", i),
                        {{"budget", "int"}, {"profit", "int"}}, "int",
                        "budget / 10 + profit / 2");
    builder.AddFunction(
        common::StrCat("updateSalary", i), {{"broker", "Broker"}}, "null",
        common::StrCat("w_salary", i, "(broker, calcSalary", i, "(r_budget",
                       i, "(broker), r_profit", i, "(broker)))"));
  }
  auto result = std::move(builder).Build();
  if (!result.ok()) std::abort();
  return std::move(result).value();
}

// One department's full grant bundle — function *and* write
// capabilities, the shape BM_ScaledBrokerClosure uses. The writes are
// what make the closure rich (write-read equality keeps firing), so
// without them the fixpoint would be too cheap to measure against.
void AppendBundle(std::vector<std::string>& roots, int dept) {
  roots.push_back(common::StrCat("checkBudget", dept));
  roots.push_back(common::StrCat("updateSalary", dept));
  roots.push_back(common::StrCat("w_budget", dept));
  roots.push_back(common::StrCat("w_profit", dept));
}

// kLists capability lists: r_name plus kBaseDepts department bundles
// shared by all, plus one department bundle unique to each list
// (shared fraction 33/37 = 89%). No list subsumes another, so the
// exact-match L1 never helps across lists — each needs its own closure.
std::vector<std::vector<std::string>> FleetLists() {
  std::vector<std::string> base = {"r_name"};
  for (int d = 0; d < kBaseDepts; ++d) AppendBundle(base, d);
  std::vector<std::vector<std::string>> lists;
  for (int l = 0; l < kLists; ++l) {
    std::vector<std::string> roots = base;
    AppendBundle(roots, kBaseDepts + l);
    lists.push_back(std::move(roots));
  }
  return lists;
}

const schema::Schema& SharedSchema() {
  static const std::unique_ptr<schema::Schema> schema =
      ScaledBrokerSchema(kScale);
  return *schema;
}

// A snapshot directory holding one saved closure per fleet list,
// populated once and removed at process exit.
const std::string& PopulatedSnapshotDir() {
  static const std::string dir = [] {
    char buf[] = "/tmp/oodbsec_bench_snap.XXXXXX";
    const char* path = ::mkdtemp(buf);
    if (path == nullptr) std::abort();
    core::ClosureCache cache(SharedSchema(), core::ClosureOptions{}, 64,
                             nullptr, path);
    for (const auto& roots : FleetLists()) {
      if (!cache.GetOrBuild(roots).ok()) std::abort();
    }
    if (!cache.SaveCacheSnapshot().ok()) std::abort();
    static std::string kept = path;
    std::atexit([] {
      std::error_code ec;
      std::filesystem::remove_all(kept, ec);
    });
    return kept;
  }();
  return dir;
}

// The restart baseline: every list pays its full cold fixpoint.
void BM_SnapshotColdBuild(benchmark::State& state) {
  const schema::Schema& schema = SharedSchema();
  const auto lists = FleetLists();
  double facts = 0;
  for (auto _ : state) {
    core::ClosureCache cache(schema, core::ClosureOptions{}, 64);
    for (const auto& roots : lists) {
      auto entry = cache.GetOrBuild(roots);
      if (!entry.ok()) std::abort();
      facts += static_cast<double>(entry.value()->closure->fact_count());
      benchmark::DoNotOptimize(entry.value()->closure.get());
    }
    if (cache.stats().cold_builds != kLists) std::abort();
  }
  state.counters["lists"] = kLists;
  state.counters["facts_per_iter"] =
      facts / static_cast<double>(state.iterations());
}
BENCHMARK(BM_SnapshotColdBuild)->Unit(benchmark::kMillisecond);

// The restart with the snapshot tier armed: every list replays its
// persisted derivation log. Must beat BM_SnapshotColdBuild >= 3x.
void BM_SnapshotWarmStart(benchmark::State& state) {
  const schema::Schema& schema = SharedSchema();
  const std::string& dir = PopulatedSnapshotDir();
  const auto lists = FleetLists();
  double facts = 0;
  for (auto _ : state) {
    core::ClosureCache cache(schema, core::ClosureOptions{}, 64, nullptr,
                             dir);
    for (const auto& roots : lists) {
      auto entry = cache.GetOrBuild(roots);
      if (!entry.ok()) std::abort();
      facts += static_cast<double>(entry.value()->closure->fact_count());
      benchmark::DoNotOptimize(entry.value()->closure.get());
    }
    // Every list must have come off disk — zero fixpoints.
    if (cache.stats().snapshot_hits != kLists ||
        cache.stats().cold_builds != 0 || cache.stats().warm_builds != 0) {
      std::abort();
    }
  }
  state.counters["lists"] = kLists;
  state.counters["facts_per_iter"] =
      facts / static_cast<double>(state.iterations());
}
BENCHMARK(BM_SnapshotWarmStart)->Unit(benchmark::kMillisecond);

// Write-side cost: serialize, checksum, and atomically publish every
// resident entry (the nightly persist step).
void BM_SnapshotSave(benchmark::State& state) {
  const schema::Schema& schema = SharedSchema();
  const std::string& dir = PopulatedSnapshotDir();
  core::ClosureCache cache(schema, core::ClosureOptions{}, 64, nullptr, dir);
  for (const auto& roots : FleetLists()) {
    if (!cache.GetOrBuild(roots).ok()) std::abort();
  }
  for (auto _ : state) {
    if (!cache.SaveCacheSnapshot().ok()) std::abort();
  }
  state.counters["lists"] = kLists;
}
BENCHMARK(BM_SnapshotSave)->Unit(benchmark::kMillisecond);

// A pack holding the same fleet as PopulatedSnapshotDir, built once by
// migrating the directory (which also digest-verifies every entry).
const std::string& PopulatedPackFile() {
  static const std::string pack = [] {
    std::string path = common::StrCat(PopulatedSnapshotDir(), "/fleet.pack");
    auto stats = snapshot::MigrateDirectoryToPack(
        SharedSchema(), core::ClosureOptions{}, PopulatedSnapshotDir(), path);
    if (!stats.ok() || stats.value().migrated != kLists) std::abort();
    return path;
  }();
  return pack;
}

// Per-signature lookup through the directory store: open the snapshot
// file, validate the header ladder, replay the log.
void BM_DirectoryFind(benchmark::State& state) {
  const schema::Schema& schema = SharedSchema();
  auto store = snapshot::OpenDirectoryStore(PopulatedSnapshotDir());
  const auto lists = FleetLists();
  for (auto _ : state) {
    for (const auto& roots : lists) {
      auto entry = store->Find(schema, core::ClosureOptions{}, roots);
      if (!entry.ok() || !entry.value()->closure->warm_started()) std::abort();
      benchmark::DoNotOptimize(entry.value()->closure.get());
    }
  }
  state.counters["lists"] = kLists;
}
BENCHMARK(BM_DirectoryFind)->Unit(benchmark::kMillisecond);

// The same lookup through the packed store. The page cache is sized to
// one entry while the fleet cycles three signatures, so every find is a
// cache miss that pays the full in-place mmap replay — the honest
// apples-to-apples against BM_DirectoryFind (with the default capacity
// the steady state is an LRU hit and there is nothing left to measure).
void BM_PackedFind(benchmark::State& state) {
  const schema::Schema& schema = SharedSchema();
  auto opened = snapshot::OpenPackedStore(PopulatedPackFile(),
                                          /*page_cache_capacity=*/1);
  if (!opened.ok()) std::abort();
  auto store = std::move(opened).value();
  const auto lists = FleetLists();
  for (auto _ : state) {
    for (const auto& roots : lists) {
      auto entry = store->Find(schema, core::ClosureOptions{}, roots);
      if (!entry.ok() || !entry.value()->closure->warm_started()) std::abort();
      benchmark::DoNotOptimize(entry.value()->closure.get());
    }
  }
  state.counters["lists"] = kLists;
}
BENCHMARK(BM_PackedFind)->Unit(benchmark::kMillisecond);

// Steady-state retention pass over an all-live directory: stat and
// header-parse every file, remove nothing.
void BM_DirectorySweep(benchmark::State& state) {
  auto store = snapshot::OpenDirectoryStore(PopulatedSnapshotDir());
  const uint64_t live = snapshot::SchemaFingerprint(SharedSchema(),
                                                    core::ClosureOptions{});
  for (auto _ : state) {
    auto swept = store->Sweep(live);
    if (!swept.ok() || swept.value().records_swept != 0) std::abort();
    benchmark::DoNotOptimize(swept.value().records_kept);
  }
  state.counters["lists"] = kLists;
}
BENCHMARK(BM_DirectorySweep)->Unit(benchmark::kMicrosecond);

// The packed equivalent: walk the in-memory index, find nothing stale
// and no dead bytes, skip compaction.
void BM_PackedSweep(benchmark::State& state) {
  auto opened = snapshot::OpenPackedStore(PopulatedPackFile());
  if (!opened.ok()) std::abort();
  auto store = std::move(opened).value();
  const uint64_t live = snapshot::SchemaFingerprint(SharedSchema(),
                                                    core::ClosureOptions{});
  for (auto _ : state) {
    auto swept = store->Sweep(live);
    if (!swept.ok() || swept.value().records_swept != 0) std::abort();
    benchmark::DoNotOptimize(swept.value().records_kept);
  }
  state.counters["lists"] = kLists;
}
BENCHMARK(BM_PackedSweep)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
