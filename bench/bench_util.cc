#include "bench_util.h"

#include "core/closure.h"
#include "store/database.h"
#include "unfold/unfolded.h"

namespace oodbsec::bench {

std::array<AgreementCounts, 4> CompareAnalyzerWithOracle(uint32_t seed) {
  std::array<AgreementCounts, 4> counts{};

  // Small scope: 2 int attributes, 3 template functions, a capability
  // list of 2 functions + 1 attribute write, sequences up to length 2.
  RandomWorkload workload = MakeRandomWorkload(seed, 2, 3);
  const schema::Schema& schema = *workload.schema;
  std::mt19937 rng(seed ^ 0x9e3779b9u);

  std::vector<std::string> capabilities;
  {
    std::vector<std::string> pool = workload.function_names;
    std::shuffle(pool.begin(), pool.end(), rng);
    capabilities.assign(pool.begin(), pool.begin() + 2);
    capabilities.push_back(common::StrCat(
        "w_a", std::uniform_int_distribution<int>(0, 1)(rng)));
  }

  // The static side.
  schema::UserRegistry users(schema);
  if (!users.AddUser("u").ok()) std::abort();
  for (const std::string& cap : capabilities) {
    if (!users.Grant("u", cap).ok()) std::abort();
  }
  auto analysis = core::UserAnalysis::Build(schema, *users.Find("u"));
  if (!analysis.ok()) std::abort();
  const core::Closure& closure = analysis.value()->closure();
  const unfold::UnfoldedSet& set = analysis.value()->set();

  // The semantic side: one initial database with one object whose
  // attributes are seeded in {0, 1, 2}.
  std::vector<store::Database> dbs;
  {
    store::Database db(schema);
    auto oid = db.CreateObject("C");
    if (!oid.ok()) std::abort();
    for (const schema::AttributeDef& attr :
         schema.FindClass("C")->attributes()) {
      (void)db.WriteAttribute(
          *oid, attr.name,
          types::Value::Int(std::uniform_int_distribution<int>(0, 2)(rng)));
    }
    dbs.push_back(std::move(db));
  }
  // Inference domains are closed under the templates (two chained
  // writes of r+2 then *2+2 stay below 19); injection stays tiny.
  types::DomainMap inference_domains;
  inference_domains.Set(schema.pool().Int(),
                        types::Domain::IntRange(schema.pool().Int(), 0, 18));
  inference_domains.Set(schema.pool().Bool(),
                        types::Domain::Bools(schema.pool().Bool()));
  semantics::OracleOptions options;
  options.max_sequence_length = 2;
  types::DomainMap argument_domains;
  argument_domains.Set(schema.pool().Int(),
                       types::Domain::IntRange(schema.pool().Int(), 0, 2));
  argument_domains.Set(schema.pool().Bool(),
                       types::Domain::Bools(schema.pool().Bool()));
  options.argument_domains = std::move(argument_domains);
  semantics::Oracle oracle(schema, capabilities, std::move(dbs),
                           std::move(inference_domains), options);

  // Compare on every attribute-read occurrence of S(F).
  constexpr core::Capability kCaps[] = {
      core::Capability::kTotalInferability,
      core::Capability::kPartialInferability,
      core::Capability::kTotalAlterability,
      core::Capability::kPartialAlterability,
  };
  for (int id = 1; id <= set.node_count(); ++id) {
    if (set.node(id)->kind != unfold::NodeKind::kReadAttr) continue;
    semantics::Target target = semantics::Oracle::TargetFor(set, id);
    for (core::Capability cap : kCaps) {
      bool analyzer_says = false;
      switch (cap) {
        case core::Capability::kTotalInferability:
          analyzer_says = closure.HasTi(id);
          break;
        case core::Capability::kPartialInferability:
          analyzer_says = closure.HasPi(id);
          break;
        case core::Capability::kTotalAlterability:
          analyzer_says = closure.HasTa(id);
          break;
        case core::Capability::kPartialAlterability:
          analyzer_says = closure.HasPa(id);
          break;
      }
      auto oracle_says = oracle.Can(cap, target);
      if (!oracle_says.ok()) std::abort();
      AgreementCounts& bucket = counts[static_cast<size_t>(cap)];
      if (analyzer_says && oracle_says.value()) {
        ++bucket.both_yes;
      } else if (!analyzer_says && !oracle_says.value()) {
        ++bucket.both_no;
      } else if (analyzer_says) {
        ++bucket.analyzer_only;
      } else {
        ++bucket.oracle_only;
      }
    }
  }
  return counts;
}

}  // namespace oodbsec::bench
