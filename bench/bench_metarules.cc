// Experiment M1: the metarule engine (paper §4.1).
//
// Reports, per basic function in the default catalog: how many rules
// ship (core/basic_rules.cc), how many the metarule templates
// synthesize, and that every shipped rule passes its machine-checked
// condition. The timed section measures condition checking and
// synthesis over the sample domains.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "basicfun/metarules.h"
#include "core/basic_rules.h"

namespace {

using namespace oodbsec;

void PrintReport() {
  std::printf("=== M1: metarule validation and synthesis ===\n\n");
  types::TypePool pool;
  auto catalog = exec::BasicFunctionCatalog::MakeDefault(pool);
  types::DomainMap domains = basicfun::DefaultSampleDomains(pool);

  std::printf("%-26s %-9s %-13s %s\n", "function", "shipped",
              "synthesized", "all shipped validated?");
  int total_shipped = 0, total_synthesized = 0;
  for (const auto& fn : catalog->functions()) {
    auto engine = basicfun::MetaruleEngine::Create(*fn, domains);
    if (!engine.ok()) std::abort();
    const auto& shipped = core::RulesFor(*fn);
    auto synthesized = engine.value()->Synthesize();
    bool all_ok = true;
    for (const core::BasicRule& rule : shipped) {
      auto verdict = engine.value()->ValidateRule(rule);
      if (!verdict.ok() || !verdict.value()) all_ok = false;
    }
    std::printf("%-26s %-9zu %-13zu %s\n",
                fn->SignatureToString().c_str(), shipped.size(),
                synthesized.size(), all_ok ? "yes" : "NO");
    total_shipped += static_cast<int>(shipped.size());
    total_synthesized += static_cast<int>(synthesized.size());
  }
  std::printf("\ntotals: %d shipped rules, %d synthesized rules\n\n",
              total_shipped, total_synthesized);
}

void BM_ValidateCatalog(benchmark::State& state) {
  types::TypePool pool;
  auto catalog = exec::BasicFunctionCatalog::MakeDefault(pool);
  types::DomainMap domains = basicfun::DefaultSampleDomains(pool);
  for (auto _ : state) {
    int validated = 0;
    for (const auto& fn : catalog->functions()) {
      auto engine = basicfun::MetaruleEngine::Create(*fn, domains);
      if (!engine.ok()) std::abort();
      for (const core::BasicRule& rule : core::RulesFor(*fn)) {
        auto verdict = engine.value()->ValidateRule(rule);
        if (verdict.ok() && verdict.value()) ++validated;
      }
    }
    benchmark::DoNotOptimize(validated);
  }
}
BENCHMARK(BM_ValidateCatalog)->Unit(benchmark::kMillisecond);

void BM_SynthesizeCatalog(benchmark::State& state) {
  types::TypePool pool;
  auto catalog = exec::BasicFunctionCatalog::MakeDefault(pool);
  types::DomainMap domains = basicfun::DefaultSampleDomains(pool);
  for (auto _ : state) {
    size_t rules = 0;
    for (const auto& fn : catalog->functions()) {
      auto engine = basicfun::MetaruleEngine::Create(*fn, domains);
      if (!engine.ok()) std::abort();
      rules += engine.value()->Synthesize().size();
    }
    benchmark::DoNotOptimize(rules);
  }
}
BENCHMARK(BM_SynthesizeCatalog)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
