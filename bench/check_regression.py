#!/usr/bin/env python3
"""Benchmark regression gate.

Compares a fresh google-benchmark JSON run against the committed
BENCH_*.json baselines and fails when any benchmark's real_time
regressed by more than the threshold (default 15%).

Usage:
    bench/check_regression.py --fresh-dir <dir> [--baseline-dir <dir>]
                              [--threshold-pct 15] [--strict] [SUITE ...]

SUITE names are the bare suite part (static_closure, batch_service);
without any, every BENCH_*.json in the baseline dir that also exists in
the fresh dir is compared. Benchmarks present on only one side are
reported but never fail the gate (new benchmarks land before their
baseline does); aggregate rows (mean/median/stddev) are ignored, and
benchmarks whose baseline runs under --floor-ms (default 1ms) are
reported but never gated — at sub-millisecond durations scheduler
jitter alone exceeds any percentage threshold.

On shared machines the *effective* CPU speed drifts between measurement
windows (neighbours, frequency scaling), shifting every benchmark in a
run by the same factor. The gate therefore normalizes each suite by the
median fresh/baseline ratio before applying the threshold: uniform
drift cancels, while a genuine code regression stands out against the
rest of the suite. The printed table shows both the raw delta and the
drift-corrected one; a change that slows the *whole* suite uniformly is
exactly what the raw column is there to catch by eye. Pass
--no-drift-correction on dedicated quiet hardware.

On such quiet hardware the drift correction is not just unnecessary, it
actively masks uniform regressions, and 15% is too forgiving. --strict
gates on raw deltas at a 10% threshold; setting OODBSEC_QUIET_BENCH=1
in the environment implies --strict, so CI runners on dedicated
machines opt the whole bench_check target in without touching CMake.
An explicit --threshold-pct still wins over the strict default.

The committed baselines and the fresh run must both come from Release
builds (run_bench_json.sh enforces this) and ideally the same machine —
across machines the gate still catches gross regressions but the
threshold has to absorb hardware variance.
"""

import argparse
import json
import os
import pathlib
import statistics
import sys

STRICT_THRESHOLD_PCT = 10.0


def load_results(path):
    """Returns {benchmark name: real_time in ns} for one JSON report.

    With --benchmark_repetitions the report carries one row per
    repetition under the same name; the minimum is kept — scheduling
    noise on a shared machine only ever adds time, so min-of-reps is the
    noise-robust estimate of the true cost.
    """
    with open(path) as fp:
        report = json.load(fp)
    results = {}
    for bench in report.get("benchmarks", []):
        # Skip repetition aggregates; compare the raw iterations rows.
        if bench.get("run_type") == "aggregate":
            continue
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        ns = bench["real_time"] * scale
        results[bench["name"]] = min(results.get(bench["name"], ns), ns)
    return results


def compare(name, baseline, fresh, threshold_pct, floor_ms, drift_correct):
    """Prints a per-benchmark table; returns the list of regressions."""
    shared = [n for n in baseline if n in fresh and baseline[n] > 0]
    drift = 1.0
    if drift_correct and shared:
        drift = statistics.median(fresh[n] / baseline[n] for n in shared)
    regressions = []
    width = max((len(n) for n in baseline), default=20)
    print(f"== {name} (run-wide drift {100.0 * (drift - 1.0):+.1f}%)")
    for bench_name in sorted(baseline):
        if bench_name not in fresh:
            print(f"   {bench_name:<{width}}  (missing from fresh run)")
            continue
        base_ns = baseline[bench_name]
        fresh_ns = fresh[bench_name]
        delta_pct = ((fresh_ns - base_ns) / base_ns) * 100.0 if base_ns else 0.0
        corrected_pct = (
            ((fresh_ns / drift - base_ns) / base_ns) * 100.0 if base_ns else 0.0
        )
        flag = ""
        if corrected_pct > threshold_pct:
            if base_ns < floor_ms * 1e6:
                # Sub-floor benchmarks carry absolute jitter larger than
                # any percentage threshold; report, don't gate.
                flag = "  (over threshold, below gating floor)"
            else:
                flag = f"  REGRESSION (> {threshold_pct:g}%)"
                regressions.append((bench_name, corrected_pct))
        print(
            f"   {bench_name:<{width}}  {base_ns / 1e6:10.3f}ms"
            f" -> {fresh_ns / 1e6:10.3f}ms  raw {delta_pct:+7.1f}%"
            f"  corrected {corrected_pct:+7.1f}%{flag}"
        )
    for bench_name in sorted(set(fresh) - set(baseline)):
        print(f"   {bench_name:<{width}}  (new; no baseline yet)")
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("suites", nargs="*", help="suite names, e.g. static_closure")
    parser.add_argument("--baseline-dir", default=".", type=pathlib.Path)
    parser.add_argument("--fresh-dir", required=True, type=pathlib.Path)
    parser.add_argument("--threshold-pct", default=None, type=float)
    parser.add_argument(
        "--floor-ms",
        default=1.0,
        type=float,
        help="benchmarks whose baseline is below this are never gated",
    )
    parser.add_argument(
        "--no-drift-correction",
        action="store_true",
        help="gate on raw deltas without median drift normalization",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="quiet-hardware gate: raw deltas, 10%% threshold "
        "(implied by OODBSEC_QUIET_BENCH=1 in the environment)",
    )
    args = parser.parse_args()

    strict = args.strict or os.environ.get("OODBSEC_QUIET_BENCH") == "1"
    if strict:
        args.no_drift_correction = True
    if args.threshold_pct is None:
        args.threshold_pct = STRICT_THRESHOLD_PCT if strict else 15.0
    if strict:
        print(
            "strict mode: raw deltas, "
            f"threshold {args.threshold_pct:g}% (quiet hardware)"
        )

    if args.suites:
        baselines = [args.baseline_dir / f"BENCH_{s}.json" for s in args.suites]
    else:
        baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no BENCH_*.json baselines under {args.baseline_dir}")
        return 2

    all_regressions = []
    for baseline_path in baselines:
        fresh_path = args.fresh_dir / baseline_path.name
        if not baseline_path.exists():
            print(f"error: baseline {baseline_path} does not exist")
            return 2
        if not fresh_path.exists():
            print(f"== {baseline_path.name}: no fresh run at {fresh_path}, skipped")
            continue
        all_regressions += compare(
            baseline_path.name,
            load_results(baseline_path),
            load_results(fresh_path),
            args.threshold_pct,
            args.floor_ms,
            not args.no_drift_correction,
        )

    if all_regressions:
        print(f"\nFAIL: {len(all_regressions)} benchmark(s) regressed:")
        for bench_name, delta_pct in all_regressions:
            print(f"  {bench_name}: {delta_pct:+.1f}%")
        return 1
    print("\nOK: no benchmark regressed beyond the threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
