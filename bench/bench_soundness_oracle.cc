// Experiment S1: empirical soundness of A(R) (paper Theorem 1).
//
// Across randomized workloads, whenever the small-scope oracle confirms
// a capability is genuinely achievable (Definitions 2-5, decided exactly
// within the bound), the static closure must have derived it. Soundness
// violations ("oracle-only") must be ZERO; "analyzer-only" cases are the
// pessimism quantified in S2.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace {

using namespace oodbsec;

constexpr uint32_t kSeeds[] = {1, 2, 3, 5, 8, 13, 21, 34, 55, 89};

void PrintReport() {
  std::printf("=== S1: soundness of the static analyzer vs oracle ===\n\n");
  std::array<bench::AgreementCounts, 4> totals{};
  for (uint32_t seed : kSeeds) {
    auto counts = bench::CompareAnalyzerWithOracle(seed);
    for (size_t i = 0; i < 4; ++i) totals[i].Merge(counts[i]);
  }
  const char* names[] = {"ti", "pi", "ta", "pa"};
  std::printf("%-4s %-10s %-10s %-16s %-22s\n", "cap", "both-yes",
              "both-no", "analyzer-only", "oracle-only (=violation)");
  int violations = 0;
  for (size_t i = 0; i < 4; ++i) {
    std::printf("%-4s %-10d %-10d %-16d %-22d\n", names[i],
                totals[i].both_yes, totals[i].both_no,
                totals[i].analyzer_only, totals[i].oracle_only);
    violations += totals[i].oracle_only;
  }
  std::printf("\nsoundness verdict over %d comparisons: %s\n\n",
              totals[0].total() * 4,
              violations == 0 ? "HOLDS (0 missed capabilities)"
                              : "VIOLATED");
  if (violations != 0) std::abort();
}

void BM_OneSoundnessTrial(benchmark::State& state) {
  uint32_t seed = 1;
  for (auto _ : state) {
    auto counts = bench::CompareAnalyzerWithOracle(seed++);
    benchmark::DoNotOptimize(counts);
  }
}
BENCHMARK(BM_OneSoundnessTrial)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
