// Experiment S2: quantify the analyzer's pessimism (§4.1: "the
// algorithm shown in this paper is quite pessimistic"; §5).
//
// Over the randomized corpus of S1, the false-positive rate per
// capability = analyzer-only / analyzer-flagged. Expected shape: the
// rate is zero or small for pi (partial leaks are almost always real),
// and concentrated on pa/ti where the analyzer credits the user with
// object-choice perturbation and probing that the small scope cannot
// realize.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace {

using namespace oodbsec;

void PrintReport() {
  std::printf("=== S2: pessimism (false-positive rate) ===\n\n");
  std::array<bench::AgreementCounts, 4> totals{};
  for (uint32_t seed = 100; seed < 140; ++seed) {
    auto counts = bench::CompareAnalyzerWithOracle(seed);
    for (size_t i = 0; i < 4; ++i) totals[i].Merge(counts[i]);
  }
  const char* names[] = {"ti", "pi", "ta", "pa"};
  std::printf("%-4s %-10s %-14s %-18s %s\n", "cap", "flagged",
              "confirmed", "unconfirmed", "pessimism-rate");
  for (size_t i = 0; i < 4; ++i) {
    int flagged = totals[i].both_yes + totals[i].analyzer_only;
    double rate = flagged == 0
                      ? 0.0
                      : 100.0 * totals[i].analyzer_only / flagged;
    std::printf("%-4s %-10d %-14d %-18d %.1f%%\n", names[i], flagged,
                totals[i].both_yes, totals[i].analyzer_only, rate);
  }
  std::printf(
      "\n(\"unconfirmed\" = flagged statically but unrealizable within the\n"
      "oracle's bound: 1 object, 1 database, sequences <= 2. An upper\n"
      "bound on the true false-positive rate.)\n\n");
}

void BM_PessimismTrial(benchmark::State& state) {
  uint32_t seed = 100;
  for (auto _ : state) {
    auto counts = bench::CompareAnalyzerWithOracle(seed++);
    benchmark::DoNotOptimize(counts);
  }
}
BENCHMARK(BM_PessimismTrial)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
