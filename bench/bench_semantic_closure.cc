// Experiment T1: the semantic inference system I(E) (paper Table 1).
//
// The report shows the user's knowledge shrinking as probes accumulate:
// for the stockbroker example, the candidate set that I(E) derives for
// the hidden salary after executing sequences with 0, 1, 2, 3 probe
// pairs (w_budget; checkBudget). Exactly the "repeatedly changing the
// budget" narrative, now on the semantic side. The timed section
// measures I(E) solving as the int domain grows.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "semantics/execution.h"
#include "semantics/inference.h"
#include "store/database.h"

namespace {

using namespace oodbsec;
using types::Value;

struct Setup {
  std::unique_ptr<schema::Schema> schema;
  store::Database db;
  types::Oid broker;

  explicit Setup(int64_t salary)
      : schema(bench::BrokerSchema()), db(*schema) {
    auto oid = db.CreateObject("Broker");
    if (!oid.ok()) std::abort();
    broker = *oid;
    (void)db.WriteAttribute(broker, "salary", Value::Int(salary));
    (void)db.WriteAttribute(broker, "budget", Value::Int(0));
  }
};

types::DomainMap Domains(const schema::Schema& schema,
                         const store::Database& db, int64_t max_int) {
  types::DomainMap domains;
  domains.Set(schema.pool().Int(),
              types::Domain::IntRange(schema.pool().Int(), 0, max_int));
  domains.Set(schema.pool().Bool(),
              types::Domain::Bools(schema.pool().Bool()));
  for (const auto& cls : schema.classes()) {
    domains.Set(cls->type(),
                types::Domain::Objects(cls->type(), db.Extent(cls->name())));
  }
  return domains;
}

// Runs `probes` (budget value per probe) against a fresh database and
// returns the size of I(E)'s candidate set for the salary read in the
// FIRST checkBudget (occurrence base+5).
size_t SalaryCandidates(const std::vector<int64_t>& probes, int64_t salary,
                        int64_t max_int) {
  Setup setup(salary);
  std::vector<std::string> names;
  std::vector<types::ValueSet> args;
  for (int64_t probe : probes) {
    names.push_back("w_budget");
    args.push_back({Value::Object(setup.broker), Value::Int(probe)});
    names.push_back("checkBudget");
    args.push_back({Value::Object(setup.broker)});
  }
  if (names.empty()) {
    names.push_back("checkBudget");
    args.push_back({Value::Object(setup.broker)});
  }
  auto set = unfold::UnfoldedSet::Build(*setup.schema, names);
  if (!set.ok()) std::abort();
  auto execution = semantics::Execute(*set.value(), setup.db, args);
  if (!execution.ok()) std::abort();
  auto inference = semantics::SemanticInference::Build(
      *set.value(), *execution, Domains(*setup.schema, setup.db, max_int));
  if (!inference.ok()) std::abort();
  // The salary read of the first checkBudget root: local occurrence 5
  // within checkBudget (after any preceding w_budget's 3 occurrences).
  int base = probes.empty() ? 0 : 3;
  return inference.value()->InferredSet(base + 5).size();
}

void PrintReport() {
  std::printf("=== T1: I(E) — knowledge vs number of probes ===\n\n");
  const int64_t salary = 3;  // hidden value
  // The domain must be closed under the workload's arithmetic
  // (10 * salary <= 10 * 20), or I(E) would over-infer.
  const int64_t max_int = 200;
  std::printf("hidden salary = %lld, int domain = [0, %lld]\n\n",
              static_cast<long long>(salary),
              static_cast<long long>(max_int));
  std::printf("%-28s %s\n", "probe budgets issued",
              "salary candidates left");
  struct Row {
    std::vector<int64_t> probes;
    const char* label;
  };
  Row rows[] = {
      {{}, "(none: observe once)"},
      {{10}, "{10}"},
      {{10, 20}, "{10, 20}"},
      {{20, 30}, "{20, 30}  (brackets it)"},
      {{30, 29}, "{30, 29}  (pins it)"},
  };
  for (const Row& row : rows) {
    std::printf("%-28s %zu\n", row.label,
                SalaryCandidates(row.probes, salary, max_int));
  }
  std::printf(
      "\n(Each probe pair adds one inequality budget >= 10*salary; two\n"
      "well-chosen probes around the threshold pin the salary exactly.\n"
      "The finite domain caps candidates at domain/10 = 20 upfront:\n"
      "10*salary must itself fit in the domain.)\n\n");
}

void BM_SemanticInference(benchmark::State& state) {
  int64_t max_int = state.range(0);
  for (auto _ : state) {
    size_t candidates = SalaryCandidates({10, 20}, 3, max_int);
    benchmark::DoNotOptimize(candidates);
  }
  state.counters["domain"] = static_cast<double>(max_int + 1);
}
BENCHMARK(BM_SemanticInference)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
