// Experiments X1/X2: realize the paper's two §3.1 flaws against a live
// database and characterize the attack cost.
//
// X1 (inference): the clerk extracts the exact salary with the
// w_budget/checkBudget probing attack; the probe count grows as
// log2(search range), matching the "repeatedly changing the budget"
// narrative. X2 (alteration): the updater forges arbitrary salaries
// through updateSalary. The timed section measures probes/second
// through the full query stack.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "attack/attacks.h"
#include "text/workspace.h"

namespace {

using namespace oodbsec;

constexpr const char* kWorkspaceTemplate = R"(
class Broker { name: string; salary: int; budget: int; profit: int; }
function checkBudget(broker: Broker): bool =
  r_budget(broker) >= 10 * r_salary(broker);
function calcSalary(budget: int, profit: int): int =
  budget / 10 + profit / 2;
function updateSalary(broker: Broker): null =
  w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)));
user clerk can checkBudget, w_budget, r_name;
user updater can updateSalary, w_budget, w_profit, r_name;
object Broker { name = "John", salary = 57, budget = 400, profit = 30 }
)";

text::Workspace LoadOrDie() {
  auto workspace = text::LoadWorkspace(kWorkspaceTemplate);
  if (!workspace.ok()) std::abort();
  return std::move(workspace).value();
}

void PrintReport() {
  std::printf("=== X1: probing attack cost vs search range ===\n\n");
  std::printf("%-14s %-10s %-10s %s\n", "range", "probes", "~2+log2",
              "extracted salary");
  for (int64_t range : {1000, 10000, 100000, 1000000, 10000000}) {
    text::Workspace workspace = LoadOrDie();
    attack::BinarySearchConfig config;
    config.class_name = "Broker";
    config.select_attr = "name";
    config.select_value = types::Value::String("John");
    config.write_fn = "w_budget";
    config.compare_fn = "checkBudget";
    config.factor = 10;
    config.hi = range;
    auto transcript = attack::ExtractHiddenValue(
        *workspace.database, *workspace.users->Find("clerk"), config);
    if (!transcript.ok()) {
      std::printf("%-14lld attack failed: %s\n",
                  static_cast<long long>(range),
                  transcript.status().ToString().c_str());
      continue;
    }
    std::printf("%-14lld %-10d %-10.1f %s\n", static_cast<long long>(range),
                transcript->probes, 2 + std::log2(static_cast<double>(range)),
                transcript->inferred.ToString().c_str());
  }

  std::printf("\n=== X2: forging the audited salary write ===\n\n");
  std::printf("%-12s %-12s %s\n", "target", "written", "forged?");
  for (int64_t target : {0, 1, 999, 54321}) {
    text::Workspace workspace = LoadOrDie();
    attack::ForgeConfig config;
    config.class_name = "Broker";
    config.select_attr = "name";
    config.select_value = types::Value::String("John");
    config.setup_writes = {{"w_profit", types::Value::Int(0)},
                           {"w_budget", types::Value::Int(target * 10)}};
    config.trigger_fn = "updateSalary";
    auto transcript = attack::ForgeWrittenValue(
        *workspace.database, *workspace.users->Find("updater"), config);
    types::Oid john = workspace.database->Extent("Broker")[0];
    auto salary = workspace.database->ReadAttribute(john, "salary");
    bool hit = transcript.ok() && salary.ok() &&
               salary.value() == types::Value::Int(target);
    std::printf("%-12lld %-12s %s\n", static_cast<long long>(target),
                salary.ok() ? salary.value().ToString().c_str() : "?",
                hit ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_ProbeQueryThroughput(benchmark::State& state) {
  text::Workspace workspace = LoadOrDie();
  const schema::User* clerk = workspace.users->Find("clerk");
  attack::BinarySearchConfig config;
  config.class_name = "Broker";
  config.select_attr = "name";
  config.select_value = types::Value::String("John");
  config.write_fn = "w_budget";
  config.compare_fn = "checkBudget";
  config.factor = 10;
  config.hi = 10000;
  int64_t probes = 0;
  for (auto _ : state) {
    auto transcript =
        attack::ExtractHiddenValue(*workspace.database, *clerk, config);
    if (!transcript.ok()) std::abort();
    probes += transcript->probes;
  }
  state.counters["probes/s"] = benchmark::Counter(
      static_cast<double>(probes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ProbeQueryThroughput);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
