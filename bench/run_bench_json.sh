#!/usr/bin/env bash
# JSON reporter wrapper: runs benchmark binaries under google-benchmark's
# JSON writer, producing BENCH_<suite>.json (suite = binary name without
# the bench_ prefix). Console output (including the experiment report
# preambles some binaries print) stays on stdout; the JSON file carries
# only the machine-readable results.
#
#   bench/run_bench_json.sh                       # every bench_* binary
#   bench/run_bench_json.sh bench_static_closure  # just the named ones
#
# Suites with an instrumented pass (bench_static_closure,
# bench_batch_service) also drop a TRACE_<suite>.jsonl next to their
# BENCH_ file: JSON-lines spans with the per-phase time breakdown
# (unfold / seed / fixpoint rounds / compress; batch plan / build /
# check) plus every metric counter. The timed loops themselves always
# run untraced.
#
# Committed BENCH_*.json files are measurement artifacts, so the script
# refuses to run from anything but a Release build tree — a debug or
# RelWithDebInfo number silently poisons every later regression compare.
# The default build tree is a dedicated build-release/; configure it with
#
#   cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
#   cmake --build build-release -j
#
# Environment:
#   BUILD_DIR   Release build tree with bench/ binaries (default: build-release)
#   OUT_DIR     where BENCH_*.json / TRACE_*.jsonl land (default: repo root)
#   BENCH_ARGS  extra benchmark flags, e.g. --benchmark_min_time=0.01
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-release}"
OUT_DIR="${OUT_DIR:-.}"

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  echo "error: $BUILD_DIR is not a configured build tree." >&2
  echo "  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release" >&2
  echo "  cmake --build build-release -j" >&2
  exit 1
fi
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt")"
if [ "$build_type" != "Release" ]; then
  echo "error: $BUILD_DIR is a '${build_type:-<unset>}' build;" \
       "benchmark numbers must come from Release." >&2
  echo "  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
# Instrumented suites read this to place their phase traces.
export OODBSEC_TRACE_DIR="$OUT_DIR"

if [ "$#" -gt 0 ]; then
  binaries=("$@")
else
  binaries=()
  for bin in "$BUILD_DIR"/bench/bench_*; do
    [ -x "$bin" ] && [ ! -d "$bin" ] && binaries+=("$(basename "$bin")")
  done
fi

for name in "${binaries[@]}"; do
  bin="$BUILD_DIR/bench/$name"
  if [ ! -x "$bin" ]; then
    echo "error: $bin not found or not executable (build first?)" >&2
    exit 1
  fi
  out="$OUT_DIR/BENCH_${name#bench_}.json"
  echo "== $name -> $out"
  # shellcheck disable=SC2086  # BENCH_ARGS is intentionally word-split
  "$bin" --benchmark_out="$out" --benchmark_out_format=json ${BENCH_ARGS:-}
done
