// Experiment T2: Table 2 in action — which axioms and rules the F(F)
// closure actually fires, counted over the paper's workloads. Together
// with tests/core_test.cc (per-rule unit coverage) this reproduces
// Table 2 as an executable artifact. The timed section measures the
// closure over the combined broker capability list.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/closure.h"
#include "unfold/unfolded.h"

namespace {

using namespace oodbsec;

void PrintReport() {
  std::printf("=== T2: rule firings over the stockbroker workloads ===\n\n");
  auto schema = bench::BrokerSchema();
  auto set = unfold::UnfoldedSet::Build(
      *schema,
      {"checkBudget", "updateSalary", "w_budget", "w_profit", "r_name"});
  if (!set.ok()) std::abort();
  core::Closure closure(*set.value());

  // Group rule labels: basic-function rules by "<op>: ...", the rest
  // verbatim.
  std::map<std::string, int> firings;
  for (const core::DerivationStep& step : closure.steps()) {
    ++firings[std::string(step.rule)];
  }
  std::printf("%-58s %s\n", "axiom / rule", "facts");
  for (const auto& [rule, count] : firings) {
    std::printf("%-58s %d\n", rule.c_str(), count);
  }
  std::printf("\ntotal: %zu facts over %d occurrences\n\n",
              closure.fact_count(), set.value()->node_count());
}

void BM_CombinedBrokerClosure(benchmark::State& state) {
  auto schema = bench::BrokerSchema();
  auto set = unfold::UnfoldedSet::Build(
      *schema,
      {"checkBudget", "updateSalary", "w_budget", "w_profit", "r_name"});
  if (!set.ok()) std::abort();
  for (auto _ : state) {
    core::Closure closure(*set.value());
    benchmark::DoNotOptimize(closure.fact_count());
  }
}
BENCHMARK(BM_CombinedBrokerClosure)->Unit(benchmark::kMillisecond);

// Scaled workload: `scale` broker "departments" on one shared class —
// each department has its own salary/budget/profit attributes and its
// own checkBudget/calcSalary/updateSalary family, all granted together
// with the matching write capabilities. Because every function takes
// the shared Broker argument type, the departments interact through the
// same-type argument equality axiom, which is what a production
// capability list looks like: many functions over one schema, all
// touching the same object universe.
struct ScaledWorkload {
  std::unique_ptr<schema::Schema> schema;
  std::vector<std::string> roots;  // r_name + 4 functions per department
};

ScaledWorkload MakeScaledBroker(int scale) {
  schema::SchemaBuilder builder;
  std::vector<schema::SchemaBuilder::AttributeSpec> attributes;
  attributes.push_back({"name", "string"});
  for (int i = 0; i < scale; ++i) {
    attributes.push_back({common::StrCat("salary", i), "int"});
    attributes.push_back({common::StrCat("budget", i), "int"});
    attributes.push_back({common::StrCat("profit", i), "int"});
  }
  builder.AddClass("Broker", std::move(attributes));
  std::vector<std::string> roots = {"r_name"};
  for (int i = 0; i < scale; ++i) {
    builder.AddFunction(
        common::StrCat("checkBudget", i), {{"broker", "Broker"}}, "bool",
        common::StrCat("r_budget", i, "(broker) >= 10 * r_salary", i,
                       "(broker)"));
    builder.AddFunction(common::StrCat("calcSalary", i),
                        {{"budget", "int"}, {"profit", "int"}}, "int",
                        "budget / 10 + profit / 2");
    builder.AddFunction(
        common::StrCat("updateSalary", i), {{"broker", "Broker"}}, "null",
        common::StrCat("w_salary", i, "(broker, calcSalary", i, "(r_budget",
                       i, "(broker), r_profit", i, "(broker)))"));
    roots.push_back(common::StrCat("checkBudget", i));
    roots.push_back(common::StrCat("updateSalary", i));
    roots.push_back(common::StrCat("w_budget", i));
    roots.push_back(common::StrCat("w_profit", i));
  }
  auto built = std::move(builder).Build();
  if (!built.ok()) std::abort();
  return {std::move(built).value(), std::move(roots)};
}

void BM_ScaledBrokerClosure(benchmark::State& state) {
  ScaledWorkload workload = MakeScaledBroker(static_cast<int>(state.range(0)));
  auto set = unfold::UnfoldedSet::Build(*workload.schema, workload.roots);
  if (!set.ok()) std::abort();
  size_t facts = 0;
  for (auto _ : state) {
    core::Closure closure(*set.value());
    facts = closure.fact_count();
    benchmark::DoNotOptimize(facts);
  }
  state.counters["occurrences"] =
      static_cast<double>(set.value()->node_count());
  state.counters["facts"] = static_cast<double>(facts);
}
BENCHMARK(BM_ScaledBrokerClosure)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// Thread sweep over the parallel fixpoint engine on the largest scaled
// shape (scale 16, BM_ScaledBrokerClosure's heaviest case). Arg is
// closure_threads; Arg(1) is the sequential engine and doubles as the
// regression guard for the single-threaded path. The derivation log is
// byte-identical at every point of the sweep (tests/
// parallel_closure_test.cc), so this measures pure engine speedup.
void BM_ParallelClosure(benchmark::State& state) {
  ScaledWorkload workload = MakeScaledBroker(16);
  auto set = unfold::UnfoldedSet::Build(*workload.schema, workload.roots);
  if (!set.ok()) std::abort();
  core::ClosureOptions options;
  options.closure_threads = static_cast<int>(state.range(0));
  size_t facts = 0;
  for (auto _ : state) {
    core::Closure closure(*set.value(), options);
    facts = closure.fact_count();
    benchmark::DoNotOptimize(facts);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["facts"] = static_cast<double>(facts);
}
BENCHMARK(BM_ParallelClosure)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Warm-start reuse: the request's capability list shares all but one
// department with an already-closed base (at scale 8 the base covers
// 29/33 roots, ~88%). The base closure is built once outside the timed
// loop — the paper's nightly-re-audit shape, where the cached role
// bundle already exists — and each iteration replays its derivation log
// and derives only the missing department's delta. Compare against
// BM_ScaledBrokerClosure at the same scale (identical schema and root
// list, cold) for the speedup; the acceptance bar is >= 3x when >= 80%
// of the list is shared.
void BM_WarmStartClosure(benchmark::State& state) {
  int scale = static_cast<int>(state.range(0));
  ScaledWorkload workload = MakeScaledBroker(scale);
  // Base: everything except the last department's four functions.
  std::vector<std::string> base_roots(workload.roots.begin(),
                                      workload.roots.end() - 4);
  auto base_set = unfold::UnfoldedSet::Build(*workload.schema, base_roots);
  auto full_set = unfold::UnfoldedSet::Build(*workload.schema, workload.roots);
  if (!base_set.ok() || !full_set.ok()) std::abort();
  core::Closure base(*base_set.value());
  size_t facts = 0;
  size_t replayed = 0;
  for (auto _ : state) {
    core::Closure warm(*full_set.value(), {}, nullptr, &base);
    if (!warm.warm_started()) std::abort();
    facts = warm.fact_count();
    replayed = warm.replayed_fact_count();
    benchmark::DoNotOptimize(facts);
  }
  state.counters["facts"] = static_cast<double>(facts);
  state.counters["replayed_facts"] = static_cast<double>(replayed);
  state.counters["shared_roots_pct"] =
      100.0 * static_cast<double>(base_roots.size()) /
      static_cast<double>(workload.roots.size());
}
BENCHMARK(BM_WarmStartClosure)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// Incremental grant: the session re-audit shape — one function was just
// granted, so the base shares all roots but one (32/33 at scale 8,
// ~97%). The delta a single grant contributes is small, so this is the
// best case for warm-start reuse.
void BM_IncrementalGrant(benchmark::State& state) {
  int scale = static_cast<int>(state.range(0));
  ScaledWorkload workload = MakeScaledBroker(scale);
  std::vector<std::string> base_roots(workload.roots.begin(),
                                      workload.roots.end() - 1);
  auto base_set = unfold::UnfoldedSet::Build(*workload.schema, base_roots);
  auto full_set = unfold::UnfoldedSet::Build(*workload.schema, workload.roots);
  if (!base_set.ok() || !full_set.ok()) std::abort();
  core::Closure base(*base_set.value());
  size_t facts = 0;
  for (auto _ : state) {
    core::Closure warm(*full_set.value(), {}, nullptr, &base);
    if (!warm.warm_started()) std::abort();
    facts = warm.fact_count();
    benchmark::DoNotOptimize(facts);
  }
  state.counters["facts"] = static_cast<double>(facts);
  state.counters["new_facts"] =
      static_cast<double>(facts) - static_cast<double>(base.fact_count());
}
BENCHMARK(BM_IncrementalGrant)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// Incremental revoke: one department's four functions are withdrawn
// from an already-closed list (29/33 roots survive at scale 8, ~88%
// overlap). The full closure is built once outside the timed loop —
// the cached state a revocation finds — and each iteration runs the
// DRed retraction: over-delete the revoked cone from the derivation
// log, replay the survivors, re-derive alternate support. Compare with
// BM_RevokeSubsetFallback at the same scale (identical schema and
// surviving root list, built cold): the acceptance bar is >= 3x when
// >= 80% of the list is shared.
void BM_IncrementalRevoke(benchmark::State& state) {
  int scale = static_cast<int>(state.range(0));
  ScaledWorkload workload = MakeScaledBroker(scale);
  std::vector<std::string> reduced_roots(workload.roots.begin(),
                                         workload.roots.end() - 4);
  auto full_set = unfold::UnfoldedSet::Build(*workload.schema, workload.roots);
  auto reduced_set =
      unfold::UnfoldedSet::Build(*workload.schema, reduced_roots);
  if (!full_set.ok() || !reduced_set.ok()) std::abort();
  core::Closure base(*full_set.value());
  size_t facts = 0;
  size_t cone = 0;
  size_t rederived = 0;
  for (auto _ : state) {
    std::unique_ptr<core::Closure> shrunk =
        core::Closure::Retract(*reduced_set.value(), {}, nullptr, base);
    if (shrunk == nullptr) std::abort();
    facts = shrunk->fact_count();
    cone = shrunk->retracted_fact_count();
    rederived = shrunk->rederived_fact_count();
    benchmark::DoNotOptimize(facts);
  }
  state.counters["facts"] = static_cast<double>(facts);
  state.counters["cone_facts"] = static_cast<double>(cone);
  state.counters["rederived_facts"] = static_cast<double>(rederived);
  state.counters["shared_roots_pct"] =
      100.0 * static_cast<double>(reduced_roots.size()) /
      static_cast<double>(workload.roots.size());
}
BENCHMARK(BM_IncrementalRevoke)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// The revoke baseline: without a retraction path, serving the reduced
// list means a cold fixpoint over the surviving roots (a warm start is
// no help — the cached closure is a *superset*, and warm replay only
// works from a subset base). Identical schema and root list to
// BM_IncrementalRevoke's result.
void BM_RevokeSubsetFallback(benchmark::State& state) {
  int scale = static_cast<int>(state.range(0));
  ScaledWorkload workload = MakeScaledBroker(scale);
  std::vector<std::string> reduced_roots(workload.roots.begin(),
                                         workload.roots.end() - 4);
  auto reduced_set =
      unfold::UnfoldedSet::Build(*workload.schema, reduced_roots);
  if (!reduced_set.ok()) std::abort();
  size_t facts = 0;
  for (auto _ : state) {
    core::Closure cold(*reduced_set.value());
    facts = cold.fact_count();
    benchmark::DoNotOptimize(facts);
  }
  state.counters["facts"] = static_cast<double>(facts);
}
BENCHMARK(BM_RevokeSubsetFallback)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// One instrumented run after the timed loops: unfold + closure over the
// combined broker list with the tracer armed, dumped as
// TRACE_static_closure.jsonl when OODBSEC_TRACE_DIR is set. The phase
// spans (closure.seed, closure.fixpoint and its rounds,
// closure.compress) give the per-phase breakdown the timed aggregate
// hides.
void DumpPhaseTrace() {
  obs::Observability obs;
  obs.tracer.set_enabled(true);
  auto schema = bench::BrokerSchema();
  auto set = unfold::UnfoldedSet::Build(
      *schema,
      {"checkBudget", "updateSalary", "w_budget", "w_profit", "r_name"},
      &obs);
  if (!set.ok()) std::abort();
  core::Closure closure(*set.value(), {}, &obs);
  benchmark::DoNotOptimize(closure.fact_count());
  bench::DumpTraceIfRequested(obs, "static_closure");
}

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  DumpPhaseTrace();
  return 0;
}
