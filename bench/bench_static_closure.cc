// Experiment T2: Table 2 in action — which axioms and rules the F(F)
// closure actually fires, counted over the paper's workloads. Together
// with tests/core_test.cc (per-rule unit coverage) this reproduces
// Table 2 as an executable artifact. The timed section measures the
// closure over the combined broker capability list.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "core/closure.h"
#include "unfold/unfolded.h"

namespace {

using namespace oodbsec;

void PrintReport() {
  std::printf("=== T2: rule firings over the stockbroker workloads ===\n\n");
  auto schema = bench::BrokerSchema();
  auto set = unfold::UnfoldedSet::Build(
      *schema,
      {"checkBudget", "updateSalary", "w_budget", "w_profit", "r_name"});
  if (!set.ok()) std::abort();
  core::Closure closure(*set.value());

  // Group rule labels: basic-function rules by "<op>: ...", the rest
  // verbatim.
  std::map<std::string, int> firings;
  for (const core::DerivationStep& step : closure.steps()) {
    ++firings[step.rule];
  }
  std::printf("%-58s %s\n", "axiom / rule", "facts");
  for (const auto& [rule, count] : firings) {
    std::printf("%-58s %d\n", rule.c_str(), count);
  }
  std::printf("\ntotal: %zu facts over %d occurrences\n\n",
              closure.fact_count(), set.value()->node_count());
}

void BM_CombinedBrokerClosure(benchmark::State& state) {
  auto schema = bench::BrokerSchema();
  auto set = unfold::UnfoldedSet::Build(
      *schema,
      {"checkBudget", "updateSalary", "w_budget", "w_profit", "r_name"});
  if (!set.ok()) std::abort();
  for (auto _ : state) {
    core::Closure closure(*set.value());
    benchmark::DoNotOptimize(closure.fact_count());
  }
}
BENCHMARK(BM_CombinedBrokerClosure)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
