// Experiment P2: query-engine throughput.
//
// The substrate the attacks run on: select/where evaluation over class
// extents (with capability enforcement), probing-style side-effecting
// queries, and nested (child-set) queries. The report prints
// rows-matched sanity numbers; the timed section sweeps extent sizes.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/strings.h"
#include "query/binder.h"
#include "query/query_evaluator.h"
#include "query/query_parser.h"
#include "schema/user.h"
#include "store/database.h"

namespace {

using namespace oodbsec;
using types::Value;

std::unique_ptr<schema::Schema> PersonSchema() {
  schema::SchemaBuilder builder;
  builder.AddClass(
      "Person", {{"name", "string"}, {"age", "int"}, {"child", "{Person}"}});
  builder.AddFunction("isAdult", {{"p", "Person"}}, "bool",
                      "r_age(p) >= 18");
  auto result = std::move(builder).Build();
  if (!result.ok()) std::abort();
  return std::move(result).value();
}

store::Database Populate(const schema::Schema& schema, int count) {
  store::Database db(schema);
  for (int i = 0; i < count; ++i) {
    auto oid = db.CreateObject("Person");
    if (!oid.ok()) std::abort();
    (void)db.WriteAttribute(*oid, "name",
                            Value::String(common::StrCat("p", i)));
    (void)db.WriteAttribute(*oid, "age", Value::Int(i % 90));
  }
  return db;
}

query::SelectQuery& ParseAndBind(const schema::Schema& schema,
                                 const char* text,
                                 std::unique_ptr<query::SelectQuery>& slot) {
  auto parsed = query::ParseQueryString(text);
  if (!parsed.ok()) std::abort();
  slot = std::move(parsed).value();
  if (!query::BindQuery(*slot, schema).ok()) std::abort();
  return *slot;
}

void PrintReport() {
  std::printf("=== P2: query engine ===\n\n");
  auto schema = PersonSchema();
  std::printf("%-10s %-14s %-14s\n", "extent", "adults", "filtered");
  for (int extent : {10, 100, 1000}) {
    store::Database db = Populate(*schema, extent);
    std::unique_ptr<query::SelectQuery> q1, q2;
    query::QueryEvaluator evaluator(db, nullptr);
    auto adults = evaluator.Run(ParseAndBind(
        *schema, "select r_name(p) from p in Person where isAdult(p)", q1));
    auto filtered = evaluator.Run(ParseAndBind(
        *schema,
        "select r_age(p) from p in Person where r_name(p) == \"p7\"", q2));
    if (!adults.ok() || !filtered.ok()) std::abort();
    std::printf("%-10d %-14zu %-14zu\n", extent, adults->rows.size(),
                filtered->rows.size());
  }
  std::printf("\n");
}

void BM_SelectWhereScan(benchmark::State& state) {
  auto schema = PersonSchema();
  store::Database db = Populate(*schema, static_cast<int>(state.range(0)));
  std::unique_ptr<query::SelectQuery> slot;
  query::SelectQuery& query = ParseAndBind(
      *schema, "select r_name(p) from p in Person where isAdult(p)", slot);
  query::QueryEvaluator evaluator(db, nullptr);
  int64_t rows = 0;
  for (auto _ : state) {
    auto result = evaluator.Run(query);
    if (!result.ok()) std::abort();
    rows += static_cast<int64_t>(result->rows.size());
  }
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(rows), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SelectWhereScan)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_SideEffectingProbe(benchmark::State& state) {
  auto schema = PersonSchema();
  store::Database db = Populate(*schema, static_cast<int>(state.range(0)));
  std::unique_ptr<query::SelectQuery> slot;
  query::SelectQuery& query = ParseAndBind(
      *schema,
      "select w_age(p, 30), isAdult(p) from p in Person "
      "where r_name(p) == \"p3\"",
      slot);
  query::QueryEvaluator evaluator(db, nullptr);
  for (auto _ : state) {
    auto result = evaluator.Run(query);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->rows);
  }
}
BENCHMARK(BM_SideEffectingProbe)->Arg(100)->Arg(1000);

void BM_CapabilityCheckedQuery(benchmark::State& state) {
  auto schema = PersonSchema();
  schema::UserRegistry users(*schema);
  if (!users.AddUser("u").ok()) std::abort();
  (void)users.Grant("u", "isAdult");
  (void)users.Grant("u", "r_name");
  store::Database db = Populate(*schema, 100);
  std::unique_ptr<query::SelectQuery> slot;
  query::SelectQuery& query = ParseAndBind(
      *schema, "select r_name(p) from p in Person where isAdult(p)", slot);
  query::QueryEvaluator evaluator(db, users.Find("u"));
  for (auto _ : state) {
    auto result = evaluator.Run(query);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->rows);
  }
}
BENCHMARK(BM_CapabilityCheckedQuery);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
