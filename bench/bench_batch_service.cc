// Batch analysis service benchmark: a role-shaped user population —
// many accounts, few distinct grant bundles — checked end-to-end
// through AnalysisService, against the per-user sequential baseline
// (core::CheckRequirement builds a fresh closure per requirement).
//
// Population: `roles` broker departments on one shared class; each role
// grants its department's {checkBudget_i, updateSalary_i, w_budget_i,
// w_profit_i, r_name} bundle to `users_per_role` accounts, and every
// account carries one "can salary_i be inferred?" requirement. With
// 16 roles x 4 accounts the batch holds 64 requirements over 16
// distinct capability signatures: the cold-cache hit rate is 75%.
//
// Threaded variants use real (wall) time: the work happens on pool
// workers, so main-thread CPU time would under-report. On a single-core
// host the 1/2/4-thread wall times coincide — the scaling columns only
// spread on multi-core hardware.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "core/analysis_session.h"
#include "core/analyzer.h"
#include "core/requirement.h"
#include "schema/schema.h"
#include "schema/user.h"
#include "service/analysis_service.h"
#include "service/shard.h"

namespace {

using namespace oodbsec;

struct Population {
  std::unique_ptr<schema::Schema> schema;
  std::unique_ptr<schema::UserRegistry> users;
  std::vector<core::Requirement> requirements;
};

Population MakeRolePopulation(int roles, int users_per_role) {
  schema::SchemaBuilder builder;
  std::vector<schema::SchemaBuilder::AttributeSpec> attributes;
  attributes.push_back({"name", "string"});
  for (int r = 0; r < roles; ++r) {
    attributes.push_back({common::StrCat("salary", r), "int"});
    attributes.push_back({common::StrCat("budget", r), "int"});
    attributes.push_back({common::StrCat("profit", r), "int"});
  }
  builder.AddClass("Broker", std::move(attributes));
  for (int r = 0; r < roles; ++r) {
    builder.AddFunction(
        common::StrCat("checkBudget", r), {{"broker", "Broker"}}, "bool",
        common::StrCat("r_budget", r, "(broker) >= 10 * r_salary", r,
                       "(broker)"));
    builder.AddFunction(common::StrCat("calcSalary", r),
                        {{"budget", "int"}, {"profit", "int"}}, "int",
                        "budget / 10 + profit / 2");
    builder.AddFunction(
        common::StrCat("updateSalary", r), {{"broker", "Broker"}}, "null",
        common::StrCat("w_salary", r, "(broker, calcSalary", r, "(r_budget",
                       r, "(broker), r_profit", r, "(broker)))"));
  }
  auto built = std::move(builder).Build();
  if (!built.ok()) std::abort();

  Population population;
  population.schema = std::move(built).value();
  population.users =
      std::make_unique<schema::UserRegistry>(*population.schema);
  for (int r = 0; r < roles; ++r) {
    for (int k = 0; k < users_per_role; ++k) {
      std::string name = common::StrCat("u", r, "_", k);
      if (!population.users->AddUser(name).ok()) std::abort();
      for (const std::string& grant :
           {common::StrCat("checkBudget", r),
            common::StrCat("updateSalary", r),
            common::StrCat("w_budget", r), common::StrCat("w_profit", r),
            std::string("r_name")}) {
        if (!population.users->Grant(name, grant).ok()) std::abort();
      }
      auto requirement = core::ParseRequirementString(
          common::StrCat("(", name, ", r_salary", r, "(x) : ti)"));
      if (!requirement.ok()) std::abort();
      population.requirements.push_back(std::move(requirement).value());
    }
  }
  return population;
}

constexpr int kRoles = 16;
constexpr int kUsersPerRole = 4;

// Baseline: the pre-service code path — every requirement unfolds and
// closes its user's capability list from scratch.
void BM_SequentialPerUser(benchmark::State& state) {
  Population population = MakeRolePopulation(kRoles, kUsersPerRole);
  for (auto _ : state) {
    for (const core::Requirement& requirement : population.requirements) {
      auto report = core::CheckRequirement(*population.schema,
                                           *population.users, requirement);
      if (!report.ok()) std::abort();
      benchmark::DoNotOptimize(report->satisfied);
    }
  }
  state.counters["users"] = kRoles * kUsersPerRole;
  state.counters["roles"] = kRoles;
}
BENCHMARK(BM_SequentialPerUser)->Unit(benchmark::kMillisecond);

// Cold cache: each iteration builds a fresh service, so the batch pays
// for all `roles` closures (in parallel) plus every check. This is the
// nightly-audit shape.
void BM_BatchColdCache(benchmark::State& state) {
  Population population = MakeRolePopulation(kRoles, kUsersPerRole);
  double built = 0, hit_rate = 0;
  for (auto _ : state) {
    service::ServiceOptions options;
    options.threads = static_cast<int>(state.range(0));
    service::AnalysisService svc(*population.schema, *population.users,
                                 options);
    auto reports = svc.CheckBatch(population.requirements);
    if (!reports.ok()) std::abort();
    benchmark::DoNotOptimize(reports->size());
    service::ServiceStats stats = svc.Stats();
    built = static_cast<double>(stats.closures_built);
    hit_rate = stats.RequirementHitRate();
  }
  state.counters["users"] = kRoles * kUsersPerRole;
  state.counters["closures_built"] = built;
  state.counters["hit_rate"] = hit_rate;
}
BENCHMARK(BM_BatchColdCache)
    ->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Warm cache: the service persists across iterations, so after the
// first batch every signature is cached and iterations measure pure
// parallel requirement checking — the re-audit shape.
void BM_BatchWarmCache(benchmark::State& state) {
  Population population = MakeRolePopulation(kRoles, kUsersPerRole);
  service::ServiceOptions options;
  options.threads = static_cast<int>(state.range(0));
  service::AnalysisService svc(*population.schema, *population.users,
                               options);
  {
    auto warmup = svc.CheckBatch(population.requirements);
    if (!warmup.ok()) std::abort();
  }
  for (auto _ : state) {
    auto reports = svc.CheckBatch(population.requirements);
    if (!reports.ok()) std::abort();
    benchmark::DoNotOptimize(reports->size());
  }
  state.counters["users"] = kRoles * kUsersPerRole;
  state.counters["cached_closures"] = static_cast<double>(svc.cache_size());
}
BENCHMARK(BM_BatchWarmCache)
    ->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Sharded multi-process audit over the same population: fork
// `shard_count` workers, route requirements by capability signature,
// merge. Cold every iteration (each worker builds its own shard's
// closures), so against BM_BatchColdCache/1 the delta is fork + pipe +
// merge overhead versus true multi-core fixpoint parallelism. Runs
// before any persistent pool exists in this process — fork() wants a
// single-threaded image (the scoped services above are gone by now).
void BM_ShardedBatch(benchmark::State& state) {
  Population population = MakeRolePopulation(kRoles, kUsersPerRole);
  service::ShardOptions options;
  options.shard_count = static_cast<int>(state.range(0));
  double built = 0;
  for (auto _ : state) {
    auto result = service::RunShardedBatch(
        *population.schema, *population.users, population.requirements,
        options);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->reports.size());
    built = static_cast<double>(result->merged_stats.closures_built);
  }
  state.counters["users"] = kRoles * kUsersPerRole;
  state.counters["closures_built"] = built;
}
BENCHMARK(BM_ShardedBatch)
    ->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// One instrumented cold batch after the timed loops, dumped as
// TRACE_batch_service.jsonl when OODBSEC_TRACE_DIR is set: the "batch"
// span's plan / build / check children give the per-phase breakdown,
// and the metric lines carry the cache and pool accounting.
void DumpPhaseTrace() {
  Population population = MakeRolePopulation(kRoles, kUsersPerRole);
  core::SessionOptions options;
  options.threads = 4;
  options.tracing = true;
  core::AnalysisSession session(*population.schema, *population.users,
                                options);
  service::AnalysisService svc(session);
  auto reports = svc.CheckBatch(population.requirements);
  if (!reports.ok()) std::abort();
  benchmark::DoNotOptimize(reports->size());
  bench::DumpTraceIfRequested(session.obs(), "batch_service");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  DumpPhaseTrace();
  return 0;
}
