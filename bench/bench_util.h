// Shared helpers for the benchmark/experiment binaries: the paper's
// stockbroker workspace and a seeded random workload generator used by
// the soundness (S1) and pessimism (S2) experiments.
#ifndef OODBSEC_BENCH_BENCH_UTIL_H_
#define OODBSEC_BENCH_BENCH_UTIL_H_

#include <array>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common/strings.h"
#include "obs/sink.h"
#include "schema/schema.h"
#include "core/analyzer.h"
#include "schema/user.h"
#include "semantics/oracle.h"

namespace oodbsec::bench {

// Writes a traced run's spans and metrics as JSON lines to
// $OODBSEC_TRACE_DIR/TRACE_<suite>.jsonl (run_bench_json.sh points the
// variable at its output directory). No-op when the variable is unset,
// so plain benchmark invocations stay file-free. The timed loops of a
// suite must run untraced (obs == nullptr); suites call this on one
// separate instrumented run after timing finishes.
inline void DumpTraceIfRequested(const obs::Observability& obs,
                                 const char* suite) {
  const char* dir = std::getenv("OODBSEC_TRACE_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::string path = common::StrCat(dir, "/TRACE_", suite, ".jsonl");
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  obs::JsonLinesSink sink(out);
  obs::Emit(obs, sink);
  std::printf("trace -> %s\n", path.c_str());
}

inline std::unique_ptr<schema::Schema> BrokerSchema() {
  schema::SchemaBuilder builder;
  builder.AddClass("Broker", {{"name", "string"},
                              {"salary", "int"},
                              {"budget", "int"},
                              {"profit", "int"}});
  builder.AddFunction("checkBudget", {{"broker", "Broker"}}, "bool",
                      ">=(r_budget(broker), *(10, r_salary(broker)))");
  builder.AddFunction("calcSalary", {{"budget", "int"}, {"profit", "int"}},
                      "int", "budget / 10 + profit / 2");
  builder.AddFunction(
      "updateSalary", {{"broker", "Broker"}}, "null",
      "w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)))");
  auto result = std::move(builder).Build();
  if (!result.ok()) std::abort();
  return std::move(result).value();
}

// A randomly generated single-class workload: `attribute_count` int
// attributes a0..aN on class C, plus `function_count` access functions
// drawn from small templates (comparators, linear getters, updaters).
struct RandomWorkload {
  std::unique_ptr<schema::Schema> schema;
  std::vector<std::string> function_names;  // candidates for grants
};

inline RandomWorkload MakeRandomWorkload(uint32_t seed, int attribute_count,
                                         int function_count) {
  std::mt19937 rng(seed);
  auto pick_attr = [&] {
    return common::StrCat(
        "a", std::uniform_int_distribution<int>(0, attribute_count - 1)(rng));
  };
  auto small = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };

  schema::SchemaBuilder builder;
  std::vector<schema::SchemaBuilder::AttributeSpec> attributes;
  for (int i = 0; i < attribute_count; ++i) {
    attributes.push_back({common::StrCat("a", i), "int"});
  }
  builder.AddClass("C", std::move(attributes));

  RandomWorkload workload;
  for (int i = 0; i < function_count; ++i) {
    std::string name = common::StrCat("f", i);
    switch (small(0, 3)) {
      case 0:  // comparator: r_x(o) >= k * r_y(o)
        builder.AddFunction(
            name, {{"o", "C"}}, "bool",
            common::StrCat("r_", pick_attr(), "(o) >= ", small(1, 3), " * r_",
                           pick_attr(), "(o)"));
        break;
      case 1:  // linear getter: r_x(o) * k + c
        builder.AddFunction(
            name, {{"o", "C"}}, "int",
            common::StrCat("r_", pick_attr(), "(o) * ", small(1, 2), " + ",
                           small(0, 2)));
        break;
      case 2:  // threshold with caller argument: r_x(o) >= t
        builder.AddFunction(
            name, {{"o", "C"}, {"t", "int"}}, "bool",
            common::StrCat("r_", pick_attr(), "(o) >= t"));
        break;
      default:  // updater: w_x(o, r_y(o) + k)
        builder.AddFunction(
            name, {{"o", "C"}}, "null",
            common::StrCat("w_", pick_attr(), "(o, r_", pick_attr(), "(o) + ",
                           small(0, 2), ")"));
        break;
    }
    workload.function_names.push_back(std::move(name));
  }
  auto result = std::move(builder).Build();
  if (!result.ok()) std::abort();
  workload.schema = std::move(result).value();
  return workload;
}

// ---------------------------------------------------------------------
// Analyzer-vs-oracle comparison harness (experiments S1 and S2).

struct AgreementCounts {
  int both_yes = 0;      // analyzer and oracle agree: achievable
  int both_no = 0;       // agree: not achievable
  int analyzer_only = 0; // pessimism: flagged but unconfirmed in scope
  int oracle_only = 0;   // SOUNDNESS VIOLATION: achievable yet unflagged

  void Merge(const AgreementCounts& other) {
    both_yes += other.both_yes;
    both_no += other.both_no;
    analyzer_only += other.analyzer_only;
    oracle_only += other.oracle_only;
  }
  int total() const {
    return both_yes + both_no + analyzer_only + oracle_only;
  }
};

// Runs one randomized trial: builds a workload from `seed`, grants a
// random capability list, then compares the F(F) closure against the
// small-scope oracle on every attribute-read occurrence, for all four
// capabilities. Returns per-capability agreement counts indexed by
// core::Capability cast to int.
std::array<AgreementCounts, 4> CompareAnalyzerWithOracle(uint32_t seed);

}  // namespace oodbsec::bench

#endif  // OODBSEC_BENCH_BENCH_UTIL_H_
