// Experiment P1: closure scaling.
//
// The F(F) closure runs over the unfolded program of the entire
// capability list; its cost grows with the occurrence count, which in
// turn grows with the number of granted functions and with call-chain
// depth (unfolding duplicates callee bodies per call site — the reason
// the paper restricts functions to be recursion-free). The report
// prints occurrences/facts per configuration; the timed section sweeps
// both dimensions.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "core/closure.h"
#include "unfold/unfolded.h"

namespace {

using namespace oodbsec;

// `width` independent comparator functions over `width` attributes.
std::unique_ptr<schema::Schema> WideSchema(int width) {
  schema::SchemaBuilder builder;
  std::vector<schema::SchemaBuilder::AttributeSpec> attributes;
  for (int i = 0; i < width; ++i) {
    attributes.push_back({common::StrCat("a", i), "int"});
  }
  builder.AddClass("C", std::move(attributes));
  for (int i = 0; i < width; ++i) {
    builder.AddFunction(
        common::StrCat("f", i), {{"o", "C"}}, "bool",
        common::StrCat("r_a", i, "(o) >= ", i + 1, " * r_a",
                       (i + 1) % width, "(o)"));
  }
  auto result = std::move(builder).Build();
  if (!result.ok()) std::abort();
  return std::move(result).value();
}

// A call chain of `depth` functions: g0 reads, g_{i} calls g_{i-1} twice
// (so unfolded size grows exponentially with depth).
std::unique_ptr<schema::Schema> DeepSchema(int depth) {
  schema::SchemaBuilder builder;
  builder.AddClass("C", {{"a0", "int"}});
  builder.AddFunction("g0", {{"o", "C"}}, "int", "r_a0(o) + 1");
  for (int i = 1; i < depth; ++i) {
    builder.AddFunction(
        common::StrCat("g", i), {{"o", "C"}}, "int",
        common::StrCat("g", i - 1, "(o) + g", i - 1, "(o)"));
  }
  auto result = std::move(builder).Build();
  if (!result.ok()) std::abort();
  return std::move(result).value();
}

void PrintReport() {
  std::printf("=== P1: closure scaling ===\n\n");
  std::printf("width sweep (independent comparators granted together):\n");
  std::printf("%-8s %-13s %-10s\n", "width", "occurrences", "facts");
  for (int width : {2, 4, 8, 16}) {
    auto schema = WideSchema(width);
    std::vector<std::string> roots;
    for (int i = 0; i < width; ++i) roots.push_back(common::StrCat("f", i));
    auto set = unfold::UnfoldedSet::Build(*schema, roots);
    if (!set.ok()) std::abort();
    core::Closure closure(*set.value());
    std::printf("%-8d %-13d %-10zu\n", width, set.value()->node_count(),
                closure.fact_count());
  }

  std::printf("\ndepth sweep (one granted function, binary call chain —\n"
              "unfolding duplicates callee bodies per call site):\n");
  std::printf("%-8s %-13s %-10s\n", "depth", "occurrences", "facts");
  for (int depth : {2, 4, 6, 8}) {
    auto schema = DeepSchema(depth);
    auto set = unfold::UnfoldedSet::Build(
        *schema, {common::StrCat("g", depth - 1)});
    if (!set.ok()) std::abort();
    core::Closure closure(*set.value());
    std::printf("%-8d %-13d %-10zu\n", depth, set.value()->node_count(),
                closure.fact_count());
  }
  std::printf("\n");
}

void BM_ClosureWidth(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  auto schema = WideSchema(width);
  std::vector<std::string> roots;
  for (int i = 0; i < width; ++i) roots.push_back(common::StrCat("f", i));
  auto set = unfold::UnfoldedSet::Build(*schema, roots);
  if (!set.ok()) std::abort();
  for (auto _ : state) {
    core::Closure closure(*set.value());
    benchmark::DoNotOptimize(closure.fact_count());
  }
  state.counters["occurrences"] =
      static_cast<double>(set.value()->node_count());
}
BENCHMARK(BM_ClosureWidth)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_ClosureDepth(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  auto schema = DeepSchema(depth);
  auto set =
      unfold::UnfoldedSet::Build(*schema, {common::StrCat("g", depth - 1)});
  if (!set.ok()) std::abort();
  for (auto _ : state) {
    core::Closure closure(*set.value());
    benchmark::DoNotOptimize(closure.fact_count());
  }
  state.counters["occurrences"] =
      static_cast<double>(set.value()->node_count());
}
BENCHMARK(BM_ClosureDepth)->Arg(2)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
