// Experiment A1: rule ablations.
//
// Each rule family of Table 2 is load-bearing: disabling it makes the
// analyzer miss a documented flaw. The report runs the Figure-1
// detection and the updateSalary alterability detection under each
// ablation and shows exactly which detections survive; the timed
// section measures how much each family costs.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "core/closure.h"
#include "unfold/unfolded.h"

namespace {

using namespace oodbsec;

struct Ablation {
  const char* name;
  core::ClosureOptions options;
};

std::vector<Ablation> Ablations() {
  std::vector<Ablation> out;
  out.push_back({"full analyzer (baseline)", {}});
  {
    core::ClosureOptions o;
    o.same_type_argument_equality = false;
    out.push_back({"- same-type argument equality", o});
  }
  {
    core::ClosureOptions o;
    o.pi_join_to_ti = false;
    out.push_back({"- pi-join-to-ti rule", o});
  }
  {
    core::ClosureOptions o;
    o.basic_function_rules = false;
    out.push_back({"- basic-function rules", o});
  }
  {
    core::ClosureOptions o;
    o.write_read_equality = false;
    out.push_back({"- write/read equality rules", o});
  }
  return out;
}

// Flaw 3 (sign + magnitude): magnitude(o) = abs(r_a(o)) leaks a two-
// candidate set {-v, v}; isNonNegative(o) = r_a(o) >= 0 leaks the sign.
// Joining the two *differently obtained* partial inferabilities pins
// r_a(o) exactly — the pi-join-to-ti rule's raison d'être.
std::unique_ptr<schema::Schema> SignMagnitudeSchema() {
  schema::SchemaBuilder builder;
  builder.AddClass("D", {{"a", "int"}});
  builder.AddFunction("magnitude", {{"o", "D"}}, "int", "abs(r_a(o))");
  builder.AddFunction("isNonNegative", {{"o", "D"}}, "bool",
                      "r_a(o) >= 0");
  auto result = std::move(builder).Build();
  if (!result.ok()) std::abort();
  return std::move(result).value();
}

void PrintReport() {
  std::printf("=== A1: rule ablations ===\n\n");
  auto schema = bench::BrokerSchema();
  auto fig1 =
      unfold::UnfoldedSet::Build(*schema, {"checkBudget", "w_budget"});
  auto upd =
      unfold::UnfoldedSet::Build(*schema, {"updateSalary", "w_budget"});
  auto sign_schema = SignMagnitudeSchema();
  auto sign =
      unfold::UnfoldedSet::Build(*sign_schema, {"magnitude", "isNonNegative"});
  if (!fig1.ok() || !upd.ok() || !sign.ok()) std::abort();

  std::printf("%-34s %-20s %-20s %-20s %s\n", "configuration",
              "flaw1 ti[r_salary]", "flaw2 ta[written v]",
              "flaw3 ti[r_a]", "facts");
  for (const Ablation& ablation : Ablations()) {
    core::Closure c1(*fig1.value(), ablation.options);
    core::Closure c2(*upd.value(), ablation.options);
    core::Closure c3(*sign.value(), ablation.options);
    // Flaw 1: ti on occurrence 5 (r_salary inside checkBudget).
    bool flaw1 = c1.HasTi(5);
    // Flaw 2: ta on the value written by w_salary inside updateSalary.
    const unfold::Node* write = upd.value()->writes("salary")[0];
    bool flaw2 = c2.HasTa(write->value_child()->id);
    // Flaw 3: ti on the attribute read inside magnitude.
    bool flaw3 = c3.HasTi(sign.value()->reads("a")[0]->id);
    std::printf("%-34s %-20s %-20s %-20s %zu\n", ablation.name,
                flaw1 ? "detected" : "MISSED",
                flaw2 ? "detected" : "MISSED",
                flaw3 ? "detected" : "MISSED",
                c1.fact_count() + c2.fact_count() + c3.fact_count());
  }
  std::printf(
      "\nEvery ablated family loses at least one detection; the paper's\n"
      "rule families are each load-bearing.\n\n");
}

void BM_AblatedClosure(benchmark::State& state) {
  auto schema = bench::BrokerSchema();
  auto set =
      unfold::UnfoldedSet::Build(*schema, {"checkBudget", "w_budget",
                                           "updateSalary"});
  if (!set.ok()) std::abort();
  core::ClosureOptions options = Ablations()[static_cast<size_t>(
                                     state.range(0))].options;
  for (auto _ : state) {
    core::Closure closure(*set.value(), options);
    benchmark::DoNotOptimize(closure.fact_count());
  }
}
BENCHMARK(BM_AblatedClosure)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
